"""Tests for the gallery kernels (heat diffusion, Game of Life).

Both assignments register tile kernels *without* hand-written footprint
declarations — test_symbolic.py covers their certification; here we check
the numerics: the tiled registry-driven stepper must match the vec
variant and the plain whole-interior reference step for step.
"""

import numpy as np
import pytest

import repro.gallery  # noqa: F401 - registers variants and tile kernels
from repro.common.errors import ConfigurationError
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import get_variant
from repro.gallery.heat import ALPHA, heat_step
from repro.gallery.life import life_step


def random_heat_grid(height, width, seed=0):
    g = Grid2D(height, width, dtype=np.float64)
    g.interior[...] = np.random.default_rng(seed).random((height, width))
    return g


def random_life_grid(height, width, seed=0):
    g = Grid2D(height, width)
    g.interior[...] = np.random.default_rng(seed).integers(0, 2, (height, width))
    return g


class TestHeat:
    def test_single_step_matches_reference(self):
        g = random_heat_grid(16, 16, seed=1)
        expect = g.data.copy()
        heat_step(g.data.copy(), expect)
        stepper = get_variant("heat", "tiled").fn(g, tile_size=5)
        stepper()
        np.testing.assert_allclose(g.interior, expect[1:-1, 1:-1])
        stepper.close()

    def test_tiled_matches_vec(self):
        a = random_heat_grid(33, 29, seed=7)
        b = a.copy()
        vec = get_variant("heat", "vec").fn(a)
        tiled = get_variant("heat", "tiled").fn(b, tile_size=8)
        for _ in range(5):
            vec()
            tiled()
        np.testing.assert_allclose(b.interior, a.interior)
        tiled.close()

    def test_heat_flows_toward_cold_boundary(self):
        # absorbing zero frame: total interior heat strictly decreases
        g = random_heat_grid(12, 12, seed=3)
        before = g.interior.sum()
        stepper = get_variant("heat", "vec").fn(g)
        assert stepper() is True
        assert g.interior.sum() < before

    def test_all_zero_grid_reports_no_change(self):
        g = Grid2D(10, 10, dtype=np.float64)
        stepper = get_variant("heat", "tiled").fn(g, tile_size=4)
        assert stepper() is False
        stepper.close()

    @pytest.mark.parametrize("variant", ["vec", "tiled"])
    def test_integer_grid_rejected(self, variant):
        with pytest.raises(ConfigurationError, match="float"):
            get_variant("heat", variant).fn(Grid2D(8, 8))

    def test_jacobi_update_formula(self):
        # single hot cell: neighbours each receive alpha of it
        g = Grid2D(5, 5, dtype=np.float64)
        g.interior[2, 2] = 1.0
        stepper = get_variant("heat", "vec").fn(g)
        stepper()
        assert g.interior[2, 2] == pytest.approx(1.0 - 4 * ALPHA)
        assert g.interior[1, 2] == pytest.approx(ALPHA)
        assert g.interior[2, 1] == pytest.approx(ALPHA)


class TestLife:
    def test_blinker_oscillates_with_period_two(self):
        g = Grid2D(9, 9)
        g.interior[4, 3:6] = 1
        start = g.interior.copy()
        stepper = get_variant("life", "tiled").fn(g, tile_size=4)
        assert stepper() is True  # horizontal -> vertical
        assert np.array_equal(g.interior, start.T)
        assert stepper() is True  # vertical -> horizontal
        assert np.array_equal(g.interior, start)
        stepper.close()

    def test_glider_translates_diagonally(self):
        glider = np.array([[0, 1, 0], [0, 0, 1], [1, 1, 1]])
        g = Grid2D(12, 12)
        g.interior[1:4, 1:4] = glider
        stepper = get_variant("life", "vec").fn(g)
        for _ in range(4):  # one full glider period = +1 row, +1 col
            stepper()
        expect = np.zeros((12, 12), dtype=g.interior.dtype)
        expect[2:5, 2:5] = glider
        assert np.array_equal(g.interior, expect)

    def test_tiled_matches_vec(self):
        a = random_life_grid(24, 17, seed=11)
        b = a.copy()
        vec = get_variant("life", "vec").fn(a)
        tiled = get_variant("life", "tiled").fn(b, tile_size=5)
        for _ in range(6):
            vec()
            tiled()
        assert np.array_equal(b.interior, a.interior)
        tiled.close()

    def test_still_life_reports_no_change(self):
        g = Grid2D(8, 8)
        g.interior[3:5, 3:5] = 1  # block
        stepper = get_variant("life", "tiled").fn(g, tile_size=4)
        assert stepper() is False
        assert g.interior[3:5, 3:5].sum() == 4
        stepper.close()

    def test_frame_is_absorbing(self):
        # a cell pushed against the frame sees dead neighbours outside
        g = Grid2D(6, 6)
        g.interior[0, 0:3] = 1
        expect = g.data.copy()
        life_step(g.data.copy(), expect)
        stepper = get_variant("life", "vec").fn(g)
        stepper()
        assert np.array_equal(g.interior, expect[1:-1, 1:-1])
        assert g.data[0].sum() == 0 and g.data[:, 0].sum() == 0
