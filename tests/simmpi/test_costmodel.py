"""Tests for the simmpi cost model."""

import numpy as np
import pytest

from repro.simmpi.costmodel import CostModel, payload_nbytes


class TestCostModel:
    def test_transfer_time_formula(self):
        cm = CostModel(latency=1e-3, bandwidth=1e6)
        assert cm.transfer_time(1_000_000) == pytest.approx(1e-3 + 1.0)

    def test_zero_bytes_pays_latency(self):
        cm = CostModel(latency=5e-6)
        assert cm.transfer_time(0) == pytest.approx(5e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().transfer_time(-1)

    def test_larger_messages_cost_more(self):
        cm = CostModel()
        assert cm.transfer_time(10**6) > cm.transfer_time(10**3)


class TestPayloadNbytes:
    def test_numpy_exact(self):
        a = np.zeros(100, dtype=np.int64)
        assert payload_nbytes(a) == 800

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_picklable_object(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_unpicklable_falls_back(self):
        assert payload_nbytes(lambda x: x) > 0

    def test_view_counts_view_bytes(self):
        a = np.zeros((10, 10), dtype=np.float64)
        assert payload_nbytes(a[:2]) == 2 * 10 * 8
