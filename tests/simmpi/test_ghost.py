"""Tests for the Ghost Cell Pattern helper."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.simmpi import HaloExchanger, run_ranks, split_rows


class TestSplitRows:
    def test_even(self):
        assert split_rows(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_front_loaded(self):
        bounds = split_rows(10, 3)
        sizes = [b - a for a, b in bounds]
        assert sizes == [4, 3, 3]
        assert bounds[0][0] == 0 and bounds[-1][1] == 10

    def test_contiguous(self):
        bounds = split_rows(17, 5)
        for (a0, b0), (a1, b1) in zip(bounds, bounds[1:]):
            assert b0 == a1

    def test_more_ranks_than_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            split_rows(2, 3)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            split_rows(5, 0)


class TestHaloExchanger:
    def _run_exchange(self, nranks, depth, rows_per_rank=4, cols=3):
        """Each rank fills its owned rows with its rank id, exchanges once."""

        def body(comm):
            k = depth
            local = np.zeros((rows_per_rank + 2 * k, cols), dtype=np.int64)
            local[k:-k] = comm.rank + 1  # owned rows tagged by rank
            ex = HaloExchanger(comm, depth=k)
            ex.exchange(local)
            return local

        return run_ranks(nranks, body).results

    @pytest.mark.parametrize("depth", [1, 2])
    def test_ghosts_hold_neighbor_rows(self, depth):
        locals_ = self._run_exchange(3, depth)
        k = depth
        # middle rank sees rank 0 above and rank 2 below
        mid = locals_[1]
        assert (mid[:k] == 1).all()      # from rank 0 (id 0+1)
        assert (mid[-k:] == 3).all()     # from rank 2 (id 2+1)
        # top rank's lower ghost from rank 1
        assert (locals_[0][-k:] == 2).all()
        # bottom rank's upper ghost from rank 1
        assert (locals_[2][:k] == 2).all()

    def test_edge_ghosts_untouched(self):
        locals_ = self._run_exchange(2, 1)
        # rank 0's top ghost and rank 1's bottom ghost have no neighbour:
        # they keep their initial zeros
        assert (locals_[0][:1] == 0).all()
        assert (locals_[1][-1:] == 0).all()

    def test_single_rank_noop(self):
        locals_ = self._run_exchange(1, 1)
        assert (locals_[0][:1] == 0).all() and (locals_[0][-1:] == 0).all()

    def test_sends_owned_not_ghost_rows(self):
        # depth 2: the neighbour must receive our *owned* boundary rows,
        # not our ghosts
        def body(comm):
            k = 2
            local = np.zeros((4 + 2 * k, 1), dtype=np.int64)
            local[k:-k, 0] = np.arange(4) + 10 * (comm.rank + 1)
            HaloExchanger(comm, depth=k).exchange(local)
            return local

        results = run_ranks(2, body).results
        # rank 1's upper ghost = rank 0's bottom two owned rows (12, 13)
        assert list(results[1][:2, 0]) == [12, 13]
        # rank 0's lower ghost = rank 1's top two owned rows (20, 21)
        assert list(results[0][-2:, 0]) == [20, 21]

    def test_depth_validation(self):
        def body(comm):
            HaloExchanger(comm, depth=0)

        from repro.common.errors import CommunicationError

        with pytest.raises(CommunicationError):
            run_ranks(1, body)

    def test_depth_exceeding_owned_rows_rejected_at_construction(self):
        # a rank that owns fewer rows than the halo depth cannot fill the
        # bands it must export; this must fail at construction, not
        # mid-exchange
        def body(comm):
            HaloExchanger(comm, depth=3, owned_rows=2)

        from repro.common.errors import CommunicationError

        with pytest.raises(CommunicationError, match="owned rows"):
            run_ranks(2, body)

    def test_owned_rows_at_least_depth_accepted(self):
        def body(comm):
            k = 2
            local = np.zeros((4 + 2 * k, 3), dtype=np.int64)
            ex = HaloExchanger(comm, depth=k, owned_rows=4)
            ex.exchange(local)
            return ex.owned_rows

        assert run_ranks(2, body).results == [4, 4]

    def test_too_small_block_rejected(self):
        def body(comm):
            local = np.zeros((2, 3))
            HaloExchanger(comm, depth=1).exchange(local)

        from repro.common.errors import CommunicationError

        with pytest.raises(CommunicationError):
            run_ranks(2, body)

    def test_exchange_counter(self):
        def body(comm):
            local = np.zeros((6, 2))
            ex = HaloExchanger(comm, depth=1)
            ex.exchange(local)
            ex.exchange(local)
            return ex.exchanges

        assert run_ranks(2, body).results == [2, 2]

    def test_message_count_scales_with_exchanges_not_depth(self):
        def run_with(depth, n_exchanges):
            def body(comm):
                local = np.zeros((8 + 2 * depth, 4))
                ex = HaloExchanger(comm, depth=depth)
                for _ in range(n_exchanges):
                    ex.exchange(local)

            return run_ranks(2, body).total_messages

        assert run_with(1, 4) == run_with(4, 4)  # depth changes bytes, not messages
        assert run_with(1, 8) == 2 * run_with(1, 4)
