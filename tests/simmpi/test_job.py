"""Tests for SimMpiJob, the simmpi OneShot Job adapter."""

from repro.simmpi.job import SimMpiJob


def _allreduce(comm):
    return comm.allreduce(comm.rank + 1)


def _ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank, dest=right, tag=0)
    return comm.recv(source=left, tag=0)


class TestSimMpiJob:
    def test_allreduce_world(self):
        result = SimMpiJob(4, _allreduce).run()
        assert result["results"] == [10, 10, 10, 10]
        assert result["total_messages"] > 0

    def test_name_carries_world_and_size(self):
        assert SimMpiJob(3, _allreduce).name == "simmpi/_allreducex3"

    def test_deterministic_replay(self):
        assert SimMpiJob(5, _ring).run() == SimMpiJob(5, _ring).run()

    def test_completion_checkpoint_skips_rerun(self):
        job = SimMpiJob(4, _allreduce)
        result = job.run()
        snap = job.checkpoint()
        fresh = SimMpiJob(4, _allreduce)
        fresh.restore(snap)
        assert fresh.run() == result
        assert fresh.progress().done

    def test_runner_options_flow_through(self):
        result = SimMpiJob(2, _ring, deadlock_timeout=1.0, wall_timeout=10.0).run()
        assert result["results"] == [1, 0]
