"""Tests for the SPMD launcher."""

import pytest

from repro.common.errors import CommunicationError
from repro.simmpi import CostModel, run_ranks


class TestRunRanks:
    def test_results_ordered_by_rank(self):
        report = run_ranks(4, lambda comm: comm.rank * 2)
        assert report.results == [0, 2, 4, 6]

    def test_kwargs_forwarded(self):
        def body(comm, a, b=0):
            return a + b + comm.rank

        report = run_ranks(2, body, 10, b=5)
        assert report.results == [15, 16]

    def test_stats_per_rank(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        report = run_ranks(3, body)
        assert len(report.stats) == 3
        assert report.stats[2].messages_sent == 0

    def test_custom_cost_model_used(self):
        slow = CostModel(latency=2.0, bandwidth=1e9, overhead=0.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1)
            else:
                comm.recv(source=0)
            return comm.clock

        report = run_ranks(2, body, cost_model=slow)
        assert report.clocks[1] >= 2.0

    def test_non_communication_error_preferred(self):
        # rank 1 raises ValueError; rank 0 gets a CommunicationError from
        # the abort — the report must blame the root cause
        def body(comm):
            if comm.rank == 1:
                raise ValueError("root cause")
            comm.recv(source=1)

        with pytest.raises(CommunicationError, match="rank 1"):
            run_ranks(2, body)

    def test_empty_world_rejected(self):
        with pytest.raises(CommunicationError):
            run_ranks(0, lambda comm: None)

    def test_makespan_empty(self):
        report = run_ranks(2, lambda comm: None)
        assert report.makespan >= 0.0
