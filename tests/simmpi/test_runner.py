"""Tests for the SPMD launcher."""

import pytest

from repro.common.errors import CommunicationError
from repro.simmpi import CostModel, run_ranks


class TestRunRanks:
    def test_results_ordered_by_rank(self):
        report = run_ranks(4, lambda comm: comm.rank * 2)
        assert report.results == [0, 2, 4, 6]

    def test_kwargs_forwarded(self):
        def body(comm, a, b=0):
            return a + b + comm.rank

        report = run_ranks(2, body, 10, b=5)
        assert report.results == [15, 16]

    def test_stats_per_rank(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        report = run_ranks(3, body)
        assert len(report.stats) == 3
        assert report.stats[2].messages_sent == 0

    def test_custom_cost_model_used(self):
        slow = CostModel(latency=2.0, bandwidth=1e9, overhead=0.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1)
            else:
                comm.recv(source=0)
            return comm.clock

        report = run_ranks(2, body, cost_model=slow)
        assert report.clocks[1] >= 2.0

    def test_non_communication_error_preferred(self):
        # rank 1 raises ValueError; rank 0 gets a CommunicationError from
        # the abort — the report must blame the root cause
        def body(comm):
            if comm.rank == 1:
                raise ValueError("root cause")
            comm.recv(source=1)

        with pytest.raises(CommunicationError, match="rank 1"):
            run_ranks(2, body)

    def test_empty_world_rejected(self):
        with pytest.raises(CommunicationError):
            run_ranks(0, lambda comm: None)

    def test_makespan_empty(self):
        report = run_ranks(2, lambda comm: None)
        assert report.makespan >= 0.0


class TestTimeouts:
    """Configurable deadlock/wall timeouts with blocked-rank diagnostics."""

    def test_deadlock_error_names_blocked_source_and_tag(self):
        # classic head-to-head deadlock: both ranks recv, nobody sends
        def body(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=7)

        with pytest.raises(CommunicationError) as exc_info:
            run_ranks(2, body, deadlock_timeout=0.2, wall_timeout=10.0)
        msg = str(exc_info.value)
        assert "timed out" in msg
        assert "tag=7" in msg
        assert "blocked" in msg
        # the diagnostics list *both* parties of the deadlock
        assert "rank 0" in msg and "rank 1" in msg

    def test_deadlock_diagnostics_prefer_timeout_over_abort_echo(self):
        # the rank that times out aborts the world; its peers then fail
        # with a bare "world aborted" — the surfaced error must be the
        # diagnostic-rich timeout, whichever rank hit it first
        def body(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=9)

        with pytest.raises(CommunicationError, match="timed out"):
            run_ranks(3, body, deadlock_timeout=0.2, wall_timeout=10.0)

    def test_wall_timeout_names_stuck_ranks(self):
        import time as _time

        def body(comm):
            if comm.rank == 1:
                _time.sleep(5.0)  # stuck outside any communication call

        with pytest.raises(CommunicationError) as exc_info:
            run_ranks(2, body, wall_timeout=0.3)
        msg = str(exc_info.value)
        assert "wall_timeout=0.3" in msg
        assert "simmpi-rank-1" in msg

    def test_barrier_deadlock_diagnosed(self):
        def body(comm):
            if comm.rank == 0:
                comm.barrier()  # rank 1 never arrives

        with pytest.raises(CommunicationError) as exc_info:
            run_ranks(2, body, deadlock_timeout=0.2, wall_timeout=10.0)
        assert "barrier" in str(exc_info.value)

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(CommunicationError):
            run_ranks(1, lambda comm: None, wall_timeout=0.0)
        with pytest.raises(CommunicationError):
            run_ranks(1, lambda comm: None, deadlock_timeout=-1.0)

    def test_defaults_unchanged(self):
        # the old hard-coded constants are now the defaults
        import inspect

        sig = inspect.signature(run_ranks)
        assert sig.parameters["deadlock_timeout"].default == 60.0
        assert sig.parameters["wall_timeout"].default == 300.0
