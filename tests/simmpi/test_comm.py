"""Tests for point-to-point and collective communication."""

import numpy as np
import pytest

from repro.common.errors import CommunicationError
from repro.simmpi import ANY_SOURCE, CostModel, run_ranks


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        report = run_ranks(2, body)
        assert report.results[1] == {"a": 7, "b": 3.14}

    def test_numpy_payload_copied(self):
        def body(comm):
            if comm.rank == 0:
                data = np.arange(10)
                comm.send(data, dest=1)
                data[:] = -1  # mutation after send must not corrupt the message
                return None
            return comm.recv(source=0)

        report = run_ranks(2, body)
        assert np.array_equal(report.results[1], np.arange(10))

    def test_tag_matching(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        report = run_ranks(2, body)
        assert report.results[1] == ("first", "second")

    def test_any_source(self):
        def body(comm):
            if comm.rank == 0:
                got = {comm.recv(source=ANY_SOURCE, tag=5) for _ in range(comm.size - 1)}
                return got
            comm.send(comm.rank, dest=0, tag=5)
            return None

        report = run_ranks(4, body)
        assert report.results[0] == {1, 2, 3}

    def test_fifo_per_source_tag(self):
        def body(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=0)
                return None
            return [comm.recv(source=0, tag=0) for _ in range(5)]

        report = run_ranks(2, body)
        assert report.results[1] == [0, 1, 2, 3, 4]

    def test_invalid_dest(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, dest=99)

        with pytest.raises(CommunicationError):
            run_ranks(2, body)

    def test_sendrecv_exchange(self):
        def body(comm):
            other = 1 - comm.rank
            return comm.sendrecv(f"from {comm.rank}", other, other)

        report = run_ranks(2, body)
        assert report.results[0] == "from 1"
        assert report.results[1] == "from 0"


class TestCollectives:
    def test_bcast(self):
        def body(comm):
            data = {"key": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        report = run_ranks(4, body)
        assert all(r == {"key": [1, 2, 3]} for r in report.results)

    def test_gather_ordered_by_rank(self):
        def body(comm):
            return comm.gather((comm.rank + 1) ** 2, root=0)

        report = run_ranks(4, body)
        assert report.results[0] == [1, 4, 9, 16]
        assert all(r is None for r in report.results[1:])

    def test_allgather(self):
        def body(comm):
            return comm.allgather(comm.rank * 10)

        report = run_ranks(3, body)
        assert all(r == [0, 10, 20] for r in report.results)

    def test_scatter(self):
        def body(comm):
            objs = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        report = run_ranks(4, body)
        assert report.results == [0, 1, 4, 9]

    def test_scatter_wrong_length(self):
        def body(comm):
            objs = [1] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(CommunicationError):
            run_ranks(2, body)

    def test_reduce_sum(self):
        def body(comm):
            return comm.reduce(comm.rank + 1, root=0)

        report = run_ranks(4, body)
        assert report.results[0] == 10

    def test_allreduce_custom_op(self):
        def body(comm):
            return comm.allreduce(comm.rank, op=max)

        report = run_ranks(5, body)
        assert all(r == 4 for r in report.results)

    def test_barrier_aligns_clocks(self):
        def body(comm):
            comm.compute(float(comm.rank))  # rank r works r seconds
            comm.barrier()
            return comm.clock

        report = run_ranks(4, body)
        # all clocks equal after the barrier, and at least the slowest rank's work
        assert len({round(c, 9) for c in report.results}) == 1
        assert report.results[0] >= 3.0

    def test_single_rank_collectives(self):
        def body(comm):
            assert comm.bcast("x") == "x"
            assert comm.gather(1) == [1]
            assert comm.allreduce(2) == 2
            comm.barrier()
            return "ok"

        assert run_ranks(1, body).results == ["ok"]


class TestVirtualTime:
    def test_compute_advances_clock(self):
        def body(comm):
            comm.compute(2.5)
            return comm.clock

        assert run_ranks(1, body).results[0] == pytest.approx(2.5)

    def test_negative_compute_rejected(self):
        def body(comm):
            comm.compute(-1.0)

        with pytest.raises(CommunicationError):
            run_ranks(1, body)

    def test_recv_waits_for_arrival(self):
        cm = CostModel(latency=1.0, bandwidth=1e9, overhead=0.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1)
                return comm.clock
            comm.recv(source=0)
            return comm.clock

        report = run_ranks(2, body, cost_model=cm)
        assert report.results[1] >= 1.0  # receiver waited out the latency
        assert report.results[0] < 1.0   # eager sender did not

    def test_makespan_is_max_clock(self):
        def body(comm):
            comm.compute(comm.rank * 2.0)

        report = run_ranks(3, body)
        assert report.makespan == pytest.approx(4.0)


class TestStats:
    def test_message_and_byte_counters(self):
        payload = np.zeros(128, dtype=np.int8)

        def body(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        report = run_ranks(2, body)
        assert report.stats[0].messages_sent == 1
        assert report.stats[0].bytes_sent == 128
        assert report.stats[1].messages_received == 1
        assert report.total_messages == 1
        assert report.total_bytes == 128


class TestFailures:
    def test_rank_exception_propagates_with_rank(self):
        def body(comm):
            if comm.rank == 2:
                raise ValueError("boom on 2")
            # other ranks wait on a message that never comes
            if comm.rank == 0:
                comm.recv(source=2)

        with pytest.raises(CommunicationError, match="rank 2"):
            run_ranks(3, body)

    def test_world_size_validated(self):
        from repro.simmpi.comm import World

        with pytest.raises(CommunicationError):
            World(0)
