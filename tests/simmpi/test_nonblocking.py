"""Tests for non-blocking point-to-point operations."""

import pytest

from repro.simmpi import run_ranks


class TestIsend:
    def test_isend_wait_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend({"a": 7}, dest=1, tag=11)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=11)
            return req.wait()

        report = run_ranks(2, body)
        assert report.results[1] == {"a": 7}

    def test_isend_complete_immediately(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, dest=1)
                return req.done
            comm.recv(source=0)
            return None

        assert run_ranks(2, body).results[0] is True


class TestIrecv:
    def test_test_polling(self):
        def body(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=99)  # wait for the probe signal
                comm.send("payload", dest=1, tag=1)
                return None
            req = comm.irecv(source=0, tag=1)
            done_before, _ = req.test()
            comm.send("go", dest=0, tag=99)
            payload = req.wait()
            done_after, payload2 = req.test()
            return done_before, payload, done_after, payload2

        report = run_ranks(2, body)
        done_before, payload, done_after, payload2 = report.results[1]
        assert done_before is False
        assert payload == "payload"
        assert done_after is True and payload2 == "payload"

    def test_test_succeeds_when_message_waiting(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=3)
                comm.recv(source=1, tag=4)  # wait for the ack
                return None
            comm.recv(source=0, tag=3)  # ensure delivery...
            comm.send("ack", dest=0, tag=4)
            return None

        run_ranks(2, body)  # plumbing sanity

    def test_irecv_multiple_outstanding(self):
        def body(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.isend(i, dest=1, tag=i)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in (2, 0, 1)]
            return [r.wait() for r in reqs]

        report = run_ranks(2, body)
        assert report.results[1] == [2, 0, 1]

    def test_wait_idempotent(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("v", dest=1)
                return None
            req = comm.irecv(source=0)
            return req.wait(), req.wait()

        assert run_ranks(2, body).results[1] == ("v", "v")

    def test_stats_counted_once(self):
        def body(comm):
            if comm.rank == 0:
                comm.isend(b"xxxx", dest=1)
                return None
            req = comm.irecv(source=0)
            req.wait()
            req.test()
            return comm.stats.messages_received

        assert run_ranks(2, body).results[1] == 1

    def test_clock_advances_on_completion(self):
        from repro.simmpi import CostModel

        cm = CostModel(latency=1.0, bandwidth=1e9, overhead=0.0)

        def body(comm):
            if comm.rank == 0:
                comm.isend(b"x", dest=1)
                return comm.clock
            return comm.irecv(source=0).wait() and comm.clock

        report = run_ranks(2, body, cost_model=cm)
        assert report.clocks[1] >= 1.0
