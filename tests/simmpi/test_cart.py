"""Tests for the 2D Cartesian topology and halo exchange."""

import numpy as np
import pytest

from repro.common.errors import CommunicationError, ConfigurationError
from repro.simmpi import run_ranks
from repro.simmpi.cart import Cart2DHalo, CartComm, choose_dims


class TestChooseDims:
    @pytest.mark.parametrize("n,expected", [(1, (1, 1)), (4, (2, 2)), (6, (3, 2)),
                                            (9, (3, 3)), (12, (4, 3)), (7, (7, 1))])
    def test_most_square_factorisation(self, n, expected):
        assert choose_dims(n) == expected

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            choose_dims(0)


class TestCartComm:
    def test_coords_roundtrip(self):
        def body(comm):
            cart = CartComm(comm, (2, 3))
            row, col = cart.coords()
            assert cart.rank_of(row, col) == comm.rank
            return (row, col)

        report = run_ranks(6, body)
        assert report.results == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_neighbors_non_periodic(self):
        def body(comm):
            cart = CartComm(comm, (2, 2))
            return (cart.north, cart.south, cart.west, cart.east)

        report = run_ranks(4, body)
        assert report.results[0] == (None, 2, None, 1)   # top-left
        assert report.results[3] == (1, None, 2, None)   # bottom-right

    def test_dims_must_tile(self):
        def body(comm):
            CartComm(comm, (2, 2))

        with pytest.raises(CommunicationError):
            run_ranks(3, body)

    def test_block_bounds_cover_domain(self):
        def body(comm):
            cart = CartComm(comm, (2, 2))
            return cart.block_bounds(10, 7)

        report = run_ranks(4, body)
        cells = set()
        for (y0, y1), (x0, x1) in report.results:
            for y in range(y0, y1):
                for x in range(x0, x1):
                    assert (y, x) not in cells
                    cells.add((y, x))
        assert len(cells) == 70


class TestCart2DHalo:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_halos_and_corners_filled(self, depth):
        """4 ranks in a 2x2 grid, each block tagged with rank+1: after one
        exchange, every halo band (and corner) holds the right tag."""

        def body(comm):
            k = depth
            cart = CartComm(comm, (2, 2))
            local = np.zeros((4 + 2 * k, 4 + 2 * k), dtype=np.int64)
            local[k:-k, k:-k] = comm.rank + 1
            Cart2DHalo(cart, depth=k).exchange(local)
            return local

        results = run_ranks(4, body).results
        k = depth
        # rank 0 (top-left): east halo from rank 1, south halo from rank 2,
        # south-east corner from rank 3
        r0 = results[0]
        assert (r0[k:-k, -k:] == 2).all()
        assert (r0[-k:, k:-k] == 3).all()
        assert (r0[-k:, -k:] == 4).all()
        # rank 3 (bottom-right): west from 3's west = rank 2+1=3, north from rank 1+1=2,
        # north-west corner from rank 0+1=1
        r3 = results[3]
        assert (r3[k:-k, :k] == 3).all()
        assert (r3[:k, k:-k] == 2).all()
        assert (r3[:k, :k] == 1).all()

    def test_outer_halos_untouched(self):
        def body(comm):
            cart = CartComm(comm, (2, 2))
            local = np.full((6, 6), -7, dtype=np.int64)
            local[1:-1, 1:-1] = comm.rank
            Cart2DHalo(cart, depth=1).exchange(local)
            return local

        r0 = run_ranks(4, body).results[0]
        # rank 0's north and west halos have no neighbour: stay -7
        assert (r0[0, 1:-1] == -7).all()
        assert (r0[1:-1, 0] == -7).all()

    def test_single_rank_noop(self):
        def body(comm):
            cart = CartComm(comm, (1, 1))
            local = np.full((5, 5), 3, dtype=np.int64)
            ex = Cart2DHalo(cart)
            ex.exchange(local)
            return ex.exchanges

        assert run_ranks(1, body).results == [1]

    def test_too_small_block_rejected(self):
        def body(comm):
            cart = CartComm(comm, (1, 1))
            Cart2DHalo(cart, depth=2).exchange(np.zeros((5, 5)))

        with pytest.raises(CommunicationError):
            run_ranks(1, body)

    def test_depth_validated(self):
        def body(comm):
            Cart2DHalo(CartComm(comm, (1, 1)), depth=0)

        with pytest.raises(CommunicationError):
            run_ranks(1, body)
