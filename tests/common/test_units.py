"""Tests for repro.common.units."""

import pytest

from repro.common import units


class TestEnergyConversions:
    def test_kwh_joules_roundtrip(self):
        assert units.joules_to_kwh(units.kwh_to_joules(2.5)) == pytest.approx(2.5)

    def test_one_kwh_is_3_6_megajoules(self):
        assert units.kwh_to_joules(1.0) == pytest.approx(3.6e6)

    def test_watts_to_kw(self):
        assert units.watts_to_kw(1500.0) == pytest.approx(1.5)


class TestByteConversions:
    def test_gb_roundtrip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(7.5)) == pytest.approx(7.5)

    def test_mb(self):
        assert units.mb_to_bytes(16) == pytest.approx(16e6)

    def test_decimal_not_binary(self):
        assert units.GB == 1e9  # the paper's 7.5GB is decimal


class TestCarbon:
    def test_known_value(self):
        # 1 kWh at 291 g/kWh = 291 g
        assert units.grams_co2e(units.kwh_to_joules(1.0), 291.0) == pytest.approx(291.0)

    def test_zero_energy(self):
        assert units.grams_co2e(0.0, 291.0) == 0.0

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            units.grams_co2e(1.0, -1.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(7.5e9, "7.50 GB"), (16e6, "16.00 MB"), (2e3, "2.00 KB"), (12, "12 B"), (2e12, "2.00 TB")],
    )
    def test_format_bytes(self, nbytes, expected):
        assert units.format_bytes(nbytes) == expected

    def test_format_duration_seconds(self):
        assert units.format_duration(12.345) == "12.35s"

    def test_format_duration_minutes(self):
        assert units.format_duration(185.0) == "3m 05.0s"

    def test_format_duration_hours(self):
        assert units.format_duration(3 * 3600 + 90) == "3h 01.5m"

    def test_format_duration_negative(self):
        assert units.format_duration(-5.0).startswith("-")

    def test_format_power(self):
        assert units.format_power(12500.0) == "12.50 kW"
        assert units.format_power(95.0) == "95.0 W"

    def test_format_co2(self):
        assert units.format_co2(1250.0) == "1.250 kgCO2e"
        assert units.format_co2(37.9) == "37.90 gCO2e"
