"""Tests for the fault-tolerance primitives."""

import time

import pytest

from repro.common.errors import ConfigurationError
from repro.common.resilience import (
    Deadline,
    DegradationLog,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_defaults_valid(self):
        p = RetryPolicy()
        assert p.max_attempts == 3

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"jitter": -0.5},
            {"backoff": 0.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kw)

    def test_exponential_backoff_capped(self):
        p = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.3)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.3)  # capped
        assert p.delay(10) == pytest.approx(0.3)

    def test_jitter_deterministic_per_seed(self):
        a = RetryPolicy(base_delay=0.0, jitter=1.0, seed=7)
        b = RetryPolicy(base_delay=0.0, jitter=1.0, seed=7)
        c = RetryPolicy(base_delay=0.0, jitter=1.0, seed=8)
        assert a.delay(1) == b.delay(1)
        assert a.delay(2) == b.delay(2)
        assert a.delay(1) != c.delay(1)
        assert 0.0 <= a.delay(1) <= 1.0

    def test_jitter_varies_per_attempt(self):
        p = RetryPolicy(base_delay=0.0, jitter=1.0, seed=3)
        assert p.delay(1) != p.delay(2)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)

    def test_retries_left(self):
        p = RetryPolicy(max_attempts=3)
        assert p.retries_left(1) == 2
        assert p.retries_left(3) == 0
        assert p.retries_left(5) == 0

    def test_sleep_returns_duration(self):
        p = RetryPolicy(base_delay=0.0, jitter=0.0)
        assert p.sleep(1) == 0.0


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert d.remaining() is None
        assert not d.expired

    def test_bounded_expires(self):
        d = Deadline(0.01)
        assert d.remaining() <= 0.01
        time.sleep(0.02)
        assert d.expired
        assert d.remaining() <= 0.0

    def test_elapsed_monotonic(self):
        d = Deadline(10.0)
        e1 = d.elapsed()
        e2 = d.elapsed()
        assert 0.0 <= e1 <= e2

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)
        with pytest.raises(ConfigurationError):
            Deadline(-1.0)


class TestFaultInjector:
    def test_raise_fires_bounded(self):
        inj = FaultInjector(raise_on_tasks={3}, max_fires=2)
        with pytest.raises(InjectedFault):
            inj.check(3)
        with pytest.raises(InjectedFault):
            inj.check(3)
        inj.check(3)  # exhausted: no-op
        assert inj.fires == 2

    def test_untargeted_tasks_unaffected(self):
        inj = FaultInjector(raise_on_tasks={1}, max_fires=5)
        inj.check(0)
        inj.check(2)
        assert inj.fires == 0

    def test_kill_and_raise_sets_disjoint(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(kill_on_tasks={1}, raise_on_tasks={1})

    def test_negative_max_fires_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(max_fires=-1)

    def test_wrap_runs_check_then_fn(self):
        inj = FaultInjector(raise_on_tasks={0}, max_fires=1)
        wrapped = inj.wrap(0, lambda: "ok")
        with pytest.raises(InjectedFault):
            wrapped()
        assert wrapped() == "ok"  # injector exhausted after one fire


class TestDegradationLog:
    def test_record_and_query(self):
        log = DegradationLog()
        log.record("ProcessBackend", "pool-rebuild", "worker died", attempt=1, tasks=[3, 4])
        log.record("ProcessBackend", "thread-fallback", "retries exhausted", attempt=3)
        assert len(log) == 2
        rebuilds = log.by_action("pool-rebuild")
        assert len(rebuilds) == 1
        assert rebuilds[0].detail == {"tasks": [3, 4]}
        assert [e.action for e in log] == ["pool-rebuild", "thread-fallback"]

    def test_summary_lines(self):
        log = DegradationLog()
        assert log.summary() == "no degradation events"
        log.record("X", "retry", "boom", attempt=2)
        assert "retry" in log.summary()
        assert "attempt 2" in log.summary()


# -- spawn-context regression (module-level children: spawn must pickle them) --


def _spawn_child_check(injector, task_index, queue):
    try:
        injector.check(task_index)
        queue.put("no-fault")
    except InjectedFault:
        queue.put("injected")


_POOL_INJECTOR = None


def _spawn_pool_init(injector):
    global _POOL_INJECTOR
    _POOL_INJECTOR = injector


def _spawn_pool_task(index):
    try:
        _POOL_INJECTOR.check(index)
        return "ok"
    except InjectedFault:
        return "injected"


class TestFaultInjectorSpawnContext:
    """The shared fire-counter must survive every start method we use.

    Regression: a fork-context ``multiprocessing.Value`` handed to a
    spawn worker raises "A SemLock created in a fork context is being
    shared with a process in a spawn context"; the injector now builds
    its counter in the spawn context, which all modes accept.
    """

    def test_spawn_process_args(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        inj = FaultInjector(raise_on_tasks={0}, max_fires=1)
        queue = ctx.Queue()
        proc = ctx.Process(target=_spawn_child_check, args=(inj, 0, queue))
        proc.start()
        assert queue.get(timeout=30) == "injected"
        proc.join(timeout=30)
        assert proc.exitcode == 0
        assert inj.fires == 1  # counter shared back to the parent

    def test_spawn_pool_initargs(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        inj = FaultInjector(raise_on_tasks={1}, max_fires=1)
        with ctx.Pool(1, initializer=_spawn_pool_init, initargs=(inj,)) as pool:
            results = pool.map(_spawn_pool_task, [0, 1, 2])
        assert results == ["ok", "injected", "ok"]
        assert inj.fires == 1

    def test_fork_inheritance_still_works(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        inj = FaultInjector(raise_on_tasks={0}, max_fires=1)
        queue = ctx.Queue()
        proc = ctx.Process(target=_spawn_child_check, args=(inj, 0, queue))
        proc.start()
        assert queue.get(timeout=30) == "injected"
        proc.join(timeout=30)
        assert inj.fires == 1

    def test_plain_pickle_still_refuses(self):
        import pickle

        inj = FaultInjector(raise_on_tasks={0})
        with pytest.raises(RuntimeError, match="inheritance"):
            pickle.dumps(inj)
