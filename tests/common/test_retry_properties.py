"""Property tests for RetryPolicy (hypothesis): jitter, bounds, exhaustion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.resilience import RetryPolicy
from repro.common.supervisor import Supervisor
from tests.common.test_job import CountJob

SETTINGS = dict(max_examples=30, deadline=None)

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    backoff=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


class TestJitterReproducibility:
    @settings(**SETTINGS)
    @given(policy=policies)
    def test_schedule_reproducible_per_seed(self, policy):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            backoff=policy.backoff,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        schedule = [policy.delay(a) for a in range(1, policy.max_attempts + 1)]
        assert schedule == [twin.delay(a) for a in range(1, policy.max_attempts + 1)]
        # and stable across repeated queries of the same policy object
        assert schedule == [policy.delay(a) for a in range(1, policy.max_attempts + 1)]

    @settings(**SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_jitter_is_seed_derived(self, seed):
        a = RetryPolicy(base_delay=0.0, jitter=1.0, seed=seed)
        b = RetryPolicy(base_delay=0.0, jitter=1.0, seed=seed)
        assert [a.delay(k) for k in (1, 2, 3)] == [b.delay(k) for k in (1, 2, 3)]


class TestMonotoneBounded:
    @settings(**SETTINGS)
    @given(policy=policies)
    def test_delay_bounded_by_cap_plus_jitter(self, policy):
        for attempt in range(1, policy.max_attempts + 1):
            d = policy.delay(attempt)
            assert 0.0 <= d <= min(
                policy.base_delay * policy.backoff ** (attempt - 1), policy.max_delay
            ) + policy.jitter

    @settings(**SETTINGS)
    @given(policy=policies)
    def test_base_schedule_monotone_nondecreasing(self, policy):
        # without jitter the backoff curve never shrinks between attempts
        bare = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            backoff=policy.backoff,
            max_delay=policy.max_delay,
            jitter=0.0,
            seed=policy.seed,
        )
        schedule = [bare.delay(a) for a in range(1, bare.max_attempts + 1)]
        assert all(x <= y for x, y in zip(schedule, schedule[1:]))


class TestExhaustion:
    @settings(**SETTINGS)
    @given(max_attempts=st.integers(min_value=1, max_value=6))
    def test_retries_left_counts_down_to_zero(self, max_attempts):
        policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.0)
        left = [policy.retries_left(a) for a in range(1, max_attempts + 2)]
        assert left == list(range(max_attempts - 1, -1, -1)) + [0]

    @settings(**SETTINGS)
    @given(max_attempts=st.integers(min_value=1, max_value=5))
    def test_supervisor_exhausts_in_exactly_max_attempts(self, max_attempts):
        attempts = []

        class AlwaysFails(CountJob):
            def step(self):
                attempts.append(1)
                raise SimulationError("permanent")

        sup = Supervisor(
            AlwaysFails(3),
            retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.0),
        )
        with pytest.raises(SimulationError):
            sup.run()
        assert len(attempts) == max_attempts
        assert sup.retries_used == max_attempts - 1
