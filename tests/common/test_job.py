"""Tests for the Job protocol and its OneShot base."""

import pytest

from repro.common.errors import CheckpointError, ConfigurationError
from repro.common.job import Job, JobProgress, OneShotJob


class CountJob(Job):
    """Counts to n; checkpointable; optionally fails on chosen steps."""

    name = "count"
    substrate = "test"
    supports_checkpoint = True

    def __init__(self, n, fail_on=()):
        self.n = n
        self.i = 0
        self.fail_on = set(fail_on)
        self.closed = 0

    def step(self):
        if self.i + 1 in self.fail_on:
            self.fail_on.discard(self.i + 1)
            raise ConfigurationError(f"boom at {self.i + 1}")
        if self.i >= self.n:
            return False
        self.i += 1
        return self.i < self.n

    def result(self):
        return self.i

    def progress(self):
        return JobProgress(steps_done=self.i, done=self.i >= self.n, steps_total=self.n)

    def checkpoint(self):
        return {"i": self.i}

    def restore(self, state):
        self.i = state["i"]

    def close(self):
        self.closed += 1


class TestJobProtocol:
    def test_run_drives_to_completion(self):
        assert CountJob(5).run() == 5

    def test_run_max_steps_guard(self):
        with pytest.raises(ConfigurationError, match="max_steps"):
            CountJob(100).run(max_steps=3)

    def test_step_false_is_sticky(self):
        job = CountJob(2)
        job.run()
        assert job.step() is False
        assert job.step() is False

    def test_context_manager_closes(self):
        with CountJob(3) as job:
            job.run()
        assert job.closed == 1

    def test_checkpoint_restore_roundtrip(self):
        job = CountJob(10)
        for _ in range(4):
            job.step()
        snap = job.checkpoint()
        fresh = CountJob(10)
        fresh.restore(snap)
        assert fresh.run() == 10
        assert fresh.i == job.run()

    def test_default_checkpoint_refuses(self):
        class Bare(Job):
            def step(self):
                return False

            def result(self):
                return None

            def progress(self):
                return JobProgress(steps_done=0, done=True)

        with pytest.raises(ConfigurationError):
            Bare().checkpoint()
        with pytest.raises(ConfigurationError):
            Bare().restore({})


class TestJobProgress:
    def test_fraction(self):
        assert JobProgress(steps_done=3, done=False, steps_total=6).fraction == 0.5

    def test_unknown_total(self):
        assert JobProgress(steps_done=3, done=False).fraction is None
        assert JobProgress(steps_done=3, done=True).fraction == 1.0

    def test_fraction_clamped(self):
        assert JobProgress(steps_done=9, done=False, steps_total=6).fraction == 1.0


class Doubler(OneShotJob):
    def __init__(self, x):
        super().__init__()
        self.x = x
        self.computed = 0

    def compute(self):
        self.computed += 1
        return self.x * 2


class TestOneShotJob:
    def test_single_step_completes(self):
        job = Doubler(21)
        assert job.step() is False
        assert job.result() == 42
        assert job.progress().done

    def test_compute_runs_once(self):
        job = Doubler(1)
        job.run()
        job.step()
        assert job.computed == 1

    def test_completion_checkpoint_skips_recompute(self):
        job = Doubler(5)
        job.run()
        snap = job.checkpoint()
        fresh = Doubler(5)
        fresh.restore(snap)
        assert fresh.run() == 10
        assert fresh.computed == 0  # restored at the completion boundary

    def test_unfinished_checkpoint_reruns(self):
        snap = Doubler(5).checkpoint()
        fresh = Doubler(5)
        fresh.restore(snap)
        assert fresh.run() == 10
        assert fresh.computed == 1

    def test_foreign_snapshot_rejected(self):
        with pytest.raises(CheckpointError):
            Doubler(1).restore({"kind": "sandpile"})
