"""Tests for repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import DEFAULT_SEED, choice_weighted, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(123).integers(0, 1000, 10)
        b = make_rng(123).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9, 8)
        b = make_rng(2).integers(0, 10**9, 8)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_default_seed_used(self):
        a = make_rng().integers(0, 10**9, 4)
        b = make_rng(DEFAULT_SEED).integers(0, 10**9, 4)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(9, 2)
        assert not np.array_equal(a.integers(0, 10**9, 16), b.integers(0, 10**9, 16))

    def test_reproducible(self):
        a1, b1 = spawn_rngs(9, 2)
        a2, b2 = spawn_rngs(9, 2)
        assert np.array_equal(a1.integers(0, 100, 8), a2.integers(0, 100, 8))
        assert np.array_equal(b1.integers(0, 100, 8), b2.integers(0, 100, 8))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "worker", 3) == derive_seed(1, "worker", 3)

    def test_context_matters(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 1) != derive_seed(1, 2)

    def test_returns_int(self):
        assert isinstance(derive_seed(5, "x"), int)


class TestChoiceWeighted:
    def test_degenerate_weight_always_wins(self, rng):
        assert all(choice_weighted(rng, ["a", "b"], [1.0, 0.0]) == "a" for _ in range(20))

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a"], [1.0, 2.0])

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            choice_weighted(rng, [], [])

    def test_rejects_zero_total(self, rng):
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a"], [0.0])

    def test_roughly_proportional(self):
        g = np.random.default_rng(1)
        picks = [choice_weighted(g, ["x", "y"], [3.0, 1.0]) for _ in range(2000)]
        frac = picks.count("x") / len(picks)
        assert 0.68 < frac < 0.82
