"""Tests for repro.common.colors."""

import numpy as np
import pytest

from repro.common.colors import (
    SANDPILE_PALETTE,
    ascii_render,
    diverging_rgb,
    sandpile_to_rgb,
    stripes_to_rgb,
    write_ppm,
)


class TestSandpilePalette:
    def test_fig1_colors(self):
        # black 0, green 1, blue 2, red 3 (paper's caption)
        grid = np.array([[0, 1], [2, 3]])
        img = sandpile_to_rgb(grid)
        assert tuple(img[0, 0]) == SANDPILE_PALETTE[0] == (0, 0, 0)
        assert img[0, 1][1] > 150 and img[0, 1][0] == 0          # green
        assert img[1, 0][2] > 150                                 # blue
        assert img[1, 1][0] > 150 and img[1, 1][2] < 100          # red

    def test_unstable_cells_bright(self):
        img = sandpile_to_rgb(np.array([[25000]]))
        assert img[0, 0].max() >= 180

    def test_shape(self):
        img = sandpile_to_rgb(np.zeros((4, 6), dtype=int))
        assert img.shape == (4, 6, 3)
        assert img.dtype == np.uint8

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            sandpile_to_rgb(np.zeros(5))


class TestDiverging:
    def test_endpoints_blue_and_red(self):
        r_low, g_low, b_low = diverging_rgb(0.0, 0.0, 1.0)
        r_hi, g_hi, b_hi = diverging_rgb(1.0, 0.0, 1.0)
        assert b_low > r_low  # cold end is blue
        assert r_hi > b_hi    # warm end is red

    def test_midpoint_near_white(self):
        r, g, b = diverging_rgb(0.5, 0.0, 1.0)
        assert min(r, g, b) > 200

    def test_clamps_out_of_range(self):
        assert diverging_rgb(-99.0, 0.0, 1.0) == diverging_rgb(0.0, 0.0, 1.0)
        assert diverging_rgb(99.0, 0.0, 1.0) == diverging_rgb(1.0, 0.0, 1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            diverging_rgb(0.5, 1.0, 1.0)

    def test_cold_half_blue_warm_half_red(self):
        # the ends darken (RdBu), so dominance is not monotone — but the
        # *sign* of red-minus-blue must match the half of the ramp
        for t in np.linspace(0.0, 0.42, 6):
            c = diverging_rgb(t, 0.0, 1.0)
            assert c[2] > c[0], f"t={t}: expected blue-dominant, got {c}"
        for t in np.linspace(0.58, 1.0, 6):
            c = diverging_rgb(t, 0.0, 1.0)
            assert c[0] > c[2], f"t={t}: expected red-dominant, got {c}"

    def test_returns_ints(self):
        assert all(isinstance(c, int) for c in diverging_rgb(0.3, 0.0, 1.0))


class TestStripes:
    def test_geometry(self):
        img = stripes_to_rgb([1.0, 2.0, 3.0], 0.0, 4.0, height=10, stripe_width=5)
        assert img.shape == (10, 15, 3)

    def test_nan_is_grey(self):
        img = stripes_to_rgb([np.nan], 0.0, 1.0, height=2, stripe_width=2)
        assert tuple(img[0, 0]) == (128, 128, 128)

    def test_cold_vs_warm(self):
        img = stripes_to_rgb([0.0, 1.0], 0.0, 1.0, height=1, stripe_width=1)
        assert img[0, 0, 2] > img[0, 0, 0]  # first stripe blue
        assert img[0, 1, 0] > img[0, 1, 2]  # second stripe red

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stripes_to_rgb([], 0.0, 1.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            stripes_to_rgb([1.0], 0.0, 1.0, height=0)


class TestPpm:
    def test_roundtrip_header_and_bytes(self, tmp_path):
        img = np.arange(24, dtype=np.uint8).reshape(2, 4, 3)
        path = tmp_path / "img.ppm"
        write_ppm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n4 2\n255\n")
        assert raw.endswith(img.tobytes())

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 3), dtype=float))

    def test_rejects_wrong_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2), dtype=np.uint8))


class TestAsciiRender:
    def test_characters(self):
        out = ascii_render(np.array([[0, 1], [3, 7]]))
        lines = out.splitlines()
        assert lines[0] == " ."
        assert lines[1] == "#@"

    def test_downsamples_large(self):
        out = ascii_render(np.zeros((256, 256), dtype=int), max_size=64)
        assert len(out.splitlines()) <= 64

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_render(np.zeros(4))
