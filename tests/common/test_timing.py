"""Tests for repro.common.timing."""

import pytest

from repro.common.timing import Stopwatch, time_call


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed >= 0.0
        assert len(sw.intervals) == 1

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert sw.intervals == []

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        assert sw.elapsed >= 0.0
        sw.stop()

    def test_multiple_intervals_sum(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                pass
        assert len(sw.intervals) == 3
        assert sw.elapsed == pytest.approx(sum(sw.intervals))


class TestTimeCall:
    def test_runs_requested_times(self):
        calls = []
        time_call(lambda: calls.append(1), repeat=4)
        assert len(calls) == 4

    def test_best_le_mean_le_worst(self):
        r = time_call(sum, range(1000), repeat=3)
        assert r.best <= r.mean <= r.worst

    def test_repeat_validated(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)

    def test_passes_kwargs(self):
        seen = {}
        time_call(lambda **kw: seen.update(kw), repeat=1, x=3)
        assert seen == {"x": 3}
