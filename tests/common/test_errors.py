"""Tests for the exception hierarchy."""

import pytest

from repro.common import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.CommunicationError,
            errors.SchedulingError,
            errors.DataValidationError,
            errors.KernelError,
        ],
    )
    def test_all_derive_from_root(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        # so `except ValueError` in generic user code still works
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(errors.SimulationError, RuntimeError)

    def test_catchable_as_root(self):
        with pytest.raises(errors.ReproError):
            raise errors.KernelError("boom")
