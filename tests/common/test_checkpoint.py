"""Tests for the durable checkpoint store: atomicity, versioning, corruption."""

import pickle
from pathlib import Path

import pytest

from repro.common.checkpoint import CHECKPOINT_FORMAT, CheckpointStore
from repro.common.errors import CheckpointError, ConfigurationError


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt", keep=3)


class TestSaveLoad:
    def test_roundtrip(self, store):
        path = store.save({"grid": [1, 2, 3]}, step=7, meta={"job": "t"})
        snap = store.load(path)
        assert snap.step == 7
        assert snap.state == {"grid": [1, 2, 3]}
        assert snap.meta == {"job": "t"}

    def test_load_latest_newest_wins(self, store):
        store.save({"v": 1}, step=1)
        store.save({"v": 2}, step=2)
        snap = store.load_latest()
        assert snap.step == 2 and snap.state == {"v": 2}

    def test_empty_store(self, store):
        assert store.load_latest() is None
        assert len(store) == 0

    def test_no_stray_tmp_files(self, store):
        store.save({"v": 1}, step=1)
        names = [p.name for p in store.directory.iterdir()]
        assert all(not n.endswith(".tmp") for n in names)

    def test_prune_keeps_newest_n(self, store):
        for s in range(6):
            store.save({"v": s}, step=s)
        steps = [store.load(p).step for p in store.snapshot_paths()]
        assert steps == [3, 4, 5]

    def test_invalid_config_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path, keep=0)
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path, prefix="a/b")
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path).save({}, step=-1)

    def test_prefixes_are_isolated(self, tmp_path):
        a = CheckpointStore(tmp_path, prefix="a")
        b = CheckpointStore(tmp_path, prefix="b")
        a.save({"who": "a"}, step=1)
        b.save({"who": "b"}, step=9)
        assert a.load_latest().state == {"who": "a"}
        assert b.load_latest().state == {"who": "b"}


class TestCorruption:
    def test_bitflip_detected(self, store):
        path = store.save({"v": 1}, step=1)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum|unreadable|envelope"):
            store.load(path)

    def test_truncation_detected(self, store):
        path = store.save({"v": 1}, step=1)
        path.write_bytes(path.read_bytes()[: 20])
        with pytest.raises(CheckpointError):
            store.load(path)

    def test_missing_file(self, store):
        with pytest.raises(CheckpointError, match="no such"):
            store.load(store.directory / "ckpt-00000099.ckpt")

    def test_load_latest_falls_back_past_corrupt(self, store):
        store.save({"v": 1}, step=1)
        newest = store.save({"v": 2}, step=2)
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        snap = store.load_latest()
        assert snap.step == 1 and snap.state == {"v": 1}
        assert len(store.rejected) == 1
        assert store.rejected[0][0] == newest

    def test_all_corrupt_returns_none(self, store):
        path = store.save({"v": 1}, step=1)
        path.write_bytes(b"garbage")
        assert store.load_latest() is None
        assert len(store.rejected) == 1


class TestFormatVersion:
    def test_unknown_format_rejected(self, store):
        path = store.save({"v": 1}, step=1)
        with open(path, "rb") as fh:
            env = pickle.load(fh)
        env["format"] = CHECKPOINT_FORMAT + 1
        with open(path, "wb") as fh:
            pickle.dump(env, fh)
        with pytest.raises(CheckpointError, match="format"):
            store.load(path)

    def test_unknown_format_falls_back(self, store):
        store.save({"v": 1}, step=1)
        newest = store.save({"v": 2}, step=2)
        with open(newest, "rb") as fh:
            env = pickle.load(fh)
        env["format"] = 99
        with open(newest, "wb") as fh:
            pickle.dump(env, fh)
        assert store.load_latest().state == {"v": 1}


class TestAtomicity:
    def test_overwrite_same_step_is_atomic(self, store):
        store.save({"v": "old"}, step=5)
        store.save({"v": "new"}, step=5)
        assert store.load_latest().state == {"v": "new"}
        assert len(store) == 1

    def test_failed_pickle_leaves_no_snapshot(self, store):
        store.save({"v": 1}, step=1)
        with pytest.raises(Exception):
            store.save({"bad": lambda: 0}, step=2)  # lambdas do not pickle
        # the failed save must not shadow or destroy the good snapshot
        assert store.load_latest().step == 1
        assert all(not p.name.endswith(".tmp") for p in store.directory.iterdir())


class TestConcurrency:
    def test_concurrent_same_step_writers(self, tmp_path):
        # the serve layer runs several supervisors in one process; two
        # stores over one directory saving the same step must interleave
        # without errors or torn files
        import threading

        stores = [CheckpointStore(tmp_path / "shared") for _ in range(4)]
        errors = []

        def writer(store, tag):
            try:
                for i in range(10):
                    store.save({"writer": tag, "i": i}, step=7)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(s, t)) for t, s in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        snap = CheckpointStore(tmp_path / "shared").load_latest()
        assert snap.step == 7 and snap.state["i"] == 9

    def test_load_latest_skips_vanished_file_silently(self, store, monkeypatch):
        # a snapshot pruned by a concurrent writer between listing and
        # open is not corruption: fall back without a rejection entry
        store.save({"v": 1}, step=1)
        doomed = store.save({"v": 2}, step=2)
        real_load = CheckpointStore.load

        def racing_load(self, path):
            if Path(path) == doomed and doomed.exists():
                doomed.unlink()  # pruned between iterdir() and open()
                raise CheckpointError(f"no such snapshot: {path}")
            return real_load(self, path)

        monkeypatch.setattr(CheckpointStore, "load", racing_load)
        snap = store.load_latest()
        assert snap.state == {"v": 1}
        assert store.rejected == []
