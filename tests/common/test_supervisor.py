"""Tests for the job supervisor: retries, breaker, heartbeat, checkpoints."""

import os
import signal
import threading
import time

import pytest

from repro.common.checkpoint import CheckpointStore
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.resilience import Deadline, DegradationLog, RetryPolicy
from repro.common.supervisor import (
    CircuitBreaker,
    CircuitOpenError,
    Heartbeat,
    JobInterrupted,
    Supervisor,
)
from tests.common.test_job import CountJob

FAST = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
        for _ in range(2):
            br.record_failure()
            assert br.allow()
        br.record_failure()
        assert not br.allow()
        assert br.state == CircuitBreaker.OPEN

    def test_success_resets_count(self):
        br = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.allow()

    def test_half_open_probe_cycle(self):
        now = [0.0]
        br = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=lambda: now[0])
        br.record_failure()
        assert not br.allow()
        now[0] = 11.0
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow()
        br.record_failure()  # failed probe: straight back to OPEN
        assert not br.allow()
        now[0] = 22.0
        assert br.allow()
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=-1)


class TestHeartbeat:
    def test_beats_accumulate(self):
        hb = Heartbeat()
        assert hb.age() is None
        assert not hb.healthy(1.0)
        hb.beat()
        assert hb.count == 1
        assert hb.healthy(10.0)

    def test_staleness(self):
        now = [0.0]
        hb = Heartbeat(clock=lambda: now[0])
        hb.beat()
        now[0] = 5.0
        assert hb.age() == 5.0
        assert not hb.healthy(1.0)


class TestSupervisorRun:
    def test_plain_run(self):
        sup = Supervisor(CountJob(5), retry=FAST)
        assert sup.run() == 5
        assert sup.steps_done == 5
        assert sup.heartbeat.count == 5

    def test_step_retry_absorbs_transient_faults(self):
        sup = Supervisor(CountJob(5, fail_on=[2, 4]), retry=FAST)
        assert sup.run() == 5
        assert sup.retries_used == 2
        actions = [e.action for e in sup.degradation]
        assert actions.count("step-retry") == 2

    def test_retry_exhaustion_raises_original(self):
        class AlwaysFails(CountJob):
            def step(self):
                raise SimulationError("permanent")

        with pytest.raises(SimulationError):
            Supervisor(AlwaysFails(5), retry=FAST).run()

    def test_non_retryable_jobs_fail_fast(self):
        job = CountJob(5, fail_on=[1])
        job.retryable_steps = False
        sup = Supervisor(job, retry=FAST)
        with pytest.raises(ConfigurationError, match="boom"):
            sup.run()
        assert sup.retries_used == 0

    def test_breaker_opens_on_consecutive_failures(self):
        class AlwaysFails(CountJob):
            def step(self):
                raise SimulationError("permanent")

        sup = Supervisor(
            AlwaysFails(5),
            retry=RetryPolicy(max_attempts=10, base_delay=0.0),
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=60.0),
        )
        with pytest.raises(CircuitOpenError):
            sup.run()

    def test_metrics_and_instants_emitted(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import Tracer

        reg = MetricsRegistry()
        tr = Tracer(process="t")
        sup = Supervisor(CountJob(4, fail_on=[2]), retry=FAST, metrics=reg, tracer=tr)
        sup.run()
        prom = reg.to_prometheus()
        assert "supervisor_retries_total" in prom
        assert "supervisor_steps_total" in prom
        assert "supervisor_degradations_total" in prom
        names = [i.name for i in tr.instants() if i.cat == "degradation"]
        assert "Supervisor:step-retry" in names

    def test_store_requires_checkpoint_support(self, tmp_path):
        class NoCkpt(CountJob):
            supports_checkpoint = False

        with pytest.raises(ConfigurationError):
            Supervisor(NoCkpt(3), store=CheckpointStore(tmp_path))

    def test_interval_requires_store(self):
        with pytest.raises(ConfigurationError):
            Supervisor(CountJob(3), checkpoint_every_steps=1)


class TestCheckpointResume:
    def test_interval_checkpoints_written(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        sup = Supervisor(CountJob(9), retry=FAST, store=store, checkpoint_every_steps=3)
        sup.run()
        assert sup.checkpoints_written == 3
        assert store.load_latest().step == 9

    def test_seconds_interval_checkpoints(self, tmp_path):
        class SlowJob(CountJob):
            def step(self):
                time.sleep(0.02)
                return super().step()

        store = CheckpointStore(tmp_path, keep=50)
        sup = Supervisor(SlowJob(6), retry=FAST, store=store, checkpoint_every_seconds=0.01)
        sup.run()
        assert sup.checkpoints_written >= 1

    def test_stop_after_steps_then_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        sup = Supervisor(CountJob(10), retry=FAST, store=store, checkpoint_every_steps=2)
        with pytest.raises(JobInterrupted) as exc_info:
            sup.run(stop_after_steps=5)
        assert exc_info.value.steps_done == 5
        assert exc_info.value.snapshot_path is not None
        sup2 = Supervisor(CountJob(10), retry=FAST, store=store)
        assert sup2.resume() == 10
        assert sup2.steps_done == 10

    def test_deadline_interrupts_gracefully(self, tmp_path):
        store = CheckpointStore(tmp_path)
        sup = Supervisor(CountJob(10), retry=FAST, store=store)
        with pytest.raises(JobInterrupted, match="deadline-expired"):
            sup.run(deadline=Deadline(1e-9))
        sup2 = Supervisor(CountJob(10), retry=FAST, store=store)
        assert sup2.resume() == 10

    def test_request_stop_from_another_thread(self, tmp_path):
        class SlowJob(CountJob):
            def step(self):
                time.sleep(0.01)
                return super().step()

        store = CheckpointStore(tmp_path)
        sup = Supervisor(SlowJob(1000), retry=FAST, store=store)
        threading.Timer(0.05, sup.request_stop).start()
        with pytest.raises(JobInterrupted, match="stop-requested"):
            sup.run()
        assert 0 < sup.steps_done < 1000
        sup2 = Supervisor(SlowJob(1000), retry=FAST, store=store)
        assert sup2.resume() == 1000

    def test_cross_thread_cancel_checkpoints_without_orphans(self, tmp_path):
        # the serve layer cancels running jobs by calling request_stop()
        # from the event-loop thread while the supervisor runs on an
        # executor thread: the interrupt must carry the final snapshot
        # and leave nothing but the single "interrupted" entry behind
        class SlowJob(CountJob):
            def step(self):
                time.sleep(0.005)
                return super().step()

        store = CheckpointStore(tmp_path)
        log = DegradationLog()
        sup = Supervisor(SlowJob(500), retry=FAST, store=store, degradation=log)
        caught = []

        def drive():
            try:
                sup.run()
            except JobInterrupted as exc:
                caught.append(exc)

        worker = threading.Thread(target=drive)
        worker.start()
        while sup.steps_done < 3:
            time.sleep(0.001)
        sup.request_stop()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert len(caught) == 1
        intr = caught[0]
        assert intr.snapshot_path is not None
        assert intr.snapshot_path.exists()
        assert [e.action for e in log.events] == ["interrupted"]
        sup2 = Supervisor(SlowJob(500), retry=FAST, store=store)
        assert sup2.resume() == 500

    def test_resume_with_empty_store_starts_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path)
        sup = Supervisor(CountJob(4), retry=FAST, store=store)
        assert sup.resume() == 4

    def test_corrupt_latest_falls_back_and_records(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=10)
        sup = Supervisor(CountJob(10), retry=FAST, store=store, checkpoint_every_steps=2)
        with pytest.raises(JobInterrupted):
            sup.run(stop_after_steps=6)
        newest = store.snapshot_paths()[-1]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        resumed_store = CheckpointStore(tmp_path, keep=10)
        log = DegradationLog()
        sup2 = Supervisor(CountJob(10), retry=FAST, store=resumed_store, degradation=log)
        assert sup2.resume() == 10
        assert log.by_action("checkpoint-rejected")


@pytest.mark.skipif(os.name != "posix", reason="SIGTERM delivery is posix-only")
class TestSigterm:
    def test_sigterm_checkpoints_and_interrupts(self, tmp_path):
        class SlowJob(CountJob):
            def step(self):
                time.sleep(0.01)
                return super().step()

        store = CheckpointStore(tmp_path)
        sup = Supervisor(SlowJob(1000), retry=FAST, store=store, handle_sigterm=True)
        pid = os.getpid()
        threading.Timer(0.05, lambda: os.kill(pid, signal.SIGTERM)).start()
        with pytest.raises(JobInterrupted) as exc_info:
            sup.run()
        assert exc_info.value.snapshot_path is not None
        sup2 = Supervisor(SlowJob(1000), retry=FAST, store=store)
        assert sup2.resume() == 1000
        # the previous handler was restored on exit
        assert signal.getsignal(signal.SIGTERM) in (
            signal.SIG_DFL,
            signal.default_int_handler,
        ) or callable(signal.getsignal(signal.SIGTERM))
