"""Tests for repro.common.tables."""

import pytest

from repro.common.tables import Table, format_table, histogram_bar


class TestTable:
    def test_render_contains_headers_and_rows(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["x", 1.5])
        out = t.render()
        assert "== demo ==" in out
        assert "name" in out and "value" in out
        assert "x" in out and "1.5" in out

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting_4_sig_digits(self):
        t = Table(["v"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()

    def test_none_rendered_as_dash(self):
        t = Table(["v"])
        t.add_row([None])
        assert "-" in t.render().splitlines()[-1]

    def test_alignment(self):
        t = Table(["col"])
        t.add_row(["short"])
        t.add_row(["a-much-longer-cell"])
        lines = t.render().splitlines()
        # header and separator widths accommodate the longest cell
        assert len(lines[1]) >= len("a-much-longer-cell")

    def test_empty_table_renders(self):
        t = Table(["a"])
        out = t.render()
        assert "a" in out

    def test_str_equals_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestFormatTable:
    def test_one_shot(self):
        out = format_table(["k", "v"], [["x", 1], ["y", 2]])
        assert "x" in out and "y" in out


class TestHistogramBar:
    def test_full_width(self):
        assert histogram_bar(10, 10, width=20) == "#" * 20

    def test_zero_count_empty(self):
        assert histogram_bar(0, 10) == ""

    def test_nonzero_count_never_empty(self):
        assert histogram_bar(1, 1000, width=10) == "#"

    def test_zero_max(self):
        assert histogram_bar(0, 0) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            histogram_bar(-1, 10)

    def test_custom_char(self):
        assert histogram_bar(5, 5, width=3, char="*") == "***"
