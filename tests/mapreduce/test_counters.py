"""Tests for job counters."""

import pytest

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_value(self):
        c = Counters()
        c.increment("task", "map_input_records", 3)
        c.increment("task", "map_input_records")
        assert c.value("task", "map_input_records") == 4

    def test_missing_is_zero(self):
        assert Counters().value("nope", "nothing") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counters().increment("g", "n", -1)

    def test_group_snapshot_isolated(self):
        c = Counters()
        c.increment("g", "a")
        snap = c.group("g")
        snap["a"] = 99
        assert c.value("g", "a") == 1

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 2)
        b.increment("g", "x", 3)
        b.increment("h", "y", 1)
        a.merge(b)
        assert a.value("g", "x") == 5
        assert a.value("h", "y") == 1

    def test_as_dict(self):
        c = Counters()
        c.increment("g", "x")
        assert c.as_dict() == {"g": {"x": 1}}

    def test_repr(self):
        assert "Counters" in repr(Counters())
