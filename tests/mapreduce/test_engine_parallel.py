"""Tests for the multi-worker engine path (``run_job_parallel``)."""

import pytest

from repro.common.errors import SchedulingError
from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
from repro.mapreduce.engine import run_job, run_job_parallel
from repro.mapreduce.job import MapReduceJob

pytestmark = pytest.mark.faults


def wc_mapper(_k, line):
    for w in str(line).split():
        yield w, 1


def wc_combiner(w, counts):
    yield w, sum(counts)


def wc_reducer(w, counts):
    yield w, sum(counts)


JOB = MapReduceJob(
    mapper=wc_mapper, combiner=wc_combiner, reducer=wc_reducer, num_reducers=3
)
SPLITS = [
    [(0, "alpha beta gamma"), (1, "beta gamma")],
    [(2, "gamma delta")],
    [(3, "alpha alpha beta")],
    [(4, "epsilon")],
]

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestParity:
    def test_identical_to_sequential_engine(self):
        local = run_job(JOB, SPLITS)
        parallel = run_job_parallel(JOB, SPLITS, max_workers=4)
        assert parallel.pairs == local.pairs
        assert parallel.partitions == local.partitions
        assert parallel.counters.as_dict() == local.counters.as_dict()

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_count_irrelevant(self, workers):
        local = run_job(JOB, SPLITS)
        parallel = run_job_parallel(JOB, SPLITS, max_workers=workers)
        assert parallel.pairs == local.pairs

    def test_empty_splits(self):
        result = run_job_parallel(JOB, [], max_workers=2)
        assert result.pairs == run_job(JOB, []).pairs


class TestRetry:
    def test_map_fault_retried_output_unchanged(self):
        local = run_job(JOB, SPLITS)
        log = DegradationLog()
        inj = FaultInjector(raise_on_tasks={1}, max_fires=1)
        result = run_job_parallel(
            JOB, SPLITS, max_workers=2, retry=FAST_RETRY,
            degradation=log, fault_injector=inj,
        )
        assert result.pairs == local.pairs
        assert result.counters.as_dict() == local.counters.as_dict()
        assert inj.fires == 1
        retries = log.by_action("retry")
        assert len(retries) == 1
        assert retries[0].detail["kind"] == "map"
        assert retries[0].detail["task"] == 1

    def test_reduce_fault_retried_output_unchanged(self):
        local = run_job(JOB, SPLITS)
        log = DegradationLog()
        # reduce tasks are indexed after the map tasks
        inj = FaultInjector(raise_on_tasks={len(SPLITS) + 1}, max_fires=1)
        result = run_job_parallel(
            JOB, SPLITS, max_workers=2, retry=FAST_RETRY,
            degradation=log, fault_injector=inj,
        )
        assert result.pairs == local.pairs
        assert log.by_action("retry")[0].detail["kind"] == "reduce"

    def test_exhaustion_raises_scheduling_error(self):
        inj = FaultInjector(raise_on_tasks={0}, max_fires=100)
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(SchedulingError) as exc_info:
            run_job_parallel(
                JOB, SPLITS, max_workers=2, retry=retry, fault_injector=inj,
            )
        msg = str(exc_info.value)
        assert "map task 0" in msg
        assert "2 attempts" in msg
        assert inj.fires == 2

    def test_failed_attempt_counters_discarded(self):
        """A failed attempt must leave no partial counter state behind."""
        local = run_job(JOB, SPLITS)
        inj = FaultInjector(raise_on_tasks={0, 2}, max_fires=2)
        result = run_job_parallel(
            JOB, SPLITS, max_workers=4, retry=FAST_RETRY, fault_injector=inj,
        )
        assert result.counters.as_dict() == local.counters.as_dict()
