"""Tests for text input helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.textio import format_kv_line, lines_to_records, parse_kv_line, text_splits


class TestLinesToRecords:
    def test_keys_are_byte_offsets(self):
        recs = lines_to_records(["ab\n", "cde\n", "f"])
        assert recs == [(0, "ab"), (3, "cde"), (7, "f")]

    def test_strips_only_newline(self):
        recs = lines_to_records(["  padded  \n"])
        assert recs[0][1] == "  padded  "

    def test_utf8_offsets(self):
        recs = lines_to_records(["héllo\n", "x"])
        assert recs[1][0] == len("héllo\n".encode())

    def test_empty(self):
        assert lines_to_records([]) == []


class TestTextSplits:
    def test_split_count(self):
        splits = text_splits(["a", "b", "c", "d", "e"], 2)
        assert len(splits) == 2
        assert [len(s) for s in splits] == [3, 2]

    def test_fewer_lines_than_splits(self):
        splits = text_splits(["a", "b"], 10)
        assert len(splits) == 2

    def test_no_lines_single_empty_split(self):
        assert text_splits([], 4) == [[]]

    def test_records_preserved_in_order(self):
        splits = text_splits(["a", "b", "c"], 2)
        values = [v for s in splits for _, v in s]
        assert values == ["a", "b", "c"]

    def test_zero_splits_rejected(self):
        with pytest.raises(ConfigurationError):
            text_splits(["a"], 0)


class TestKvLines:
    def test_roundtrip(self):
        line = format_kv_line("1881", "3.5,1")
        assert parse_kv_line(line) == ("1881", "3.5,1")

    def test_missing_separator_gives_empty_value(self):
        assert parse_kv_line("lonely") == ("lonely", "")

    def test_value_may_contain_separator(self):
        assert parse_kv_line("k\ta\tb") == ("k", "a\tb")

    def test_custom_separator(self):
        assert parse_kv_line("k;v", sep=";") == ("k", "v")
        assert format_kv_line("k", "v", sep=";") == "k;v"
