"""Tests for subprocess-based Hadoop-streaming execution."""

import textwrap

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.streaming import run_streaming, run_streaming_subprocess

MAPPER_SRC = textwrap.dedent(
    """
    import sys
    for line in sys.stdin:
        for word in line.split():
            print(f"{word}\\t1")
    """
)

REDUCER_SRC = textwrap.dedent(
    """
    import sys
    current, count = None, 0
    def flush():
        if current is not None:
            print(f"{current}\\t{count}")
    for line in sys.stdin:
        key, value = line.rstrip("\\n").split("\\t", 1)
        if key != current:
            flush()
            current, count = key, 0
        count += int(value)
    flush()
    """
)

LINES = ["the quick brown fox", "the lazy dog", "the fox"]


@pytest.fixture
def scripts(tmp_path):
    mapper = tmp_path / "mapper.py"
    reducer = tmp_path / "reducer.py"
    mapper.write_text(MAPPER_SRC)
    reducer.write_text(REDUCER_SRC)
    return mapper, reducer


class TestSubprocessStreaming:
    def test_wordcount(self, scripts):
        mapper, reducer = scripts
        out = run_streaming_subprocess(mapper, reducer, LINES)
        counts = dict(l.split("\t") for l in out)
        assert counts == {"the": "3", "quick": "1", "brown": "1", "fox": "2",
                          "lazy": "1", "dog": "1"}

    def test_matches_in_process_streaming(self, scripts):
        mapper, reducer = scripts

        def py_mapper(lines):
            for line in lines:
                for w in line.split():
                    yield f"{w}\t1"

        def py_reducer(lines):
            from repro.mapreduce.streaming import group_sorted_lines

            for k, vs in group_sorted_lines(lines):
                yield f"{k}\t{sum(int(v) for v in vs)}"

        sub = run_streaming_subprocess(mapper, reducer, LINES)
        inproc = run_streaming(py_mapper, py_reducer, LINES)
        assert sorted(sub) == sorted(inproc)

    def test_empty_input(self, scripts):
        mapper, reducer = scripts
        assert run_streaming_subprocess(mapper, reducer, []) == []

    def test_crashing_script_reports_stderr(self, tmp_path, scripts):
        _, reducer = scripts
        bad = tmp_path / "bad.py"
        bad.write_text("raise RuntimeError('kaboom in mapper')\n")
        with pytest.raises(ConfigurationError, match="kaboom"):
            run_streaming_subprocess(bad, reducer, LINES)

    def test_climate_job_via_real_pipes(self, tmp_path, climate_dataset):
        """The actual assignment solution, executed as submitted files."""
        mapper = tmp_path / "m.py"
        mapper.write_text(textwrap.dedent(
            """
            import sys
            for line in sys.stdin:
                line = line.strip()
                if not line or line.startswith("Jahr") or line.startswith("#"):
                    continue
                cells = line.split(";")
                if len(cells) < 4:
                    continue
                try:
                    year = int(cells[0])
                    values = [float(c) for c in cells[2:-1]]
                except ValueError:
                    continue
                for v in values:
                    print(f"{year}\\t{v},1")
            """
        ))
        reducer = tmp_path / "r.py"
        reducer.write_text(textwrap.dedent(
            """
            import sys
            current, total, count = None, 0.0, 0
            def flush():
                if current is not None and count:
                    print(f"{current}\\t{total / count:.6f}")
            for line in sys.stdin:
                key, payload = line.rstrip("\\n").split("\\t", 1)
                s, c = payload.split(",")
                if key != current:
                    flush()
                    current, total, count = key, 0.0, 0
                total += float(s)
                count += int(c)
            flush()
            """
        ))
        lines = [l for f in climate_dataset.month_files().values() for l in f]
        out = run_streaming_subprocess(mapper, reducer, lines)
        means = {int(l.split("\t")[0]): float(l.split("\t")[1]) for l in out}
        oracle = climate_dataset.true_annual_means()
        assert set(means) == set(oracle)
        for y in oracle:
            assert means[y] == pytest.approx(oracle[y], abs=0.01)
