"""Tests for the local MapReduce engine (wordcount as the canonical job)."""

import pytest

from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob


def wc_mapper(_key, line):
    for word in str(line).split():
        yield word, 1


def wc_reducer(word, counts):
    yield word, sum(counts)


def wc_combiner(word, counts):
    yield word, sum(counts)


def make_wc_job(**kw):
    return MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, name="wordcount", **kw)


LINES = ["the quick brown fox", "the lazy dog", "the fox"]
SPLITS = [[(0, LINES[0])], [(1, LINES[1]), (2, LINES[2])]]
EXPECTED = {"the": 3, "fox": 2, "quick": 1, "brown": 1, "lazy": 1, "dog": 1}


class TestWordcount:
    def test_basic(self):
        result = run_job(make_wc_job(), SPLITS)
        assert result.as_dict() == EXPECTED

    def test_output_sorted_by_key(self):
        result = run_job(make_wc_job(), SPLITS)
        keys = [k for k, _ in result.pairs]
        assert keys == sorted(keys)

    def test_unsorted_mode_preserves_insertion(self):
        result = run_job(make_wc_job(sort_keys=False), SPLITS)
        assert [k for k, _ in result.pairs][0] == "the"

    def test_split_independence(self):
        one_split = [[(i, l) for i, l in enumerate(LINES)]]
        many_splits = [[(i, l)] for i, l in enumerate(LINES)]
        assert run_job(make_wc_job(), one_split).as_dict() == EXPECTED
        assert run_job(make_wc_job(), many_splits).as_dict() == EXPECTED

    def test_combiner_same_answer_fewer_shuffle_records(self):
        plain = run_job(make_wc_job(), SPLITS)
        combined = run_job(make_wc_job(combiner=wc_combiner), SPLITS)
        assert plain.as_dict() == combined.as_dict()
        assert combined.counters.value("task", "shuffle_records") < plain.counters.value(
            "task", "shuffle_records"
        )

    def test_multiple_reducers_partition_and_union(self):
        result = run_job(make_wc_job(num_reducers=3), SPLITS)
        assert result.as_dict() == EXPECTED
        assert len(result.partitions) == 3
        total = sum(len(p) for p in result.partitions)
        assert total == len(EXPECTED)

    def test_empty_input(self):
        result = run_job(make_wc_job(), [[]])
        assert result.pairs == []

    def test_counters(self):
        result = run_job(make_wc_job(), SPLITS)
        c = result.counters
        assert c.value("task", "map_input_records") == 3
        assert c.value("task", "map_output_records") == 9
        assert c.value("task", "reduce_groups") == 6
        assert c.value("task", "reduce_output_records") == 6


class TestReducerSemantics:
    def test_values_grouped_per_key(self):
        seen = {}

        def spy_reducer(key, values):
            seen[key] = list(values)
            yield key, len(values)

        job = MapReduceJob(mapper=wc_mapper, reducer=spy_reducer)
        run_job(job, SPLITS)
        assert seen["the"] == [1, 1, 1]

    def test_reducer_may_emit_many(self):
        def exploding_reducer(key, values):
            for i in range(len(values)):
                yield f"{key}#{i}", 1

        job = MapReduceJob(mapper=wc_mapper, reducer=exploding_reducer)
        result = run_job(job, SPLITS)
        assert ("the#2", 1) in result.pairs

    def test_reducer_may_emit_nothing(self):
        def filter_reducer(key, values):
            if sum(values) > 1:
                yield key, sum(values)

        job = MapReduceJob(mapper=wc_mapper, reducer=filter_reducer)
        assert run_job(job, SPLITS).as_dict() == {"the": 3, "fox": 2}


class TestPartitioner:
    def test_custom_partitioner_routes(self):
        def first_letter(key, n):
            return 0 if key[0] < "m" else n - 1

        job = make_wc_job(num_reducers=2, partitioner=first_letter)
        result = run_job(job, SPLITS)
        p0_keys = {k for k, _ in result.partitions[0]}
        assert p0_keys == {"brown", "dog", "fox", "lazy"}

    def test_out_of_range_partition_rejected(self):
        from repro.common.errors import ConfigurationError

        job = make_wc_job(num_reducers=2, partitioner=lambda k, n: 5)
        with pytest.raises(ConfigurationError):
            run_job(job, SPLITS)

    def test_bad_combiner_output_rejected(self):
        from repro.common.errors import ConfigurationError

        job = make_wc_job(combiner=lambda k, vs: iter(["oops"]))
        with pytest.raises(ConfigurationError):
            run_job(job, SPLITS)


class TestAsDict:
    def test_duplicate_keys_rejected(self):
        def dup_reducer(key, values):
            yield key, 1
            yield key, 2

        job = MapReduceJob(mapper=wc_mapper, reducer=dup_reducer)
        result = run_job(job, SPLITS)
        with pytest.raises(ValueError):
            result.as_dict()
