"""Tests for multi-stage pipelines, top-k, and secondary sort."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.pipeline import (
    reshard,
    run_pipeline,
    secondary_sort_demo_job,
    top_k_job,
)
from repro.mapreduce.textio import text_splits


def wc_job():
    def mapper(_k, line):
        for w in str(line).split():
            yield w, 1

    def reducer(w, counts):
        yield w, sum(counts)

    return MapReduceJob(mapper=mapper, reducer=reducer)


LINES = ["a b c a", "b a", "c c c a"]


class TestReshard:
    def test_partition_sizes(self):
        splits = reshard([(i, i) for i in range(7)], 3)
        assert [len(s) for s in splits] == [3, 2, 2]

    def test_empty(self):
        assert reshard([], 4) == [[]]

    def test_order_preserved(self):
        splits = reshard([(i, i) for i in range(5)], 2)
        flat = [k for s in splits for k, _ in s]
        assert flat == [0, 1, 2, 3, 4]

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            reshard([(1, 1)], 0)


class TestRunPipeline:
    def test_wordcount_then_topk(self):
        result = run_pipeline([wc_job(), top_k_job(2)], text_splits(LINES, 2))
        assert len(result.stages) == 2
        top = result.final.pairs
        assert top == [("a", 4.0), ("c", 4.0)] or top == [("c", 4.0), ("a", 4.0)]

    def test_single_stage_equals_run_job(self):
        direct = run_job(wc_job(), text_splits(LINES, 2))
        piped = run_pipeline([wc_job()], text_splits(LINES, 2))
        assert piped.final.pairs == direct.pairs

    def test_empty_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_pipeline([], [[]])

    def test_final_property_empty(self):
        from repro.mapreduce.pipeline import PipelineResult

        with pytest.raises(ConfigurationError):
            PipelineResult().final


class TestTopK:
    def test_largest(self):
        records = [("x", 1.0), ("y", 9.0), ("z", 5.0)]
        result = run_job(top_k_job(2), [records])
        assert result.pairs == [("y", 9.0), ("z", 5.0)]

    def test_smallest(self):
        records = [("x", 1.0), ("y", 9.0), ("z", 5.0)]
        result = run_job(top_k_job(1, largest=False), [records])
        assert result.pairs == [("x", 1.0)]

    def test_k_larger_than_data(self):
        result = run_job(top_k_job(10), [[("a", 1.0)]])
        assert result.pairs == [("a", 1.0)]

    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            top_k_job(0)

    def test_hottest_years_end_to_end(self, climate_dataset):
        """The classic follow-up: annual means -> 3 hottest years."""
        from repro.climate.jobs import annual_mean_job

        lines = [l for f in climate_dataset.month_files().values() for l in f]
        result = run_pipeline(
            [annual_mean_job(), top_k_job(3)], text_splits(lines, 6)
        )
        top_years = [y for y, _ in result.final.pairs]
        oracle = climate_dataset.true_annual_means()
        expected = sorted(oracle, key=oracle.get, reverse=True)[:3]
        assert top_years == expected


class TestSecondarySort:
    def test_months_delivered_in_order(self):
        lines = [
            "B;3;5.0",
            "A;2;2.0",
            "B;1;3.0",
            "A;1;1.0",
            "A;3;3.0",
            "B;2;4.0",
        ]
        records = [(i, l) for i, l in enumerate(lines)]
        result = run_job(secondary_sort_demo_job(), [records[:3], records[3:]])
        d = dict(result.pairs)
        assert d["A"] == (1.0, 2.0, 3.0)
        assert d["B"] == (3.0, 4.0, 5.0)

    def test_group_never_split_across_partitions(self):
        lines = [f"S{i % 5};{m};{float(m)}" for i in range(5) for m in range(1, 13)]
        records = [(i, l) for i, l in enumerate(lines)]
        result = run_job(secondary_sort_demo_job(), [records])
        # every station appears exactly once across all partitions
        stations = [k for part in result.partitions for k, _ in part]
        assert len(stations) == len(set(stations)) == 5

    def test_grouping_comparator_in_engine(self):
        """Unit-level: composite keys merge by group_key with sorted values."""
        from repro.mapreduce.job import grouped_partitioner

        def mapper(_k, v):
            yield (v[0], v[1]), v[1]

        def reducer(gk, values):
            yield gk, tuple(values)

        group = lambda k: k[0]
        job = MapReduceJob(
            mapper=mapper,
            reducer=reducer,
            group_key=group,
            partitioner=grouped_partitioner(group),
        )
        records = [(0, ("a", 3)), (1, ("a", 1)), (2, ("b", 2)), (3, ("a", 2))]
        result = run_job(job, [records])
        assert dict(result.pairs) == {"a": (1, 2, 3), "b": (2,)}
