"""Tests for the Hadoop-streaming emulation."""

from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.streaming import group_sorted_lines, run_streaming, script_adapter, sort_phase


def wc_stream_mapper(lines):
    for line in lines:
        for word in line.split():
            yield f"{word}\t1"


def wc_stream_reducer(lines):
    for key, values in group_sorted_lines(lines):
        yield f"{key}\t{sum(int(v) for v in values)}"


LINES = ["the quick brown fox", "the lazy dog", "the fox"]


class TestSortPhase:
    def test_sorts_by_key_field_only(self):
        lines = ["b\t2", "a\t9", "a\t1"]
        assert sort_phase(lines) == ["a\t9", "a\t1", "b\t2"]  # stable, key-only

    def test_empty(self):
        assert sort_phase([]) == []


class TestRunStreaming:
    def test_wordcount(self):
        out = run_streaming(wc_stream_mapper, wc_stream_reducer, LINES)
        counts = dict(line.split("\t") for line in out)
        assert counts == {"the": "3", "quick": "1", "brown": "1", "fox": "2", "lazy": "1", "dog": "1"}

    def test_reducer_sees_sorted_lines(self):
        seen = []

        def spy_reducer(lines):
            seen.extend(lines)
            return iter(())

        run_streaming(wc_stream_mapper, spy_reducer, LINES)
        keys = [l.split("\t")[0] for l in seen]
        assert keys == sorted(keys)

    def test_empty_input(self):
        assert run_streaming(wc_stream_mapper, wc_stream_reducer, []) == []


class TestGroupSortedLines:
    def test_groups(self):
        lines = ["a\t1", "a\t2", "b\t3"]
        assert list(group_sorted_lines(lines)) == [("a", ["1", "2"]), ("b", ["3"])]

    def test_single_group(self):
        assert list(group_sorted_lines(["k\tv"])) == [("k", ["v"])]

    def test_empty(self):
        assert list(group_sorted_lines([])) == []

    def test_handles_trailing_newlines(self):
        assert list(group_sorted_lines(["k\tv\n"])) == [("k", ["v"])]


class TestScriptAdapter:
    def test_streaming_scripts_run_on_structured_engine(self):
        job = MapReduceJob(
            mapper=script_adapter(wc_stream_mapper, side="map"),
            reducer=script_adapter(wc_stream_reducer, side="reduce"),
        )
        splits = [[(i, line)] for i, line in enumerate(LINES)]
        result = run_job(job, splits)
        assert dict(result.pairs)["the"] == "3"

    def test_equivalence_streaming_vs_structured(self):
        streamed = run_streaming(wc_stream_mapper, wc_stream_reducer, LINES)
        job = MapReduceJob(
            mapper=script_adapter(wc_stream_mapper, side="map"),
            reducer=script_adapter(wc_stream_reducer, side="reduce"),
        )
        structured = run_job(job, [[(i, l) for i, l in enumerate(LINES)]])
        assert dict(l.split("\t") for l in streamed) == dict(structured.pairs)

    def test_bad_side_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            script_adapter(wc_stream_mapper, side="shuffle")
