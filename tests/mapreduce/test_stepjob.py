"""Tests for MapReduceStepJob: oracle equivalence and checkpoint round-trips."""

import pytest

from repro.common.errors import CheckpointError, ConfigurationError
from repro.common.resilience import FaultInjector, InjectedFault
from repro.common.rng import make_rng
from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.stepjob import MapReduceStepJob


def _wordcount(seed=3, nsplits=5, num_reducers=3):
    rng = make_rng(seed)
    words = ["ash", "beech", "cedar", "fir", "oak", "pine"]
    splits = [
        [(f"s{i}:{j}", " ".join(rng.choice(words, size=6))) for j in range(3)]
        for i in range(nsplits)
    ]

    def mapper(key, value):
        for w in value.split():
            yield (w, 1)

    def reducer(key, values):
        yield (key, sum(values))

    job = MapReduceJob(name="wc", mapper=mapper, reducer=reducer, num_reducers=num_reducers)
    return job, splits


def _assert_same_result(a, b):
    assert a.pairs == b.pairs
    assert a.partitions == b.partitions
    assert a.counters.as_dict() == b.counters.as_dict()


class TestOracleEquivalence:
    def test_stepped_run_matches_run_job(self):
        job, splits = _wordcount()
        stepped = MapReduceStepJob(job, splits)
        stepped.run()
        _assert_same_result(stepped.result(), run_job(job, splits))

    def test_phases_in_order(self):
        job, splits = _wordcount(nsplits=2, num_reducers=2)
        stepped = MapReduceStepJob(job, splits)
        phases = []
        while True:
            phases.append(stepped.phase)
            if not stepped.step():
                break
        assert phases == ["map", "map", "shuffle", "reduce", "reduce"]
        assert stepped.phase == "done"
        assert stepped.progress().done

    def test_step_count_is_honest(self):
        job, splits = _wordcount()
        stepped = MapReduceStepJob(job, splits)
        steps = 0
        while stepped.step() or steps == 0:
            steps += 1
        assert steps + 1 == len(splits) + 1 + job.num_reducers
        assert stepped.progress().fraction == 1.0


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("stop_after", [1, 3, 5, 6, 8])
    def test_resume_at_any_phase_is_bit_identical(self, stop_after):
        job, splits = _wordcount()
        oracle = run_job(job, splits)
        first = MapReduceStepJob(job, splits)
        for _ in range(stop_after):
            first.step()
        manifest = first.checkpoint()
        fresh = MapReduceStepJob(job, splits)
        fresh.restore(manifest)
        assert fresh.progress().steps_done == stop_after
        fresh.run()
        _assert_same_result(fresh.result(), oracle)

    def test_foreign_snapshot_rejected(self):
        job, splits = _wordcount()
        stepped = MapReduceStepJob(job, splits)
        with pytest.raises(CheckpointError, match="kind"):
            stepped.restore({"kind": "sandpile"})
        with pytest.raises(CheckpointError, match="job"):
            stepped.restore({"kind": "mapreduce", "job": "other"})
        bad_geom = MapReduceStepJob(job, splits[:2]).checkpoint()
        with pytest.raises(CheckpointError, match="geometry"):
            stepped.restore(bad_geom)


class TestFaultInjection:
    def test_raised_step_commits_nothing(self):
        job, splits = _wordcount()
        injector = FaultInjector(raise_on_tasks={1}, max_fires=1)
        stepped = MapReduceStepJob(job, splits, fault_injector=injector)
        assert stepped.step()  # map 0 is fine
        before = stepped.checkpoint()
        with pytest.raises(InjectedFault):
            stepped.step()  # map 1 raises before any commit
        assert stepped.checkpoint() == before
        stepped.run()  # injector exhausted: the retried task succeeds
        _assert_same_result(stepped.result(), run_job(job, splits))

    def test_reduce_indices_continue_after_splits(self):
        job, splits = _wordcount(nsplits=2, num_reducers=2)
        injector = FaultInjector(raise_on_tasks={len(splits)}, max_fires=1)
        stepped = MapReduceStepJob(job, splits, fault_injector=injector)
        for _ in range(len(splits) + 1):  # maps + shuffle run clean
            stepped.step()
        with pytest.raises(InjectedFault):
            stepped.step()  # first reduce task carries index len(splits)
        assert injector.fires == 1


def test_run_max_steps_guard():
    job, splits = _wordcount()
    with pytest.raises(ConfigurationError, match="max_steps"):
        MapReduceStepJob(job, splits).run(max_steps=2)
