"""Property-based tests for the MapReduce engine.

Invariants:

* sharding-independence: however the input records are split, the job's
  output is identical;
* a correct (associative, sum/count) combiner never changes results;
* the classic *wrong* combiner (mean of means) does — demonstrating why
  the correctness condition matters;
* the simulated cluster always equals the local engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob

words = st.text(alphabet="abcdef", min_size=1, max_size=4)
lines = st.lists(words, min_size=0, max_size=8).map(" ".join)
documents = st.lists(lines, min_size=1, max_size=12)

SETTINGS = dict(max_examples=30, deadline=None)


def wc_mapper(_k, line):
    for w in str(line).split():
        yield w, 1


def wc_reducer(w, counts):
    yield w, sum(counts)


def wc_combiner(w, counts):
    yield w, sum(counts)


def split_into(records, n):
    n = max(1, min(n, len(records))) if records else 1
    if not records:
        return [[]]
    size = -(-len(records) // n)
    return [records[i : i + size] for i in range(0, len(records), size)]


@given(doc=documents, n_splits=st.integers(1, 6))
@settings(**SETTINGS)
def test_sharding_independence(doc, n_splits):
    records = list(enumerate(doc))
    job = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer)
    base = run_job(job, [records]).pairs
    split = run_job(job, split_into(records, n_splits)).pairs
    assert base == split


@given(doc=documents, n_splits=st.integers(1, 6))
@settings(**SETTINGS)
def test_correct_combiner_is_transparent(doc, n_splits):
    records = list(enumerate(doc))
    splits = split_into(records, n_splits)
    plain = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer)
    combined = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, combiner=wc_combiner)
    assert run_job(plain, splits).pairs == run_job(combined, splits).pairs


@given(doc=documents, n_reducers=st.integers(1, 5))
@settings(**SETTINGS)
def test_reducer_count_only_changes_grouping(doc, n_reducers):
    records = list(enumerate(doc))
    one = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, num_reducers=1)
    many = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, num_reducers=n_reducers)
    assert dict(run_job(one, [records]).pairs) == dict(run_job(many, [records]).pairs)


@given(doc=documents, seed=st.integers(0, 100))
@settings(**SETTINGS)
def test_cluster_equals_local_under_chaos(doc, seed):
    records = list(enumerate(doc))
    splits = split_into(records, 3)
    job = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer)
    local = run_job(job, splits)
    cfg = ClusterConfig(n_workers=3, failure_prob=0.25, straggler_prob=0.25, seed=seed)
    clustered, _ = SimulatedCluster(cfg).run(job, splits)
    assert clustered.pairs == local.pairs


def test_wrong_combiner_breaks_sharding_independence():
    """The mean-of-means combiner gives split-dependent answers."""
    from repro.climate.jobs import (
        make_averaging_mapper,
        mean_reducer,
        naive_mean_of_means_combiner,
    )

    def parser(line):
        year, value = line.split(",")
        yield int(year), float(value)

    # year 2000: values 1, 1, 10 — true mean 4.0
    records = [(i, f"2000,{v}") for i, v in enumerate([1.0, 1.0, 10.0])]
    job = MapReduceJob(
        mapper=make_averaging_mapper(parser),
        reducer=mean_reducer,
        combiner=naive_mean_of_means_combiner,
    )
    balanced = run_job(job, [records]).as_dict()[2000]
    skewed = run_job(job, [records[:2], records[2:]]).as_dict()[2000]
    assert abs(balanced - skewed) > 0.5  # the bug is visible
