"""Tests for the job specification layer."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.job import MapReduceJob, hash_partitioner


def identity_mapper(k, v):
    yield k, v


def identity_reducer(k, values):
    for v in values:
        yield k, v


class TestHashPartitioner:
    def test_in_range(self):
        for key in ["a", 42, (1, "x"), None]:
            p = hash_partitioner(key, 7)
            assert 0 <= p < 7

    def test_deterministic(self):
        assert hash_partitioner("year-1881", 4) == hash_partitioner("year-1881", 4)

    def test_spreads_keys(self):
        parts = {hash_partitioner(f"key-{i}", 8) for i in range(100)}
        assert len(parts) >= 6  # most partitions hit

    def test_single_partition(self):
        assert hash_partitioner("anything", 1) == 0


class TestJobValidation:
    def test_valid(self):
        job = MapReduceJob(mapper=identity_mapper, reducer=identity_reducer)
        assert job.num_reducers == 1

    def test_zero_reducers_rejected(self):
        with pytest.raises(ConfigurationError):
            MapReduceJob(mapper=identity_mapper, reducer=identity_reducer, num_reducers=0)

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            MapReduceJob(mapper="not-callable", reducer=identity_reducer)

    def test_mapper_output_shape_validated(self):
        def bad_mapper(k, v):
            yield "just-a-key"

        job = MapReduceJob(mapper=bad_mapper, reducer=identity_reducer)
        with pytest.raises(ConfigurationError, match="mapper must yield"):
            list(job.run_mapper(0, "x"))

    def test_reducer_output_shape_validated(self):
        def bad_reducer(k, values):
            yield (k, 1, 2)

        job = MapReduceJob(mapper=identity_mapper, reducer=bad_reducer)
        with pytest.raises(ConfigurationError, match="reducer must yield"):
            list(job.run_reducer("k", [1]))

    def test_run_mapper_passthrough(self):
        job = MapReduceJob(mapper=identity_mapper, reducer=identity_reducer)
        assert list(job.run_mapper("k", "v")) == [("k", "v")]


class TestGroupingComparatorContract:
    """group_key merges *adjacent sorted* keys (Hadoop's grouping comparator);
    without the sort, equal group keys can arrive non-adjacently and would
    silently fragment into duplicate reduce groups — so the combination is
    rejected outright."""

    def test_group_key_with_unsorted_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            MapReduceJob(
                mapper=identity_mapper,
                reducer=identity_reducer,
                group_key=lambda k: k[0],
                sort_keys=False,
            )

    def test_group_key_with_sorted_keys_allowed(self):
        MapReduceJob(
            mapper=identity_mapper,
            reducer=identity_reducer,
            group_key=lambda k: k[0],
            sort_keys=True,
        )

    def test_shuffle_rechecks_mutated_job(self):
        # jobs are mutable dataclasses: the engine must not trust __post_init__
        from repro.mapreduce.counters import Counters
        from repro.mapreduce.engine import shuffle

        job = MapReduceJob(
            mapper=identity_mapper,
            reducer=identity_reducer,
            group_key=lambda k: k[0],
        )
        job.sort_keys = False
        with pytest.raises(ConfigurationError):
            shuffle(job, [[(("s", 2), 1.0), (("t", 1), 2.0), (("s", 1), 3.0)]], Counters())
