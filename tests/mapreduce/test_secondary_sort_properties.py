"""Property-based tests for the grouping-comparator (secondary sort)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob, grouped_partitioner

SETTINGS = dict(max_examples=30, deadline=None)

records = st.lists(
    st.tuples(st.sampled_from("abcde"), st.integers(0, 50)),
    min_size=0,
    max_size=40,
)


def make_job(num_reducers=3):
    def mapper(_k, pair):
        natural, secondary = pair
        yield (natural, secondary), secondary

    def reducer(natural, values):
        yield natural, tuple(values)

    group = lambda composite: composite[0]
    return MapReduceJob(
        mapper=mapper,
        reducer=reducer,
        group_key=group,
        partitioner=grouped_partitioner(group),
        num_reducers=num_reducers,
    )


@given(data=records, n_reducers=st.integers(1, 5))
@settings(**SETTINGS)
def test_values_sorted_within_group(data, n_reducers):
    result = run_job(make_job(n_reducers), [list(enumerate(data))])
    for _natural, values in result.pairs:
        assert list(values) == sorted(values)


@given(data=records)
@settings(**SETTINGS)
def test_every_value_delivered_exactly_once(data):
    result = run_job(make_job(), [list(enumerate(data))])
    delivered = sorted(v for _k, values in result.pairs for v in values)
    assert delivered == sorted(v for _n, v in data)


@given(data=records)
@settings(**SETTINGS)
def test_one_group_per_natural_key(data):
    result = run_job(make_job(), [list(enumerate(data))])
    keys = [k for k, _ in result.pairs]
    assert len(keys) == len(set(keys))
    assert set(keys) == {n for n, _ in data}


@given(data=records, n_splits=st.integers(1, 5))
@settings(**SETTINGS)
def test_sharding_independent(data, n_splits):
    recs = list(enumerate(data))
    size = max(1, -(-len(recs) // n_splits)) if recs else 1
    splits = [recs[i : i + size] for i in range(0, len(recs), size)] or [[]]
    one = run_job(make_job(), [recs])
    many = run_job(make_job(), splits)
    assert dict(one.pairs) == dict(many.pairs)
