"""Tests for the simulated cluster: scheduling, fault injection, determinism."""

import pytest

from repro.common.errors import SimulationError
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.engine import run_job
from repro.mapreduce.job import MapReduceJob


def wc_mapper(_k, line):
    for w in str(line).split():
        yield w, 1


def wc_reducer(w, counts):
    yield w, sum(counts)


JOB = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, num_reducers=2)
SPLITS = [
    [(0, "alpha beta gamma"), (1, "beta gamma")],
    [(2, "gamma delta")],
    [(3, "alpha alpha beta")],
]


class TestConfigValidation:
    def test_defaults_valid(self):
        ClusterConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_workers": 0},
            {"failure_prob": 1.0},
            {"failure_prob": -0.1},
            {"straggler_prob": 1.5},
            {"max_attempts": 0},
            {"straggler_factor": 0.5},  # "stragglers" must not run faster
            {"straggler_factor": -1.0},
            {"map_cost_per_record": -1e-6},
            {"reduce_cost_per_record": -1e-6},
            {"shuffle_cost_per_record": -1e-6},
            {"task_overhead": -0.1},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(SimulationError):
            ClusterConfig(**kw)

    def test_straggler_factor_one_allowed(self):
        ClusterConfig(straggler_factor=1.0)


class TestOutputEquality:
    """The heart of MapReduce fault tolerance: output never depends on the cluster."""

    def test_matches_local_engine(self):
        local = run_job(JOB, SPLITS)
        clustered, _ = SimulatedCluster().run(JOB, SPLITS)
        assert clustered.pairs == local.pairs

    @pytest.mark.parametrize("n_workers", [1, 2, 8])
    def test_worker_count_irrelevant_to_output(self, n_workers):
        local = run_job(JOB, SPLITS)
        result, _ = SimulatedCluster(ClusterConfig(n_workers=n_workers)).run(JOB, SPLITS)
        assert result.pairs == local.pairs

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_failures_and_stragglers_irrelevant_to_output(self, seed):
        local = run_job(JOB, SPLITS)
        cfg = ClusterConfig(failure_prob=0.3, straggler_prob=0.3, seed=seed)
        result, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert result.pairs == local.pairs

    def test_counters_match_local(self):
        local = run_job(JOB, SPLITS)
        result, _ = SimulatedCluster().run(JOB, SPLITS)
        assert result.counters.as_dict() == local.counters.as_dict()


class TestVirtualTiming:
    def test_phases_ordered(self):
        _, report = SimulatedCluster().run(JOB, SPLITS)
        assert 0 < report.map_finish <= report.shuffle_finish <= report.makespan

    def test_more_workers_not_slower(self):
        big_splits = [[(i, "w x y z")] for i in range(32)]
        t1 = SimulatedCluster(ClusterConfig(n_workers=1)).run(JOB, big_splits)[1].makespan
        t8 = SimulatedCluster(ClusterConfig(n_workers=8)).run(JOB, big_splits)[1].makespan
        assert t8 < t1

    def test_speedup_bounded_by_workers(self):
        big_splits = [[(i, "w x y z")] for i in range(32)]
        _, report = SimulatedCluster(ClusterConfig(n_workers=4)).run(JOB, big_splits)
        assert report.speedup() <= 4.0 + 1e-9

    def test_stragglers_slow_the_run(self):
        base = ClusterConfig(n_workers=2, seed=5)
        straggly = ClusterConfig(n_workers=2, seed=5, straggler_prob=1.0, straggler_factor=10.0)
        t_base = SimulatedCluster(base).run(JOB, SPLITS)[1].makespan
        t_slow = SimulatedCluster(straggly).run(JOB, SPLITS)[1].makespan
        assert t_slow > 2 * t_base

    def test_deterministic_given_seed(self):
        cfg = ClusterConfig(failure_prob=0.2, straggler_prob=0.2, seed=9)
        r1 = SimulatedCluster(cfg).run(JOB, SPLITS)[1]
        r2 = SimulatedCluster(cfg).run(JOB, SPLITS)[1]
        assert r1.makespan == r2.makespan
        assert len(r1.attempts) == len(r2.attempts)


class TestFaultInjection:
    def test_failures_produce_retries(self):
        cfg = ClusterConfig(failure_prob=0.5, seed=1)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.failures > 0
        # every failure has a follow-up attempt of the same task
        for a in report.attempts:
            if a.failed:
                retries = [
                    b for b in report.attempts
                    if b.phase == a.phase and b.task == a.task and b.attempt == a.attempt + 1
                ]
                assert retries, f"no retry for {a}"

    def test_retry_starts_after_failure_detected(self):
        cfg = ClusterConfig(failure_prob=0.5, seed=1)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        for a in report.attempts:
            if a.failed:
                retry = next(
                    b for b in report.attempts
                    if b.phase == a.phase and b.task == a.task and b.attempt == a.attempt + 1
                )
                assert retry.start >= a.end - 1e-12

    def test_attempts_never_exceed_max(self):
        cfg = ClusterConfig(failure_prob=0.6, max_attempts=3, seed=2)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert max(a.attempt for a in report.attempts) <= 3

    def test_worker_busy_accounting(self):
        _, report = SimulatedCluster(ClusterConfig(n_workers=3)).run(JOB, SPLITS)
        busy = report.worker_busy(3)
        assert len(busy) == 3
        assert sum(busy) == pytest.approx(report.total_work)

    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_total_work_excludes_failed_attempts(self, seed):
        """Regression: failed attempts inflated total_work and hence speedup."""
        cfg = ClusterConfig(n_workers=4, failure_prob=0.5, seed=seed)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.failures > 0
        successful = sum(a.end - a.start for a in report.attempts if not a.failed)
        assert report.total_work == pytest.approx(successful)
        # busy time counts everything the workers did, including failures
        assert sum(report.worker_busy(4)) > report.total_work

    def test_speedup_not_inflated_by_failures(self):
        big_splits = [[(i, "w x y z")] for i in range(64)]
        for seed in range(5):
            cfg = ClusterConfig(n_workers=4, failure_prob=0.4, seed=seed)
            _, report = SimulatedCluster(cfg).run(JOB, big_splits)
            assert report.speedup() <= 4.0 + 1e-9
            if report.failures:
                # the pre-fix value serialised failed attempts too
                inflated = sum(a.end - a.start for a in report.attempts) / report.makespan
                assert report.speedup() < inflated


class TestSpeculation:
    """Hadoop-style backup attempts for stragglers: faster, never different."""

    CFG = dict(n_workers=4, straggler_prob=0.4, straggler_factor=20.0)

    def test_output_identical_to_local_engine(self):
        local = run_job(JOB, SPLITS)
        for seed in range(6):
            cfg = ClusterConfig(seed=seed, speculate=True, **self.CFG)
            result, report = SimulatedCluster(cfg).run(JOB, SPLITS)
            assert result.pairs == local.pairs
            assert result.partitions == local.partitions
            assert result.counters.as_dict() == local.counters.as_dict()

    def test_backups_reported(self):
        # straggler_prob=1 forces every primary to straggle, so backups
        # (which can still straggle) are launched wherever they can win
        cfg = ClusterConfig(
            n_workers=4, straggler_prob=1.0, straggler_factor=50.0,
            seed=0, speculate=True,
        )
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.speculative > 0
        # backups are numbered after the primary attempt they shadow
        assert all(a.attempt > 1 for a in report.attempts if a.speculative)

    def test_disabled_by_default(self):
        cfg = ClusterConfig(seed=3, **self.CFG)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.speculative == 0
        assert report.speculative_wins == 0

    def test_winning_backup_improves_makespan(self):
        # find a seed where a backup wins and check the makespan shrank
        found = False
        for seed in range(10):
            base = ClusterConfig(seed=seed, speculate=False, **self.CFG)
            spec = ClusterConfig(seed=seed, speculate=True, **self.CFG)
            _, r0 = SimulatedCluster(base).run(JOB, SPLITS)
            _, r1 = SimulatedCluster(spec).run(JOB, SPLITS)
            if r1.speculative_wins > 0 and r1.makespan < r0.makespan:
                found = True
                break
        assert found, "no seed in range produced a winning backup"

    def test_backup_only_where_it_can_win(self):
        # a backup's scheduled duration at launch must beat the primary
        cfg = ClusterConfig(seed=1, speculate=True, **self.CFG)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        primaries = {
            (a.phase, a.task): a
            for a in report.attempts
            if not a.speculative and not a.failed
        }
        for b in (a for a in report.attempts if a.speculative):
            p = primaries[(b.phase, b.task)]
            assert p.straggled  # only straggling primaries get backups
            assert b.start < p.end  # launched while the primary still ran

    def test_total_work_excludes_backups(self):
        cfg = ClusterConfig(
            n_workers=4, straggler_prob=1.0, straggler_factor=50.0,
            seed=0, speculate=True,
        )
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.speculative > 0
        primary_work = sum(
            a.end - a.start for a in report.attempts
            if not a.failed and not a.speculative
        )
        assert report.total_work == pytest.approx(primary_work)
        # occupancy still counts the backups' cycles
        assert sum(report.worker_busy(4)) > report.total_work
