"""Tests for job specs: canonicalisation, cache keys, describe round-trips."""

import subprocess
import sys

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.spec import (
    JobSpec,
    build_job,
    cache_key,
    canonical_spec,
    register_workload,
    registered_workloads,
)


class TestCanonicalisation:
    def test_partial_params_merge_defaults(self):
        c = canonical_spec(JobSpec("mapreduce", "wordcount", {"nsplits": 2}))
        assert c["params"]["nsplits"] == 2
        assert c["params"]["num_reducers"] == 3  # default filled in
        assert list(c["params"]) == sorted(c["params"])

    def test_partial_and_explicit_defaults_share_a_key(self):
        partial = JobSpec("simmpi", "world", {})
        explicit = JobSpec("simmpi", "world", {"world": "allreduce", "nranks": 4})
        assert cache_key(partial) == cache_key(explicit)

    def test_different_params_different_keys(self):
        a = cache_key(JobSpec("simmpi", "world", {"nranks": 2}))
        b = cache_key(JobSpec("simmpi", "world", {"nranks": 3}))
        assert a != b

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            cache_key(JobSpec("easypap", "nope"))

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown params"):
            canonical_spec(JobSpec("wrench", "montage", {"bogus": 1}))

    def test_builtins_registered(self):
        pairs = registered_workloads()
        for want in [
            ("easypap", "sandpile"),
            ("mapreduce", "wordcount"),
            ("simmpi", "world"),
            ("wrench", "montage"),
        ]:
            assert want in pairs

    def test_duplicate_registration_rejected(self):
        register_workload("test", "dup-probe", lambda p: None)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_workload("test", "dup-probe", lambda p: None)


class TestKeyStability:
    def test_key_stable_across_processes(self):
        spec = JobSpec("easypap", "sandpile", {"size": 16, "grains": 300})
        here = cache_key(spec)
        code = (
            "from repro.serve.spec import JobSpec, cache_key;"
            "print(cache_key(JobSpec('easypap', 'sandpile',"
            " {'size': 16, 'grains': 300})))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert out.stdout.strip() == here

    def test_key_ignores_volatile_kernel_registry_version(self):
        # the per-process kernel-registration counter depends on import
        # order; cache keys must not move when it bumps
        from repro.easypap import executor

        spec = JobSpec("easypap", "sandpile", {"size": 16})
        before = cache_key(spec)
        v0 = executor.registry_version()
        executor.register_tile_kernel(
            "spec-stability-probe", lambda *a, **k: None
        )  # analysis: allow
        try:
            assert executor.registry_version() > v0
            assert cache_key(spec) == before
        finally:
            executor._TILE_KERNELS.pop("spec-stability-probe", None)
            executor._TILE_KERNEL_TAGS.pop("spec-stability-probe", None)

    def test_key_tracks_declared_workload_version(self):
        register_workload("test", "versioned-v1", lambda p: None, version=1)
        register_workload("test", "versioned-v2", lambda p: None, version=2)
        k1 = cache_key(JobSpec("test", "versioned-v1"))
        k2 = cache_key(JobSpec("test", "versioned-v2"))
        assert k1 != k2


class TestDescribeRoundTrip:
    """spec -> build_job -> describe() must reproduce the canonical fields."""

    CASES = [
        JobSpec("easypap", "sandpile", {"size": 16, "grains": 200, "variant": "seq"}),
        JobSpec("mapreduce", "wordcount", {"nsplits": 2, "lines_per_split": 2}),
        JobSpec("simmpi", "world", {"nranks": 2}),
        JobSpec("wrench", "montage", {"n_projections": 3, "n_difffits": 4}),
    ]

    @pytest.mark.parametrize("spec", CASES, ids=lambda s: s.substrate)
    def test_round_trip(self, spec):
        canon = canonical_spec(spec)
        with build_job(spec) as job:
            desc = job.describe()
        assert desc["substrate"] == spec.substrate
        assert desc["workload"] == spec.workload
        assert desc["params"] == canon["params"]

    def test_direct_jobs_fall_back_to_digests(self):
        from repro.easypap.job import SandpileJob
        from repro.sandpile import center_pile

        with SandpileJob(center_pile(8, 8, 40), variant="seq") as job:
            desc = job.describe()
        assert "params" not in desc  # no spec: identified by content digest
        assert len(desc["grid_sha256"]) == 64

    def test_equal_descriptions_equal_results(self):
        spec = JobSpec("mapreduce", "wordcount", {"nsplits": 2})
        with build_job(spec) as a, build_job(spec) as b:
            assert a.describe() == b.describe()
            ra, rb = a.run(), b.run()
        assert ra.pairs == rb.pairs
