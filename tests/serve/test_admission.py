"""Tests for admission control: quotas, weighted fairness, shedding."""

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.admission import AdmissionQueue, Rejected, TenantPolicy


def queue(*policies):
    return AdmissionQueue(policies)


class TestPolicies:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantPolicy(name="")
        with pytest.raises(ConfigurationError):
            TenantPolicy(name="a", weight=0)
        with pytest.raises(ConfigurationError):
            TenantPolicy(name="a", max_active=0)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            queue(TenantPolicy(name="a"), TenantPolicy(name="a"))


class TestOfferAndShed:
    def test_fifo_within_tenant(self):
        q = queue(TenantPolicy(name="a"))
        for item in ("x", "y", "z"):
            q.offer("a", item)
        assert [q.next_ready({})[1] for _ in range(3)] == ["x", "y", "z"]

    def test_priority_beats_fifo(self):
        q = queue(TenantPolicy(name="a"))
        q.offer("a", "low")
        q.offer("a", "high", priority=5)
        assert q.next_ready({})[1] == "high"

    def test_queue_full_sheds_honestly(self):
        q = queue(TenantPolicy(name="a", max_queued=2))
        assert isinstance(q.offer("a", 1), int)
        assert isinstance(q.offer("a", 2), int)
        r = q.offer("a", 3)
        assert isinstance(r, Rejected)
        assert r.reason == "queue-full"
        assert q.stats()["a"]["shed"] == 1

    def test_unknown_tenant_rejected(self):
        q = queue(TenantPolicy(name="a"))
        r = q.offer("ghost", 1)
        assert isinstance(r, Rejected) and r.reason == "unknown-tenant"
        assert "a" in r.detail


class TestQuotas:
    def test_max_active_blocks_tenant(self):
        q = queue(TenantPolicy(name="a", max_active=1), TenantPolicy(name="b"))
        q.offer("a", "a1")
        q.offer("a", "a2")
        q.offer("b", "b1")
        assert q.next_ready({"a": 1}) == ("b", "b1")  # a is at quota
        assert q.next_ready({"a": 1}) is None  # only a's entries remain
        assert q.next_ready({"a": 0}) == ("a", "a1")  # quota slot freed

    def test_all_blocked_returns_none(self):
        q = queue(TenantPolicy(name="a", max_active=1))
        q.offer("a", 1)
        assert q.next_ready({"a": 1}) is None


class TestWeightedFairness:
    def test_drain_proportional_to_weight(self):
        q = queue(TenantPolicy(name="heavy", weight=3.0), TenantPolicy(name="light"))
        for i in range(30):
            q.offer("heavy", f"h{i}")
            q.offer("light", f"l{i}")
        first12 = [q.next_ready({})[0] for _ in range(12)]
        assert first12.count("heavy") == 9
        assert first12.count("light") == 3

    def test_idle_tenant_cannot_hoard_credit(self):
        q = queue(TenantPolicy(name="a"), TenantPolicy(name="b"))
        for i in range(20):
            q.offer("a", f"a{i}")
        for _ in range(10):
            q.next_ready({})  # a alone advances its virtual time
        for i in range(10):
            q.offer("b", f"b{i}")
        # b re-enters at the global virtual time: picks alternate instead
        # of b monopolising until it catches up 10 credits
        first4 = [q.next_ready({})[0] for _ in range(4)]
        assert first4.count("a") == 2 and first4.count("b") == 2


class TestCancel:
    def test_cancel_removes_entry(self):
        q = queue(TenantPolicy(name="a"))
        t1 = q.offer("a", "one")
        q.offer("a", "two")
        assert q.cancel("a", t1) is True
        assert q.queued("a") == 1
        assert q.next_ready({}) == ("a", "two")

    def test_cancel_twice_is_false(self):
        q = queue(TenantPolicy(name="a"))
        t = q.offer("a", 1)
        assert q.cancel("a", t) is True
        assert q.cancel("a", t) is False

    def test_cancel_unknown_ticket_is_false(self):
        q = queue(TenantPolicy(name="a"))
        assert q.cancel("a", 999) is False


class TestDrain:
    def test_drain_pops_everything(self):
        q = queue(TenantPolicy(name="a"), TenantPolicy(name="b"))
        q.offer("a", 1)
        q.offer("b", 2)
        t = q.offer("b", 3)
        q.cancel("b", t)
        drained = q.drain()
        assert sorted(drained) == [("a", 1), ("b", 2)]
        assert q.queued() == 0

    def test_stats_track_served(self):
        q = queue(TenantPolicy(name="a"))
        q.offer("a", 1)
        q.next_ready({})
        st = q.stats()["a"]
        assert st == {"queued": 0, "shed": 0, "served": 1}
