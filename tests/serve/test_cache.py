"""Tests for the content-addressed result cache."""

import threading

import numpy as np

from repro.serve.cache import ResultCache, result_fingerprint

KEY = "ab" + "0" * 62
KEY2 = "cd" + "1" * 62


class TestMemoryLayer:
    def test_put_get_roundtrip(self):
        cache = ResultCache(None)
        cache.put(KEY, {"makespan": 1.5, "grid": np.arange(4)})
        got = cache.get(KEY)
        assert got["makespan"] == 1.5
        assert np.array_equal(got["grid"], np.arange(4))

    def test_miss_returns_none(self):
        cache = ResultCache(None)
        assert cache.get(KEY) is None
        assert KEY not in cache

    def test_hits_return_fresh_objects(self):
        # a tenant mutating its result must not poison later hits
        cache = ResultCache(None)
        cache.put(KEY, {"values": [1, 2, 3]})
        first = cache.get(KEY)
        first["values"].append(99)
        assert cache.get(KEY)["values"] == [1, 2, 3]

    def test_hit_rate_accounting(self):
        cache = ResultCache(None)
        assert cache.hit_rate == 0.0
        cache.get(KEY)  # miss
        cache.put(KEY, 1)
        cache.get(KEY)  # hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_put_is_idempotent(self):
        cache = ResultCache(None)
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 1})
        assert len(cache) == 1


class TestDurableLayer:
    def test_survives_a_fresh_cache_instance(self, tmp_path):
        a = ResultCache(tmp_path / "cache")
        result = {"executions": [("t", "site", 0.0, 1.0)], "makespan": 1.0}
        a.put(KEY, result, meta={"tenant": "alice"})
        b = ResultCache(tmp_path / "cache")  # simulates a new process
        got = b.get(KEY)
        assert result_fingerprint(got) == result_fingerprint(result)
        assert b.hits == 1

    def test_durable_without_memory_layer(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", memory=False)
        cache.put(KEY, {"v": 7})
        assert cache.get(KEY) == {"v": 7}
        assert KEY in cache

    def test_keys_shard_into_subdirectories(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(KEY, 1)
        cache.put(KEY2, 2)
        assert (tmp_path / "cache" / "ab" / KEY).is_dir()
        assert (tmp_path / "cache" / "cd" / KEY2).is_dir()
        assert len(ResultCache(tmp_path / "cache", memory=False)) == 2

    def test_concurrent_same_key_writers(self, tmp_path):
        # two identical in-flight submissions may finish together; both
        # put the same key and the survivor must stay readable
        cache = ResultCache(tmp_path / "cache", memory=False)
        errors = []

        def writer():
            try:
                for _ in range(10):
                    cache.put(KEY, {"v": 42})
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(KEY) == {"v": 42}


class TestFingerprint:
    def test_equal_values_equal_fingerprints(self):
        a = {"grid": np.arange(9).reshape(3, 3), "iters": 4}
        b = {"grid": np.arange(9).reshape(3, 3), "iters": 4}
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_different_values_differ(self):
        assert result_fingerprint({"v": 1}) != result_fingerprint({"v": 2})
