"""Tests for the async job service: futures, cancel, progress, SLOs.

The tests drive real asyncio services over the real substrates; each
async body runs under ``asyncio.run`` inside a sync test (no
pytest-asyncio dependency).
"""

import asyncio

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.job import Job, JobProgress
from repro.obs import MetricsRegistry, Tracer
from repro.serve import (
    JobCancelled,
    JobHandle,
    JobService,
    JobSpec,
    Rejected,
    ResultCache,
    TenantPolicy,
    register_workload,
    result_fingerprint,
)

#: fast mixed-substrate specs (distinct cache keys unless repeated)
FAST_SPECS = [
    JobSpec("easypap", "sandpile", {"size": 16, "grains": 200, "variant": "seq"}),
    JobSpec("easypap", "sandpile", {"size": 16, "grains": 300}),
    JobSpec("mapreduce", "wordcount", {"nsplits": 2, "lines_per_split": 2}),
    JobSpec("mapreduce", "wordcount", {"nsplits": 3, "num_reducers": 2}),
    JobSpec("simmpi", "world", {"nranks": 2}),
    JobSpec("simmpi", "world", {"world": "ring", "nranks": 3}),
    JobSpec("wrench", "montage", {"n_projections": 3, "n_difffits": 4}),
]

#: a sandpile with enough iterations to observe/cancel mid-flight
SLOW_SPEC = JobSpec("easypap", "sandpile", {"size": 24, "grains": 6000, "variant": "seq"})


class SlowCountJob(Job):
    """Deterministic steps with a real (tiny) duration; checkpointable."""

    name = "slow-count"
    substrate = "test"
    supports_checkpoint = True

    def __init__(self, n=200, delay=0.002):
        self.n, self.delay, self.i = n, delay, 0

    def step(self):
        import time

        if self.i >= self.n:
            return False
        time.sleep(self.delay)
        self.i += 1
        return self.i < self.n

    def result(self):
        return {"count": self.i}

    def progress(self):
        return JobProgress(steps_done=self.i, done=self.i >= self.n, steps_total=self.n)

    def checkpoint(self):
        return {"i": self.i}

    def restore(self, state):
        self.i = state["i"]


class FailingJob(Job):
    name = "doomed"
    substrate = "test"
    retryable_steps = True

    def step(self):
        raise SimulationError("wired to fail")

    def result(self):  # pragma: no cover - never completes
        return None

    def progress(self):
        return JobProgress(steps_done=0, done=False)


# registered once at import: service tests share the global spec registry
register_workload("test", "slow-count", lambda p: SlowCountJob(**p),
                  defaults={"n": 200, "delay": 0.002})
register_workload("test", "doomed", lambda p: FailingJob())


def run(coro):
    return asyncio.run(coro)


class TestSubmitBasics:
    def test_submit_and_await_result(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(FAST_SPECS[2], tenant="a")
                assert isinstance(handle, JobHandle)
                result = await handle.result()
                assert handle.status == JobHandle.DONE
                assert handle.done()
                return result

        result = run(body())
        assert result.pairs  # mapreduce JobResult

    def test_unknown_tenant_is_honestly_rejected(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                return await svc.submit(FAST_SPECS[2], tenant="ghost").result()

        r = run(body())
        assert isinstance(r, Rejected) and r.reason == "unknown-tenant"

    def test_invalid_spec_is_honestly_rejected(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                bad = JobSpec("easypap", "no-such-workload")
                return await svc.submit(bad, tenant="a").result()

        r = run(body())
        assert isinstance(r, Rejected) and r.reason == "invalid-spec"

    def test_failed_job_raises_its_error(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(JobSpec("test", "doomed"), tenant="a")
                with pytest.raises(SimulationError, match="wired to fail"):
                    await handle.result()
                assert handle.status == JobHandle.FAILED

        run(body())

    def test_submit_after_stop_is_rejected(self):
        async def body():
            svc = JobService([TenantPolicy(name="a")], workers=1)
            await svc.start()
            await svc.stop()
            return await svc.submit(FAST_SPECS[2], tenant="a").result()

        r = run(body())
        assert isinstance(r, Rejected) and r.reason == "shutting-down"

    def test_stop_without_drain_sheds_queued_jobs(self):
        async def body():
            svc = JobService([TenantPolicy(name="a", max_active=1, max_queued=16)],
                             workers=1)
            await svc.start()
            handles = [
                svc.submit(JobSpec("test", "slow-count", {"n": 50}), tenant="a")
                for _ in range(4)
            ]
            await asyncio.sleep(0.05)  # let the first job start
            await svc.stop(drain=False)
            return [await _outcome(h) for h in handles]

        outcomes = run(body())
        assert any(o == "shutting-down" for o in outcomes)


async def _outcome(handle):
    try:
        r = await handle.result()
    except JobCancelled:
        return "cancelled"
    except Exception:
        return "failed"
    return r.reason if isinstance(r, Rejected) else "ok"


class TestCancellation:
    def test_cancel_queued_job(self):
        async def body():
            pol = TenantPolicy(name="a", max_active=1, max_queued=8)
            async with JobService([pol], workers=1) as svc:
                running = svc.submit(JobSpec("test", "slow-count", {"n": 100}), tenant="a")
                queued = svc.submit(JobSpec("test", "slow-count", {"n": 101}), tenant="a")
                assert queued.cancel() is True
                with pytest.raises(JobCancelled, match="queued"):
                    await queued.result()
                assert queued.status == JobHandle.CANCELLED
                assert (await running.result())["count"] == 100

        run(body())

    def test_cancel_running_job_interrupts_mid_step(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(
                    JobSpec("test", "slow-count", {"n": 2000}), tenant="a"
                )
                async for progress in handle.progress():
                    if progress.steps_done >= 3:
                        handle.cancel()
                        break
                with pytest.raises(JobCancelled):
                    await handle.result()
                assert handle.status == JobHandle.CANCELLED

        run(body())

    def test_cancel_done_handle_is_false(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(FAST_SPECS[2], tenant="a")
                await handle.result()
                return handle.cancel()

        assert run(body()) is False


class TestProgressStreaming:
    def test_progress_snapshots_arrive_in_order(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(
                    JobSpec("test", "slow-count", {"n": 10}), tenant="a"
                )
                seen = [p.steps_done async for p in handle.progress()]
                result = await handle.result()
                return seen, result

        seen, result = run(body())
        assert result == {"count": 10}
        assert seen == sorted(seen)
        assert seen[-1] == 10

    def test_progress_on_done_handle_yields_nothing(self):
        async def body():
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                handle = svc.submit(FAST_SPECS[2], tenant="a")
                await handle.result()
                return [p async for p in handle.progress()]

        assert run(body()) == []


class TestAcceptance:
    """The ISSUE's integration scenario: >= 20 mixed jobs, 3 tenants."""

    def test_mixed_tenant_load(self, tmp_path):
        metrics = MetricsRegistry()
        tracer = Tracer(process="serve")
        cache = ResultCache(tmp_path / "cache")
        tenants = [
            TenantPolicy(name="alice", weight=3.0, max_active=2, max_queued=24),
            TenantPolicy(name="bob", weight=1.0, max_active=1, max_queued=4),
            TenantPolicy(name="carol", weight=1.0, max_active=2, max_queued=24),
        ]

        async def body():
            async with JobService(
                tenants, workers=3, cache=cache, metrics=metrics, tracer=tracer
            ) as svc:
                names = ["alice", "bob", "carol"]
                handles = [
                    svc.submit(FAST_SPECS[i % len(FAST_SPECS)], tenant=names[i % 3])
                    for i in range(21)
                ]
                outcomes = [await _outcome(h) for h in handles]
                # resubmit an identical job: must be served from the cache,
                # bit-identical to the fresh run that populated it
                fresh = next(
                    h for h in handles
                    if h.spec == FAST_SPECS[0] and h.status == JobHandle.DONE
                    and not h.cached
                )
                again = svc.submit(FAST_SPECS[0], tenant="carol")
                cached_result = await again.result()
                return outcomes, svc.stats(), fresh, again, cached_result

        outcomes, stats, fresh, again, cached_result = run(body())

        # every submission completed or was honestly rejected
        assert set(outcomes) <= {"ok", "queue-full"}
        assert outcomes.count("ok") >= 15

        # cache hit, bit identical
        assert again.cached is True
        fresh_result = asyncio.run(fresh.result())
        assert result_fingerprint(cached_result) == result_fingerprint(fresh_result)

        # per-tenant quotas were enforced throughout
        for pol in tenants:
            assert stats["peak_active"].get(pol.name, 0) <= pol.max_active

        # the SLO series are exposed with nonzero samples
        prom = metrics.to_prometheus()
        assert "serve_queue_latency_seconds_count" in prom
        assert "serve_job_seconds_count" in prom
        assert "serve_cache_hit_ratio" in prom
        qh = metrics.get("serve_queue_latency_seconds")
        assert sum(qh.count(tenant=t) for t in ("alice", "bob", "carol")) >= 15
        assert metrics.get("serve_job_seconds").samples()  # nonzero series
        assert metrics.get("serve_cache_hit_ratio").samples()[0]["value"] > 0

        # every completed job left a queued span, a run span, and flows
        run_spans = [s for s in tracer.spans() if s.name.startswith("serve:run:")]
        assert len(run_spans) >= 15
        assert len([f for f in tracer.flows() if f.name == "serve:admit"]) == len(run_spans)

    def test_weighted_tenant_is_not_starved(self):
        # one worker, equal arrival: the heavy tenant finishes jobs
        # without waiting for the light tenant's whole backlog
        async def body():
            pols = [
                TenantPolicy(name="heavy", weight=4.0, max_active=1, max_queued=32),
                TenantPolicy(name="light", weight=1.0, max_active=1, max_queued=32),
            ]
            order = []
            async with JobService(pols, workers=1) as svc:
                handles = []
                for i in range(4):
                    handles.append(
                        (svc.submit(JobSpec("test", "slow-count",
                                            {"n": 5, "delay": 0.001}), tenant="light"), "light"))
                    handles.append(
                        (svc.submit(JobSpec("test", "slow-count",
                                            {"n": 6 + i, "delay": 0.001}), tenant="heavy"), "heavy"))
                done = set()
                while len(done) < len(handles):
                    for h, who in handles:
                        if h.done() and id(h) not in done:
                            done.add(id(h))
                            order.append(who)
                    await asyncio.sleep(0.002)
            return order

        order = run(body())
        assert "heavy" in order[:3]  # heavy was not queued behind all of light


class TestConfigErrors:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            JobService([TenantPolicy(name="a")], workers=0)

    def test_double_start_rejected(self):
        async def body():
            svc = JobService([TenantPolicy(name="a")], workers=1)
            await svc.start()
            try:
                with pytest.raises(ConfigurationError):
                    await svc.start()
            finally:
                await svc.stop()

        run(body())
