"""Tests for the bench harness, service config files, and the serve CLI."""

import asyncio
import json

import pytest

from repro.cli import serve_main
from repro.common.errors import ConfigurationError
from repro.serve import (
    BenchReport,
    JobService,
    JobSpec,
    ServiceConfig,
    TenantPolicy,
    load_config,
    run_bench,
)

FAST_MIX = [
    JobSpec("mapreduce", "wordcount", {"nsplits": 2, "lines_per_split": 2}),
    JobSpec("simmpi", "world", {"nranks": 2}),
    JobSpec("wrench", "montage", {"n_projections": 3, "n_difffits": 4}),
]


class TestRunBench:
    def test_report_accounts_for_every_request(self):
        async def body():
            async with JobService(
                [TenantPolicy(name="a"), TenantPolicy(name="b")], workers=2
            ) as svc:
                return await run_bench(svc, requests=8, rate=200.0, seed=1,
                                       specs=FAST_MIX)

        report = run_async(body())
        assert report.requests == 8
        total = report.completed + report.rejected + report.failed + report.cancelled
        assert total == 8
        assert len(report.latencies) == report.completed
        assert report.cache_hits <= report.completed
        assert sum(sum(r.values()) for r in report.by_tenant.values()) == 8

    def test_seed_fixes_the_arrival_schedule(self):
        # same seed => same tenant/spec choices (latencies differ, counts
        # per tenant must not)
        async def one():
            async with JobService(
                [TenantPolicy(name="a"), TenantPolicy(name="b")], workers=2
            ) as svc:
                return await run_bench(svc, requests=10, rate=500.0, seed=7,
                                       specs=FAST_MIX)

        a, b = run_async(one()), run_async(one())
        assert sorted(a.by_tenant) == sorted(b.by_tenant)
        for tenant in a.by_tenant:
            assert sum(a.by_tenant[tenant].values()) == sum(b.by_tenant[tenant].values())

    def test_shedding_shows_up_in_the_report(self):
        async def body():
            pol = TenantPolicy(name="a", max_active=1, max_queued=1)
            async with JobService([pol], workers=1) as svc:
                return await run_bench(svc, requests=12, rate=5000.0, seed=0,
                                       specs=FAST_MIX, tenants=["a"])

        report = run_async(body())
        assert report.rejected > 0
        assert report.rejected_reasons.get("queue-full", 0) == report.rejected

    def test_render_and_percentiles(self):
        report = BenchReport(requests=4, rate=10.0, duration=2.0, completed=4,
                             latencies=[0.010, 0.020, 0.030, 0.040])
        assert report.percentile(0.0) == 0.010
        assert report.percentile(1.0) == 0.040
        assert report.throughput == 2.0
        text = report.render()
        assert "4 completed" in text and "latency p50/p90/p99" in text

    def test_validation(self):
        async def bad(**kw):
            async with JobService([TenantPolicy(name="a")], workers=1) as svc:
                await run_bench(svc, **kw)

        with pytest.raises(ConfigurationError, match="requests"):
            run_async(bad(requests=0))
        with pytest.raises(ConfigurationError, match="rate"):
            run_async(bad(rate=-1.0))
        with pytest.raises(ConfigurationError, match="at least one"):
            run_async(bad(specs=[]))


def run_async(coro):
    return asyncio.run(coro)


class TestServiceConfig:
    def test_from_dict_round_trip(self):
        cfg = ServiceConfig.from_dict({
            "workers": 3,
            "cache_dir": "cache",
            "tenants": [
                {"name": "alice", "weight": 3, "max_active": 2},
                {"name": "bob"},
            ],
        })
        assert cfg.workers == 3
        assert cfg.cache_dir == "cache"
        assert [t.name for t in cfg.tenants] == ["alice", "bob"]
        assert cfg.tenants[0].weight == 3

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config keys"):
            ServiceConfig.from_dict({"tenants": [{"name": "a"}], "bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown tenant keys"):
            ServiceConfig.from_dict({"tenants": [{"name": "a", "color": "red"}]})

    def test_empty_or_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one tenant"):
            ServiceConfig.from_dict({"tenants": []})
        with pytest.raises(ConfigurationError, match="workers"):
            ServiceConfig.from_dict({"tenants": [{"name": "a"}], "workers": 0})
        with pytest.raises(ConfigurationError, match="mapping"):
            ServiceConfig.from_dict(["not", "a", "dict"])

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "serve.json"
        path.write_text(json.dumps({"tenants": [{"name": "a"}], "workers": 4}))
        cfg = load_config(path)
        assert cfg.workers == 4 and cfg.tenants[0].name == "a"

    def test_load_missing_or_broken_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_config(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_config(bad)

    def test_yaml_is_gated_on_pyyaml(self, tmp_path):
        path = tmp_path / "serve.yaml"
        path.write_text("tenants:\n  - name: a\n")
        try:
            import yaml  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError, match="pyyaml"):
                load_config(path)
        else:  # pragma: no cover - only when pyyaml is installed
            assert load_config(path).tenants[0].name == "a"


class TestServeCli:
    def test_bench_writes_metrics_and_trace(self, tmp_path, capsys):
        prom = tmp_path / "serve.prom"
        trace = tmp_path / "serve-trace.json"
        rc = serve_main([
            "bench", "--requests", "6", "--rate", "200", "--workers", "2",
            "--metrics-prom", str(prom), "--trace-out", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered load" in out and "SLO" in out or "outcomes:" in out
        assert "serve_queue_latency_seconds" in prom.read_text()
        records = json.loads(trace.read_text())
        events = records["traceEvents"] if isinstance(records, dict) else records
        assert any(e.get("name", "").startswith("serve:") for e in events)

    def test_run_from_config_and_jobs_files(self, tmp_path, capsys):
        config = tmp_path / "config.json"
        config.write_text(json.dumps({
            "workers": 2,
            "cache_dir": str(tmp_path / "cache"),
            "tenants": [{"name": "alice", "weight": 2}, {"name": "bob"}],
        }))
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"tenant": "alice", "substrate": "mapreduce", "workload": "wordcount",
             "params": {"nsplits": 2, "lines_per_split": 2}},
            {"tenant": "bob", "substrate": "simmpi", "workload": "world",
             "params": {"nranks": 2}},
        ]))
        rc = serve_main(["run", "--config", str(config), "--jobs", str(jobs)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("done") == 2
        assert "[cache hit]" not in out
        # a second batch over the same durable cache dir hits for both rows
        rc = serve_main(["run", "--config", str(config), "--jobs", str(jobs)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("[cache hit]") == 2

    def test_submit_twice_hits_durable_cache(self, tmp_path, capsys):
        argv = [
            "submit", "--substrate", "wrench", "--workload", "montage",
            "--param", "n_projections=3", "--param", "n_difffits=4",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert serve_main(list(argv)) == 0
        first = capsys.readouterr().out
        assert "[cache hit]" not in first
        assert serve_main(list(argv)) == 0  # fresh service, same durable dir
        second = capsys.readouterr().out
        assert "[cache hit]" in second

    def test_submit_unknown_workload_exits_nonzero(self, capsys):
        rc = serve_main(["submit", "--substrate", "easypap", "--workload", "nope"])
        assert rc == 1
        assert "invalid-spec" in capsys.readouterr().err
