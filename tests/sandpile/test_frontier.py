"""Tests for the active-frontier (bounding-box) execution engine.

Property tests pin the windowed steppers to the oracle on arbitrary seeded
configurations — including the all-stable and single-active-cell edge cases
— and check that every windowed primitive (``sync_step``/``async_sweep``
with a window, ``unstable_bbox`` rescans) is bit-identical, step by step,
to its full-grid counterpart, sink accounting included.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.easypap.grid import Grid2D
from repro.sandpile.kernels import async_sweep, grow_window, sync_step, unstable_bbox
from repro.sandpile.model import center_pile
from repro.sandpile.simulate import run_to_fixpoint
from repro.sandpile.theory import stabilize
from repro.sandpile.vectorized import (
    FrontierAsyncStepper,
    FrontierSyncStepper,
    SyncVecStepper,
)

grids = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
    elements=st.integers(0, 12),
)

SETTINGS = dict(max_examples=30, deadline=None)


def _drive(stepper, limit=200_000):
    n = 0
    while stepper():
        n += 1
        assert n < limit
    return n


# -- fixpoint equivalence -----------------------------------------------------


@given(interior=grids)
@settings(**SETTINGS)
def test_frontier_sync_fixpoint_matches_oracle(interior):
    oracle = stabilize(Grid2D.from_interior(interior))
    g = Grid2D.from_interior(interior)
    _drive(FrontierSyncStepper(g))
    assert np.array_equal(g.interior, oracle.interior)
    assert g.sink_absorbed == oracle.sink_absorbed


@given(interior=grids)
@settings(**SETTINGS)
def test_frontier_async_fixpoint_matches_oracle(interior):
    oracle = stabilize(Grid2D.from_interior(interior))
    g = Grid2D.from_interior(interior)
    _drive(FrontierAsyncStepper(g))
    assert np.array_equal(g.interior, oracle.interior)
    assert g.sink_absorbed == oracle.sink_absorbed


@given(interior=grids)
@settings(**SETTINGS)
def test_frontier_sync_matches_vec_step_for_step(interior):
    """Same trajectory, not just the same fixpoint: iteration counts agree."""
    ref = Grid2D.from_interior(interior)
    ref_steps = _drive(SyncVecStepper(ref))
    g = Grid2D.from_interior(interior)
    steps = _drive(FrontierSyncStepper(g))
    assert steps == ref_steps
    assert np.array_equal(g.data, ref.data)
    assert g.sink_absorbed == ref.sink_absorbed


# -- edge cases ---------------------------------------------------------------


def test_all_stable_returns_false_immediately():
    g = Grid2D.from_interior(np.full((6, 6), 3, dtype=np.int64))
    before = g.data.copy()
    for cls in (FrontierSyncStepper, FrontierAsyncStepper):
        stepper = cls(g)
        assert stepper() is False
        assert np.array_equal(g.data, before)
        assert g.sink_absorbed == 0


def test_single_active_cell():
    interior = np.zeros((9, 9), dtype=np.int64)
    interior[4, 4] = 4
    oracle = stabilize(Grid2D.from_interior(interior))
    for cls in (FrontierSyncStepper, FrontierAsyncStepper):
        g = Grid2D.from_interior(interior)
        _drive(cls(g))
        assert np.array_equal(g.interior, oracle.interior)


def test_single_active_cell_on_border():
    interior = np.zeros((5, 5), dtype=np.int64)
    interior[0, 0] = 7
    oracle = stabilize(Grid2D.from_interior(interior))
    for cls in (FrontierSyncStepper, FrontierAsyncStepper):
        g = Grid2D.from_interior(interior)
        _drive(cls(g))
        assert np.array_equal(g.interior, oracle.interior)
        assert g.sink_absorbed == oracle.sink_absorbed


def test_reset_rescans_after_external_edit():
    g = Grid2D.from_interior(np.zeros((8, 8), dtype=np.int64))
    stepper = FrontierSyncStepper(g)
    assert stepper() is False
    g.interior[2, 2] = 5  # external edit the stepper did not see
    stepper.reset()
    _drive(stepper)
    assert g.interior[2, 2] < 4


# -- windowed primitives vs full-grid counterparts ----------------------------


@given(interior=grids)
@settings(**SETTINGS)
def test_windowed_sync_step_equals_full_step(interior):
    full = Grid2D.from_interior(interior)
    win = Grid2D.from_interior(interior)
    scratch_f = np.empty_like(full.data)
    scratch_w = np.empty_like(win.data)
    for _ in range(200_000):
        bbox = unstable_bbox(win.interior)
        c_full = sync_step(full, out=scratch_f)
        if bbox is None:
            assert not c_full
            break
        window = grow_window(bbox, win.height, win.width)
        c_win = sync_step(win, out=scratch_w, window=window)
        assert c_win == c_full
        assert np.array_equal(win.data, full.data)
        assert win.sink_absorbed == full.sink_absorbed
        full.drain_sink()
        win.drain_sink()
        if not c_full:
            break


@given(interior=grids)
@settings(**SETTINGS)
def test_windowed_async_sweep_equals_full_sweep(interior):
    full = Grid2D.from_interior(interior)
    win = Grid2D.from_interior(interior)
    for _ in range(200_000):
        bbox = unstable_bbox(win.interior)
        c_full = async_sweep(full)
        if bbox is None:
            assert not c_full
            break
        c_win = async_sweep(win, window=bbox)
        assert c_win == c_full
        assert np.array_equal(win.data, full.data)
        assert win.sink_absorbed == full.sink_absorbed
        if not c_full:
            break


class TestUnstableBbox:
    def test_stable_grid_is_none(self):
        assert unstable_bbox(np.full((5, 5), 3, dtype=np.int64)) is None

    def test_bbox_is_tight(self):
        a = np.zeros((8, 8), dtype=np.int64)
        a[2, 3] = 4
        a[5, 6] = 9
        assert unstable_bbox(a) == (2, 6, 3, 7)

    def test_window_restricted_scan(self):
        a = np.zeros((8, 8), dtype=np.int64)
        a[0, 0] = 4  # outside the window below: invisible to the scan
        a[4, 4] = 4
        assert unstable_bbox(a, (3, 8, 3, 8)) == (4, 5, 4, 5)
        assert unstable_bbox(a, (3, 8, 3, 8)) != unstable_bbox(a)

    def test_grow_window_clamps_to_grid(self):
        assert grow_window((0, 5, 3, 8), 8, 8) == (0, 6, 2, 8)
        assert grow_window((2, 3, 2, 3), 8, 8) == (1, 4, 1, 4)

    def test_grow_window_rejects_negative_pad(self):
        import pytest

        with pytest.raises(ValueError):
            grow_window((2, 3, 2, 3), 8, 8, pad=-1)

    # -- satellite regression: windows anchored at (or past) the grid edge.
    # Negative window starts used to flow into numpy slices, where they wrap
    # to the array's far end and silently drop boundary rows from the scan.

    def test_edge_anchored_window_sees_boundary_cells(self):
        a = np.zeros((6, 6), dtype=np.int64)
        a[0, 2] = 4  # unstable cell on the top boundary row
        assert unstable_bbox(a, (-1, 2, 1, 4)) == (0, 1, 2, 3)
        a2 = np.zeros((6, 6), dtype=np.int64)
        a2[5, 5] = 4  # unstable cell in the bottom-right corner
        assert unstable_bbox(a2, (4, 9, 4, 9)) == (5, 6, 5, 6)

    def test_fully_out_of_range_window_is_empty(self):
        a = np.full((6, 6), 9, dtype=np.int64)  # everything unstable...
        assert unstable_bbox(a, (-4, 0, 0, 6)) is None  # ...but not in view
        assert unstable_bbox(a, (6, 10, 0, 6)) is None

    def test_empty_and_inverted_windows_are_none(self):
        a = np.full((6, 6), 9, dtype=np.int64)
        assert unstable_bbox(a, (3, 3, 0, 6)) is None  # zero-height
        assert unstable_bbox(a, (4, 2, 0, 6)) is None  # inverted

    @given(interior=grids)
    @settings(**SETTINGS)
    def test_oversized_window_equals_full_scan(self, interior):
        h, w = interior.shape
        assert unstable_bbox(interior, (-3, h + 3, -3, w + 3)) == unstable_bbox(interior)

    @given(
        interior=grids,
        y0=st.integers(-4, 12),
        dy=st.integers(0, 14),
        x0=st.integers(-4, 12),
        dx=st.integers(0, 14),
    )
    @settings(**SETTINGS)
    def test_window_scan_equals_clamped_reference(self, interior, y0, dy, x0, dx):
        """Arbitrary (possibly overhanging) windows match a boolean-mask
        reference that only considers in-range cells inside the window."""
        h, w = interior.shape
        window = (y0, y0 + dy, x0, x0 + dx)
        mask = np.zeros_like(interior, dtype=bool)
        mask[max(y0, 0): max(y0 + dy, 0), max(x0, 0): max(x0 + dx, 0)] = True
        ys, xs = np.nonzero((interior >= 4) & mask)
        expected = None
        if ys.size:
            expected = (
                int(ys.min()),
                int(ys.max()) + 1,
                int(xs.min()),
                int(xs.max()) + 1,
            )
        assert unstable_bbox(interior, window) == expected


# -- registry integration -----------------------------------------------------


def test_run_to_fixpoint_frontier_variant():
    oracle = stabilize(center_pile(32, 32, 600))
    for kernel in ("sandpile", "asandpile"):
        g = center_pile(32, 32, 600)
        result = run_to_fixpoint(g, kernel, "frontier")
        assert np.array_equal(g.interior, oracle.interior)
        assert result.iterations > 0
        assert g.total_grains() + g.sink_absorbed == 600
