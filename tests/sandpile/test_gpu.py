"""Tests for the simulated GPU steppers."""

import numpy as np
import pytest

from repro.easypap.grid import Grid2D
from repro.sandpile.gpu import DeviceModel, GpuStepper, LazyGpuStepper, sync_step_region
from repro.sandpile.model import center_pile, sparse_random
from repro.sandpile.vectorized import SyncVecStepper


def drive(stepper):
    n = 0
    while stepper():
        n += 1
        assert n < 100_000
    return n


class TestDeviceModel:
    def test_launch_cost_formula(self):
        d = DeviceModel(launch_overhead=1e-3, cell_rate=1e6)
        assert d.launch_cost(1000) == pytest.approx(1e-3 + 1e-3)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel().launch_cost(-1)

    def test_transfer_cost(self):
        d = DeviceModel(transfer_rate=1e9)
        assert d.transfer_cost(1e9) == pytest.approx(1.0)

    def test_small_grids_launch_bound(self):
        d = DeviceModel()
        # a tiny launch is dominated by overhead
        assert d.launch_cost(100) < 2 * d.launch_overhead


class TestSyncStepRegion:
    def test_whole_grid_matches_vec(self):
        a = center_pile(12, 12, 300)
        b = a.copy()
        sa = SyncVecStepper(a)
        for _ in range(40):
            ca = sa()
            cb = sync_step_region(b, 0, 12, 0, 12)
            assert ca == cb
            assert np.array_equal(a.interior, b.interior)
            if not ca:
                break

    def test_restricted_region_exact_when_dilated(self):
        g = Grid2D(10, 10)
        g.interior[5, 5] = 8
        ref = g.copy()
        sync_step_region(ref, 0, 10, 0, 10)
        sync_step_region(g, 4, 7, 4, 7)  # active cell 5 dilated by 1
        assert np.array_equal(g.interior, ref.interior)

    def test_empty_region_noop(self):
        g = center_pile(8, 8, 100)
        assert sync_step_region(g, 3, 3, 0, 8) is False

    def test_out_of_bounds_rejected(self):
        g = Grid2D(4, 4)
        with pytest.raises(ValueError):
            sync_step_region(g, 0, 5, 0, 4)

    def test_border_loss_accounted(self):
        g = Grid2D(1, 1)
        g.interior[0, 0] = 7
        sync_step_region(g, 0, 1, 0, 1)
        assert g.interior[0, 0] == 3
        assert g.sink_absorbed == 4


class TestGpuStepper:
    def test_fixpoint(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(GpuStepper(g))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_virtual_time_accumulates(self):
        g = center_pile(16, 16, 64)
        s = GpuStepper(g)
        drive(s)
        assert s.virtual_time > 0
        assert s.launches == s.iterations
        assert s.cells_computed == s.launches * 256


class TestLazyGpuStepper:
    def test_fixpoint(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(LazyGpuStepper(g))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_computes_fewer_cells_on_sparse(self):
        g1 = sparse_random(64, 64, n_piles=1, pile_grains=256, seed=2)
        g2 = g1.copy()
        full, lazy = GpuStepper(g1), LazyGpuStepper(g2)
        drive(full)
        drive(lazy)
        assert np.array_equal(g1.interior, g2.interior)
        assert lazy.cells_computed < full.cells_computed / 4

    def test_stable_grid_zero_launches(self):
        from repro.sandpile.model import random_uniform

        g = random_uniform(8, 8, max_grains=3, seed=1)
        s = LazyGpuStepper(g)
        assert s() is False
        assert s.launches == 0

    def test_edge_pile_handled(self):
        g = Grid2D(8, 8)
        g.interior[0, 0] = 40
        ref = g.copy()
        drive(SyncVecStepper(ref))
        drive(LazyGpuStepper(g))
        assert np.array_equal(g.interior, ref.interior)
