"""Tests for the SOC avalanche analysis."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.grid import Grid2D
from repro.sandpile.analysis import (
    avalanche_statistics,
    drive_avalanches,
    toppling_profile,
)
from repro.sandpile.model import center_pile, random_uniform, uniform
from repro.sandpile.theory import stabilize


class TestDriveAvalanches:
    def test_counts_and_stability(self):
        g = uniform(16, 16, 6)
        stats = drive_avalanches(g, 50, seed=1)
        assert stats.count == 50
        assert g.is_stable()  # every drop fully relaxed

    def test_zero_drops(self):
        g = uniform(8, 8, 2)
        stats = drive_avalanches(g, 0)
        assert stats.count == 0
        assert stats.mean_size == 0.0
        assert stats.max_size == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            drive_avalanches(uniform(4, 4, 1), -1)

    def test_deterministic(self):
        a = drive_avalanches(uniform(12, 12, 6), 30, seed=5)
        b = drive_avalanches(uniform(12, 12, 6), 30, seed=5)
        assert [x.size for x in a.avalanches] == [x.size for x in b.avalanches]

    def test_grain_conservation_per_avalanche(self):
        g = uniform(12, 12, 6)
        stabilize(g)
        total = g.total_grains() + g.sink_absorbed
        stats = drive_avalanches(g, 20, seed=2, stabilize_first=False)
        # each drop adds one grain; sink absorbs whatever leaves
        assert g.total_grains() + g.sink_absorbed == total + 20
        assert sum(a.grains_lost for a in stats.avalanches) >= 0

    def test_subcritical_pile_mostly_quiescent(self):
        g = Grid2D(12, 12)  # empty: drops almost never topple
        stats = drive_avalanches(g, 40, seed=3)
        assert stats.quiescent_fraction > 0.9

    def test_critical_pile_produces_large_avalanches(self):
        stats = avalanche_statistics(24, 24, n_drops=400, seed=4)
        assert stats.max_size > 50  # system-spanning events exist
        assert stats.quiescent_fraction < 0.9

    def test_avalanche_fields_consistent(self):
        stats = avalanche_statistics(12, 12, n_drops=100, seed=5)
        for a in stats.avalanches:
            assert a.size >= 0 and a.area >= 0 and a.duration >= 0
            assert a.area <= 144
            assert a.size >= a.area  # each toppled cell topples >= once
            if a.size == 0:
                assert a.area == 0 and a.duration == 0


class TestStatistics:
    @pytest.fixture(scope="class")
    def critical_stats(self):
        return avalanche_statistics(32, 32, n_drops=1500, seed=0)

    def test_power_law_slope_flat(self, critical_stats):
        # critical piles have broad size distributions: ccdf slope well
        # above an exponential's effective plummet; expect roughly -0.6..-0.05
        slope = critical_stats.power_law_slope()
        assert -1.0 < slope < 0.0

    def test_histogram_covers_all_sizes(self, critical_stats):
        rows = critical_stats.size_histogram()
        assert rows
        counted = sum(c for _, _, c in rows)
        nonzero = int((critical_stats.sizes() > 0).sum())
        assert counted == nonzero

    def test_slope_requires_enough_data(self):
        stats = avalanche_statistics(8, 8, n_drops=5, seed=1)
        with pytest.raises(ConfigurationError):
            stats.power_law_slope(min_size=10**9)

    def test_empty_histogram(self):
        g = Grid2D(6, 6)
        stats = drive_avalanches(g, 3, seed=0)
        if (stats.sizes() == 0).all():
            assert stats.size_histogram() == []


class TestTopplingProfile:
    def test_profile_matches_stabilization(self):
        g = center_pile(21, 21, 2000)
        expected = stabilize(g.copy())
        profile = toppling_profile(g)
        assert np.array_equal(g.interior, expected.interior)
        assert profile.sum() > 0

    def test_center_pile_profile_radially_monotone(self):
        g = center_pile(21, 21, 2000)
        profile = toppling_profile(g)
        c = 10
        # along the axis from the centre outwards, topplings never increase
        row = profile[c, c:]
        assert all(b <= a for a, b in zip(row, row[1:]))

    def test_stable_grid_zero_profile(self):
        g = random_uniform(8, 8, max_grains=3, seed=1)
        assert toppling_profile(g).sum() == 0

    def test_profile_symmetry(self):
        g = center_pile(15, 15, 888)
        profile = toppling_profile(g)
        assert np.array_equal(profile, profile.T)
        assert np.array_equal(profile, profile[::-1, :])
