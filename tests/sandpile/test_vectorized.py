"""Tests for the whole-grid and split vectorised steppers."""

import numpy as np
import pytest

from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.vectorized import AsyncVecStepper, SplitSyncStepper, SyncVecStepper


def drive(stepper):
    n = 0
    while stepper():
        n += 1
        assert n < 100_000
    return n


class TestSyncVecStepper:
    def test_fixpoint(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(SyncVecStepper(g))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_iteration_counter(self):
        g = center_pile(8, 8, 16)
        s = SyncVecStepper(g)
        n = drive(s)
        assert s.iterations == n + 1  # the final no-change step also counts


class TestAsyncVecStepper:
    def test_fixpoint(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(AsyncVecStepper(g))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_stable_grid_noop(self):
        g = random_uniform(8, 8, max_grains=3, seed=0)
        assert AsyncVecStepper(g)() is False


class TestSplitSyncStepper:
    @pytest.mark.parametrize("tile_size", [4, 8])
    def test_fixpoint(self, tile_size, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(SplitSyncStepper(g, tile_size))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_inner_outer_counters(self):
        g = center_pile(16, 16, 256)
        s = SplitSyncStepper(g, 4)  # 4x4 tiles: 4 inner, 12 outer
        drive(s)
        assert s.inner_tile_updates > 0
        assert s.outer_tile_updates > 0
        # per iteration: 4 inner vs 12 outer
        assert s.outer_tile_updates == 3 * s.inner_tile_updates

    def test_grid_with_no_inner_tiles(self):
        g = center_pile(8, 8, 64)
        s = SplitSyncStepper(g, 4)  # 2x2 tiles, all touch the border
        drive(s)
        assert s.inner_tile_updates == 0
        assert g.is_stable()

    def test_conservation(self):
        g = center_pile(16, 16, 2000)
        total0 = g.total_grains()
        s = SplitSyncStepper(g, 4)
        while s():
            assert g.total_grains() + g.sink_absorbed == total0

    def test_matches_plain_vec_step_by_step(self):
        a = random_uniform(16, 16, max_grains=20, seed=4)
        b = a.copy()
        sa, sb = SyncVecStepper(a), SplitSyncStepper(b, 4)
        for _ in range(50):
            ca, cb = sa(), sb()
            assert ca == cb
            assert np.array_equal(a.interior, b.interior)
            if not ca:
                break
