"""Tests for the tiled parallel steppers."""

import numpy as np
import pytest

from repro.easypap.executor import ProcessBackend, SimulatedBackend, ThreadBackend
from repro.easypap.monitor import Trace
from repro.sandpile.model import center_pile, random_uniform, sparse_random
from repro.sandpile.omp import TiledAsyncStepper, TiledSyncStepper, wave_partition
from repro.easypap.tiling import TileGrid
from repro.sandpile.theory import stabilize


def drive(stepper, max_iter=100_000):
    n = 0
    while stepper():
        n += 1
        assert n < max_iter
    return n


class TestWavePartition:
    def test_four_colors(self):
        tg = TileGrid(16, 16, 4)
        waves = wave_partition(list(tg))
        assert len(waves) == 4
        assert sum(len(w) for w in waves) == len(tg)

    def test_within_wave_no_adjacent_tiles(self):
        tg = TileGrid(32, 32, 4)
        for wave in wave_partition(list(tg)):
            coords = {(t.ty, t.tx) for t in wave}
            for ty, tx in coords:
                assert (ty + 1, tx) not in coords
                assert (ty, tx + 1) not in coords

    def test_single_row(self):
        tg = TileGrid(4, 16, 4)
        waves = wave_partition(list(tg))
        assert len(waves) == 2


class TestTiledSyncStepper:
    @pytest.mark.parametrize("lazy", [False, True])
    @pytest.mark.parametrize("tile_size", [4, 5, 16])
    def test_fixpoint_matches_oracle(self, lazy, tile_size, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(TiledSyncStepper(g, tile_size, lazy=lazy))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_conservation(self):
        g = center_pile(16, 16, 800)
        total0 = g.total_grains()
        stepper = TiledSyncStepper(g, 4)
        while stepper():
            assert g.total_grains() + g.sink_absorbed == total0

    def test_lazy_skips_tiles_on_sparse_config(self):
        g = sparse_random(64, 64, n_piles=2, pile_grains=64, seed=3)
        stepper = TiledSyncStepper(g, 8, lazy=True)
        drive(stepper)
        assert stepper.tiles_skipped > stepper.tiles_computed

    def test_eager_never_skips(self):
        g = center_pile(16, 16, 64)
        stepper = TiledSyncStepper(g, 8)
        drive(stepper)
        assert stepper.tiles_skipped == 0

    def test_simulated_backend_same_result(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        backend = SimulatedBackend(4, "dynamic")
        drive(TiledSyncStepper(g, 6, backend=backend))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_thread_backend_same_result(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(TiledSyncStepper(g, 8, backend=ThreadBackend(4)))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_trace_records_tiles(self):
        trace = Trace()
        g = center_pile(16, 16, 64)
        backend = SimulatedBackend(2, "static", trace=trace)
        drive(TiledSyncStepper(g, 8, backend=backend))
        assert len(trace) > 0
        owners = trace.tile_owner_map(2, 2, 0)
        assert (owners >= 0).all()  # eager: every tile computed at iteration 0


class TestTiledAsyncStepper:
    @pytest.mark.parametrize("lazy", [False, True])
    @pytest.mark.parametrize("tile_size", [4, 7, 12])
    def test_fixpoint_matches_oracle(self, lazy, tile_size, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(TiledAsyncStepper(g, tile_size, lazy=lazy))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_center_pile_matches_oracle(self):
        g = center_pile(24, 24, 3000)
        expected = stabilize(g.copy())
        drive(TiledAsyncStepper(g, 6, lazy=True))
        assert np.array_equal(g.interior, expected.interior)

    def test_conservation(self):
        g = center_pile(16, 16, 500)
        total0 = g.total_grains()
        stepper = TiledAsyncStepper(g, 4, lazy=True)
        while stepper():
            assert g.total_grains() + g.sink_absorbed == total0

    def test_async_converges_in_fewer_iterations_than_sync(self):
        # tile-local relaxation moves grains many cells per iteration
        g1 = center_pile(32, 32, 4000)
        g2 = g1.copy()
        n_async = drive(TiledAsyncStepper(g1, 8))
        n_sync = drive(TiledSyncStepper(g2, 8))
        assert n_async < n_sync

    def test_simulated_backend_same_result(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        backend = SimulatedBackend(4, "guided", chunk=1)
        drive(TiledAsyncStepper(g, 6, backend=backend, lazy=True))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_thread_backend_waves_safe(self, small_random_grid, small_random_stable):
        # threads + 4-colour waves: adjacent tiles never run concurrently,
        # so the fixpoint must still be exact
        g = small_random_grid.copy()
        drive(TiledAsyncStepper(g, 6, backend=ThreadBackend(4)))
        assert np.array_equal(g.interior, small_random_stable.interior)


needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)


@needs_processes
class TestProcessBackendSteppers:
    """Real worker processes over shared-memory planes: fixpoints must be
    bit-identical to the sequential reference (Dhar's abelian property plus
    deterministic synchronous updates)."""

    @pytest.mark.parametrize("policy", ["static", "dynamic"])
    @pytest.mark.parametrize("lazy", [False, True])
    def test_sync_fixpoint_bit_identical(self, policy, lazy, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        stepper = TiledSyncStepper(g, 6, backend=ProcessBackend(2, policy), lazy=lazy)
        try:
            drive(stepper)
        finally:
            stepper.close()
        assert np.array_equal(g.interior, small_random_stable.interior)

    @pytest.mark.parametrize("policy", ["static", "guided"])
    def test_async_fixpoint_bit_identical(self, policy, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        stepper = TiledAsyncStepper(g, 6, backend=ProcessBackend(2, policy))
        try:
            drive(stepper)
        finally:
            stepper.close()
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_conservation_through_shared_planes(self):
        g = center_pile(16, 16, 800)
        total0 = g.total_grains()
        stepper = TiledSyncStepper(g, 4, backend=ProcessBackend(2, "static"))
        try:
            while stepper():
                assert g.total_grains() + g.sink_absorbed == total0
        finally:
            stepper.close()

    def test_trace_has_stable_worker_lanes(self, small_random_grid):
        trace = Trace()
        g = small_random_grid.copy()
        stepper = TiledSyncStepper(g, 6, backend=ProcessBackend(2, "dynamic", trace=trace))
        try:
            for _ in range(5):
                stepper()
        finally:
            stepper.close()
        workers = {r.worker for r in trace.records}
        assert workers <= {0, 1}
        assert all(r.end >= r.start for r in trace.records)

    def test_close_detaches_grid_from_shared_memory(self, small_random_grid):
        g = small_random_grid.copy()
        stepper = TiledSyncStepper(g, 6, backend=ProcessBackend(2))
        stepper()
        stepper.close()
        stepper.close()  # idempotent
        # the grid survived detachment and stays fully usable
        assert g.total_grains() >= 0
        g.interior[0, 0] += 1
        assert g.total_grains() >= 1


class TestZeroRebuildBatches:
    """Task closures, TileTask specs, and full batches are built once at
    construction; iterations must not construct new ones."""

    @staticmethod
    def _count_tiletask(monkeypatch):
        import repro.sandpile.omp as omp_mod

        real = omp_mod.TileTask
        counter = {"n": 0}

        def counting(*args, **kwargs):
            counter["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(omp_mod, "TileTask", counting)
        return counter

    @needs_processes
    @pytest.mark.parametrize("lazy", [False, True])
    def test_process_sync_iterations_build_no_specs(self, monkeypatch, lazy):
        counter = self._count_tiletask(monkeypatch)
        g = center_pile(32, 32, 2_000)
        stepper = TiledSyncStepper(g, 8, backend=ProcessBackend(2, "static"), lazy=lazy)
        try:
            built_at_init = counter["n"]
            assert built_at_init > 0  # the spec caches exist
            for _ in range(10):
                stepper()
            assert counter["n"] == built_at_init
        finally:
            stepper.close()

    @needs_processes
    def test_process_async_iterations_build_no_specs(self, monkeypatch):
        counter = self._count_tiletask(monkeypatch)
        g = center_pile(32, 32, 2_000)
        stepper = TiledAsyncStepper(g, 8, backend=ProcessBackend(2, "static"))
        try:
            built_at_init = counter["n"]
            assert built_at_init > 0
            for _ in range(10):
                stepper()
            assert counter["n"] == built_at_init
        finally:
            stepper.close()

    def test_in_process_backends_never_build_specs(self, monkeypatch):
        # closures suffice in-process: no TileTask should ever be constructed
        counter = self._count_tiletask(monkeypatch)
        g = center_pile(24, 24, 1_000)
        stepper = TiledSyncStepper(g, 8, backend=SimulatedBackend(4, "dynamic"), lazy=True)
        for _ in range(10):
            stepper()
        assert counter["n"] == 0

    def test_full_batch_object_reused_across_iterations(self):
        g = center_pile(24, 24, 1_000)
        stepper = TiledSyncStepper(g, 8, backend=SimulatedBackend(2, "static"))
        all_tiles = stepper._all_tiles
        first = stepper._batch_for(all_tiles)
        stepper()
        assert stepper._batch_for(all_tiles) is first

    def test_task_closures_read_live_planes(self):
        # the cached closures must follow the plane flip, or iteration 2
        # would recompute iteration 1's input
        g = center_pile(16, 16, 300)
        oracle = stabilize(center_pile(16, 16, 300))
        stepper = TiledSyncStepper(g, 4, backend=ThreadBackend(2))
        drive(stepper)
        assert np.array_equal(g.interior, oracle.interior)

    def test_run_to_fixpoint_closes_backend(self, small_random_grid, small_random_stable):
        from repro.sandpile.simulate import run_to_fixpoint

        g = small_random_grid.copy()
        run_to_fixpoint(g, "sandpile", "omp", backend="process", nworkers=2, tile_size=6)
        assert np.array_equal(g.interior, small_random_stable.interior)
