"""Tests for the parallel active-frontier stepper (dynamic chunk plans).

Pins :class:`~repro.sandpile.pfrontier.ParallelFrontierStepper` to the
oracle and to the single-worker frontier stepper step-for-step, and checks
the scheduling contract the design depends on: batches *select from*
construction-time tasks/specs (zero rebuild), partial batches are flagged
``dynamic`` so the backend plans them without touching the LRU cache, and
the all-tiles batch is one cached object.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.easypap.executor import ProcessBackend, SequentialBackend
from repro.easypap.grid import Grid2D
from repro.easypap.tiling import TileGrid
from repro.sandpile.compiled import HAVE_NUMBA, sync_window, sync_window_numpy
from repro.sandpile.kernels import sync_tile_nc
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.pfrontier import ParallelFrontierStepper
from repro.sandpile.simulate import run_to_fixpoint
from repro.sandpile.theory import stabilize
from repro.sandpile.vectorized import FrontierSyncStepper

grids = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
    elements=st.integers(0, 12),
)

SETTINGS = dict(max_examples=30, deadline=None)

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)


def _drive(stepper, limit=200_000):
    n = 0
    while stepper():
        n += 1
        assert n < limit
    return n


class _RecordingBackend(SequentialBackend):
    """Sequential backend that keeps every batch it was handed."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def run(self, batch, iteration=0):
        self.batches.append(batch)
        return super().run(batch, iteration=iteration)


# -- correctness --------------------------------------------------------------


@given(interior=grids)
@settings(**SETTINGS)
def test_fixpoint_matches_oracle(interior):
    oracle = stabilize(Grid2D.from_interior(interior))
    g = Grid2D.from_interior(interior)
    with ParallelFrontierStepper(g, tile_size=3) as stepper:
        _drive(stepper)
    assert np.array_equal(g.interior, oracle.interior)
    assert g.sink_absorbed == oracle.sink_absorbed


@given(interior=grids)
@settings(**SETTINGS)
def test_matches_frontier_sync_step_for_step(interior):
    """Same trajectory as the single-worker frontier stepper, not just the
    same fixpoint: per-step change flags, planes, and sink all agree."""
    ref = Grid2D.from_interior(interior)
    ref_stepper = FrontierSyncStepper(ref)
    g = Grid2D.from_interior(interior)
    with ParallelFrontierStepper(g, tile_size=4) as stepper:
        for _ in range(200_000):
            c_ref = ref_stepper()
            c = stepper()
            assert c == c_ref
            assert np.array_equal(g.data, ref.data)
            assert g.sink_absorbed == ref.sink_absorbed
            if not c:
                break


def test_two_piles_match_oracle():
    g = Grid2D(33, 47)
    g.interior[3, 5] = 900
    g.interior[28, 40] = 700
    oracle = stabilize(g.copy())
    with ParallelFrontierStepper(g, tile_size=8) as stepper:
        _drive(stepper)
    assert np.array_equal(g.interior, oracle.interior)
    assert g.sink_absorbed == oracle.sink_absorbed


def test_all_stable_returns_false_immediately():
    g = Grid2D.from_interior(np.full((6, 6), 3, dtype=np.int64))
    before = g.data.copy()
    with ParallelFrontierStepper(g, tile_size=4) as stepper:
        assert stepper() is False
        assert np.array_equal(g.data, before)
    assert g.sink_absorbed == 0


def test_reset_rescans_after_external_edit():
    g = Grid2D.from_interior(np.zeros((8, 8), dtype=np.int64))
    with ParallelFrontierStepper(g, tile_size=4) as stepper:
        assert stepper() is False
        g.interior[2, 2] = 5  # external edit the stepper did not see
        stepper.reset()
        _drive(stepper)
    assert g.interior[2, 2] < 4


# -- scheduling contract ------------------------------------------------------


def test_partial_batches_select_not_rebuild():
    """A shrinking frontier reuses construction-time tasks and specs by
    identity — the zero-rebuild invariant extended to dynamic tile sets."""
    g = center_pile(24, 24, 160)
    be = _RecordingBackend()
    stepper = ParallelFrontierStepper(g, tile_size=8, backend=be)
    _drive(stepper)
    assert be.batches, "stepper never submitted work"
    partial = [b for b in be.batches if len(b) < len(stepper._all_tiles)]
    assert partial, "a 160-grain pile on a 24x24 grid must have partial batches"
    for batch in partial:
        assert batch.dynamic
        for task, tile, spec in zip(batch.tasks, batch.tiles, batch.spec):
            assert task is stepper._tasks[tile.index]
            assert spec is stepper._specs[tile.index]


def test_full_batch_is_cached_whole():
    g = Grid2D.from_interior(np.full((16, 16), 6, dtype=np.int64))
    be = _RecordingBackend()
    stepper = ParallelFrontierStepper(g, tile_size=8, backend=be)
    stepper()
    stepper()
    full = [b for b in be.batches if len(b) == len(stepper._all_tiles)]
    assert len(full) >= 2, "a saturated grid must submit full batches"
    assert full[0] is full[1], "the all-tiles batch must be one cached object"
    assert not full[0].dynamic


def test_counters_and_window_log():
    g = center_pile(32, 32, 400)
    with ParallelFrontierStepper(g, tile_size=8) as stepper:
        n = _drive(stepper)
    # the final call sees a stable grid and submits nothing
    assert stepper.iterations == n + 1
    assert len(stepper.window_log) == n
    assert stepper.tiles_computed > 0
    total = len(stepper.tiles)
    for i, (iteration, window, active) in enumerate(stepper.window_log):
        assert iteration == i
        y0, y1, x0, x1 = window
        assert 0 <= y0 < y1 <= g.height and 0 <= x0 < x1 <= g.width
        assert 1 <= active <= total
    assert stepper.window_cells == sum(
        (w[1] - w[0]) * (w[3] - w[2]) for _, w, _ in stepper.window_log
    )


# -- process backend ----------------------------------------------------------


@needs_processes
def test_process_backend_bit_identical():
    base = random_uniform(37, 41, max_grains=10, seed=23)
    ref = base.copy()
    ref_steps = _drive(FrontierSyncStepper(ref))
    g = base.copy()
    with ParallelFrontierStepper(
        g, tile_size=8, backend=ProcessBackend(2, "dynamic")
    ) as stepper:
        steps = _drive(stepper)
    assert steps == ref_steps
    assert np.array_equal(g.interior, ref.interior)
    assert g.sink_absorbed == ref.sink_absorbed


@needs_processes
def test_close_detaches_shared_memory():
    g = center_pile(16, 16, 60)
    stepper = ParallelFrontierStepper(g, tile_size=8, backend=ProcessBackend(2))
    _drive(stepper)
    final = g.interior.copy()
    stepper.close()
    stepper.close()  # idempotent
    # the grid survives pool shutdown: its plane was copied out of shm
    assert np.array_equal(g.interior, final)
    g.interior[0, 0] = 1  # still writable after detach


@needs_processes
def test_registry_variant_runs_on_processes():
    oracle = stabilize(center_pile(32, 32, 600))
    g = center_pile(32, 32, 600)
    result = run_to_fixpoint(
        g, "sandpile", "pfrontier", tile_size=8, nworkers=2, policy="dynamic"
    )
    assert np.array_equal(g.interior, oracle.interior)
    assert result.iterations > 0
    assert g.total_grains() + g.sink_absorbed == 600


# -- compiled path (numba optional, NumPy fallback always present) ------------


@given(interior=grids)
@settings(**SETTINGS)
def test_sync_window_numpy_matches_tile_kernel(interior):
    g = Grid2D.from_interior(interior)
    dst_a = g.data.copy()
    dst_b = g.data.copy()
    for tile in TileGrid(g.height, g.width, 4):
        sync_tile_nc(g.data, dst_a, tile)
        sync_window_numpy(g.data, dst_b, tile.y0, tile.y1, tile.x0, tile.x1)
    assert np.array_equal(dst_a, dst_b)


def test_compiled_stepper_matches_oracle():
    base = center_pile(24, 24, 300)
    oracle = stabilize(base.copy())
    g = base.copy()
    with ParallelFrontierStepper(g, tile_size=8, use_compiled=True) as stepper:
        _drive(stepper)
    assert np.array_equal(g.interior, oracle.interior)
    assert g.sink_absorbed == oracle.sink_absorbed


def test_sync_window_fallback_wiring():
    if HAVE_NUMBA:
        assert sync_window is not sync_window_numpy
    else:
        assert sync_window is sync_window_numpy
