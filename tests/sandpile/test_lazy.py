"""Tests for lazy tile tracking."""

import numpy as np

from repro.easypap.tiling import TileGrid
from repro.sandpile.lazy import LazyFlags


class TestInitialState:
    def test_everything_dirty_at_start(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        assert len(flags.active_tiles()) == len(tg)


class TestPropagation:
    def test_change_activates_neighbourhood(self):
        tg = TileGrid(16, 16, 4)  # 4x4 tiles
        flags = LazyFlags(tg)
        flags.active_tiles()
        # only the centre tile (1,1) changed
        flags.mark(tg.at(1, 1), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_diagonal_not_activated(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(1, 1), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert (0, 0) not in active  # 4-connected stencil only

    def test_corner_tile_neighbourhood_clipped(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(0, 0), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(0, 0), (0, 1), (1, 0)}

    def test_no_changes_quiesces(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        assert not flags.advance()
        assert flags.active_tiles() == []
        assert flags.dirty_fraction == 0.0


class TestBookkeeping:
    def test_counters_commit_at_advance(self):
        tg = TileGrid(8, 8, 4)  # 4 tiles
        flags = LazyFlags(tg)
        flags.active_tiles()           # 4 active, not yet committed
        assert flags.computed_total == 0
        flags.mark(tg.at(0, 0), True)
        flags.advance()                # commits 4 computed / 0 skipped
        assert flags.computed_total == 4
        assert flags.skipped_total == 0
        flags.active_tiles()           # 3 active (corner + 2 neighbours)
        flags.advance()                # commits 3 computed / 1 skipped
        assert flags.computed_total == 7
        assert flags.skipped_total == 1

    def test_repeated_queries_do_not_inflate_counters(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        for _ in range(5):
            flags.active_tiles()       # querying is free; only advance commits
        flags.advance()
        assert flags.computed_total == 4
        assert flags.skipped_total == 0

    def test_advance_without_query_commits_nothing(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.advance()                # nothing was queried this iteration
        assert flags.computed_total == 0
        assert flags.skipped_total == 0

    def test_reset_marks_all_dirty(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.advance()  # everything quiet
        flags.reset()
        assert len(flags.active_tiles()) == len(tg)

    def test_mark_false_is_noop(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(0, 0), False)
        assert not flags.advance()


def _brute_force_active(tg: TileGrid, changed: set[tuple[int, int]]) -> set[tuple[int, int]]:
    """Reference dilation: a tile is active iff it or a 4-neighbour changed."""
    active = set()
    for ty, tx in changed:
        for dy, dx in ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)):
            ny, nx = ty + dy, tx + dx
            if 0 <= ny < tg.tiles_y and 0 <= nx < tg.tiles_x:
                active.add((ny, nx))
    return active


class TestVectorizedDilation:
    def test_matches_brute_force_on_random_patterns(self):
        rng = np.random.default_rng(7)
        tg = TileGrid(24, 24, 4)  # 6x6 tiles
        for _ in range(20):
            flags = LazyFlags(tg)
            flags.advance()  # clear the initial everything-dirty state
            changed = {
                (int(ty), int(tx))
                for ty, tx in zip(
                    rng.integers(0, tg.tiles_y, 5), rng.integers(0, tg.tiles_x, 5)
                )
            }
            for ty, tx in changed:
                flags.mark(tg.at(ty, tx), True)
            flags.advance()
            active = {(t.ty, t.tx) for t in flags.active_tiles()}
            assert active == _brute_force_active(tg, changed)

    def test_active_indices_row_major(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        idx = flags.active_indices()
        assert list(idx) == sorted(idx)
        assert [t.index for t in flags.active_tiles()] == list(idx)


class TestMarkFromDiff:
    def _frames(self, tg: TileGrid):
        src = np.zeros((tg.height + 2, tg.width + 2), dtype=np.int64)
        return src, src.copy()

    def test_single_cell_diff_activates_containing_tile(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        src, dst = self._frames(tg)
        dst[1 + 5, 1 + 6] = 3  # interior cell (5, 6) -> tile (1, 1)
        flags.mark_from_diff(src, dst)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_no_diff_quiesces(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        src, dst = self._frames(tg)
        flags.mark_from_diff(src, dst)
        assert not flags.advance()
        assert flags.active_tiles() == []

    def test_ragged_edge_tiles(self):
        # 10x10 grid with 4-wide tiles -> edge tiles are 4x2 / 2x4 / 2x2
        tg = TileGrid(10, 10, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        src, dst = self._frames(tg)
        dst[1 + 9, 1 + 9] = 1  # bottom-right corner cell -> ragged tile (2, 2)
        flags.mark_from_diff(src, dst)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(2, 2), (1, 2), (2, 1)}

    def test_diff_outside_need_window_ignored(self):
        # mark_from_diff only scans the current need window: after quiescing,
        # a diff that the active set cannot have produced is not scanned
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(0, 0), True)
        flags.advance()  # need window = tiles (0,0),(0,1),(1,0)
        flags.active_tiles()
        src, dst = self._frames(tg)
        dst[1 + 1, 1 + 1] = 2   # inside the window: seen
        dst[1 + 14, 1 + 14] = 2  # tile (3,3), outside the window: not scanned
        flags.mark_from_diff(src, dst)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert (3, 3) not in active
        assert (0, 0) in active
