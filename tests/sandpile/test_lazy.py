"""Tests for lazy tile tracking."""

from repro.easypap.tiling import TileGrid
from repro.sandpile.lazy import LazyFlags


class TestInitialState:
    def test_everything_dirty_at_start(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        assert len(flags.active_tiles()) == len(tg)


class TestPropagation:
    def test_change_activates_neighbourhood(self):
        tg = TileGrid(16, 16, 4)  # 4x4 tiles
        flags = LazyFlags(tg)
        flags.active_tiles()
        # only the centre tile (1,1) changed
        flags.mark(tg.at(1, 1), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_diagonal_not_activated(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(1, 1), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert (0, 0) not in active  # 4-connected stencil only

    def test_corner_tile_neighbourhood_clipped(self):
        tg = TileGrid(16, 16, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(0, 0), True)
        flags.advance()
        active = {(t.ty, t.tx) for t in flags.active_tiles()}
        assert active == {(0, 0), (0, 1), (1, 0)}

    def test_no_changes_quiesces(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        assert not flags.advance()
        assert flags.active_tiles() == []
        assert flags.dirty_fraction == 0.0


class TestBookkeeping:
    def test_counters_accumulate(self):
        tg = TileGrid(8, 8, 4)  # 4 tiles
        flags = LazyFlags(tg)
        flags.active_tiles()           # 4 computed
        flags.mark(tg.at(0, 0), True)
        flags.advance()
        flags.active_tiles()           # 3 active (corner + 2 neighbours)
        assert flags.computed_total == 7
        assert flags.skipped_total == 1

    def test_reset_marks_all_dirty(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.advance()  # everything quiet
        flags.reset()
        assert len(flags.active_tiles()) == len(tg)

    def test_mark_false_is_noop(self):
        tg = TileGrid(8, 8, 4)
        flags = LazyFlags(tg)
        flags.active_tiles()
        flags.mark(tg.at(0, 0), False)
        assert not flags.advance()
