"""Tests for the distributed (ghost-cell) sandpile."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sandpile.model import center_pile, random_uniform, sparse_random
from repro.sandpile.mpi import run_distributed
from repro.simmpi import CostModel


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    def test_matches_oracle_depth1(self, nranks, center_grid, center_stable):
        res = run_distributed(center_grid, nranks, halo_depth=1)
        assert np.array_equal(res.final.interior, center_stable.interior)

    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_matches_oracle_any_depth(self, depth, center_grid, center_stable):
        res = run_distributed(center_grid, 3, halo_depth=depth)
        assert np.array_equal(res.final.interior, center_stable.interior)

    def test_random_config(self, small_random_grid, small_random_stable):
        res = run_distributed(small_random_grid, 2, halo_depth=2)
        assert np.array_equal(res.final.interior, small_random_stable.interior)

    def test_input_grid_untouched(self):
        g = center_pile(16, 16, 400)
        before = g.interior.copy()
        run_distributed(g, 2)
        assert np.array_equal(g.interior, before)

    def test_uneven_row_split(self):
        g = sparse_random(17, 13, n_piles=4, pile_grains=60, seed=1)
        from repro.sandpile.theory import stabilize

        expected = stabilize(g.copy())
        res = run_distributed(g, 3, halo_depth=2)
        assert np.array_equal(res.final.interior, expected.interior)

    def test_already_stable(self):
        g = random_uniform(12, 12, max_grains=3, seed=0)
        res = run_distributed(g, 2)
        assert np.array_equal(res.final.interior, g.interior)
        assert res.supersteps == 1  # one superstep to discover stability


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed(center_pile(8, 8, 10), 0)

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed(center_pile(8, 8, 10), 2, halo_depth=0)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed(center_pile(4, 4, 10), 8)

    def test_depth_too_deep_for_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed(center_pile(8, 8, 10), 4, halo_depth=3)


class TestHaloTradeoff:
    """The assignment's lesson: deeper halos = fewer messages, more compute."""

    @pytest.fixture(scope="class")
    def results(self):
        g = center_pile(32, 32, 2000)
        return {k: run_distributed(g, 4, halo_depth=k) for k in (1, 2, 4)}

    def test_messages_decrease_with_depth(self, results):
        assert results[1].messages > results[2].messages > results[4].messages

    def test_message_reduction_roughly_k_fold(self, results):
        ratio = results[1].messages / results[4].messages
        assert 2.5 < ratio < 6.0  # ~4x fewer exchanges, modulo collectives

    def test_redundant_iterations_grow_with_depth(self, results):
        # iteration count is rounded up to a multiple of k per superstep
        assert results[4].iterations >= results[1].iterations

    def test_all_depths_agree(self, results):
        base = results[1].final.interior
        assert np.array_equal(base, results[2].final.interior)
        assert np.array_equal(base, results[4].final.interior)

    def test_makespan_reported(self, results):
        assert all(r.makespan > 0 for r in results.values())


class TestCostModelInfluence:
    def test_higher_latency_higher_makespan(self):
        g = center_pile(24, 24, 800)
        fast = run_distributed(g, 3, cost_model=CostModel(latency=1e-6))
        slow = run_distributed(g, 3, cost_model=CostModel(latency=1e-2))
        assert slow.makespan > fast.makespan

    def test_deep_halo_wins_at_high_latency(self):
        # when messages are expensive, halo depth 4 must beat depth 1
        g = center_pile(32, 32, 2000)
        cm = CostModel(latency=5e-3)
        t1 = run_distributed(g, 4, halo_depth=1, cost_model=cm).makespan
        t4 = run_distributed(g, 4, halo_depth=4, cost_model=cm).makespan
        assert t4 < t1
