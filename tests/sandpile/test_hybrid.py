"""Tests for the hybrid CPU+GPU stepper."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.monitor import Trace
from repro.sandpile.gpu import DeviceModel
from repro.sandpile.hybrid import CpuModel, HybridStepper
from repro.sandpile.model import center_pile, random_uniform


def drive(stepper):
    n = 0
    while stepper():
        n += 1
        assert n < 100_000
    return n


class TestCpuModel:
    def test_tile_cost(self):
        from repro.easypap.tiling import TileGrid

        cpu = CpuModel(cell_rate=1e6)
        t = TileGrid(8, 8, 4)[0]
        assert cpu.tile_cost(t) == pytest.approx(16 / 1e6)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            CpuModel(0.0)


class TestHybridCorrectness:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_fixpoint_matches_oracle(self, lazy, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        drive(HybridStepper(g, tile_size=6, nworkers=2, lazy=lazy))
        assert np.array_equal(g.interior, small_random_stable.interior)

    def test_split_position_does_not_change_result(self, small_random_grid, small_random_stable):
        for split in (1, 2, 3):
            g = small_random_grid.copy()
            s = HybridStepper(g, tile_size=6, nworkers=2, rebalance=False)
            s.split = split
            drive(s)
            assert np.array_equal(g.interior, small_random_stable.interior)

    def test_conservation(self):
        g = center_pile(16, 16, 900)
        total0 = g.total_grains()
        s = HybridStepper(g, tile_size=4, nworkers=2)
        while s():
            assert g.total_grains() + g.sink_absorbed == total0

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            HybridStepper(center_pile(8, 8, 10), nworkers=0)


class TestLoadBalancing:
    def test_rebalances_towards_fast_gpu(self):
        # device 1000x faster than a core: the split should migrate up,
        # handing the GPU more tile rows
        g = center_pile(64, 64, 50_000)
        s = HybridStepper(
            g,
            tile_size=8,
            nworkers=2,
            cpu=CpuModel(cell_rate=1e6),
            device=DeviceModel(launch_overhead=1e-9, cell_rate=1e9),
        )
        initial = s.split
        drive(s)
        assert s.split < initial

    def test_rebalances_towards_many_cpus(self):
        # device slower than the CPU pool: split should migrate down
        g = center_pile(64, 64, 50_000)
        s = HybridStepper(
            g,
            tile_size=8,
            nworkers=8,
            cpu=CpuModel(cell_rate=1e9),
            device=DeviceModel(launch_overhead=1e-3, cell_rate=1e6),
        )
        initial = s.split
        drive(s)
        assert s.split > initial

    def test_rebalance_disabled_keeps_split(self):
        g = center_pile(32, 32, 5000)
        s = HybridStepper(g, tile_size=8, nworkers=2, rebalance=False)
        initial = s.split
        drive(s)
        assert s.split == initial

    def test_virtual_time_positive(self):
        g = center_pile(16, 16, 400)
        s = HybridStepper(g, tile_size=4, nworkers=2)
        drive(s)
        assert s.virtual_time > 0


class TestOwnerMap:
    def test_cpu_and_gpu_regions_visible(self):
        g = random_uniform(32, 32, max_grains=16, seed=6)
        s = HybridStepper(g, tile_size=8, nworkers=2, rebalance=False)
        s()
        owners = s.last_owner_map
        gpu_id = s.gpu_worker_id
        assert (owners[: s.split] < gpu_id).all()       # CPU workers above
        assert (owners[: s.split] >= 0).all()
        assert (owners[s.split :] == gpu_id).all()      # device below

    def test_lazy_leaves_stable_tiles_black(self):
        g = center_pile(32, 32, 100)  # activity only near the centre
        s = HybridStepper(g, tile_size=4, nworkers=2, lazy=True)
        s()  # first iteration computes everything (all dirty)
        s()  # second iteration: far tiles are stable and skipped
        assert (s.last_owner_map == -1).any()

    def test_trace_kinds(self):
        trace = Trace()
        g = center_pile(16, 16, 400)
        s = HybridStepper(g, tile_size=4, nworkers=2, trace=trace, rebalance=False)
        s()
        kinds = {r.kind for r in trace.records}
        assert kinds == {"compute", "gpu"}
