"""Tests for the sandpile algebra (Dhar theory)."""

import numpy as np
import pytest

from repro.easypap.grid import Grid2D
from repro.sandpile.model import max_stable, random_uniform, uniform
from repro.sandpile.theory import (
    add,
    burning_test,
    enumerate_recurrent,
    group_order,
    identity,
    is_recurrent,
    stabilize,
)


class TestStabilize:
    def test_idempotent(self):
        g = random_uniform(8, 8, max_grains=10, seed=1)
        s1 = stabilize(g.copy())
        s2 = stabilize(s1.copy())
        assert np.array_equal(s1.interior, s2.interior)

    def test_result_stable(self):
        assert stabilize(uniform(10, 10, 9)).is_stable()

    def test_in_place_and_returned(self):
        g = uniform(4, 4, 5)
        out = stabilize(g)
        assert out is g

    def test_max_sweeps_guard(self):
        with pytest.raises(RuntimeError):
            stabilize(uniform(16, 16, 100), max_sweeps=1)


class TestGroupOperation:
    def test_add_commutative(self):
        a = random_uniform(6, 6, max_grains=3, seed=2)
        b = random_uniform(6, 6, max_grains=3, seed=3)
        assert np.array_equal(add(a, b).interior, add(b, a).interior)

    def test_add_associative(self):
        a = random_uniform(5, 5, max_grains=3, seed=4)
        b = random_uniform(5, 5, max_grains=3, seed=5)
        c = random_uniform(5, 5, max_grains=3, seed=6)
        left = add(add(a, b), c)
        right = add(a, add(b, c))
        assert np.array_equal(left.interior, right.interior)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            add(Grid2D(2, 2), Grid2D(3, 3))

    def test_inputs_not_mutated(self):
        a = uniform(4, 4, 3)
        b = uniform(4, 4, 3)
        add(a, b)
        assert (a.interior == 3).all() and (b.interior == 3).all()


class TestIdentity:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_identity_is_recurrent(self, n):
        assert is_recurrent(identity(n, n))

    def test_identity_neutral_on_recurrent(self):
        # S(2*max + r) is always recurrent; the identity must fix it
        n = 6
        r = stabilize(
            Grid2D.from_interior(
                max_stable(n, n).interior * 2
                + random_uniform(n, n, max_grains=3, seed=7).interior
            )
        )
        assert is_recurrent(r)
        result = add(r, identity(n, n))
        assert np.array_equal(result.interior, r.interior)

    def test_identity_idempotent_under_add(self):
        n = 5
        e = identity(n, n)
        assert np.array_equal(add(e, e).interior, e.interior)

    def test_identity_nontrivial(self):
        # the identity of a grid >= 3x3 is not the zero configuration
        assert identity(4, 4).total_grains() > 0

    def test_rectangular(self):
        e = identity(4, 6)
        assert e.shape == (4, 6)
        assert is_recurrent(e)


class TestBurningTest:
    def test_max_stable_recurrent(self):
        assert is_recurrent(max_stable(7, 7))

    def test_zero_not_recurrent(self):
        g = Grid2D(4, 4)
        assert not is_recurrent(g)

    def test_requires_stable_input(self):
        with pytest.raises(ValueError):
            burning_test(uniform(4, 4, 9))

    def test_burnt_mask_shape(self):
        mask = burning_test(max_stable(3, 5))
        assert mask.shape == (3, 5)
        assert mask.dtype == bool

    def test_1x1_all_recurrent(self):
        for v in range(4):
            g = Grid2D(1, 1)
            g.interior[0, 0] = v
            assert is_recurrent(g)

    def test_partial_burning(self):
        # a stable config with an all-zero core: border cells burn
        # (border has sink neighbours), the zero core cannot
        g = Grid2D(5, 5)
        g.interior[...] = 3
        g.interior[1:4, 1:4] = 0
        mask = burning_test(g)
        assert mask[0, 0]
        assert not mask[2, 2]


class TestGroupOrder:
    """The matrix-tree determinant against brute-force enumeration."""

    @pytest.mark.parametrize(
        "h,w,expected",
        [(1, 1, 4), (1, 2, 15), (2, 2, 192), (2, 3, 2415), (3, 3, 100352)],
    )
    def test_known_orders(self, h, w, expected):
        assert group_order(h, w) == expected

    @pytest.mark.parametrize("h,w", [(1, 1), (1, 2), (2, 2), (1, 3), (2, 3)])
    def test_determinant_matches_enumeration(self, h, w):
        assert group_order(h, w) == enumerate_recurrent(h, w)

    def test_symmetric_in_dimensions(self):
        assert group_order(2, 5) == group_order(5, 2)

    def test_large_grid_exact_integer(self):
        order = group_order(8, 8)
        assert isinstance(order, int)
        assert order > 10**30  # the group is astronomically large

    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            enumerate_recurrent(4, 4)

    def test_identity_has_order_dividing_group(self):
        # sanity via Lagrange: adding the identity to itself |G| times is
        # overkill to test, but the identity must be idempotent (order 1)
        e = identity(3, 3)
        assert np.array_equal(add(e, e).interior, e.interior)
