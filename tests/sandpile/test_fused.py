"""Property tests (hypothesis) for the temporal-blocking fused kernels.

The exactness claim of temporal blocking: a fused *k*-step tile kernel
applied to any tile of any grid equals *k* global synchronous steps
restricted to that tile — including tiles clamped at the grid edge, where
the trapezoid's grown read region reads the real sink frame.  Plus the
stepper-level consequence (Abelian fixpoint invariance) and the
persistent-runtime guarantee that resident registrations survive a pool
rebuild mid-run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.easypap.grid import Grid2D
from repro.easypap.tiling import Tile, band_tiles
from repro.sandpile.compiled import sync_window_k, sync_window_k_numpy
from repro.sandpile.kernels import sync_step, sync_tile_k_array
from repro.sandpile.pfrontier import ParallelFrontierStepper

interiors = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(3, 14), st.integers(3, 14)),
    elements=st.integers(0, 12),
)

SETTINGS = dict(max_examples=25, deadline=None)


def k_global_steps(interior, k):
    g = Grid2D.from_interior(interior)
    for _ in range(k):
        sync_step(g)
    return g


@st.composite
def grid_tile_k(draw):
    """A random interior, a random (possibly edge-clamped) tile, and k."""
    interior = draw(interiors)
    H, W = interior.shape
    y0 = draw(st.integers(0, H - 1))
    x0 = draw(st.integers(0, W - 1))
    h = draw(st.integers(1, H - y0))
    w = draw(st.integers(1, W - x0))
    k = draw(st.integers(1, 5))
    return interior, Tile(0, 0, 0, y0, x0, h, w), k


@given(case=grid_tile_k())
@settings(**SETTINGS)
def test_fused_tile_equals_k_global_steps(case):
    interior, tile, k = case
    oracle = k_global_steps(interior, k)
    g = Grid2D.from_interior(interior)
    dst = np.zeros_like(g.data)
    sync_tile_k_array(g.data, dst, tile, k)
    ys, xs = slice(tile.y0, tile.y1), slice(tile.x0, tile.x1)
    assert np.array_equal(dst[1:-1, 1:-1][ys, xs], oracle.interior[ys, xs])


@given(case=grid_tile_k())
@settings(**SETTINGS)
def test_compiled_window_matches_numpy_trapezoid(case):
    interior, tile, k = case
    g = Grid2D.from_interior(interior)
    a = np.zeros_like(g.data)
    b = np.zeros_like(g.data)
    sync_window_k(g.data, a, tile.y0, tile.y1, tile.x0, tile.x1, k)
    sync_window_k_numpy(g.data, b, tile.y0, tile.y1, tile.x0, tile.x1, k)
    assert np.array_equal(a, b)


@given(interior=interiors, k=st.integers(2, 5), nbands=st.integers(1, 6))
@settings(**SETTINGS)
def test_band_cover_equals_k_global_steps(interior, k, nbands):
    """Any band decomposition of the full window reproduces f^k exactly."""
    H, W = interior.shape
    oracle = k_global_steps(interior, k)
    g = Grid2D.from_interior(interior)
    dst = np.zeros_like(g.data)
    for tile in band_tiles((0, H, 0, W), nbands):
        sync_tile_k_array(g.data, dst, tile, k)
    assert np.array_equal(dst[1:-1, 1:-1], oracle.interior)


@given(
    interior=interiors,
    k=st.integers(2, 5),
    nbands=st.integers(1, 4),
    tile_size=st.sampled_from([4, 8, 16]),
)
@settings(**SETTINGS)
def test_fused_stepper_reaches_unfused_fixpoint(interior, k, nbands, tile_size):
    """Abelian invariance: k-fused dispatch lands on the k=1 fixpoint."""

    def fixpoint(kk, nb):
        g = Grid2D.from_interior(interior)
        with ParallelFrontierStepper(g, tile_size, k=kk, nbands=nb) as st_:
            for _ in range(100_000):
                if not st_():
                    break
            return g.interior.copy(), g.sink_absorbed

    ref_grid, ref_sink = fixpoint(1, None)
    got_grid, got_sink = fixpoint(k, nbands)
    assert np.array_equal(ref_grid, got_grid)
    assert ref_sink == got_sink


@pytest.mark.faults
@given(seed=st.integers(0, 2**16), k=st.integers(2, 4))
@settings(max_examples=5, deadline=None)
def test_resident_reregistration_reproduces_precrash_fixpoint(seed, k):
    """Kill a worker mid-run: the rebuilt pool's replayed resident
    registrations must still drive the run to the unfaulted fixpoint."""
    from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
    from repro.easypap.executor import ProcessBackend
    from repro.sandpile.model import random_uniform

    if not ProcessBackend.available():
        pytest.skip("fork/shared_memory unavailable")
    from repro.sandpile.simulate import run_to_fixpoint

    ref = random_uniform(20, 20, max_grains=12, seed=seed)
    ref_res = run_to_fixpoint(ref, "sandpile", "pfrontier", k=k, nworkers=2,
                              tile_size=8, backend="sequential")
    log = DegradationLog()
    g = random_uniform(20, 20, max_grains=12, seed=seed)
    run_to_fixpoint(
        g, "sandpile", "pfrontier", k=k, nworkers=2, tile_size=8,
        backend="process",
        fault_injector=FaultInjector(kill_on_tasks={0}, max_fires=1),
        retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        degradation=log,
    )
    assert log.by_action("pool-rebuild")
    assert np.array_equal(g.interior, ref.interior)
    assert g.sink_absorbed == ref.sink_absorbed
    assert ref_res is not None
