"""Tests for the vectorised kernels against the scalar reference."""

import numpy as np
import pytest

from repro.easypap.grid import Grid2D
from repro.easypap.tiling import TileGrid
from repro.sandpile.kernels import async_sweep, async_tile_relax, sync_step, sync_tile, toppling_count
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.reference import sync_step_reference


class TestSyncStep:
    def test_matches_reference_step_by_step(self):
        a = random_uniform(12, 12, max_grains=16, seed=5)
        b = a.copy()
        for _ in range(30):
            ca = sync_step(a)
            cb = sync_step_reference(b)
            assert ca == cb
            assert np.array_equal(a.interior, b.interior)
            if not ca:
                break

    def test_scratch_buffer_reuse(self):
        g = center_pile(8, 8, 50)
        scratch = np.empty_like(g.data)
        while sync_step(g, out=scratch):
            pass
        assert g.is_stable()

    def test_wrong_scratch_shape_rejected(self):
        g = Grid2D(4, 4)
        with pytest.raises(ValueError):
            sync_step(g, out=np.empty((3, 3), dtype=np.int64))

    def test_conservation_via_sink(self):
        g = center_pile(7, 7, 500)
        total0 = g.total_grains()
        while sync_step(g):
            assert g.total_grains() + g.sink_absorbed == total0

    def test_edge_loss_single_cell_grid(self):
        g = Grid2D(1, 1)
        g.interior[0, 0] = 11
        sync_step(g)
        # keeps 11 % 4 = 3, loses 2 to each of 4 sink sides
        assert g.interior[0, 0] == 3
        assert g.sink_absorbed == 8


class TestAsyncSweep:
    def test_returns_false_when_stable(self):
        g = random_uniform(6, 6, max_grains=3, seed=0)
        assert not async_sweep(g)

    def test_reaches_reference_fixpoint(self):
        base = random_uniform(10, 10, max_grains=12, seed=9)
        ref = base.copy()
        while sync_step_reference(ref):
            pass
        g = base.copy()
        while async_sweep(g):
            pass
        assert np.array_equal(g.interior, ref.interior)

    def test_conservation(self):
        g = center_pile(9, 9, 300)
        total0 = g.total_grains()
        while async_sweep(g):
            assert g.total_grains() + g.sink_absorbed == total0


class TestSyncTile:
    def test_full_cover_equals_whole_grid_step(self):
        g1 = random_uniform(12, 12, max_grains=10, seed=2)
        g2 = g1.copy()
        # whole-grid vectorised step
        sync_step(g1)
        # tile-by-tile into a scratch plane
        src = g2.data
        dst = src.copy()
        changed = False
        for tile in TileGrid(12, 12, 4):
            changed |= sync_tile(src, dst, tile)
        g2.data[1:-1, 1:-1] = dst[1:-1, 1:-1]
        g2.drain_sink()
        assert changed
        assert np.array_equal(g1.interior, g2.interior)

    def test_change_detection_per_tile(self):
        g = Grid2D(8, 8)
        g.interior[0, 0] = 8  # only the first tile is active
        src = g.data
        dst = src.copy()
        tg = TileGrid(8, 8, 4)
        assert sync_tile(src, dst, tg.at(0, 0)) is True
        assert sync_tile(src, dst, tg.at(1, 1)) is False


class TestAsyncTileRelax:
    def test_tile_internally_stable_after(self):
        g = center_pile(8, 8, 200)
        tg = TileGrid(8, 8, 4)
        tile = tg.at(1, 1)  # centre (4,4) is inside this tile
        rounds = async_tile_relax(g, tile)
        assert rounds > 0
        ys, xs = tile.slices()
        assert (g.interior[ys, xs] < 4).all()

    def test_pushes_grains_to_halo_not_beyond(self):
        g = Grid2D(8, 8)
        g.interior[0, 0] = 8
        tg = TileGrid(8, 8, 4)
        before = g.interior.copy()
        async_tile_relax(g, tg.at(0, 0))
        # grains moved at most one cell outside the tile (plus the frame)
        outside = g.interior[5:, :].sum() + g.interior[:, 5:].sum()
        assert outside == 0
        assert g.interior[0, 0] == 0
        assert before.sum() == g.interior.sum() + g.border_sum()

    def test_stable_tile_zero_rounds(self):
        g = random_uniform(8, 8, max_grains=3, seed=1)
        tg = TileGrid(8, 8, 4)
        assert async_tile_relax(g, tg.at(0, 0)) == 0

    def test_max_rounds_guard(self):
        g = center_pile(8, 8, 10**6)
        tg = TileGrid(8, 8, 8)
        with pytest.raises(RuntimeError):
            async_tile_relax(g, tg.at(0, 0), max_rounds=1)


class TestTopplingCount:
    def test_counts_unstable(self):
        g = Grid2D(3, 3)
        g.interior[0, 0] = 4
        g.interior[2, 2] = 100
        assert toppling_count(g) == 2

    def test_zero_on_stable(self):
        assert toppling_count(random_uniform(5, 5, max_grains=3, seed=0)) == 0
