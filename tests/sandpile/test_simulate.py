"""Tests for the run_to_fixpoint driver and variant registration."""

import numpy as np
import pytest

from repro.common.errors import KernelError
from repro.easypap.monitor import Trace
from repro.sandpile.model import center_pile, random_uniform, sparse_random
from repro.sandpile.simulate import make_stepper, run_to_fixpoint

ALL_VARIANTS = [
    ("sandpile", "vec", {}),
    ("sandpile", "split", {"tile_size": 6}),
    ("sandpile", "tiled", {"tile_size": 6}),
    ("sandpile", "lazy", {"tile_size": 6}),
    ("sandpile", "omp", {"tile_size": 6, "nworkers": 3, "policy": "dynamic"}),
    ("asandpile", "vec", {}),
    ("asandpile", "tiled", {"tile_size": 6}),
    ("asandpile", "lazy", {"tile_size": 6}),
    ("asandpile", "omp", {"tile_size": 6, "nworkers": 3, "policy": "guided"}),
]


class TestAllVariantsAgree:
    """Dhar's theorem, enforced: every variant reaches the same fixpoint."""

    @pytest.mark.parametrize("kernel,variant,opts", ALL_VARIANTS)
    def test_variant_matches_oracle(self, kernel, variant, opts, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        result = run_to_fixpoint(g, kernel, variant, **opts)
        assert np.array_equal(g.interior, small_random_stable.interior)
        assert result.final_grid is g
        assert g.is_stable()

    def test_seq_variants_on_tiny_grid(self):
        # the scalar reference loops are too slow for the shared fixture
        base = random_uniform(8, 8, max_grains=8, seed=13)
        grids = {name: base.copy() for name in ("seq_sync", "seq_async", "vec")}
        run_to_fixpoint(grids["seq_sync"], "sandpile", "seq")
        run_to_fixpoint(grids["seq_async"], "asandpile", "seq")
        run_to_fixpoint(grids["vec"], "sandpile", "vec")
        assert np.array_equal(grids["seq_sync"].interior, grids["vec"].interior)
        assert np.array_equal(grids["seq_async"].interior, grids["vec"].interior)


class TestRunResult:
    def test_iteration_count_positive(self):
        g = center_pile(16, 16, 200)
        r = run_to_fixpoint(g, "sandpile", "vec")
        assert r.iterations > 0

    def test_stable_input_zero_iterations(self):
        g = random_uniform(8, 8, max_grains=3, seed=0)
        r = run_to_fixpoint(g, "sandpile", "vec")
        assert r.iterations == 0

    def test_lazy_skip_fraction(self):
        g = sparse_random(64, 64, n_piles=2, pile_grains=100, seed=5)
        r = run_to_fixpoint(g, "sandpile", "lazy", tile_size=8)
        assert 0.0 < r.skip_fraction < 1.0

    def test_skip_fraction_zero_without_tiles(self):
        g = center_pile(8, 8, 20)
        r = run_to_fixpoint(g, "sandpile", "vec")
        assert r.skip_fraction == 0.0

    def test_max_iterations_enforced(self):
        g = center_pile(32, 32, 100_000)
        with pytest.raises(RuntimeError):
            run_to_fixpoint(g, "sandpile", "vec", max_iterations=3)

    def test_trace_carried(self):
        trace = Trace()
        g = center_pile(16, 16, 100)
        r = run_to_fixpoint(g, "sandpile", "omp", tile_size=8, nworkers=2, trace=trace)
        assert r.trace is trace
        assert len(trace) > 0


class TestMakeStepper:
    def test_unknown_variant(self):
        g = center_pile(8, 8, 10)
        with pytest.raises(KernelError):
            make_stepper(g, "sandpile", "quantum")

    def test_unknown_kernel(self):
        g = center_pile(8, 8, 10)
        with pytest.raises(KernelError):
            make_stepper(g, "heatmap", "vec")

    def test_backend_threads(self, small_random_grid, small_random_stable):
        g = small_random_grid.copy()
        run_to_fixpoint(g, "sandpile", "omp", tile_size=8, nworkers=2, backend="threads")
        assert np.array_equal(g.interior, small_random_stable.interior)
