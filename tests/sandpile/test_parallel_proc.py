"""Tests for the process-pool (true-parallel) stepper."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.parallel_proc import ProcessSyncStepper
from repro.sandpile.theory import stabilize


@pytest.fixture(scope="module")
def oracle_pair():
    grid = random_uniform(16, 16, max_grains=10, seed=17)
    return grid, stabilize(grid.copy())


class TestProcessSyncStepper:
    def test_fixpoint_matches_oracle(self, oracle_pair):
        grid, oracle = oracle_pair
        g = grid.copy()
        with ProcessSyncStepper(g, nworkers=2) as stepper:
            while stepper():
                pass
        assert np.array_equal(g.interior, oracle.interior)

    def test_band_rows_irrelevant_to_result(self, oracle_pair):
        grid, oracle = oracle_pair
        for band_rows in (1, 3, 16):
            g = grid.copy()
            with ProcessSyncStepper(g, nworkers=2, band_rows=band_rows) as stepper:
                while stepper():
                    pass
            assert np.array_equal(g.interior, oracle.interior), band_rows

    def test_conservation(self):
        g = center_pile(12, 12, 300)
        total0 = g.total_grains()
        with ProcessSyncStepper(g, nworkers=2) as stepper:
            while stepper():
                assert g.total_grains() + g.sink_absorbed == total0

    def test_single_worker(self, oracle_pair):
        grid, oracle = oracle_pair
        g = grid.copy()
        with ProcessSyncStepper(g, nworkers=1) as stepper:
            while stepper():
                pass
        assert np.array_equal(g.interior, oracle.interior)

    def test_closed_stepper_rejected(self):
        g = center_pile(8, 8, 10)
        stepper = ProcessSyncStepper(g, nworkers=1)
        stepper.close()
        with pytest.raises(ConfigurationError):
            stepper()

    def test_close_idempotent(self):
        stepper = ProcessSyncStepper(center_pile(8, 8, 10), nworkers=1)
        stepper.close()
        stepper.close()  # must not raise

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessSyncStepper(center_pile(8, 8, 10), nworkers=0)

    def test_iteration_counter(self):
        g = center_pile(8, 8, 20)
        with ProcessSyncStepper(g, nworkers=1) as stepper:
            n = 0
            while stepper():
                n += 1
            assert stepper.iterations == n + 1
