"""Property-based tests (hypothesis) for the sandpile invariants.

These pin the library to Dhar's mathematics on *arbitrary* inputs:

* every optimised variant reaches the scalar reference's fixpoint;
* grains are conserved modulo the sink;
* stabilisation is idempotent and monotone-translation-equivariant;
* the group operation is commutative.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.easypap.grid import Grid2D
from repro.sandpile.model import center_pile
from repro.sandpile.omp import TiledAsyncStepper, TiledSyncStepper
from repro.sandpile.reference import stabilize_reference
from repro.sandpile.theory import add, stabilize

# keep grids small: the scalar reference is O(cells) Python per sweep
grids = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
    elements=st.integers(0, 12),
)

SETTINGS = dict(max_examples=25, deadline=None)


@given(interior=grids)
@settings(**SETTINGS)
def test_vectorized_matches_reference(interior):
    ref = Grid2D.from_interior(interior)
    vec = Grid2D.from_interior(interior)
    stabilize_reference(ref, variant="sync")
    stabilize(vec)
    assert np.array_equal(ref.interior, vec.interior)


@given(interior=grids)
@settings(**SETTINGS)
def test_async_reference_matches_sync_reference(interior):
    a = Grid2D.from_interior(interior)
    b = Grid2D.from_interior(interior)
    stabilize_reference(a, variant="sync")
    stabilize_reference(b, variant="async")
    assert np.array_equal(a.interior, b.interior)


@given(interior=grids, tile_size=st.integers(2, 5), lazy=st.booleans())
@settings(**SETTINGS)
def test_tiled_steppers_match_oracle(interior, tile_size, lazy):
    oracle = stabilize(Grid2D.from_interior(interior))
    for cls in (TiledSyncStepper, TiledAsyncStepper):
        g = Grid2D.from_interior(interior)
        stepper = cls(g, tile_size, lazy=lazy)
        for _ in range(100_000):
            if not stepper():
                break
        assert np.array_equal(g.interior, oracle.interior), cls.__name__


@given(interior=grids)
@settings(**SETTINGS)
def test_conservation_with_sink(interior):
    g = Grid2D.from_interior(interior)
    total0 = g.total_grains()
    stabilize(g)
    assert g.total_grains() + g.sink_absorbed == total0
    assert g.sink_absorbed >= 0


@given(interior=grids)
@settings(**SETTINGS)
def test_stabilize_idempotent(interior):
    once = stabilize(Grid2D.from_interior(interior))
    twice = stabilize(once.copy())
    assert np.array_equal(once.interior, twice.interior)


@given(interior=grids)
@settings(**SETTINGS)
def test_fixpoint_is_stable_and_bounded(interior):
    g = stabilize(Grid2D.from_interior(interior))
    assert g.is_stable()
    assert g.interior.min() >= 0
    assert g.interior.max() <= 3


@given(a=grids, b=grids)
@settings(**SETTINGS)
def test_group_add_commutative(a, b):
    h = min(a.shape[0], b.shape[0])
    w = min(a.shape[1], b.shape[1])
    ga, gb = Grid2D.from_interior(a[:h, :w]), Grid2D.from_interior(b[:h, :w])
    assert np.array_equal(add(ga, gb).interior, add(gb, ga).interior)


@given(grains=st.integers(0, 2000))
@settings(**SETTINGS)
def test_center_pile_symmetric(grains):
    """The centre-pile fixpoint inherits the grid's 4-fold symmetry (Fig. 1a)."""
    g = stabilize(center_pile(9, 9, grains))
    m = g.interior
    assert np.array_equal(m, m[::-1, :])
    assert np.array_equal(m, m[:, ::-1])
    assert np.array_equal(m, m.T)


@given(interior=grids, extra=st.integers(0, 5))
@settings(**SETTINGS)
def test_monotone_in_grains(interior, extra):
    """Adding grains never decreases the total grains lost to the sink."""
    g1 = Grid2D.from_interior(interior)
    g2 = Grid2D.from_interior(interior)
    g2.interior[0, 0] += extra
    stabilize(g1)
    stabilize(g2)
    assert g2.sink_absorbed >= g1.sink_absorbed
