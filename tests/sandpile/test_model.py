"""Tests for initial sandpile configurations."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sandpile.model import center_pile, max_stable, random_uniform, sparse_random, uniform


class TestCenterPile:
    def test_all_grains_in_center(self):
        g = center_pile(9, 9, 1000)
        assert g.total_grains() == 1000
        assert g.interior[4, 4] == 1000
        assert (g.interior != 0).sum() == 1

    def test_even_dims_center(self):
        g = center_pile(8, 8, 10)
        assert g.interior[4, 4] == 10

    def test_paper_default(self):
        g = center_pile(128, 128)
        assert g.total_grains() == 25_000

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            center_pile(4, 4, -1)


class TestUniform:
    def test_fig1b_default(self):
        g = uniform(128, 128)
        assert (g.interior == 4).all()
        assert not g.is_stable()

    def test_total(self):
        assert uniform(10, 10, 3).total_grains() == 300

    def test_max_stable_is_stable(self):
        g = max_stable(6, 6)
        assert g.is_stable()
        assert (g.interior == 3).all()


class TestSparseRandom:
    def test_pile_count_and_total(self):
        g = sparse_random(64, 64, n_piles=10, pile_grains=100, seed=1)
        assert g.total_grains() == 1000
        assert (g.interior > 0).sum() <= 10  # coincident piles may stack

    def test_coincident_piles_stack(self):
        # with a 1x1 grid every pile lands on the same cell
        g = sparse_random(1, 1, n_piles=5, pile_grains=10, seed=0)
        assert g.interior[0, 0] == 50

    def test_deterministic(self):
        a = sparse_random(32, 32, seed=3)
        b = sparse_random(32, 32, seed=3)
        assert a == b

    def test_seed_matters(self):
        a = sparse_random(32, 32, seed=3)
        b = sparse_random(32, 32, seed=4)
        assert a != b

    def test_zero_piles(self):
        assert sparse_random(8, 8, n_piles=0).total_grains() == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            sparse_random(8, 8, n_piles=-1)


class TestRandomUniform:
    def test_range(self):
        g = random_uniform(16, 16, max_grains=5, seed=0)
        assert g.interior.min() >= 0
        assert g.interior.max() <= 5

    def test_deterministic(self):
        assert random_uniform(8, 8, seed=2) == random_uniform(8, 8, seed=2)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            random_uniform(4, 4, max_grains=-1)
