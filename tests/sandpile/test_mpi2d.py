"""Tests for the 2D-decomposed distributed sandpile."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.sandpile.model import center_pile, random_uniform, sparse_random
from repro.sandpile.mpi import run_distributed
from repro.sandpile.mpi2d import run_distributed_2d
from repro.simmpi import CostModel


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_matches_oracle(self, nranks, center_grid, center_stable):
        res = run_distributed_2d(center_grid, nranks)
        assert np.array_equal(res.final.interior, center_stable.interior)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_any_halo_depth(self, depth, center_grid, center_stable):
        res = run_distributed_2d(center_grid, 4, halo_depth=depth)
        assert np.array_equal(res.final.interior, center_stable.interior)

    def test_explicit_dims(self, center_grid, center_stable):
        for dims in [(1, 4), (4, 1), (2, 2)]:
            res = run_distributed_2d(center_grid, 4, dims=dims)
            assert np.array_equal(res.final.interior, center_stable.interior), dims
            assert res.dims == dims

    def test_random_config(self, small_random_grid, small_random_stable):
        res = run_distributed_2d(small_random_grid, 4, halo_depth=2)
        assert np.array_equal(res.final.interior, small_random_stable.interior)

    def test_non_square_grid(self):
        g = sparse_random(20, 14, n_piles=4, pile_grains=80, seed=2)
        from repro.sandpile.theory import stabilize

        expected = stabilize(g.copy())
        res = run_distributed_2d(g, 6, dims=(3, 2))
        assert np.array_equal(res.final.interior, expected.interior)

    def test_input_untouched(self):
        g = center_pile(16, 16, 200)
        before = g.interior.copy()
        run_distributed_2d(g, 4)
        assert np.array_equal(g.interior, before)

    def test_already_stable(self):
        g = random_uniform(12, 12, max_grains=3, seed=0)
        res = run_distributed_2d(g, 4)
        assert np.array_equal(res.final.interior, g.interior)
        assert res.supersteps == 1


class TestValidation:
    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed_2d(center_pile(16, 16, 10), 4, dims=(3, 2))

    def test_too_small_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed_2d(center_pile(4, 4, 10), 4, dims=(2, 2), halo_depth=3)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_distributed_2d(center_pile(8, 8, 10), 0)


class TestScalingAdvantage:
    def test_2d_moves_fewer_bytes_than_1d_at_scale(self):
        """The decomposition's point: 2D halo surface beats 1D row blocks."""
        g = center_pile(48, 48, 6000)
        res_1d = run_distributed(g, 9, halo_depth=1)
        res_2d = run_distributed_2d(g, 9, dims=(3, 3), halo_depth=1)
        assert np.array_equal(res_1d.final.interior, res_2d.final.interior)
        # 1D: 8 interfaces x 48 cols; 2D: 12 interfaces x 16 cells — fewer bytes
        assert res_2d.comm_bytes < res_1d.comm_bytes

    def test_message_count_vs_depth(self):
        g = center_pile(32, 32, 2000)
        m = {}
        for depth in (1, 2, 4):
            m[depth] = run_distributed_2d(g, 4, halo_depth=depth).messages
        assert m[1] > m[2] > m[4]

    def test_makespan_reported(self):
        g = center_pile(24, 24, 500)
        res = run_distributed_2d(g, 4, cost_model=CostModel(latency=1e-4))
        assert res.makespan > 0
