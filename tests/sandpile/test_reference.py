"""Tests for the scalar reference kernels (the paper's Fig. 2 semantics)."""

import numpy as np
import pytest

from repro.easypap.grid import Grid2D
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.reference import (
    async_compute_new_state,
    async_step_reference,
    stabilize_reference,
    sync_compute_new_state,
    sync_step_reference,
)


class TestPerCellRules:
    def test_fig2_example_11_grains(self):
        # "if a cell contains 11 grains, then it will give 2 to each
        # neighbor and keep the remaining 3 grains"
        g = Grid2D(3, 3)
        g.interior[1, 1] = 11
        changed = async_compute_new_state(g.data, 2, 2)
        assert changed
        assert g.interior[1, 1] == 3
        assert g.interior[0, 1] == g.interior[2, 1] == 2
        assert g.interior[1, 0] == g.interior[1, 2] == 2

    def test_async_stable_cell_noop(self):
        g = Grid2D(3, 3)
        g.interior[1, 1] = 3
        assert not async_compute_new_state(g.data, 2, 2)
        assert g.interior[1, 1] == 3

    def test_sync_gathers_from_neighbors(self):
        g = Grid2D(3, 3)
        g.interior[0, 1] = 8  # north neighbour of centre gives 8//4 = 2
        nxt = g.data.copy()
        changed = sync_compute_new_state(g.data, nxt, 2, 2)
        assert changed
        assert nxt[2, 2] == 2

    def test_sync_unchanged_returns_false(self):
        g = Grid2D(3, 3)
        g.interior[1, 1] = 2
        nxt = g.data.copy()
        assert not sync_compute_new_state(g.data, nxt, 2, 2)


class TestFullSteps:
    def test_sync_step_conserves_with_sink(self):
        g = center_pile(5, 5, 100)
        total0 = g.total_grains()
        while sync_step_reference(g):
            assert g.total_grains() + g.sink_absorbed == total0
        assert g.is_stable()

    def test_async_step_conserves_with_sink(self):
        g = center_pile(5, 5, 100)
        total0 = g.total_grains()
        while async_step_reference(g):
            assert g.total_grains() + g.sink_absorbed == total0
        assert g.is_stable()

    def test_stable_input_is_fixpoint(self):
        g = random_uniform(6, 6, max_grains=3, seed=1)
        before = g.interior.copy()
        assert not sync_step_reference(g)
        assert np.array_equal(g.interior, before)
        assert not async_step_reference(g)
        assert np.array_equal(g.interior, before)

    @pytest.mark.parametrize("order", ["raster", "reverse", "columns"])
    def test_async_orders_reach_same_fixpoint(self, order):
        base = random_uniform(10, 10, max_grains=12, seed=7)
        ref = base.copy()
        stabilize_reference(ref, variant="sync")
        g = base.copy()
        while async_step_reference(g, order=order):
            pass
        assert np.array_equal(g.interior, ref.interior)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            async_step_reference(Grid2D(2, 2), order="spiral")


class TestStabilizeReference:
    def test_sync_async_identical_fixpoint(self):
        base = random_uniform(8, 8, max_grains=10, seed=3)
        a, b = base.copy(), base.copy()
        stabilize_reference(a, variant="sync")
        stabilize_reference(b, variant="async")
        assert np.array_equal(a.interior, b.interior)

    def test_iteration_count_returned(self):
        g = center_pile(5, 5, 16)
        n = stabilize_reference(g, variant="sync")
        assert n >= 1
        assert g.is_stable()

    def test_max_iterations_enforced(self):
        g = center_pile(9, 9, 10_000)
        with pytest.raises(RuntimeError):
            stabilize_reference(g, max_iterations=2)

    def test_four_grain_cell_empties(self):
        g = Grid2D(3, 3)
        g.interior[1, 1] = 4
        stabilize_reference(g)
        assert g.interior[1, 1] == 0
        assert g.interior.sum() == 4
