"""Tests for the carbon report rendering."""

from repro.carbon.report import baseline_summary, tab1_table, tab2_table
from repro.carbon.tab1 import BaselineResult, ClusterConfigResult
from repro.carbon.tab2 import PlacementResult


def config(n=64, p=6, t=85.0, co2=38.0):
    return ClusterConfigResult(n_nodes=n, pstate=p, makespan=t, energy_joules=1e5, co2_grams=co2)


class TestBaselineSummary:
    def test_contains_key_numbers(self):
        b = BaselineResult(config=config(), single_node_makespan=1790.0)
        s = baseline_summary(b)
        assert "64 nodes" in s
        assert "speedup 21.1x" in s
        assert "efficiency 0.33" in s


class TestTab1Table:
    def test_bound_verdicts(self):
        rows = {"fast": config(t=100.0), "slow": config(t=300.0)}
        out = tab1_table(rows, bound=180.0)
        lines = out.splitlines()
        fast_line = next(l for l in lines if l.startswith("fast"))
        slow_line = next(l for l in lines if l.startswith("slow"))
        assert "yes" in fast_line
        assert "NO" in slow_line

    def test_no_bound_dash(self):
        out = tab1_table({"x": config()})
        assert "-" in out.splitlines()[-1]


class TestTab2Table:
    def test_rows_and_top(self):
        results = [
            PlacementResult("a", "", 100.0, 1.0, 10.0, 0.5, 10, 90),
            PlacementResult("b", "", 200.0, 2.0, 20.0, 1.5, 20, 80),
        ]
        out = tab2_table(results, top=1)
        assert "a" in out
        assert "\nb " not in out
