"""Tests for the Tab-2 questions (cluster + green cloud)."""

import pytest

from repro.carbon.tab2 import (
    WIDE_LEVELS,
    exhaustive_optimum,
    question1_baselines,
    question2_first_two_levels,
    treasure_hunt,
)


class TestQuestion1Baselines:
    def test_both_pure_placements(self, tiny_scenario):
        bl = question1_baselines(tiny_scenario)
        total = len(tiny_scenario.workflow)
        assert bl["all-local"].local_tasks == total
        assert bl["all-local"].cloud_tasks == 0
        assert bl["all-cloud"].cloud_tasks == total

    def test_all_local_no_link_traffic(self, tiny_scenario):
        assert question1_baselines(tiny_scenario)["all-local"].link_gb == 0.0

    def test_all_cloud_moves_data(self, tiny_scenario):
        assert question1_baselines(tiny_scenario)["all-cloud"].link_gb > 0.0


class TestQuestion2:
    def test_three_options(self, tiny_scenario):
        opts = question2_first_two_levels(tiny_scenario)
        assert set(opts) == {"both-local", "both-cloud", "split"}

    def test_cloud_options_move_data_local_does_not(self, tiny_scenario):
        opts = question2_first_two_levels(tiny_scenario)
        assert opts["both-local"].link_gb == 0.0
        assert opts["both-cloud"].link_gb > 0.0
        assert opts["split"].link_gb > 0.0

    def test_options_cover_all_tasks(self, tiny_scenario):
        total = len(tiny_scenario.workflow)
        for r in question2_first_two_levels(tiny_scenario).values():
            assert r.cloud_tasks + r.local_tasks == total

    def test_files_cross_link_at_most_once(self, tiny_scenario):
        # storage caches replicas, so even the split option (which forces
        # projected images back to the cluster) never re-transfers a file
        from repro.wrench.scheduler import place_levels
        from repro.wrench.simulation import WorkflowSimulation

        wf = tiny_scenario.workflow
        plat = tiny_scenario.tab2_platform()
        WorkflowSimulation(plat, wf, place_levels(wf, {0})).run()
        names = [r.file_name for r in plat.link.records]
        assert len(names) == len(set(names))


class TestTreasureHunt:
    @pytest.fixture(scope="class")
    def hunt(self, request):
        tiny = request.getfixturevalue("tiny_scenario")
        grid = {lv: [0.0, 0.5, 1.0] for lv in WIDE_LEVELS}
        return treasure_hunt(grid, tiny), tiny

    def test_covers_grid(self, hunt):
        results, _ = hunt
        assert len(results) == 27

    def test_sorted_by_co2(self, hunt):
        results, _ = hunt
        co2 = [r.co2_grams for r in results]
        assert co2 == sorted(co2)

    def test_mixed_beats_pure_options(self, hunt):
        results, tiny = hunt
        best = results[0]
        baselines = question1_baselines(tiny)
        assert best.co2_grams <= baselines["all-local"].co2_grams
        assert best.co2_grams <= baselines["all-cloud"].co2_grams

    def test_labels_describe_fractions(self, hunt):
        results, _ = hunt
        assert all("L0=" in r.label for r in results)


class TestExhaustiveOptimum:
    def test_optimum_dominates_everything_on_grid(self, tiny_scenario):
        best, all_results = exhaustive_optimum(tiny_scenario, resolution=3)
        assert all(best.co2_grams <= r.co2_grams + 1e-12 for r in all_results)

    def test_resolution_controls_grid(self, tiny_scenario):
        _, r3 = exhaustive_optimum(tiny_scenario, resolution=3)
        assert len(r3) == 27


@pytest.mark.slow
class TestPaperScale:
    def test_full_scenario_story_holds(self):
        """The Tab-2 narrative at paper scale: green cloud is slower but
        cleaner; mixing beats both."""
        bl = question1_baselines()
        assert bl["all-cloud"].co2_grams < bl["all-local"].co2_grams
        assert bl["all-cloud"].makespan > bl["all-local"].makespan
        hunt = treasure_hunt({lv: [0.0, 0.5] for lv in WIDE_LEVELS})
        assert hunt[0].co2_grams < bl["all-local"].co2_grams
        assert hunt[0].co2_grams < bl["all-cloud"].co2_grams
