"""Tests for the assignment scenario."""

import pytest

from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.wrench.platform import CLOUD, LOCAL


class TestPaperConstants:
    """Every constant the paper states must be the default."""

    def test_montage_738_tasks(self):
        assert len(DEFAULT_SCENARIO.workflow) == 738

    def test_7_5_gb_footprint(self):
        assert DEFAULT_SCENARIO.workflow.total_bytes() == pytest.approx(7.5e9, rel=1e-6)

    def test_64_node_cluster(self):
        assert DEFAULT_SCENARIO.max_nodes == 64

    def test_seven_pstates(self):
        assert DEFAULT_SCENARIO.n_pstates == 7
        assert DEFAULT_SCENARIO.highest_pstate == 6

    def test_291_gco2e_per_kwh(self):
        assert DEFAULT_SCENARIO.cluster_carbon_intensity == 291.0

    def test_3_minute_bound(self):
        assert DEFAULT_SCENARIO.time_bound == 180.0

    def test_16_cloud_vms(self):
        assert DEFAULT_SCENARIO.cloud_vms == 16

    def test_tab2_12_local_nodes_lowest_pstate(self):
        assert DEFAULT_SCENARIO.tab2_local_nodes == 12
        assert DEFAULT_SCENARIO.tab2_local_pstate == 0


class TestPlatformBuilders:
    def test_tab1_platform(self, tiny_scenario):
        p = tiny_scenario.tab1_platform(4, 2)
        assert p.site(LOCAL).n_resources == 4
        assert all(r.pstate.index == 2 for r in p.site(LOCAL).resources)
        assert CLOUD not in p.sites

    def test_tab2_platform(self, tiny_scenario):
        p = tiny_scenario.tab2_platform()
        assert p.site(LOCAL).n_resources == tiny_scenario.tab2_local_nodes
        assert p.site(CLOUD).n_resources == tiny_scenario.cloud_vms
        assert all(r.pstate.index == 0 for r in p.site(LOCAL).resources)
        assert p.link.bandwidth == tiny_scenario.link_bandwidth

    def test_workflow_cached(self, tiny_scenario):
        assert tiny_scenario.workflow is tiny_scenario.workflow

    def test_simulate_helpers(self, tiny_scenario):
        r = tiny_scenario.simulate_tab1(4, tiny_scenario.highest_pstate)
        assert r.makespan > 0
        from repro.wrench.scheduler import place_all

        r2 = tiny_scenario.simulate_tab2(place_all(tiny_scenario.workflow, LOCAL))
        assert r2.makespan > 0

    def test_frozen_and_hashable(self):
        s = AssignmentScenario()
        with pytest.raises(Exception):
            s.max_nodes = 32
        assert hash(s) == hash(AssignmentScenario())
