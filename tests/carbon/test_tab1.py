"""Tests for the Tab-1 questions (cluster power management).

Uses the shrunken ``tiny_scenario`` for speed; one slow test validates the
full paper-scale scenario end to end (the benchmark regenerates it fully).
"""

import pytest

from repro.carbon.tab1 import (
    boss_heuristic,
    exhaustive_optimum,
    question1_baseline,
    question2_min_nodes,
    question2_min_pstate,
    question3_comparison,
)


class TestQuestion1:
    def test_baseline_uses_full_cluster_top_pstate(self, tiny_scenario):
        b = question1_baseline(tiny_scenario)
        assert b.config.n_nodes == tiny_scenario.max_nodes
        assert b.config.pstate == tiny_scenario.highest_pstate

    def test_speedup_between_1_and_nodes(self, tiny_scenario):
        b = question1_baseline(tiny_scenario)
        assert 1.0 < b.speedup <= tiny_scenario.max_nodes
        assert 0.0 < b.efficiency <= 1.0

    def test_speedup_consistent(self, tiny_scenario):
        b = question1_baseline(tiny_scenario)
        assert b.speedup == pytest.approx(b.single_node_makespan / b.config.makespan)


class TestQuestion2:
    def test_min_nodes_meets_bound(self, tiny_scenario):
        c = question2_min_nodes(tiny_scenario)
        assert c.makespan <= tiny_scenario.time_bound
        assert c.pstate == tiny_scenario.highest_pstate

    def test_min_nodes_is_minimal(self, tiny_scenario):
        c = question2_min_nodes(tiny_scenario)
        if c.n_nodes > 1:
            fewer = tiny_scenario.simulate_tab1(c.n_nodes - 1, c.pstate)
            assert fewer.makespan > tiny_scenario.time_bound

    def test_min_pstate_meets_bound(self, tiny_scenario):
        c = question2_min_pstate(tiny_scenario)
        assert c.makespan <= tiny_scenario.time_bound
        assert c.n_nodes == tiny_scenario.max_nodes

    def test_min_pstate_is_minimal(self, tiny_scenario):
        c = question2_min_pstate(tiny_scenario)
        if c.pstate > 0:
            lower = tiny_scenario.simulate_tab1(c.n_nodes, c.pstate - 1)
            assert lower.makespan > tiny_scenario.time_bound

    def test_both_options_save_co2_vs_baseline(self, tiny_scenario):
        base = question1_baseline(tiny_scenario).config
        assert question2_min_nodes(tiny_scenario).co2_grams < base.co2_grams
        assert question2_min_pstate(tiny_scenario).co2_grams < base.co2_grams


class TestQuestion3:
    def test_heuristic_beats_both_single_levers(self, tiny_scenario):
        opts = question3_comparison(tiny_scenario)
        h = opts["heuristic"]
        assert h.makespan <= tiny_scenario.time_bound
        assert h.co2_grams <= opts["power-off"].co2_grams
        assert h.co2_grams <= opts["downclock"].co2_grams

    def test_heuristic_never_worse_than_options_it_contains(self, tiny_scenario):
        # the heuristic evaluates (min nodes at p) for every p, which
        # includes both Q2 answers as special cases
        h = boss_heuristic(tiny_scenario)
        assert h.makespan <= tiny_scenario.time_bound


class TestExhaustive:
    def test_optimum_dominates_heuristic(self, tiny_scenario):
        best, evals = exhaustive_optimum(tiny_scenario, node_step=1)
        h = boss_heuristic(tiny_scenario)
        assert best.co2_grams <= h.co2_grams + 1e-9
        assert best.makespan <= tiny_scenario.time_bound

    def test_all_configs_evaluated(self, tiny_scenario):
        _, evals = exhaustive_optimum(tiny_scenario, node_step=1)
        assert len(evals) == tiny_scenario.max_nodes * tiny_scenario.n_pstates

    def test_node_step_thins_axis(self, tiny_scenario):
        _, evals = exhaustive_optimum(tiny_scenario, node_step=4)
        nodes = {c.n_nodes for c in evals}
        assert tiny_scenario.max_nodes in nodes
        assert len(nodes) < tiny_scenario.max_nodes


@pytest.mark.slow
class TestPaperScale:
    def test_full_scenario_story_holds(self):
        """The complete Tab-1 narrative at paper scale (64 nodes, Montage-738)."""
        opts = question3_comparison()
        assert opts["heuristic"].co2_grams < opts["power-off"].co2_grams
        assert opts["heuristic"].co2_grams < opts["downclock"].co2_grams
        for c in opts.values():
            assert c.makespan <= 180.0
