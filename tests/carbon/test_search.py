"""Tests for the search utilities."""

import pytest

from repro.carbon.search import binary_search_min, grid_search, linear_search_min
from repro.common.errors import ConfigurationError


class TestBinarySearchMin:
    def test_finds_threshold(self):
        assert binary_search_min(1, 100, lambda n: n >= 37) == 37

    def test_lo_feasible(self):
        assert binary_search_min(1, 100, lambda n: True) == 1

    def test_nothing_feasible(self):
        assert binary_search_min(1, 100, lambda n: False) is None

    def test_hi_only(self):
        assert binary_search_min(1, 10, lambda n: n == 10) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            binary_search_min(5, 4, lambda n: True)

    @pytest.mark.parametrize("threshold", [1, 2, 13, 50, 64])
    def test_agrees_with_linear_scan(self, threshold):
        feasible = lambda n: n >= threshold
        assert binary_search_min(1, 64, feasible) == linear_search_min(1, 64, feasible)

    def test_call_count_logarithmic(self):
        calls = []

        def feasible(n):
            calls.append(n)
            return n >= 33

        binary_search_min(1, 64, feasible)
        assert len(calls) <= 8  # log2(64) + the initial hi probe


class TestGridSearch:
    def test_unconstrained_minimum(self):
        best, value, evals = grid_search(
            [range(5), range(5)], lambda a, b: (a - 2) ** 2 + (b - 3) ** 2
        )
        assert best == (2, 3)
        assert value == 0
        assert len(evals) == 25

    def test_constraint_excludes(self):
        best, value, _ = grid_search(
            [range(5)], lambda a: a, constraint=lambda a: a >= 2
        )
        assert best == (2,)

    def test_infeasible_everywhere(self):
        best, value, evals = grid_search([range(3)], lambda a: a, constraint=lambda a: False)
        assert best is None
        assert value == float("inf")
        assert all(not ok for _, _, ok in evals)

    def test_evaluations_complete(self):
        _, _, evals = grid_search([range(2), range(3)], lambda a, b: a * b)
        assert {p for p, _, _ in evals} == {(a, b) for a in range(2) for b in range(3)}
