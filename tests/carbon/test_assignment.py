"""Tests for the generated answer sheet."""

import pytest

from repro.carbon.assignment import answer_sheet


@pytest.fixture(scope="module")
def sheet(tiny_scenario_module):
    return answer_sheet(tiny_scenario_module, tab1_node_step=1, tab2_resolution=3)


@pytest.fixture(scope="module")
def tiny_scenario_module():
    from repro.carbon.scenario import AssignmentScenario

    return AssignmentScenario(
        n_projections=12,
        n_difffits=20,
        gflop_scale=20.0,
        max_nodes=8,
        tab2_local_nodes=4,
        cloud_vms=4,
        time_bound=60.0,
    )


class TestAnswerSheet:
    def test_covers_every_question(self, sheet):
        for marker in ("Q1 (baseline)", "Q2 (bound", "Q2 verdict", "Q3 verdict",
                       "Reference optimum", "Q1 (pure placements)",
                       "Q2 (first two levels)", "Q3-5 reference optimum"):
            assert marker in sheet, marker

    def test_tab_headers(self, sheet):
        assert "TAB 1" in sheet and "TAB 2" in sheet

    def test_workflow_summary_line(self, sheet):
        assert "50 tasks" in sheet  # 12 project + 20 difffit + 12 background + 6 tail

    def test_mentions_both_pure_placements(self, sheet):
        assert "all-local" in sheet and "all-cloud" in sheet

    def test_heuristic_gap_reported(self, sheet):
        assert "heuristic gap" in sheet

    def test_deterministic(self, tiny_scenario_module):
        a = answer_sheet(tiny_scenario_module, tab1_node_step=2, tab2_resolution=2)
        b = answer_sheet(tiny_scenario_module, tab1_node_step=2, tab2_resolution=2)
        assert a == b
