"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.carbon.sensitivity import SensitivityRow, sweep_parameter, verdicts
from repro.common.errors import ConfigurationError


class TestVerdicts:
    def test_base_tiny_scenario_verdict_keys(self, tiny_scenario):
        v = verdicts(tiny_scenario, hunt_fractions=(0.0, 0.5, 1.0))
        assert set(v) == {
            "heuristic_wins", "cloud_greener", "cloud_slower", "mixed_beats_pure",
            "heuristic_co2", "all_local_co2", "all_cloud_co2", "best_mixed_co2",
        }
        assert v["heuristic_wins"] is True  # the calibrated shape

    def test_numbers_consistent(self, tiny_scenario):
        v = verdicts(tiny_scenario)
        assert v["best_mixed_co2"] <= min(v["all_local_co2"], v["all_cloud_co2"]) + 1e-9
        assert v["heuristic_co2"] > 0


class TestSweep:
    def test_one_row_per_value(self, tiny_scenario):
        rows = sweep_parameter(
            "cloud_carbon_intensity", [10.0, 100.0], base=tiny_scenario,
            hunt_fractions=(0.0, 1.0),
        )
        assert len(rows) == 2
        assert all(isinstance(r, SensitivityRow) for r in rows)
        assert [r.value for r in rows] == [10.0, 100.0]

    def test_dirty_cloud_worsens_cloud_co2(self, tiny_scenario):
        # the tiny scenario is calibrated for Tab-1 only, so assert the
        # monotone effect rather than an absolute verdict: a dirtier cloud
        # strictly raises all-cloud CO2 and loses the greener verdict
        rows = sweep_parameter(
            "cloud_carbon_intensity", [10.0, 2000.0], base=tiny_scenario,
            hunt_fractions=(0.0, 1.0),
        )
        assert rows[1].all_cloud_co2 > rows[0].all_cloud_co2
        # (all-local CO2 also rises a little: the idle VMs' site burns at
        # the new intensity; the *cloud-heavy* run must rise much faster)
        cloud_rise = rows[1].all_cloud_co2 - rows[0].all_cloud_co2
        local_rise = rows[1].all_local_co2 - rows[0].all_local_co2
        assert cloud_rise > local_rise
        assert not rows[1].cloud_greener  # a coal-powered "cloud" is not green

    def test_unknown_parameter_rejected(self, tiny_scenario):
        with pytest.raises(ConfigurationError):
            sweep_parameter("warp_factor", [1.0], base=tiny_scenario)

    def test_paper_shape_holds_property(self, tiny_scenario):
        rows = sweep_parameter(
            "cloud_carbon_intensity", [2000.0], base=tiny_scenario,
            hunt_fractions=(0.0, 1.0),
        )
        assert rows[0].paper_shape_holds is False


class TestEnergyBreakdown:
    def test_busy_plus_idle_equals_total(self, tiny_scenario):
        from repro.wrench.analysis import energy_breakdown
        from repro.wrench.scheduler import place_all
        from repro.wrench.platform import LOCAL
        from repro.wrench.simulation import WorkflowSimulation

        plat = tiny_scenario.tab2_platform()
        wf = tiny_scenario.workflow
        result = WorkflowSimulation(plat, wf, place_all(wf, LOCAL)).run()
        breakdown = energy_breakdown(result, plat)
        total = sum(b.total_joules for b in breakdown)
        assert total == pytest.approx(result.total_energy, rel=1e-9)

    def test_idle_fraction_bounds(self, tiny_scenario):
        from repro.wrench.analysis import energy_breakdown
        from repro.wrench.simulation import WorkflowSimulation

        plat = tiny_scenario.tab2_platform()
        result = WorkflowSimulation(plat, tiny_scenario.workflow).run()
        for b in energy_breakdown(result, plat):
            assert 0.0 <= b.idle_fraction <= 1.0
