"""Tests for the climate MapReduce jobs."""

import pytest

from repro.climate.jobs import (
    annual_mean_job,
    parse_month_file_line,
    parse_station_file_line,
    streaming_mapper,
    streaming_reducer,
)
from repro.mapreduce.engine import run_job
from repro.mapreduce.streaming import run_streaming
from repro.mapreduce.textio import text_splits


class TestMonthFileParser:
    def test_parses_states_excludes_national(self):
        line = "1881;01;1.0;2.0;3.0;2.0"
        samples = list(parse_month_file_line(line))
        assert samples == [(1881, 1.0), (1881, 2.0), (1881, 3.0)]

    def test_header_skipped(self):
        assert list(parse_month_file_line("Jahr;Monat;Bayern;Deutschland")) == []

    def test_comment_and_blank_skipped(self):
        assert list(parse_month_file_line("# comment")) == []
        assert list(parse_month_file_line("   ")) == []

    def test_garbage_skipped(self):
        assert list(parse_month_file_line("not;a;valid;row")) == []

    def test_short_row_skipped(self):
        assert list(parse_month_file_line("1881;01;5.0")) == []


class TestStationFileParser:
    def test_parses(self):
        assert list(parse_station_file_line("1881;07;17.25")) == [(1881, 17.25)]

    def test_header_skipped(self):
        assert list(parse_station_file_line("Jahr;Monat;Temperatur")) == []

    def test_wrong_arity_skipped(self):
        assert list(parse_station_file_line("1881;07;17.25;extra")) == []


class TestAnnualMeanJob:
    def test_computes_exact_mean(self):
        lines = [
            "Jahr;Monat;A;B;Deutschland",
            "2000;01;1.0;3.0;2.0",
            "2000;02;5.0;7.0;6.0",
        ]
        result = run_job(annual_mean_job(), text_splits(lines, 2))
        assert result.as_dict() == {2000: pytest.approx(4.0)}

    def test_multiple_years(self):
        lines = ["2000;01;1.0;1.0;1.0", "2001;01;9.0;9.0;9.0"]
        result = run_job(annual_mean_job(), text_splits(lines, 1))
        assert result.as_dict() == {2000: pytest.approx(1.0), 2001: pytest.approx(9.0)}

    def test_both_formats_same_answer(self, climate_dataset):
        month_lines = [l for f in climate_dataset.month_files().values() for l in f]
        station_lines = [l for f in climate_dataset.station_files().values() for l in f]
        m = run_job(annual_mean_job(input_format="month-files"), text_splits(month_lines, 6))
        s = run_job(annual_mean_job(input_format="station-files"), text_splits(station_lines, 6))
        md, sd = m.as_dict(), s.as_dict()
        assert set(md) == set(sd)
        for year in md:
            assert md[year] == pytest.approx(sd[year], abs=1e-9)

    def test_combiner_optional_same_answer(self, climate_dataset):
        lines = [l for f in climate_dataset.month_files().values() for l in f]
        with_c = run_job(annual_mean_job(with_combiner=True), text_splits(lines, 5))
        without = run_job(annual_mean_job(with_combiner=False), text_splits(lines, 5))
        wc, wo = with_c.as_dict(), without.as_dict()
        assert set(wc) == set(wo)
        for y in wc:
            # combiner changes summation order: bit-level drift only
            assert wc[y] == pytest.approx(wo[y], abs=1e-9)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            annual_mean_job(input_format="parquet")

    def test_matches_dataset_oracle(self, climate_dataset):
        lines = [l for f in climate_dataset.month_files().values() for l in f]
        result = run_job(annual_mean_job(), text_splits(lines, 12))
        oracle = climate_dataset.true_annual_means()
        computed = result.as_dict()
        assert set(computed) == set(oracle)
        for year, v in oracle.items():
            # files quantise to 0.01 degC, so allow that much slack
            assert computed[year] == pytest.approx(v, abs=0.01)


class TestStreamingSolution:
    def test_matches_structured_job(self, climate_dataset):
        lines = [l for f in climate_dataset.month_files().values() for l in f]
        structured = run_job(annual_mean_job(), text_splits(lines, 4)).as_dict()
        streamed = run_streaming(streaming_mapper, streaming_reducer, lines)
        parsed = {int(l.split("\t")[0]): float(l.split("\t")[1]) for l in streamed}
        assert set(parsed) == set(structured)
        for y in parsed:
            assert parsed[y] == pytest.approx(structured[y], abs=1e-5)

    def test_empty_input(self):
        assert run_streaming(streaming_mapper, streaming_reducer, []) == []
