"""Tests for the global climate source."""

import numpy as np
import pytest

from repro.climate.sources import (
    generate_global_dataset,
    global_annual_mean_job,
    global_anomaly_file,
    parse_global_line,
)
from repro.climate.stripes import WarmingStripes
from repro.common.errors import ConfigurationError
from repro.mapreduce.engine import run_job
from repro.mapreduce.textio import text_splits


class TestGlobalDataset:
    def test_shape(self):
        data = generate_global_dataset(1880, 2019)
        assert data.shape == (140, 12)

    def test_warming_shape(self):
        data = generate_global_dataset(1880, 2019, seed=1)
        annual = data.mean(axis=1)
        # late-19th-century baseline near zero; 2010s near +1 degC
        assert abs(annual[:20].mean()) < 0.25
        assert 0.6 < annual[-10:].mean() < 1.3
        # mid-century plateau: 1945-1970 mean close to 1940 level
        assert annual[65:90].mean() - annual[55:65].mean() < 0.2

    def test_deterministic(self):
        assert np.array_equal(
            generate_global_dataset(seed=5), generate_global_dataset(seed=5)
        )

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            generate_global_dataset(2020, 2019)


class TestFileAndParser:
    def test_roundtrip_line_count(self):
        lines = list(global_anomaly_file(2000, 2002))
        assert len(lines) == 1 + 3 * 12

    def test_parser(self):
        assert list(parse_global_line("1998;05;+0.612")) == [(1998, 0.612)]
        assert list(parse_global_line("Year;Month;Anomaly")) == []
        assert list(parse_global_line("bad line")) == []


class TestGlobalJob:
    def test_annual_means_match_oracle(self):
        lines = list(global_anomaly_file(1990, 2019, seed=3))
        result = run_job(global_annual_mean_job(), text_splits(lines, 6))
        oracle = generate_global_dataset(1990, 2019, seed=3).mean(axis=1)
        computed = result.as_dict()
        for i, year in enumerate(range(1990, 2020)):
            assert computed[year] == pytest.approx(oracle[i], abs=0.001)

    def test_global_stripes_drift_blue_to_red(self):
        lines = list(global_anomaly_file(1880, 2019))
        result = run_job(global_annual_mean_job(), text_splits(lines, 12))
        stripes = WarmingStripes.from_annual_means(
            {int(k): float(v) for k, v in result.pairs}
        )
        art = stripes.ascii()
        assert art[0] in "Bb"
        assert art[-1] in "Rr"
        assert stripes.trend_degrees() > 0.7
