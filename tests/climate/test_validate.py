"""Tests for data-quality validation."""

import pytest

from repro.climate.dwd import generate_dataset
from repro.climate.jobs import parse_month_file_line
from repro.climate.validate import (
    EXPECTED_SAMPLES_PER_YEAR,
    YearQuality,
    seasonal_bias_estimate,
    validate_annual_counts,
)
from repro.common.errors import DataValidationError
from repro.mapreduce.textio import text_splits


def dataset_splits(ds, n=6):
    lines = [l for f in ds.month_files().values() for l in f]
    return text_splits(lines, n)


class TestYearQuality:
    def test_complete(self):
        q = YearQuality(2000, 192, 192)
        assert q.complete
        assert q.missing_fraction == 0.0

    def test_incomplete(self):
        q = YearQuality(2020, 160, 192)
        assert not q.complete
        assert q.missing_fraction == pytest.approx(1 - 160 / 192)


class TestValidateAnnualCounts:
    def test_clean_dataset(self, climate_dataset):
        report = validate_annual_counts(dataset_splits(climate_dataset), parse_month_file_line)
        assert report.is_clean()
        assert len(report.years) == 30
        assert all(q.samples == EXPECTED_SAMPLES_PER_YEAR for q in report.years)

    def test_detects_missing_winter(self):
        ds = generate_dataset(2000, 2020, seed=3)
        ds.inject_missing(2020, [11, 12])
        report = validate_annual_counts(dataset_splits(ds), parse_month_file_line)
        assert report.incomplete_years == [2020]
        assert 2019 in report.complete_years
        bad = next(q for q in report.years if q.year == 2020)
        assert bad.samples == 10 * 16

    def test_summary_strings(self):
        ds = generate_dataset(2000, 2002, seed=0)
        report = validate_annual_counts(dataset_splits(ds), parse_month_file_line)
        assert "complete" in report.summary()
        ds.inject_missing(2001, [1])
        report2 = validate_annual_counts(dataset_splits(ds), parse_month_file_line)
        assert "2001" in report2.summary()

    def test_expected_validated(self, climate_dataset):
        with pytest.raises(DataValidationError):
            validate_annual_counts(dataset_splits(climate_dataset), parse_month_file_line,
                                   expected_per_year=0)


class TestSeasonalBias:
    def test_missing_winter_warm_bias(self):
        # present Jan..Oct (missing Nov, Dec) -> mean over warmer months
        bias = seasonal_bias_estimate(list(range(1, 11)))
        assert bias > 0.3

    def test_missing_summer_cold_bias(self):
        bias = seasonal_bias_estimate([1, 2, 3, 10, 11, 12])
        assert bias < -3.0

    def test_full_year_zero(self):
        assert seasonal_bias_estimate(list(range(1, 13))) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            seasonal_bias_estimate([])

    def test_invalid_month_rejected(self):
        with pytest.raises(DataValidationError):
            seasonal_bias_estimate([0])
