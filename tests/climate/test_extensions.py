"""Tests for the climate extensions: anomalies, bars mode, daily data."""

import numpy as np
import pytest

from repro.climate.dwd import generate_dataset
from repro.climate.jobs import annual_mean_job, parse_daily_file_line
from repro.climate.stripes import WarmingStripes
from repro.common.errors import ConfigurationError, DataValidationError
from repro.mapreduce.engine import run_job
from repro.mapreduce.textio import text_splits


def make_stripes(values, first_year=2000):
    return WarmingStripes.from_annual_means(
        {first_year + i: v for i, v in enumerate(values)}
    )


class TestAnomalies:
    def test_explicit_baseline(self):
        s = make_stripes([7.0, 8.0, 9.0, 10.0])
        anoms = s.anomalies(baseline=(2000, 2001))  # mean 7.5
        assert anoms == pytest.approx([-0.5, 0.5, 1.5, 2.5])

    def test_default_baseline_last_30_years(self):
        values = [8.0] * 40
        s = make_stripes(values)
        assert s.anomalies() == pytest.approx([0.0] * 40)

    def test_warming_series_positive_recent_anomalies(self):
        s = make_stripes(list(np.linspace(7.0, 10.0, 60)), first_year=1960)
        anoms = s.anomalies(baseline=(1960, 1989))
        assert anoms[-1] > 1.0
        assert anoms[0] < 0.0

    def test_nan_years_stay_nan(self):
        s = WarmingStripes.from_annual_means({2000: 8.0, 2002: 9.0})
        anoms = s.anomalies(baseline=(2000, 2002))
        assert np.isnan(anoms[1])

    def test_empty_baseline_rejected(self):
        s = make_stripes([8.0, 9.0])
        with pytest.raises(DataValidationError):
            s.anomalies(baseline=(1900, 1910))


class TestBarsImage:
    def test_geometry_and_background(self):
        s = make_stripes([7.0, 8.0, 9.0])
        img = s.bars_image(height=40, stripe_width=3)
        assert img.shape == (40, 9, 3)
        # corners stay white (background)
        assert tuple(img[0, 0]) == (255, 255, 255)

    def test_warm_bars_above_cold_below(self):
        s = make_stripes([6.0, 10.0])
        img = s.bars_image(baseline=(2000, 2001), height=40, stripe_width=2)
        mid = 20
        # cold year: coloured strictly below the midline
        cold_above = (img[: mid - 1, 0:2] != 255).any()
        cold_below = (img[mid:, 0:2] != 255).any()
        warm_above = (img[: mid - 1, 2:4] != 255).any()
        warm_below = (img[mid + 1 :, 2:4] != 255).any()
        assert not cold_above and cold_below
        assert warm_above and not warm_below

    def test_missing_year_grey_tick(self):
        s = WarmingStripes.from_annual_means({2000: 8.0, 2002: 9.0})
        img = s.bars_image(baseline=(2000, 2002), height=20, stripe_width=1)
        assert (img[:, 1] == 128).any()


class TestDailyData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(2000, 2002, seed=4)

    def test_row_count(self, dataset):
        rows = list(dataset.daily_file("Berlin"))
        assert len(rows) == 3 * 365  # non-leap calendar

    def test_parser(self):
        assert list(parse_daily_file_line("2000;07;15;21.50")) == [(2000, 21.5)]
        assert list(parse_daily_file_line("Jahr;Monat;Tag;Temperatur")) == []
        assert list(parse_daily_file_line("2000;07;21.50")) == []

    def test_daily_monthly_consistency(self, dataset):
        """Daily means reproduce monthly means exactly (unbiased noise)."""
        lines = list(dataset.daily_file("Berlin"))
        result = run_job(annual_mean_job(input_format="daily-files"), text_splits(lines, 4))
        si = dataset.states.index("Berlin")
        for year, computed in result.pairs:
            yi = year - dataset.first_year
            # day-weighted mean of monthly means (daily noise is centred)
            days = np.array([31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31])
            expected = float((dataset.temps[yi, :, si] * days).sum() / days.sum())
            assert computed == pytest.approx(expected, abs=0.02)

    def test_missing_months_skipped(self, dataset):
        ds = generate_dataset(2000, 2000, seed=1)
        ds.inject_missing(2000, [12])
        rows = list(ds.daily_file(ds.states[0]))
        assert len(rows) == 365 - 31

    def test_unknown_state_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            list(dataset.daily_file("Narnia"))

    def test_deterministic(self, dataset):
        a = list(dataset.daily_file("Bayern"))
        b = list(dataset.daily_file("Bayern"))
        assert a == b
