"""Tests for the warming-stripes computation and rendering."""

import numpy as np
import pytest

from repro.climate.stripes import WarmingStripes
from repro.common.errors import DataValidationError


def make_stripes(values, first_year=2000):
    means = {first_year + i: v for i, v in enumerate(values)}
    return WarmingStripes.from_annual_means(means)


class TestColorbarRule:
    """The paper's rule: colourbar = whole-span mean +/- 1.5 degC."""

    def test_reference_mean(self):
        s = make_stripes([7.0, 8.0, 9.0])
        assert s.reference_mean == pytest.approx(8.0)
        assert s.vmin == pytest.approx(6.5)
        assert s.vmax == pytest.approx(9.5)

    def test_nan_years_excluded_from_reference(self):
        s = WarmingStripes.from_annual_means({2000: 8.0, 2002: 10.0})
        assert np.isnan(s.means[1])  # the 2001 gap
        assert s.reference_mean == pytest.approx(9.0)

    def test_all_missing_rejected(self):
        s = WarmingStripes(years=np.array([2000]), means=np.array([np.nan]))
        with pytest.raises(DataValidationError):
            s.reference_mean


class TestConstruction:
    def test_gaps_filled_with_nan(self):
        s = WarmingStripes.from_annual_means({1990: 8.0, 1993: 9.0})
        assert list(s.years) == [1990, 1991, 1992, 1993]
        assert np.isnan(s.means[1]) and np.isnan(s.means[2])

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            WarmingStripes.from_annual_means({})

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataValidationError):
            WarmingStripes(years=np.array([2000, 2001]), means=np.array([8.0]))


class TestColors:
    def test_cold_year_blue_warm_year_red(self):
        s = make_stripes([7.0, 8.0, 9.0])
        r0, g0, b0 = s.color_of(2000)
        r2, g2, b2 = s.color_of(2002)
        assert b0 > r0
        assert r2 > b2

    def test_missing_year_grey(self):
        s = WarmingStripes.from_annual_means({2000: 8.0, 2002: 9.0})
        assert s.color_of(2001) == (128, 128, 128)

    def test_out_of_range_year_rejected(self):
        with pytest.raises(DataValidationError):
            make_stripes([8.0]).color_of(1800)


class TestTrend:
    def test_positive_warming(self):
        s = make_stripes([7.0, 7.5, 8.0, 8.5])
        assert s.trend_degrees() == pytest.approx(1.5)

    def test_flat(self):
        assert make_stripes([8.0, 8.0, 8.0]).trend_degrees() == pytest.approx(0.0, abs=1e-9)

    def test_needs_two_years(self):
        with pytest.raises(DataValidationError):
            make_stripes([8.0]).trend_degrees()

    def test_nan_robust(self):
        s = WarmingStripes.from_annual_means({2000: 7.0, 2002: 8.0, 2004: 9.0})
        assert s.trend_degrees() == pytest.approx(2.0)


class TestRendering:
    def test_image_geometry(self):
        img = make_stripes([7.0, 8.0, 9.0]).image(height=50, stripe_width=3)
        assert img.shape == (50, 9, 3)
        assert img.dtype == np.uint8

    def test_save_ppm(self, tmp_path):
        path = tmp_path / "stripes.ppm"
        make_stripes([7.0, 9.0]).save_ppm(path)
        assert path.read_bytes().startswith(b"P6\n")

    def test_ascii_cold_to_warm(self):
        s = make_stripes(list(np.linspace(6.0, 11.0, 40)))
        art = s.ascii()
        assert art[0] in "Bb"
        assert art[-1] in "Rr"

    def test_ascii_missing_marker(self):
        s = WarmingStripes.from_annual_means({2000: 8.0, 2002: 8.0})
        assert "?" in s.ascii()

    def test_ascii_downsamples(self):
        s = make_stripes([8.0] * 500)
        assert len(s.ascii(width_chars=50)) <= 51
