"""Tests for the four-phase warming-stripes workflow."""

import pytest

from repro.climate.workflow import run_warming_stripes_workflow
from repro.mapreduce.cluster import ClusterConfig


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def wf(self):
        return run_warming_stripes_workflow(first_year=1990, last_year=2019, seed=5)

    def test_all_artifacts_present(self, wf):
        assert wf.dataset.first_year == 1990
        assert len(wf.input_lines) > 0
        assert len(wf.annual_means) == 30
        assert wf.quality.is_clean()
        assert wf.stripes.years[0] == 1990

    def test_means_match_oracle(self, wf):
        oracle = wf.dataset.true_annual_means()
        for year, v in oracle.items():
            assert wf.annual_means[year] == pytest.approx(v, abs=0.01)

    def test_no_suspicious_years(self, wf):
        assert wf.suspicious_years == []


class TestMissingWinterScenario:
    def test_2020_flagged_and_biased(self):
        wf = run_warming_stripes_workflow(
            first_year=2010, last_year=2020, seed=3, with_missing_winter=2020
        )
        assert wf.suspicious_years == [2020]
        # the biased mean is visibly warm against neighbours
        neighbours = [wf.annual_means[y] for y in range(2015, 2020)]
        assert wf.annual_means[2020] > max(neighbours) - 0.5


class TestVariants:
    def test_station_format(self):
        a = run_warming_stripes_workflow(first_year=2000, last_year=2005, seed=1)
        b = run_warming_stripes_workflow(
            first_year=2000, last_year=2005, seed=1, input_format="station-files"
        )
        for y in a.annual_means:
            assert a.annual_means[y] == pytest.approx(b.annual_means[y], abs=1e-9)

    def test_cluster_execution_identical(self):
        a = run_warming_stripes_workflow(first_year=2000, last_year=2005, seed=1)
        b = run_warming_stripes_workflow(
            first_year=2000,
            last_year=2005,
            seed=1,
            on_cluster=True,
            cluster_config=ClusterConfig(n_workers=4, failure_prob=0.2, seed=8),
        )
        assert a.annual_means == b.annual_means

    def test_split_count_irrelevant(self):
        a = run_warming_stripes_workflow(first_year=2000, last_year=2003, seed=2, n_splits=1)
        b = run_warming_stripes_workflow(first_year=2000, last_year=2003, seed=2, n_splits=24)
        assert set(a.annual_means) == set(b.annual_means)
        for y in a.annual_means:
            # summation order differs across splits: bit-level drift only
            assert a.annual_means[y] == pytest.approx(b.annual_means[y], abs=1e-9)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            run_warming_stripes_workflow(input_format="excel")
