"""Tests for the synthetic DWD dataset generator."""

import numpy as np
import pytest

from repro.climate.dwd import GERMAN_STATES, DwdDataset, generate_dataset
from repro.common.errors import ConfigurationError


class TestGeneration:
    def test_shape(self, climate_dataset):
        assert climate_dataset.temps.shape == (30, 12, 16)
        assert climate_dataset.first_year == 1990
        assert climate_dataset.last_year == 2019

    def test_sixteen_states(self):
        assert len(GERMAN_STATES) == 16

    def test_deterministic(self):
        a = generate_dataset(2000, 2005, seed=1)
        b = generate_dataset(2000, 2005, seed=1)
        assert np.array_equal(a.temps, b.temps)

    def test_seed_matters(self):
        a = generate_dataset(2000, 2005, seed=1)
        b = generate_dataset(2000, 2005, seed=2)
        assert not np.array_equal(a.temps, b.temps)

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            generate_dataset(2020, 2019)


class TestClimatology:
    """The paper's headline numbers must hold statistically."""

    @pytest.fixture(scope="class")
    def full(self):
        return generate_dataset(1881, 2019, seed=42)

    def test_annual_mean_range_7_to_10(self, full):
        means = full.true_annual_means()
        assert 6.5 < min(means.values()) < 8.5
        assert 9.0 < max(means.values()) < 11.5

    def test_warming_trend_about_1_5_degrees(self, full):
        means = full.true_annual_means()
        years = np.array(sorted(means))
        vals = np.array([means[y] for y in years])
        slope = np.polyfit(years, vals, 1)[0]
        total = slope * (years[-1] - years[0])
        assert 1.0 < total < 2.2

    def test_recent_decades_warmer(self, full):
        means = full.true_annual_means()
        early = np.mean([means[y] for y in range(1881, 1911)])
        late = np.mean([means[y] for y in range(1990, 2020)])
        assert late - early > 0.8

    def test_summer_warmer_than_winter(self, full):
        jan = full.temps[:, 0, :].mean()
        jul = full.temps[:, 6, :].mean()
        assert jul - jan > 12.0

    def test_state_anomalies_correlated(self, full):
        # the national anomaly dominates: two states' july series correlate
        a = full.temps[:, 6, 0]
        b = full.temps[:, 6, 8]
        r = np.corrcoef(a, b)[0, 1]
        assert r > 0.85


class TestMissingData:
    def test_inject_and_detect(self, climate_dataset):
        ds = generate_dataset(2000, 2020, seed=3)
        ds.inject_missing(2020, [11, 12])
        assert np.isnan(ds.temps[-1, 10:, :]).all()
        assert (2020, 11) in ds.missing

    def test_annual_mean_warm_biased(self):
        ds = generate_dataset(2000, 2020, seed=3)
        honest = ds.true_annual_means()[2020]
        ds.inject_missing(2020, [11, 12])
        biased = ds.true_annual_means()[2020]
        assert biased > honest  # missing winter months inflate the mean

    def test_skip_incomplete_drops_year(self):
        ds = generate_dataset(2000, 2020, seed=3)
        ds.inject_missing(2020, [11, 12])
        means = ds.true_annual_means(skip_incomplete=True)
        assert 2020 not in means
        assert 2019 in means

    def test_bad_year_rejected(self, climate_dataset):
        ds = generate_dataset(2000, 2001, seed=0)
        with pytest.raises(ConfigurationError):
            ds.inject_missing(1990, [1])

    def test_bad_month_rejected(self):
        ds = generate_dataset(2000, 2001, seed=0)
        with pytest.raises(ConfigurationError):
            ds.inject_missing(2000, [13])


class TestFileRenderings:
    def test_month_file_layout(self, climate_dataset):
        lines = climate_dataset.month_file(1)
        header = lines[0].split(";")
        assert header[0] == "Jahr" and header[-1] == "Deutschland"
        assert len(header) == 2 + 16 + 1
        row = lines[1].split(";")
        assert row[0] == "1990" and row[1] == "01"

    def test_month_files_all_twelve(self, climate_dataset):
        files = climate_dataset.month_files()
        assert sorted(files) == list(range(1, 13))

    def test_missing_rows_omitted(self):
        ds = generate_dataset(2000, 2020, seed=3)
        ds.inject_missing(2020, [12])
        lines = ds.month_file(12)
        assert not any(line.startswith("2020;") for line in lines)
        assert any(line.startswith("2019;") for line in lines)

    def test_national_column_is_row_mean(self, climate_dataset):
        line = climate_dataset.month_file(6)[1]
        cells = line.split(";")
        states = np.array([float(c) for c in cells[2:-1]])
        national = float(cells[-1])
        assert national == pytest.approx(states.mean(), abs=0.01)

    def test_station_file_layout(self, climate_dataset):
        lines = climate_dataset.station_file("Bayern")
        assert lines[0].startswith("#")
        assert lines[1] == "Jahr;Monat;Temperatur"
        assert len(lines) == 2 + 30 * 12

    def test_station_file_unknown_state(self, climate_dataset):
        with pytest.raises(ConfigurationError):
            climate_dataset.station_file("Atlantis")

    def test_month_out_of_range(self, climate_dataset):
        with pytest.raises(ConfigurationError):
            climate_dataset.month_file(0)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DwdDataset(first_year=2000, temps=np.zeros((2, 11, 16)))

    def test_state_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DwdDataset(first_year=2000, temps=np.zeros((2, 12, 3)))
