"""Tests for trace summaries/diffs and agreement with ``Trace.summarize``."""

import pytest

from repro.easypap.monitor import TaskRecord, Trace
from repro.obs import Tracer, diff_summaries, summarize
from repro.obs.adapters.easypap import trace_to_tracer


def make_easypap_trace() -> Trace:
    trace = Trace()
    rows = [
        # iteration 1: two workers, uneven load
        TaskRecord(1, 0, 0, 0.0, 1.0, "compute", 0, 0),
        TaskRecord(1, 1, 0, 1.0, 1.5, "compute", 0, 1),
        TaskRecord(1, 2, 1, 0.0, 0.75, "compute", 1, 0),
        # iteration 2: one worker
        TaskRecord(2, 0, 0, 2.0, 2.5, "compute", 0, 0),
    ]
    trace.extend(rows)
    return trace


class TestSummarize:
    def test_basic_aggregates(self):
        t = Tracer(process="p")
        t.add_span("a", start=0.0, end=2.0, cat="compute", tid=0)
        t.add_span("b", start=1.0, end=4.0, cat="comm", tid=1)
        s = summarize(t)
        assert s.span_count == 2
        assert s.makespan == pytest.approx(4.0)
        assert s.total_busy == pytest.approx(5.0)
        assert s.by_cat == {"compute": 1, "comm": 1}
        assert s.worker_busy == {0: pytest.approx(2.0), 1: pytest.approx(3.0)}
        assert s.task_counts == {0: 1, 1: 1}
        assert s.lanes[("p", 1)].busy_fraction(s.makespan) == pytest.approx(0.75)

    def test_empty(self):
        s = summarize(Tracer())
        assert s.span_count == 0 and s.makespan == 0.0
        assert s.imbalance == 0.0

    def test_pid_and_where_filters(self):
        t = Tracer()
        t.add_span("a", start=0, end=1, pid="x", tid=0, args={"iteration": 1})
        t.add_span("b", start=0, end=2, pid="y", tid=0, args={"iteration": 2})
        assert summarize(t, pid="x").span_count == 1
        assert summarize(t, where=lambda s: s.args.get("iteration") == 2).total_busy == 2

    def test_imbalance_matches_definition(self):
        t = Tracer()
        t.add_span("a", start=0, end=3, tid=0)
        t.add_span("b", start=0, end=1, tid=1)
        # max/mean - 1 = 3/2 - 1
        assert summarize(t).imbalance == pytest.approx(0.5)

    def test_render_mentions_lanes(self):
        t = Tracer(process="p")
        t.add_span("a", start=0, end=1, tid=0)
        text = summarize(t).render(title="run")
        assert text.startswith("run: 1 spans")
        assert "p/0: 1 spans" in text


class TestAgreementWithEasypapSummaries:
    """``trace summary --iteration N`` must match ``Trace.summarize(N)``."""

    @pytest.mark.parametrize("iteration", [1, 2])
    def test_per_iteration_numbers_agree(self, iteration):
        trace = make_easypap_trace()
        expected = trace.summarize(iteration)
        got = summarize(
            trace_to_tracer(trace),
            where=lambda s: s.args.get("iteration") == iteration,
        )
        assert got.span_count == expected.task_count
        assert got.makespan == pytest.approx(expected.makespan)
        assert got.total_busy == pytest.approx(expected.total_work)
        assert got.worker_busy == pytest.approx(expected.worker_busy)
        assert got.imbalance == pytest.approx(expected.imbalance)

    def test_task_counts_per_worker(self):
        got = summarize(
            trace_to_tracer(make_easypap_trace()),
            where=lambda s: s.args.get("iteration") == 1,
        )
        assert got.task_counts == {0: 2, 1: 1}


class TestDiff:
    def test_ratios(self):
        left = summarize(_tracer_with(makespan=2.0, nspans=4))
        right = summarize(_tracer_with(makespan=1.0, nspans=2))
        d = diff_summaries(left, right, left_name="static", right_name="dynamic")
        assert d.makespan_ratio == pytest.approx(2.0)
        assert d.span_ratio == pytest.approx(2.0)

    def test_empty_right_side(self):
        left = summarize(_tracer_with(makespan=1.0, nspans=1))
        d = diff_summaries(left, summarize(Tracer()))
        assert d.makespan_ratio == float("inf")

    def test_render_lists_lanes(self):
        left = summarize(_tracer_with(makespan=2.0, nspans=2))
        right = summarize(_tracer_with(makespan=2.0, nspans=2))
        text = diff_summaries(left, right, left_name="L", right_name="R").render()
        assert text.startswith("L vs R")
        assert "makespan" in text and "lane 0:" in text


def _tracer_with(*, makespan: float, nspans: int) -> Tracer:
    t = Tracer(process="p")
    step = makespan / nspans
    for i in range(nspans):
        t.add_span(f"s{i}", start=i * step, end=(i + 1) * step, tid=i % 2)
    return t


class TestDegradationsInSummary:
    def _tracer(self) -> Tracer:
        t = Tracer(process="p")
        t.add_span("s0", start=0.0, end=1.0, tid=0)
        t.instant("Supervisor:step-retry", ts=0.2, cat="degradation", pid="easypap")
        t.instant("Supervisor:step-retry", ts=0.4, cat="degradation", pid="easypap")
        t.instant("ProcessBackend:pool-rebuild", ts=0.5, cat="degradation", pid="mapreduce")
        t.instant("checkpoint", ts=0.6, cat="checkpoint", pid="easypap")  # not a degradation
        return t

    def test_counted_by_substrate_and_kind(self):
        s = summarize(self._tracer())
        assert s.degradations == {
            ("easypap", "Supervisor:step-retry"): 2,
            ("mapreduce", "ProcessBackend:pool-rebuild"): 1,
        }

    def test_pid_filter_applies(self):
        s = summarize(self._tracer(), pid="mapreduce")
        assert s.degradations == {("mapreduce", "ProcessBackend:pool-rebuild"): 1}

    def test_rendered_even_without_spans(self):
        t = Tracer(process="p")
        t.instant("Supervisor:interrupted", ts=0.0, cat="degradation", pid="simmpi")
        s = summarize(t)
        assert s.span_count == 0
        text = s.render()
        assert "degradations: 1 event(s)" in text
        assert "simmpi: Supervisor:interrupted x1" in text

    def test_clean_trace_renders_no_degradation_block(self):
        text = summarize(_tracer_with(makespan=1.0, nspans=2)).render()
        assert "degradations" not in text
