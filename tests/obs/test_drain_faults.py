"""Multiprocess span collection must survive worker crashes.

Workers record per-tile spans locally and the parent absorbs them at
harvest time; a killed worker must not cost the trace a single tile.
These kill real pool workers (``os._exit`` in the child), so they carry
the ``faults`` marker and run in the dedicated CI job.
"""

import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
from repro.easypap.executor import ProcessBackend, TaskBatch, TileTask
from repro.easypap.grid import Grid2D
from repro.easypap.monitor import Trace
from repro.easypap.tiling import TileGrid
from repro.obs import Tracer, to_chrome_trace
from repro.obs.adapters.easypap import degradation_to_instants, trace_to_tracer
from repro.sandpile.kernels import sync_tile

from tests.obs.chrome_checks import assert_valid_chrome_doc

pytestmark = pytest.mark.faults

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def make_sync_batch(be, g, scratch, tiles):
    """A closure batch mirroring the picklable sync-tile spec."""
    p0, p1 = be.bind_planes(g.data, scratch)

    def mk(tile):
        def task():
            return sync_tile(p0, p1, tile)

        return task

    spec = [TileTask("sync_tile", 0, 1, t) for t in tiles]
    return TaskBatch([mk(t) for t in tiles], tiles=tiles, spec=spec)


class TestDrainLosesNoSpans:
    @needs_processes
    def test_worker_crash_keeps_every_tile_span(self):
        n = 8
        g = Grid2D(n, n)
        g.interior[:] = 6
        scratch = g.data.copy()
        tiles = list(TileGrid(n, n, 4))

        trace = Trace()
        log = DegradationLog()
        injector = FaultInjector(kill_on_tasks={2}, max_fires=1)
        with ProcessBackend(
            2, "dynamic", retry=FAST_RETRY, degradation=log,
            fault_injector=injector, trace=trace,
        ) as be:
            be.run(make_sync_batch(be, g, scratch, tiles), iteration=1)
            assert injector.fires == 1  # a worker really died

        # every tile's span survived the crash and the pool rebuild
        assert len(trace) == len(tiles)
        tracer = trace_to_tracer(trace)
        assert {(s.args["tile_ty"], s.args["tile_tx"]) for s in tracer.spans()} == {
            (t.ty, t.tx) for t in tiles
        }

        # the recovery actions join the same timeline as instants, and the
        # whole thing still exports cleanly
        rebuilds = log.by_action("pool-rebuild")
        assert len(rebuilds) >= 1
        assert degradation_to_instants(tracer, log) == len(list(log))
        assert len(tracer.instants()) >= len(rebuilds)
        assert_valid_chrome_doc(to_chrome_trace(tracer))

    def test_tracer_drain_absorb_is_lossless_in_memory(self):
        """The obs-level half of the same guarantee, substrate-free."""
        workers = []
        for w in range(3):
            t = Tracer(process=f"worker-{w}")
            for i in range(4):
                t.add_span(f"tile:{w}:{i}", start=float(i), end=i + 0.5, tid=w)
            workers.append(t)
        parent = Tracer(process="main")
        for t in workers:
            parent.absorb(t.drain())
        assert all(len(t) == 0 for t in workers)
        assert len(parent.spans()) == 12
        names = {s.name for s in parent.spans()}
        assert names == {f"tile:{w}:{i}" for w in range(3) for i in range(4)}
