"""Tests for the exporters: Chrome trace-event JSON and ASCII timelines."""

import json

import pytest

from repro.obs import Tracer, ascii_timeline, save_chrome_trace, to_chrome_trace
from repro.obs.records import FlowPoint

from tests.obs.chrome_checks import assert_valid_chrome_doc, count_phases


def sample_tracer() -> Tracer:
    """Two track groups, numeric and named lanes, every record kind."""
    t = Tracer(process="alpha")
    a = t.add_span("map:0", start=0.0, end=1.0, cat="compute", tid=0)
    b = t.add_span("map:1", start=0.2, end=1.4, cat="compute", tid=1)
    sh = t.add_span("shuffle", start=1.4, end=2.0, cat="comm", tid="shuffle")
    t.add_span("other", start=0.0, end=0.5, cat="compute", pid="beta", tid=0)
    t.instant("fault", ts=0.9, cat="fault", tid=1, scope="t")
    t.flow("spill:0", FlowPoint("alpha", 0, a.end), FlowPoint("alpha", "shuffle", sh.start))
    t.flow("spill:1", FlowPoint("alpha", 1, b.end), FlowPoint("alpha", "shuffle", sh.start))
    t.counter("energy", {"joules": 5.0}, ts=1.0)
    return t


class TestChromeExport:
    def test_document_is_valid(self):
        doc = to_chrome_trace(sample_tracer())
        assert_valid_chrome_doc(doc)
        phases = count_phases(doc)
        assert phases["X"] == 4
        assert phases["i"] == 1
        assert phases["s"] == 2 and phases["f"] == 2
        assert phases["C"] == 1

    def test_metadata_names_processes_and_threads(self):
        doc = to_chrome_trace(sample_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        pnames = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        tnames = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert pnames == {"alpha", "beta"}
        assert {"worker 0", "worker 1", "shuffle"} <= tnames

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(sample_tracer())
        sh = next(e for e in doc["traceEvents"] if e.get("name") == "shuffle")
        assert sh["ts"] == pytest.approx(1.4e6)
        assert sh["dur"] == pytest.approx(0.6e6)

    def test_numeric_lanes_order_before_named(self):
        t = Tracer(process="p")
        for tid in ("zz", 2, 0, 10):
            t.add_span("s", start=0, end=1, tid=tid)
        doc = to_chrome_trace(t)
        names = [
            e["args"]["name"]
            for e in sorted(
                (e for e in doc["traceEvents"] if e["name"] == "thread_name"),
                key=lambda e: e["tid"],
            )
        ]
        assert names == ["worker 0", "worker 2", "worker 10", "zz"]

    def test_negative_duration_clamped(self):
        t = Tracer()
        t.add_span("backwards", start=1.0, end=0.5)
        (x,) = [e for e in to_chrome_trace(t)["traceEvents"] if e["ph"] == "X"]
        assert x["dur"] == 0.0

    def test_save_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(sample_tracer(), path)
        doc = json.loads(path.read_text())
        assert_valid_chrome_doc(doc)
        assert doc["otherData"]["producer"] == "repro.obs"


class TestAsciiTimeline:
    def test_has_legend_and_busy_column(self):
        out = ascii_timeline(sample_tracer(), width=40)
        lines = out.splitlines()
        assert "legend:" in lines[1]
        assert "#=compute" in lines[1] and "c=comm" in lines[1]
        assert ".=idle" in lines[1]
        assert all("% busy" in row for row in lines[2:])
        # multiple pids present -> lanes are labelled pid/tid
        assert any(row.lstrip().startswith("alpha/") for row in lines[2:])

    def test_pid_filter(self):
        out = ascii_timeline(sample_tracer(), pid="beta")
        assert "1 spans" in out.splitlines()[0]

    def test_empty(self):
        assert ascii_timeline(Tracer()) == "<no spans>"
        assert ascii_timeline(sample_tracer(), pid="nope") == "<no spans for pid 'nope'>"

    def test_busy_fraction_value(self):
        t = Tracer(process="p")
        t.add_span("half", start=0.0, end=1.0, tid=0)
        t.add_span("idleness", start=1.0, end=2.0, tid=1)
        out = ascii_timeline(t, width=20)
        # each lane is busy for half the 2s window
        assert out.count(" 50.0% busy") == 2
