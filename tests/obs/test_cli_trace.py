"""Tests for the ``repro-trace`` CLI (``python -m repro.cli trace ...``)."""

import json

import pytest

from repro.cli import main, trace_main
from repro.easypap.monitor import TaskRecord, Trace
from repro.obs import Tracer, summarize
from repro.obs.adapters.easypap import trace_to_tracer

from tests.obs.chrome_checks import assert_valid_chrome_doc


@pytest.fixture
def obs_session(tmp_path):
    """An obs session file with two lanes and a flow."""
    t = Tracer(process="demo")
    a = t.add_span("produce", start=0.0, end=1.0, tid=0)
    b = t.add_span("consume", start=1.5, end=2.0, tid=1)
    t.flow("hand-off", a, ("demo", 1, b.start))
    path = tmp_path / "session.jsonl"
    t.save_jsonl(path)
    return path


@pytest.fixture
def easypap_file(tmp_path):
    """An easypap task-record file (no ``type`` keys -> auto-detected)."""
    trace = Trace()
    trace.extend(
        [
            TaskRecord(1, 0, 0, 0.0, 1.0, "compute", 0, 0),
            TaskRecord(1, 1, 1, 0.25, 0.75, "compute", 0, 1),
            TaskRecord(2, 0, 0, 1.0, 1.5, "compute", 0, 0),
        ]
    )
    path = tmp_path / "easypap.jsonl"
    trace.save_jsonl(path)
    return trace, path


class TestExport:
    def test_chrome_json_out(self, obs_session, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert trace_main(["export", str(obs_session), "--out", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert_valid_chrome_doc(doc)
        assert doc["otherData"]["process"] == "demo"

    def test_ascii(self, obs_session, capsys):
        assert trace_main(["export", str(obs_session), "--ascii", "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "2 spans" in out and "legend:" in out and "% busy" in out

    def test_easypap_file_autodetected(self, easypap_file, tmp_path):
        _, path = easypap_file
        out = tmp_path / "chrome.json"
        assert trace_main(["export", str(path), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert_valid_chrome_doc(doc)
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 3

    def test_no_output_requested_is_an_error(self, obs_session, capsys):
        assert trace_main(["export", str(obs_session)]) == 2
        assert "nothing to do" in capsys.readouterr().err


class TestSummary:
    def test_matches_trace_summarize(self, easypap_file, capsys):
        """Acceptance: CLI numbers == ``Trace.summarize`` on the same run."""
        trace, path = easypap_file
        assert trace_main(["summary", str(path), "--iteration", "1"]) == 0
        out = capsys.readouterr().out

        expected = trace.summarize(1)
        obs = summarize(
            trace_to_tracer(trace), where=lambda s: s.args.get("iteration") == 1
        )
        assert obs.span_count == expected.task_count
        assert obs.makespan == pytest.approx(expected.makespan)
        assert obs.worker_busy == pytest.approx(expected.worker_busy)
        # and the CLI printed exactly that summary
        assert out == obs.render(title=f"{path} iteration 1") + "\n"

    def test_whole_trace_summary(self, obs_session, capsys):
        assert trace_main(["summary", str(obs_session)]) == 0
        assert "2 spans" in capsys.readouterr().out


class TestDiff:
    def test_side_by_side(self, obs_session, easypap_file, capsys):
        _, right = easypap_file
        assert trace_main(["diff", str(obs_session), str(right)]) == 0
        out = capsys.readouterr().out
        assert f"{obs_session} vs {right}" in out
        assert "makespan" in out and "ratio" in out

    def test_iteration_filter_applies_to_both_sides(self, easypap_file, capsys):
        trace, path = easypap_file
        assert trace_main(["diff", str(path), str(path), "--iteration", "1"]) == 0
        out = capsys.readouterr().out
        assert f"{path} iteration 1 vs {path} iteration 1" in out
        # iteration 1 has 2 of the 3 records on each side
        assert "spans     : 2 vs 2" in out


class TestDispatch:
    def test_module_dispatcher_routes_trace(self, obs_session, capsys):
        assert main(["trace", "summary", str(obs_session)]) == 0
        assert "2 spans" in capsys.readouterr().out

    def test_usage_lists_trace(self, capsys):
        assert main(["--help"]) == 0
        assert "trace" in capsys.readouterr().out
