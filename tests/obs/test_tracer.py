"""Tests for the span/event tracer: recording, drain/absorb, persistence."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    ManualClock,
    NullTracer,
    Tracer,
)
from repro.obs.records import (
    SCHEMA_VERSION,
    CounterRecord,
    FlowPoint,
    FlowRecord,
    InstantRecord,
    SpanRecord,
)


class TestRecording:
    def test_add_span_explicit_times(self):
        t = Tracer(process="p")
        s = t.add_span("work", start=1.0, end=3.5, cat="compute", tid=2)
        assert isinstance(s, SpanRecord)
        assert (s.pid, s.tid, s.start, s.end) == ("p", 2, 1.0, 3.5)
        assert s.duration == pytest.approx(2.5)
        assert t.spans() == [s]

    def test_span_ids_increase(self):
        t = Tracer()
        ids = [t.add_span("s", start=0, end=1).span_id for _ in range(3)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_span_contextmanager_uses_clock(self):
        clock = ManualClock(10.0)
        t = Tracer(clock=clock)
        with t.span("step", cat="iteration") as args:
            clock.advance(2.0)
            args["n"] = 7
        (s,) = t.spans()
        assert (s.start, s.end) == (10.0, 12.0)
        assert s.args == {"n": 7}

    def test_span_contextmanager_marks_errors(self):
        t = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        (s,) = t.spans()
        assert s.args.get("error") is True

    def test_instant_defaults_to_now(self):
        clock = ManualClock(4.0)
        t = Tracer(clock=clock)
        i = t.instant("evt", args={"k": 1})
        assert isinstance(i, InstantRecord)
        assert i.ts == 4.0 and i.scope == "t"
        assert t.instants() == [i]

    def test_flow_accepts_points_tuples_and_spans(self):
        t = Tracer(process="p")
        s = t.add_span("a", start=1.0, end=2.0, tid=0)
        f1 = t.flow("x", FlowPoint("p", 0, 1.5), ("p", 1, 2.5))
        f2 = t.flow("y", s, ("p", 1, 3.0))
        assert isinstance(f1, FlowRecord)
        assert f1.src == FlowPoint("p", 0, 1.5)
        assert f1.dst == FlowPoint("p", 1, 2.5)
        # a SpanRecord binds at its start
        assert f2.src == FlowPoint("p", 0, 1.0)
        assert f1.flow_id != f2.flow_id

    def test_counter_record(self):
        t = Tracer()
        c = t.counter("energy", {"site": 3.0}, ts=1.0)
        assert isinstance(c, CounterRecord)
        assert t.counters() == [c]

    def test_pids_cover_flow_endpoints(self):
        t = Tracer(process="a")
        t.add_span("s", start=0, end=1)
        t.flow("f", ("b", 0, 0.0), ("c", 0, 1.0))
        assert t.pids() == ["a", "b", "c"]


class TestDrainAbsorb:
    def test_drain_empties_and_absorb_appends(self):
        worker = Tracer(process="w")
        worker.add_span("tile", start=0, end=1)
        worker.instant("retry")
        drained = worker.drain()
        assert len(worker) == 0 and len(drained) == 2

        parent = Tracer(process="main")
        parent.absorb(drained)
        assert len(parent) == 2
        assert parent.spans()[0].pid == "w"

    def test_absorb_reseats_span_ids(self):
        worker = Tracer()
        for _ in range(5):
            worker.add_span("s", start=0, end=1)
        parent = Tracer()
        parent.absorb(worker.drain())
        fresh = parent.add_span("later", start=2, end=3)
        assert fresh.span_id > max(s.span_id for s in parent.spans()[:-1])


class TestPersistence:
    def test_round_trip(self, tmp_path):
        t = Tracer(process="rt")
        t.add_span("a", start=0.0, end=1.0, cat="compute", tid=1, args={"k": 2})
        t.instant("i", ts=0.5, cat="fault", tid=1)
        t.flow("f", ("rt", 0, 0.1), ("rt", 1, 0.9))
        t.counter("c", {"x": 1.0}, ts=0.2)
        path = tmp_path / "trace.jsonl"
        t.save_jsonl(path)

        loaded = Tracer.load_jsonl(path)
        assert loaded.process == "rt"
        assert loaded.records == t.records

    def test_meta_row_carries_schema(self, tmp_path):
        t = Tracer(process="x")
        path = tmp_path / "t.jsonl"
        t.save_jsonl(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "meta", "schema": SCHEMA_VERSION, "process": "x"}

    def test_unknown_types_and_keys_skipped(self, tmp_path):
        rows = [
            {"type": "meta", "schema": 99, "process": "future"},
            {"type": "widget", "schema": 99, "whatever": 1},
            {
                "type": "span", "schema": 99, "name": "s", "cat": "compute",
                "pid": "p", "tid": 0, "start": 0.0, "end": 1.0,
                "args": {}, "span_id": 7, "brand_new_field": "ignored",
            },
        ]
        path = tmp_path / "future.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n\n")
        loaded = Tracer.load_jsonl(path)
        assert loaded.process == "future"
        (s,) = loaded.spans()
        assert s.name == "s" and not hasattr(s, "brand_new_field")
        # the span-id counter was re-seated past the loaded ids
        assert loaded.add_span("new", start=1, end=2).span_id > 7


class TestNullTracer:
    def test_falsy_and_empty(self):
        n = NullTracer()
        assert not n
        assert len(n) == 0
        assert bool(Tracer()) is True

    def test_all_methods_are_noops(self):
        n = NullTracer()
        assert n.add_span("s", start=0, end=1) is None
        assert n.instant("i") is None
        assert n.flow("f", ("p", 0, 0), ("p", 1, 1)) is None
        assert n.counter("c", {"x": 1}) is None
        assert n.new_flow_id() == 0
        assert n.records == [] and n.spans() == [] and n.instants() == []
        assert n.flows() == [] and n.counters() == [] and n.pids() == []
        assert n.drain() == []
        n.absorb([object()])
        assert n.records == []

    def test_span_contextmanager_yields_mutable_dict(self):
        n = NullTracer()
        with n.span("x") as args:
            args["k"] = 1
        # the shared dict is cleared on re-entry, not leaked between spans
        with n.span("y") as args:
            assert args == {}

    def test_shared_singleton_disabled(self):
        assert not NULL_TRACER
