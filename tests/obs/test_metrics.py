"""Tests for the metrics registry and the mapreduce Counters shim."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.mapreduce.counters import Counters
from repro.obs.adapters.mapreduce import counters_to_registry
from repro.obs.metrics import Histogram, MetricsRegistry, diff_snapshots


class TestCounter:
    def test_inc_and_value_per_labelset(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc(2, phase="map")
        c.inc(phase="map")
        c.inc(5, phase="reduce")
        assert c.value(phase="map") == 3
        assert c.value(phase="reduce") == 5
        assert c.value(phase="never") == 0

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("bad-name")
        with pytest.raises(ConfigurationError):
            reg.counter("ok").inc(1, **{"bad-label": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("workers")
        g.set(4)
        g.inc(2)
        g.dec()
        assert g.value() == 5


class TestHistogram:
    def test_observe_count_sum(self):
        h = MetricsRegistry().histogram("lat", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v, op="send")
        assert h.count(op="send") == 4
        assert h.sum(op="send") == pytest.approx(55.55)

    def test_samples_have_cumulative_buckets(self):
        h = Histogram("lat", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(7.0)
        (row,) = h.samples()
        assert row["buckets"]["0.1"] == 1
        assert row["buckets"]["1.0"] == 2
        assert row["buckets"]["+Inf"] == 3

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[1.0, 0.5])
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]


class TestSnapshotDiff:
    def test_counter_deltas_and_zero_drop(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc(3, kind="a")
        c.inc(1, kind="b")
        before = reg.snapshot()
        c.inc(2, kind="a")  # kind=b unchanged -> dropped from the diff
        d = diff_snapshots(reg.snapshot(), before)
        assert d["hits"]["samples"] == [{"labels": {"kind": "a"}, "value": 2}]

    def test_gauge_reports_after_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        before = reg.snapshot()
        g.set(3)
        d = diff_snapshots(reg.snapshot(), before)
        assert d["depth"]["samples"][0]["value"] == 3

    def test_histogram_delta_count_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[1.0])
        h.observe(0.5)
        before = reg.snapshot()
        h.observe(2.0)
        d = diff_snapshots(reg.snapshot(), before)
        (row,) = d["lat"]["samples"]
        assert row["count"] == 1 and row["sum"] == pytest.approx(2.0)

    def test_unchanged_registry_diffs_empty(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        snap = reg.snapshot()
        assert diff_snapshots(reg.snapshot(), snap) == {}


class TestExport:
    def test_to_json_parses(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text").inc(1, k="v")
        doc = json.loads(reg.to_json())
        assert doc["c"]["type"] == "counter"
        assert doc["c"]["samples"] == [{"labels": {"k": "v"}, "value": 1.0}]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(3, code="200")
        reg.gauge("temp").set(1.5)
        h = reg.histogram("lat", "latency", buckets=[0.1, 1.0])
        h.observe(0.05)
        text = reg.to_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 3' in text
        assert "temp 1.5" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.05" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")


class TestCountersShim:
    """The Hadoop-style Counters API is now a view over a registry counter."""

    def test_public_api_unchanged(self):
        c = Counters()
        c.increment(Counters.TASK, "map_input_records", 3)
        c.increment(Counters.TASK, "map_input_records")
        c.increment("app", "bad_rows", 2)
        assert c.value(Counters.TASK, "map_input_records") == 4
        assert c.group("app") == {"bad_rows": 2}
        assert c.as_dict() == {
            "task": {"map_input_records": 4},
            "app": {"bad_rows": 2},
        }
        assert repr(c) == "Counters(2 groups, 2 counters)"

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().increment("g", "n", -1)

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 1)
        b.increment("g", "n", 2)
        b.increment("g", "m", 5)
        a.merge(b)
        assert a.as_dict() == {"g": {"n": 3, "m": 5}}

    def test_values_land_in_the_registry(self):
        reg = MetricsRegistry()
        c = Counters(registry=reg)
        c.increment("task", "spills", 7)
        metric = reg.get(Counters.METRIC_NAME)
        assert metric is not None
        assert metric.value(group="task", name="spills") == 7
        assert Counters.METRIC_NAME in reg.to_prometheus()

    def test_shared_registry_pools_jobs(self):
        reg = MetricsRegistry()
        Counters(registry=reg).increment("g", "n", 1)
        Counters(registry=reg).increment("g", "n", 2)
        assert reg.get(Counters.METRIC_NAME).value(group="g", name="n") == 3

    def test_counters_to_registry_bridges_external_counters(self):
        c = Counters()
        c.increment("task", "reduce_groups", 4)
        reg = counters_to_registry(c)
        assert reg.get("mapreduce_counter_total").value(
            group="task", name="reduce_groups"
        ) == 4
