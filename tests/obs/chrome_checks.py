"""Shared structural validation of exported Chrome trace-event JSON.

Used by the exporter unit tests and by every per-substrate acceptance
test: one checker, so "Perfetto-loadable" means the same thing for
easypap, mapreduce, simmpi and wrench traces.
"""

from collections import defaultdict

_KNOWN_PHASES = {"M", "X", "i", "s", "f", "C"}

#: slack for float second->microsecond conversion at span boundaries
_EPS_US = 1e-3


def assert_valid_chrome_doc(doc: dict) -> None:
    """Assert *doc* is a structurally valid Chrome trace-event document."""
    assert isinstance(doc, dict)
    assert isinstance(doc.get("traceEvents"), list)
    events = doc["traceEvents"]
    assert events, "trace has no events"

    named_pids = set()
    spans_by_lane: dict[tuple, list[dict]] = defaultdict(list)
    flows_by_id: dict[object, list[dict]] = defaultdict(list)

    for e in events:
        assert e["ph"] in _KNOWN_PHASES, f"unknown phase {e['ph']!r}"
        assert isinstance(e["name"], str) and e["name"]
        assert isinstance(e["pid"], int)
        if e["ph"] == "M":
            if e["name"] == "process_name":
                named_pids.add(e["pid"])
            continue
        assert e["ts"] >= 0, f"negative ts in {e}"
        if e["ph"] == "X":
            assert e["dur"] >= 0, f"negative dur in {e}"
            spans_by_lane[(e["pid"], e["tid"])].append(e)
        elif e["ph"] in ("s", "f"):
            flows_by_id[e["id"]].append(e)
        elif e["ph"] == "i":
            assert e.get("s") in ("t", "p", "g")

    # every event's process is named by an "M" metadata row
    for e in events:
        assert e["pid"] in named_pids, f"pid {e['pid']} has no process_name"

    # spans per lane: non-overlapping (one lane = one worker/rank/resource)
    for lane, spans in spans_by_lane.items():
        spans.sort(key=lambda e: e["ts"])
        for prev, nxt in zip(spans, spans[1:]):
            assert nxt["ts"] >= prev["ts"], f"ts not monotonic on lane {lane}"
            assert nxt["ts"] >= prev["ts"] + prev["dur"] - _EPS_US, (
                f"overlapping spans on lane {lane}: {prev['name']} / {nxt['name']}"
            )

    # flows: each id pairs one "s" with one "f" (bp="e"), and both ends
    # land inside an actual span on their lane
    for fid, pair in flows_by_id.items():
        phases = sorted(e["ph"] for e in pair)
        assert phases == ["f", "s"], f"flow {fid} is not an s/f pair: {phases}"
        fin = next(e for e in pair if e["ph"] == "f")
        assert fin.get("bp") == "e", f"flow {fid} finish lacks bp='e'"
        for e in pair:
            lane = (e["pid"], e["tid"])
            assert any(
                s["ts"] - _EPS_US <= e["ts"] <= s["ts"] + s["dur"] + _EPS_US
                for s in spans_by_lane.get(lane, [])
            ), f"flow {fid} endpoint at ts={e['ts']} touches no span on lane {lane}"


def count_phases(doc: dict) -> dict:
    """Histogram of event phases, for quick shape assertions."""
    out: dict[str, int] = defaultdict(int)
    for e in doc["traceEvents"]:
        out[e["ph"]] += 1
    return dict(out)
