"""Per-substrate acceptance tests: one Perfetto-loadable trace from each.

Every substrate run is validated through the same structural checker
(``chrome_checks``), so "loadable at ui.perfetto.dev" is one shared
definition: named processes/threads, non-negative monotonic spans per
lane, flow arrows that land on real spans.
"""

import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
from repro.easypap.executor import ProcessBackend, TaskBatch, TileTask
from repro.easypap.grid import Grid2D
from repro.easypap.monitor import TaskRecord, Trace
from repro.easypap.tiling import TileGrid
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.engine import run_job, run_job_parallel
from repro.mapreduce.job import MapReduceJob
from repro.obs import Tracer, summarize, to_chrome_trace
from repro.obs.adapters.easypap import (
    degradation_to_instants,
    trace_to_tracer,
    tracer_to_trace,
)
from repro.obs.adapters.mapreduce import cluster_report_to_tracer
from repro.obs.adapters.simmpi import stats_to_registry, world_report_summary
from repro.obs.adapters.wrench import simulation_result_to_tracer
from repro.simmpi.ghost import HaloExchanger, split_rows
from repro.simmpi.runner import run_ranks

from tests.obs.chrome_checks import assert_valid_chrome_doc

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


# -- easypap ----------------------------------------------------------------------


def make_easypap_trace() -> Trace:
    trace = Trace()
    trace.extend(
        [
            TaskRecord(1, 0, 0, 0.0, 1.0, "compute", 0, 0),
            TaskRecord(1, 1, 1, 0.0, 0.5, "gpu", 0, 1),
            TaskRecord(2, 0, 0, 1.0, 1.25, "compute", 0, 0),
        ]
    )
    return trace


class TestEasypapAdapter:
    def test_round_trip_is_lossless(self):
        trace = make_easypap_trace()
        back = tracer_to_trace(trace_to_tracer(trace))
        assert back.records == trace.records

    def test_spans_carry_tile_coordinates(self):
        tracer = trace_to_tracer(make_easypap_trace())
        s = tracer.spans()[1]
        assert s.cat == "gpu" and s.tid == 1
        assert s.args["tile_ty"] == 0 and s.args["tile_tx"] == 1

    def test_degradation_events_become_instants(self):
        log = DegradationLog()
        log.record("process-backend", "pool-rebuild", "worker died", attempt=2)
        tracer = Tracer()
        assert degradation_to_instants(tracer, log) == 1
        (i,) = tracer.instants()
        assert i.name == "process-backend:pool-rebuild"
        assert i.cat == "degradation" and i.args["attempt"] == 2
        assert i.ts >= 0.0

    @needs_processes
    def test_process_backend_tiled_run_exports_to_perfetto(self):
        """Acceptance: a real multiprocess tiled run, Perfetto-loadable."""
        n = 8
        g = Grid2D(n, n)
        g.interior[:] = 6
        scratch = g.data.copy()
        tiles = list(TileGrid(n, n, 4))
        spec = [TileTask("sync_tile", 0, 1, t) for t in tiles]
        trace = Trace()
        with ProcessBackend(2, "dynamic", trace=trace) as be:
            be.bind_planes(g.data, scratch)
            be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec),
                   iteration=1)
        assert len(trace) == len(tiles)

        tracer = trace_to_tracer(trace)
        doc = to_chrome_trace(tracer)
        assert_valid_chrome_doc(doc)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == len(tiles)
        # per-tile data survived into the exported args, lossless
        assert {(e["args"]["tile_ty"], e["args"]["tile_tx"]) for e in spans} == {
            (t.ty, t.tx) for t in tiles
        }


# -- mapreduce --------------------------------------------------------------------


def wc_mapper(_k, line):
    for w in str(line).split():
        yield w, 1


def wc_reducer(w, counts):
    yield w, sum(counts)


JOB = MapReduceJob(mapper=wc_mapper, reducer=wc_reducer, num_reducers=2)
SPLITS = [
    [(0, "alpha beta gamma"), (1, "beta gamma")],
    [(2, "gamma delta")],
    [(3, "alpha alpha beta")],
]


class TestMapreduceSubstrate:
    def test_parallel_run_with_injected_fault_exports_to_perfetto(self):
        """Acceptance: run_job_parallel + one injected fault, Perfetto-loadable."""
        tracer = Tracer()
        inj = FaultInjector(raise_on_tasks={1}, max_fires=1)
        result = run_job_parallel(
            JOB, SPLITS, max_workers=2, retry=FAST_RETRY,
            fault_injector=inj, tracer=tracer,
        )
        # tracing never changes the answer
        assert result.pairs == run_job(JOB, SPLITS).pairs
        assert inj.fires == 1

        names = [s.name for s in tracer.spans()]
        # one span per winning map/reduce task, plus the failed attempt
        for i in range(len(SPLITS)):
            assert f"map:{i}" in names
        for p in range(JOB.num_reducers):
            assert f"reduce:{len(SPLITS) + p}" in names
        assert "map:1#a1" in names and "shuffle" in names
        (failed,) = [s for s in tracer.spans() if s.cat == "failed"]
        assert failed.args["attempt"] == 1
        (fault,) = tracer.instants()
        assert fault.cat == "fault"

        # data-path arrows: every split spills into the shuffle, every
        # partition flows out of it
        flows = tracer.flows()
        assert len(flows) == len(SPLITS) + JOB.num_reducers
        assert_valid_chrome_doc(to_chrome_trace(tracer))

    def test_tracing_does_not_change_counters(self):
        traced = run_job_parallel(JOB, SPLITS, tracer=Tracer())
        plain = run_job_parallel(JOB, SPLITS)
        assert traced.counters.as_dict() == plain.counters.as_dict()

    def test_cluster_report_converts_with_faults_and_arrows(self):
        cfg = ClusterConfig(failure_prob=0.3, seed=3)
        result, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.failures > 0  # seed chosen to actually exercise faults
        tracer = cluster_report_to_tracer(report, cfg)

        assert len(tracer.spans()) == len(report.attempts) + 1  # + shuffle
        assert len(tracer.instants()) == report.failures
        # arrows: one spill per map task, one partition per reduce task
        assert len(tracer.flows()) == len(SPLITS) + JOB.num_reducers
        shuffle = next(s for s in tracer.spans() if s.name == "shuffle")
        assert shuffle.start == pytest.approx(report.map_finish)
        assert shuffle.end == pytest.approx(report.shuffle_finish)
        assert_valid_chrome_doc(to_chrome_trace(tracer))

    def test_cluster_speculative_attempts_categorised(self):
        cfg = ClusterConfig(straggler_prob=0.9, speculate=True, seed=1)
        _, report = SimulatedCluster(cfg).run(JOB, SPLITS)
        assert report.speculative > 0
        tracer = cluster_report_to_tracer(report, cfg)
        cats = {s.cat for s in tracer.spans()}
        assert "speculative" in cats


# -- simmpi -----------------------------------------------------------------------


def ghost_rank_program(comm, nrows: int, ncols: int, depth: int, steps: int):
    import numpy as np

    start, stop = split_rows(nrows, comm.size)[comm.rank]
    owned = stop - start
    local = np.full((owned + 2 * depth, ncols), float(comm.rank))
    ex = HaloExchanger(comm, depth, owned_rows=owned)
    for _ in range(steps):
        comm.compute(1e-3 * owned)  # pretend stencil work
        ex.exchange(local)
    return comm.clock


class TestSimmpiSubstrate:
    def test_ghost_exchange_virtual_time_trace(self):
        """Acceptance: ghost exchange on virtual clocks with send->recv arrows."""
        nranks, steps = 3, 2
        tracer = Tracer(process="simmpi")
        report = run_ranks(
            nranks, ghost_rank_program, 12, 4, 1, steps, tracer=tracer
        )

        spans = tracer.spans()
        assert {s.pid for s in spans} == {"simmpi"}
        assert {s.tid for s in spans} == set(range(nranks))
        assert {"compute", "comm"} <= {s.cat for s in spans}

        # interior rank sendrecvs both ways, edge ranks once: 4 messages
        # per exchange round, each with exactly one send->recv arrow
        flows = tracer.flows()
        assert len(flows) == 4 * steps == report.total_messages
        for f in flows:
            assert f.src.pid == f.dst.pid == "simmpi"
            assert f.src.tid != f.dst.tid
            assert f.src.ts <= f.dst.ts  # messages never arrive before sending
        assert len({f.flow_id for f in flows}) == len(flows)

        # the trace's view of time agrees with the runner's report
        summary = world_report_summary(report, tracer)
        assert summary.makespan == pytest.approx(report.makespan)
        assert_valid_chrome_doc(to_chrome_trace(tracer))

    def test_report_only_summary_without_tracer(self):
        report = run_ranks(2, ghost_rank_program, 8, 4, 1, 1)
        summary = world_report_summary(report)
        assert summary.span_count == 2
        assert summary.makespan == pytest.approx(report.makespan)

    def test_stats_to_registry(self):
        report = run_ranks(2, ghost_rank_program, 8, 4, 1, 1)
        reg = stats_to_registry(report)
        sent = reg.get("simmpi_messages_sent_total")
        total = sum(
            sent.value(rank=str(r)) for r in range(2)
        )
        assert total == report.total_messages
        clock = reg.get("simmpi_virtual_clock_seconds")
        assert clock.value(rank="0") == pytest.approx(report.clocks[0])


# -- wrench -----------------------------------------------------------------------


class TestWrenchSubstrate:
    @pytest.fixture(scope="class")
    def montage_run(self):
        from repro.wrench.platform import make_platform
        from repro.wrench.simulation import simulate
        from repro.wrench.workflow import montage_workflow

        wf = montage_workflow()
        assert len(wf.graph()) == 738
        result = simulate(wf, make_platform(cluster_nodes=64))
        return wf, result

    def test_montage_738_exports_to_perfetto(self, montage_run):
        """Acceptance: the Montage-738 DAG trace, Perfetto-loadable."""
        wf, result = montage_run
        tracer = simulation_result_to_tracer(result, wf)

        compute_spans = [s for s in tracer.spans() if s.cat != "transfer"]
        assert len(compute_spans) == len(result.executions) == 738
        # DAG arrows connect every executed edge of the workflow
        assert len(tracer.flows()) == wf.graph().number_of_edges()
        # lanes mirror the platform topology: site pid, resource tid
        assert {s.pid for s in compute_spans} == {ex.site for ex in result.executions}
        assert_valid_chrome_doc(to_chrome_trace(tracer))

    def test_trace_time_axis_matches_makespan(self, montage_run):
        wf, result = montage_run
        summary = summarize(simulation_result_to_tracer(result, wf))
        assert summary.t1 == pytest.approx(result.makespan)

    def test_energy_counter_tracks_per_site(self, montage_run):
        wf, result = montage_run
        tracer = simulation_result_to_tracer(result)
        counters = tracer.counters()
        for site, joules in result.energy_joules.items():
            samples = [c for c in counters if c.pid == site]
            assert [c.values[site] for c in samples] == [0.0, joules]
            assert samples[-1].ts == pytest.approx(result.makespan)

    def test_failed_attempts_marked(self):
        from repro.wrench.platform import make_platform
        from repro.wrench.simulation import FaultModel, simulate
        from repro.wrench.workflow import montage_workflow

        wf = montage_workflow(n_projections=8, n_difffits=8)
        result = simulate(
            wf,
            make_platform(cluster_nodes=4),
            fault_model=FaultModel(failure_prob=0.3, seed=2),
        )
        failures = [ex for ex in result.executions if ex.failed]
        assert failures  # seed chosen to actually exercise faults
        tracer = simulation_result_to_tracer(result, wf)
        assert len([s for s in tracer.spans() if s.cat == "failed"]) == len(failures)
        assert len(tracer.instants()) == len(failures)
        assert_valid_chrome_doc(to_chrome_trace(tracer))


class TestFrontierCounters:
    """The pfrontier window log projects onto counter tracks."""

    def test_window_log_becomes_counter_samples(self):
        from repro.obs.adapters import frontier_to_counters

        tracer = Tracer()
        log = [
            (0, (0, 20, 0, 20), 9),
            (1, (2, 18, 3, 17), 4),
            (2, (7, 11, 8, 12), 1),
        ]
        n = frontier_to_counters(tracer, log)
        assert n == 3
        samples = tracer.counters()
        assert len(samples) == 3
        assert [s.ts for s in samples] == [0.0, 1.0, 2.0]
        assert samples[0].values == {"window_cells": 400, "active_tiles": 9}
        assert samples[1].values == {"window_cells": 224, "active_tiles": 4}
        assert samples[2].values == {"window_cells": 16, "active_tiles": 1}
        assert all(s.pid == "easypap" and s.name == "frontier" for s in samples)

    def test_live_stepper_log_round_trips(self):
        from repro.obs.adapters import frontier_to_counters
        from repro.sandpile.model import center_pile
        from repro.sandpile.pfrontier import ParallelFrontierStepper

        g = center_pile(24, 24, 200)
        with ParallelFrontierStepper(g, tile_size=8) as stepper:
            while stepper():
                pass
        tracer = Tracer()
        n = frontier_to_counters(tracer, stepper.window_log, name="fr")
        assert n == len(stepper.window_log) > 0
        # the shrinking frontier decays to its final window
        cells = [s.values["window_cells"] for s in tracer.counters()]
        assert max(cells) <= 24 * 24
        assert sum(cells) == stepper.window_cells
