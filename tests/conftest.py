"""Shared fixtures.

Most tests build their own small inputs; the fixtures here are the few
expensive-but-reusable ones (the reference stable configuration used by
every cross-variant equality test, a small climate dataset, a shrunken
carbon scenario).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.scenario import AssignmentScenario
from repro.climate.dwd import generate_dataset
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.theory import stabilize


@pytest.fixture(scope="session")
def small_random_grid():
    """A 24x24 random configuration (fresh copy per use via .copy())."""
    return random_uniform(24, 24, max_grains=12, seed=11)


@pytest.fixture(scope="session")
def small_random_stable(small_random_grid):
    """The stabilised fixpoint of ``small_random_grid`` (do not mutate)."""
    return stabilize(small_random_grid.copy())


@pytest.fixture(scope="session")
def center_grid():
    """A 32x32 centre pile with 2000 grains."""
    return center_pile(32, 32, 2000)


@pytest.fixture(scope="session")
def center_stable(center_grid):
    return stabilize(center_grid.copy())


@pytest.fixture(scope="session")
def climate_dataset():
    """30 years of synthetic DWD data (1990-2019)."""
    return generate_dataset(1990, 2019, seed=5)


@pytest.fixture(scope="session")
def tiny_scenario():
    """A shrunken carbon scenario: 20x the smaller Montage, fast to simulate."""
    return AssignmentScenario(
        n_projections=12,
        n_difffits=20,
        gflop_scale=20.0,
        max_nodes=8,
        tab2_local_nodes=4,
        cloud_vms=4,
        time_bound=60.0,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(0)
