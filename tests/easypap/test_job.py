"""Tests for SandpileJob, the easypap Job adapter (sequential variants)."""

import numpy as np
import pytest

from repro.common.errors import CheckpointError
from repro.easypap.grid import Grid2D
from repro.easypap.job import SandpileJob


def _pile(n=16, grains=256):
    g = Grid2D(n, n)
    g.interior[:] = 0
    g.interior[n // 2, n // 2] = grains
    return g


def _fingerprint(result):
    return (result["iterations"], result["sink_absorbed"], result["grid"].tobytes())


class TestRun:
    def test_runs_to_fixpoint(self):
        with SandpileJob(_pile()) as job:
            result = job.run()
        assert result["iterations"] > 0
        assert int(result["grid"].max()) < 4  # stable: nothing left to topple

    def test_deterministic(self):
        with SandpileJob(_pile()) as a, SandpileJob(_pile()) as b:
            assert _fingerprint(a.run()) == _fingerprint(b.run())

    def test_progress_reports_iterations(self):
        with SandpileJob(_pile()) as job:
            job.step()
            p = job.progress()
            assert p.steps_done == 1 and not p.done
            job.run()
            assert job.progress().done


class TestCheckpoint:
    def test_mid_run_roundtrip_bit_identical(self):
        with SandpileJob(_pile()) as oracle:
            ref = _fingerprint(oracle.run())
        with SandpileJob(_pile()) as job:
            for _ in range(ref[0] // 2):
                job.step()
            snap = job.checkpoint()
        with SandpileJob(_pile()) as fresh:
            fresh.restore(snap)
            assert _fingerprint(fresh.run()) == ref

    def test_restore_rejects_mismatches(self):
        with SandpileJob(_pile()) as job:
            snap = job.checkpoint()
        with SandpileJob(_pile(), variant="omp") as other:
            with pytest.raises(CheckpointError, match="sandpile/omp"):
                other.restore(snap)
        with SandpileJob(_pile(n=8)) as small:
            with pytest.raises(CheckpointError, match="does not match"):
                small.restore(snap)
        with SandpileJob(_pile()) as foreign:
            with pytest.raises(CheckpointError, match="kind"):
                foreign.restore({"kind": "mapreduce"})

    def test_snapshot_plane_is_a_copy(self):
        with SandpileJob(_pile()) as job:
            job.step()
            snap = job.checkpoint()
            before = snap["plane"].copy()
            job.run()
            assert np.array_equal(snap["plane"], before)
