"""Tests for the execution backends."""

import threading

import numpy as np
import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.common.errors import ConfigurationError, KernelError, SchedulingError
from repro.easypap.executor import (
    _TILE_KERNELS,
    ProcessBackend,
    SequentialBackend,
    SimulatedBackend,
    TaskBatch,
    ThreadBackend,
    TileTask,
    get_tile_kernel,
    make_backend,
    register_tile_kernel,
)
from repro.easypap.monitor import Trace
from repro.easypap.schedule import chunk_plan
from repro.easypap.tiling import TileGrid


def make_counter_batch(n, costs=None, tiles=None):
    hits = []

    def mk(i):
        def task():
            hits.append(i)
            return float(i + 1)
        return task

    return TaskBatch([mk(i) for i in range(n)], costs=costs, tiles=tiles), hits


class TestTaskBatch:
    def test_length(self):
        b, _ = make_counter_batch(3)
        assert len(b) == 3

    def test_mismatched_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], costs=[1.0, 2.0])

    def test_mismatched_tiles_rejected(self):
        tg = TileGrid(8, 8, 4)
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], tiles=list(tg))

    def test_tile_coords_default(self):
        b, _ = make_counter_batch(1)
        assert b.tile_coords(0) == (-1, -1)

    def test_dynamic_flag_routes_around_the_plan_cache(self):
        from repro.easypap.executor import _plan_for
        from repro.easypap.schedule import chunk_plan_cached

        static_b, _ = make_counter_batch(9)
        dynamic_b, _ = make_counter_batch(9)
        dynamic_b.dynamic = True
        assert static_b.dynamic is False  # default: cached static planning
        cached = _plan_for(static_b, 3, "dynamic", 1)
        assert _plan_for(static_b, 3, "dynamic", 1) is cached  # memoised
        before = chunk_plan_cached.cache_info()
        fresh = _plan_for(dynamic_b, 3, "dynamic", 1)
        after = chunk_plan_cached.cache_info()
        assert fresh == cached  # same schedule either way
        assert fresh is not cached  # but planned outside the LRU
        assert after.currsize == before.currsize
        assert after.misses == before.misses


class TestTileKernelRegistry:
    def test_duplicate_registration_rejected(self):
        name = "tmp_dup_kernel"
        register_tile_kernel(name, lambda planes, task: 1)
        try:
            with pytest.raises(KernelError, match="already registered"):
                register_tile_kernel(name, lambda planes, task: 2)
        finally:
            _TILE_KERNELS.pop(name, None)

    def test_same_function_reregistration_is_noop(self):
        name = "tmp_idem_kernel"

        def fn(planes, task):
            return 1

        register_tile_kernel(name, fn)
        try:
            register_tile_kernel(name, fn)  # re-import safety: no error
            assert get_tile_kernel(name) is fn
        finally:
            _TILE_KERNELS.pop(name, None)

    def test_explicit_overwrite_replaces(self):
        name = "tmp_over_kernel"

        def old(planes, task):
            return 1

        def new(planes, task):
            return 2

        register_tile_kernel(name, old)
        try:
            register_tile_kernel(name, new, overwrite=True)
            assert get_tile_kernel(name) is new
        finally:
            _TILE_KERNELS.pop(name, None)

    def test_get_unknown_kernel_lists_registered(self):
        with pytest.raises(KernelError, match="sync_tile"):
            get_tile_kernel("no_such_kernel")

    def test_stock_kernels_resolvable(self):
        for name in ("sync_tile", "sync_tile_nc", "async_tile_relax"):
            assert callable(get_tile_kernel(name))


class TestSequentialBackend:
    def test_runs_all_in_order(self):
        b, hits = make_counter_batch(5)
        SequentialBackend().run(b)
        assert hits == [0, 1, 2, 3, 4]

    def test_uses_return_value_as_cost(self):
        b, _ = make_counter_batch(3)
        r = SequentialBackend().run(b)
        assert r.makespan == pytest.approx(1.0 + 2.0 + 3.0)

    def test_explicit_costs_take_precedence(self):
        b, _ = make_counter_batch(2, costs=[10.0, 20.0])
        r = SequentialBackend().run(b)
        assert r.makespan == pytest.approx(30.0)

    def test_trace_recorded(self):
        trace = Trace()
        tg = TileGrid(8, 8, 4)
        b, _ = make_counter_batch(4, tiles=list(tg))
        SequentialBackend(trace=trace).run(b, iteration=7)
        assert len(trace) == 4
        assert trace.iterations() == [7]
        assert trace.records[0].tile_ty == 0


class TestSimulatedBackend:
    def test_all_tasks_execute(self):
        b, hits = make_counter_batch(10)
        SimulatedBackend(4, "dynamic").run(b)
        assert sorted(hits) == list(range(10))

    def test_execution_order_follows_policy(self):
        b, hits = make_counter_batch(6)
        SimulatedBackend(2, "static").run(b)
        # static chunks: [0,1,2], [3,4,5] consumed in order
        assert hits == [0, 1, 2, 3, 4, 5]

    def test_virtual_speedup_from_return_costs(self):
        b, _ = make_counter_batch(8)
        r = SimulatedBackend(4, "dynamic").run(b)
        assert r.nworkers == 4
        assert r.makespan < sum(range(1, 9))  # parallel placement

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            SimulatedBackend(0)

    def test_trace_has_virtual_spans(self):
        trace = Trace()
        b, _ = make_counter_batch(4)
        SimulatedBackend(2, "dynamic", trace=trace).run(b, iteration=3)
        summary = trace.summarize(3)
        assert summary.task_count == 4
        assert summary.nworkers <= 2


class TestThreadBackend:
    def test_all_tasks_complete(self):
        b, hits = make_counter_batch(12)
        r = ThreadBackend(4).run(b)
        assert sorted(hits) == list(range(12))
        assert len(r.spans) == 12

    def test_wall_clock_spans_positive(self):
        b, _ = make_counter_batch(3)
        r = ThreadBackend(2).run(b)
        assert all(s.end >= s.start for s in r.spans)

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)


class TestSimulatedChunkOrder:
    @pytest.mark.parametrize("policy", ["static", "cyclic", "dynamic", "guided"])
    @pytest.mark.parametrize("ntasks,nworkers,chunk", [(13, 3, 2), (2, 5, 1), (0, 4, 1)])
    def test_every_task_exactly_once_in_chunk_order(self, policy, ntasks, nworkers, chunk):
        b, hits = make_counter_batch(ntasks)
        SimulatedBackend(nworkers, policy, chunk=chunk).run(b)
        expected = [i for ch in chunk_plan(ntasks, nworkers, policy, chunk) for i in ch]
        assert hits == expected
        assert sorted(hits) == list(range(ntasks))


class TestThreadWorkerIds:
    def test_worker_ids_unique_under_stress(self):
        """Two threads must never claim the same worker lane (regression:
        ``setdefault(tid, len(ids))`` evaluated len() before the insert)."""
        nworkers, ntasks = 8, 160
        for _ in range(10):
            tids: list = [None] * ntasks

            def mk(i):
                def task():
                    tids[i] = threading.get_ident()
                return task

            r = ThreadBackend(nworkers).run(TaskBatch([mk(i) for i in range(ntasks)]))
            worker_of_tid: dict = {}
            for span in sorted(r.spans, key=lambda s: s.task):
                worker_of_tid.setdefault(tids[span.task], set()).add(span.worker)
            # each thread keeps one id for the whole batch...
            assert all(len(ws) == 1 for ws in worker_of_tid.values())
            # ...no two threads share an id, and ids stay in range
            ids = [next(iter(ws)) for ws in worker_of_tid.values()]
            assert len(set(ids)) == len(ids)
            assert all(0 <= w < nworkers for w in ids)


def make_plane_batch(n=8, grains=6):
    """An n x n grid pair plus a sync-tile spec batch over 4x4 tiles."""
    from repro.easypap.grid import Grid2D

    g = Grid2D(n, n)
    g.interior[:] = grains
    scratch = g.data.copy()
    tiles = list(TileGrid(n, n, 4))
    spec = [TileTask("sync_tile", 0, 1, t) for t in tiles]
    return g, scratch, tiles, spec


needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)


class TestProcessBackend:
    @needs_processes
    @pytest.mark.parametrize("policy", ["static", "cyclic", "dynamic", "guided"])
    def test_spec_batch_executes_on_shared_planes(self, policy):
        from repro.sandpile.kernels import sync_step

        g, scratch, tiles, spec = make_plane_batch()
        expected = g.copy()
        sync_step(expected)
        with ProcessBackend(2, policy) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            r = be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))
            assert len(r.spans) == len(tiles)
            assert r.returns is not None and all(isinstance(x, bool) for x in r.returns)
            assert all(0 <= s.worker < 2 for s in r.spans)
            assert all(s.end >= s.start for s in r.spans)
            # workers wrote the synchronous update into the dst plane
            assert np.array_equal(p1[1:-1, 1:-1], expected.interior)
            assert p0 is not None

    @needs_processes
    def test_returns_report_changed_flags(self):
        g, scratch, tiles, spec = make_plane_batch(grains=0)  # already stable
        with ProcessBackend(2) as be:
            be.bind_planes(g.data, scratch)
            r = be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))
            assert r.returns == [False] * len(tiles)

    @needs_processes
    def test_trace_records_wall_clock_lanes(self):
        trace = Trace()
        g, scratch, tiles, spec = make_plane_batch()
        with ProcessBackend(2, "dynamic", trace=trace) as be:
            be.bind_planes(g.data, scratch)
            be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec), iteration=5)
        assert trace.iterations() == [5]
        assert {r.worker for r in trace.records} <= {0, 1}
        assert trace.records[0].tile_ty >= 0

    @needs_processes
    def test_empty_batch(self):
        g, scratch, _, _ = make_plane_batch()
        with ProcessBackend(2) as be:
            be.bind_planes(g.data, scratch)
            r = be.run(TaskBatch([], tiles=[], spec=[]))
            assert r.spans == [] and r.returns == []

    @needs_processes
    def test_spec_without_bind_rejected(self):
        _, _, tiles, spec = make_plane_batch()
        with ProcessBackend(2) as be:
            with pytest.raises(SchedulingError):
                be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))

    @needs_processes
    def test_closure_batch_degrades_to_threads(self):
        b, hits = make_counter_batch(6)
        with ProcessBackend(2) as be:
            r = be.run(b)
        assert sorted(hits) == list(range(6))
        assert r.policy == "threads"
        assert r.returns is None

    def test_fallback_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(ProcessBackend, "available", staticmethod(lambda: False))
        be = ProcessBackend(2)
        assert not be.uses_processes
        arr = np.zeros((4, 4))
        assert be.bind_planes(arr)[0] is arr  # no-op passthrough
        b, hits = make_counter_batch(5)
        r = be.run(b)
        assert sorted(hits) == list(range(5))
        assert len(r.spans) == 5
        be.close()

    @needs_processes
    def test_close_idempotent_and_rejects_reuse(self):
        g, scratch, tiles, spec = make_plane_batch()
        be = ProcessBackend(2)
        be.bind_planes(g.data, scratch)
        be.close()
        be.close()
        with pytest.raises(ConfigurationError):
            be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(2, "magic")
        with pytest.raises(ConfigurationError):
            ProcessBackend(2, chunk=0)

    def test_spec_length_validated(self):
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], spec=[])


class TestFactory:
    def test_names(self):
        assert isinstance(make_backend("sequential"), SequentialBackend)
        assert isinstance(make_backend("simulated", 4), SimulatedBackend)
        assert isinstance(make_backend("threads", 2), ThreadBackend)
        assert isinstance(make_backend("process", 2), ProcessBackend)
        assert isinstance(make_backend("processes", 2, policy="static"), ProcessBackend)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_backend("gpu")
