"""Tests for the execution backends."""

import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.executor import (
    SequentialBackend,
    SimulatedBackend,
    TaskBatch,
    ThreadBackend,
    make_backend,
)
from repro.easypap.monitor import Trace
from repro.easypap.tiling import TileGrid


def make_counter_batch(n, costs=None, tiles=None):
    hits = []

    def mk(i):
        def task():
            hits.append(i)
            return float(i + 1)
        return task

    return TaskBatch([mk(i) for i in range(n)], costs=costs, tiles=tiles), hits


class TestTaskBatch:
    def test_length(self):
        b, _ = make_counter_batch(3)
        assert len(b) == 3

    def test_mismatched_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], costs=[1.0, 2.0])

    def test_mismatched_tiles_rejected(self):
        tg = TileGrid(8, 8, 4)
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], tiles=list(tg))

    def test_tile_coords_default(self):
        b, _ = make_counter_batch(1)
        assert b.tile_coords(0) == (-1, -1)


class TestSequentialBackend:
    def test_runs_all_in_order(self):
        b, hits = make_counter_batch(5)
        SequentialBackend().run(b)
        assert hits == [0, 1, 2, 3, 4]

    def test_uses_return_value_as_cost(self):
        b, _ = make_counter_batch(3)
        r = SequentialBackend().run(b)
        assert r.makespan == pytest.approx(1.0 + 2.0 + 3.0)

    def test_explicit_costs_take_precedence(self):
        b, _ = make_counter_batch(2, costs=[10.0, 20.0])
        r = SequentialBackend().run(b)
        assert r.makespan == pytest.approx(30.0)

    def test_trace_recorded(self):
        trace = Trace()
        tg = TileGrid(8, 8, 4)
        b, _ = make_counter_batch(4, tiles=list(tg))
        SequentialBackend(trace=trace).run(b, iteration=7)
        assert len(trace) == 4
        assert trace.iterations() == [7]
        assert trace.records[0].tile_ty == 0


class TestSimulatedBackend:
    def test_all_tasks_execute(self):
        b, hits = make_counter_batch(10)
        SimulatedBackend(4, "dynamic").run(b)
        assert sorted(hits) == list(range(10))

    def test_execution_order_follows_policy(self):
        b, hits = make_counter_batch(6)
        SimulatedBackend(2, "static").run(b)
        # static chunks: [0,1,2], [3,4,5] consumed in order
        assert hits == [0, 1, 2, 3, 4, 5]

    def test_virtual_speedup_from_return_costs(self):
        b, _ = make_counter_batch(8)
        r = SimulatedBackend(4, "dynamic").run(b)
        assert r.nworkers == 4
        assert r.makespan < sum(range(1, 9))  # parallel placement

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            SimulatedBackend(0)

    def test_trace_has_virtual_spans(self):
        trace = Trace()
        b, _ = make_counter_batch(4)
        SimulatedBackend(2, "dynamic", trace=trace).run(b, iteration=3)
        summary = trace.summarize(3)
        assert summary.task_count == 4
        assert summary.nworkers <= 2


class TestThreadBackend:
    def test_all_tasks_complete(self):
        b, hits = make_counter_batch(12)
        r = ThreadBackend(4).run(b)
        assert sorted(hits) == list(range(12))
        assert len(r.spans) == 12

    def test_wall_clock_spans_positive(self):
        b, _ = make_counter_batch(3)
        r = ThreadBackend(2).run(b)
        assert all(s.end >= s.start for s in r.spans)

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)


class TestFactory:
    def test_names(self):
        assert isinstance(make_backend("sequential"), SequentialBackend)
        assert isinstance(make_backend("simulated", 4), SimulatedBackend)
        assert isinstance(make_backend("threads", 2), ThreadBackend)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_backend("gpu")
