"""Tests for the performance-campaign tooling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.perf import PerfCampaign, speedup_series


class FakeStepper:
    """Runs for a fixed number of iterations; exposes a metric."""

    def __init__(self, iterations: int, metric: float = 0.5) -> None:
        self.remaining = iterations
        self.metric = metric

    def __call__(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class TestPerfCampaign:
    def test_full_grid_executed(self):
        campaign = PerfCampaign(
            factory=lambda n, tile: FakeStepper(n * tile),
            grid={"n": [1, 2], "tile": [3, 4]},
        )
        points = campaign.run()
        assert len(points) == 4
        assert {p.iterations for p in points} == {3, 4, 6, 8}

    def test_params_recorded(self):
        campaign = PerfCampaign(factory=lambda n: FakeStepper(n), grid={"n": [5]})
        (p,) = campaign.run()
        assert p.param("n") == 5
        with pytest.raises(KeyError):
            p.param("zzz")

    def test_metrics_evaluated_on_stepper(self):
        campaign = PerfCampaign(
            factory=lambda n: FakeStepper(n, metric=n * 10.0),
            grid={"n": [1, 2]},
            metrics={"metric": lambda s: s.metric},
        )
        points = campaign.run()
        assert [p.extra("metric") for p in points] == [10.0, 20.0]

    def test_series_extraction(self):
        campaign = PerfCampaign(
            factory=lambda n, mode: FakeStepper(n if mode == "a" else 2 * n),
            grid={"n": [1, 2, 3], "mode": ["a", "b"]},
        )
        campaign.run()
        series = campaign.series("n", y="iterations", mode="b")
        assert series == [(1, 2.0), (2, 4.0), (3, 6.0)]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            PerfCampaign(factory=lambda: FakeStepper(1), grid={}).run()

    def test_nonterminating_guarded(self):
        class Forever:
            def __call__(self):
                return True

        campaign = PerfCampaign(factory=lambda n: Forever(), grid={"n": [1]}, max_iterations=10)
        with pytest.raises(ConfigurationError):
            campaign.run()

    def test_table_render(self):
        campaign = PerfCampaign(factory=lambda n: FakeStepper(n), grid={"n": [1]})
        campaign.run()
        out = campaign.table("demo")
        assert "demo" in out and "iterations" in out

    def test_table_empty(self):
        campaign = PerfCampaign(factory=lambda n: FakeStepper(n), grid={"n": [1]})
        assert campaign.table() == "<no points>"

    def test_integration_with_real_stepper(self):
        from repro.sandpile.model import center_pile
        from repro.sandpile.omp import TiledSyncStepper

        campaign = PerfCampaign(
            factory=lambda tile_size: TiledSyncStepper(center_pile(16, 16, 100), tile_size),
            grid={"tile_size": [4, 8]},
            metrics={"computed": lambda s: s.tiles_computed},
        )
        points = campaign.run()
        assert len(points) == 2
        assert all(p.iterations > 0 for p in points)
        assert points[0].extra("computed") > points[1].extra("computed")


class TestSpeedupSeries:
    def test_basic(self):
        s = speedup_series([(1, 10.0), (2, 5.0), (4, 2.5)])
        assert s == [(1, 1.0), (2, 2.0), (4, 4.0)]

    def test_empty(self):
        assert speedup_series([]) == []

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            speedup_series([(1, 0.0)])
