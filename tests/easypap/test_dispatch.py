"""Tests for the persistent-worker dispatch runtime.

The process backend keeps workers resident: shared planes are attached
once, stable batches register once per identity, and every subsequent
iteration ships only a tiny command tuple per worker.  These tests pin
the pieces the executor contract tests don't see directly: the resident
registries, the band-rule command shape, the dispatch metrics, and the
re-registration guarantee after a pool rebuild.
"""

import numpy as np
import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.common.errors import ConfigurationError
from repro.easypap.executor import BandRule, ProcessBackend, TaskBatch, TileTask
from repro.easypap.grid import Grid2D
from repro.easypap.schedule import expand_spans, index_spans
from repro.easypap.tiling import TileGrid, band_tiles
from repro.obs.metrics import MetricsRegistry

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)


def make_planes(n=12, grains=6):
    g = Grid2D(n, n)
    g.interior[:] = grains
    return g, g.data.copy()


def expected_after(g, k=1):
    from repro.sandpile.kernels import sync_step

    e = g.copy()
    for _ in range(k):
        sync_step(e)
    return e


# -- index spans --------------------------------------------------------------


class TestIndexSpans:
    def test_contiguous_collapses_to_one_span(self):
        assert index_spans(range(5)) == ((0, 5),)

    def test_gaps_split_spans(self):
        assert index_spans([0, 1, 4, 5, 9]) == ((0, 2), (4, 6), (9, 10))

    def test_unsorted_input_is_normalised(self):
        assert index_spans([5, 1, 0, 4]) == ((0, 2), (4, 6),)

    def test_roundtrip(self):
        idxs = [0, 2, 3, 7, 8, 9, 20]
        assert expand_spans(index_spans(idxs)) == sorted(idxs)

    def test_empty(self):
        assert index_spans([]) == ()
        assert expand_spans(()) == []


# -- band rules ---------------------------------------------------------------


class TestBandRule:
    def test_tasks_match_band_tiles(self):
        rule = BandRule("sync_tile_k", 0, 1, 3, (2, 10, 0, 8), 4)
        tasks = rule.tasks()
        tiles = band_tiles((2, 10, 0, 8), 4)
        assert [t.tile for t in tasks] == tiles
        assert all(t.arg == 3 and t.kernel == "sync_tile_k" for t in tasks)

    def test_band_count_must_match_task_count(self):
        rule = BandRule("sync_tile_k", 0, 1, 2, (0, 8, 0, 8), 2)
        tasks = [TileTask("sync_tile_k", 0, 1, t, arg=2) for t in band_tiles((0, 8, 0, 8), 2)]
        with pytest.raises(ConfigurationError):
            TaskBatch([lambda: None], tiles=[tasks[0].tile], spec=[tasks[0]], bands=rule)

    def test_band_tiles_cover_window_disjointly(self):
        window = (3, 17, 2, 9)
        tiles = band_tiles(window, 5)
        rows = sorted((t.y0, t.y1) for t in tiles)
        assert rows[0][0] == 3 and rows[-1][1] == 17
        assert all(a[1] == b[0] for a, b in zip(rows, rows[1:]))
        assert all(t.x0 == 2 and t.x1 == 9 for t in tiles)

    def test_nbands_clamped_to_height(self):
        assert len(band_tiles((0, 3, 0, 10), 8)) == 3


# -- resident dispatch --------------------------------------------------------


class TestResidentDispatch:
    @needs_processes
    def test_spec_batch_registers_once_and_stays_correct(self):
        g, scratch = make_planes()
        tiles = list(TileGrid(12, 12, 4))
        spec = [TileTask("sync_tile_nc", 0, 1, t) for t in tiles]
        batch = TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec)
        reg = MetricsRegistry()
        with ProcessBackend(2, metrics=reg) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            for _ in range(3):
                be.run(batch)
            assert np.array_equal(p1[1:-1, 1:-1], expected_after(g).interior)
            commands = reg.get("easypap_dispatch_commands_total")
            # one registration broadcast (2 workers), then resident commands
            assert commands.value(mode="register") == 2.0
            assert commands.value(mode="resident") > 0
            assert commands.value(mode="oneshot") == 0

    @needs_processes
    def test_resident_commands_are_smaller_than_oneshot(self):
        g, scratch = make_planes()
        tiles = list(TileGrid(12, 12, 4))
        spec = [TileTask("sync_tile_nc", 0, 1, t) for t in tiles]
        resident = TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec)
        reg = MetricsRegistry()
        with ProcessBackend(2, metrics=reg) as be:
            be.bind_planes(g.data, scratch)
            be.run(resident)  # registration + first resident run
            base = reg.get("easypap_dispatch_bytes_total").value(mode="resident")
            be.run(resident)
            steady = reg.get("easypap_dispatch_bytes_total").value(mode="resident") - base
            # a fresh dynamic batch ships its full spec every time
            oneshot = TaskBatch(
                [lambda: None] * len(tiles), tiles=tiles, spec=list(spec), dynamic=True
            )
            be.run(oneshot)
            one = reg.get("easypap_dispatch_bytes_total").value(mode="oneshot")
            assert steady < one / 4

    @needs_processes
    def test_band_batch_computes_fused_steps(self):
        g, scratch = make_planes()
        k, window = 3, (0, 12, 0, 12)
        rule = BandRule("sync_tile_k", 0, 1, k, window, 2)
        tiles = band_tiles(window, 2)
        spec = [TileTask("sync_tile_k", 0, 1, t, arg=k) for t in tiles]
        batch = TaskBatch(
            [lambda: None] * len(tiles), tiles=tiles, spec=spec, dynamic=True, bands=rule
        )
        with ProcessBackend(2) as be:
            _, p1 = be.bind_planes(g.data, scratch)
            be.run(batch)
            assert np.array_equal(p1[1:-1, 1:-1], expected_after(g, k).interior)

    @needs_processes
    def test_band_rule_is_resident_across_fresh_batches(self):
        g, scratch = make_planes()
        k, window = 2, (0, 12, 0, 12)
        reg = MetricsRegistry()
        with ProcessBackend(2, metrics=reg) as be:
            be.bind_planes(g.data, scratch)
            for _ in range(3):
                # a fresh batch object per iteration, same (kernel,src,dst,k)
                rule = BandRule("sync_tile_k", 0, 1, k, window, 2)
                tiles = band_tiles(window, 2)
                spec = [TileTask("sync_tile_k", 0, 1, t, arg=k) for t in tiles]
                be.run(TaskBatch(
                    [lambda: None] * len(tiles), tiles=tiles, spec=spec,
                    dynamic=True, bands=rule,
                ))
            commands = reg.get("easypap_dispatch_commands_total")
            assert commands.value(mode="register") == 2.0  # one broadcast only
            assert commands.value(mode="oneshot") == 0

    @needs_processes
    def test_dynamic_spec_batches_stay_oneshot(self):
        g, scratch = make_planes()
        tiles = list(TileGrid(12, 12, 4))
        reg = MetricsRegistry()
        with ProcessBackend(2, metrics=reg) as be:
            be.bind_planes(g.data, scratch)
            for _ in range(2):
                spec = [TileTask("sync_tile_nc", 0, 1, t) for t in tiles]
                be.run(TaskBatch(
                    [lambda: None] * len(tiles), tiles=tiles, spec=spec, dynamic=True
                ))
            commands = reg.get("easypap_dispatch_commands_total")
            assert commands.value(mode="register") == 0
            assert commands.value(mode="oneshot") > 0

    @needs_processes
    def test_queue_wait_histogram_sampled(self):
        g, scratch = make_planes()
        tiles = list(TileGrid(12, 12, 4))
        spec = [TileTask("sync_tile_nc", 0, 1, t) for t in tiles]
        reg = MetricsRegistry()
        with ProcessBackend(2, metrics=reg) as be:
            be.bind_planes(g.data, scratch)
            be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))
            hist = reg.get("easypap_dispatch_queue_wait_seconds")
            assert hist.count() > 0

    @needs_processes
    def test_residents_survive_pool_rebuild(self):
        g, scratch = make_planes()
        tiles = list(TileGrid(12, 12, 4))
        spec = [TileTask("sync_tile_nc", 0, 1, t) for t in tiles]
        batch = TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec)
        with ProcessBackend(2) as be:
            _, p1 = be.bind_planes(g.data, scratch)
            be.run(batch)  # registers the resident spec
            be._rebuild_pool()  # fresh workers must replay the registration
            p1[:] = 0
            be.run(batch)
            assert np.array_equal(p1[1:-1, 1:-1], expected_after(g).interior)
