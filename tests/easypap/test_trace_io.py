"""Tests for trace persistence and comparison (the Fig. 3 tooling)."""

from repro.easypap.monitor import TaskRecord, Trace, compare_traces


def make_trace(task_count, duration, iteration=5):
    t = Trace()
    for i in range(task_count):
        t.add(TaskRecord(iteration, i, i % 2, i * duration, (i + 1) * duration, "compute", 0, i))
    return t


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        t = make_trace(4, 1.5)
        path = tmp_path / "trace.jsonl"
        t.save_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert loaded.to_rows() == t.to_rows()

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        Trace().save_jsonl(path)
        assert len(Trace.load_jsonl(path)) == 0

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        make_trace(2, 1.0).save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Trace.load_jsonl(path)) == 2


class TestComparison:
    def test_ratios(self):
        fine = make_trace(8, 1.0)     # 8 tasks, makespan 8
        coarse = make_trace(4, 2.0)   # 4 tasks, makespan 8
        cmp = compare_traces(fine, coarse, 5)
        assert cmp.task_ratio == 2.0
        assert cmp.makespan_ratio == 1.0

    def test_render_mentions_names(self):
        cmp = compare_traces(make_trace(2, 1.0), make_trace(2, 1.0), 5)
        out = cmp.render("32x32", "64x64")
        assert "32x32" in out and "64x64" in out
        assert "tasks" in out and "imbalance" in out

    def test_empty_side(self):
        cmp = compare_traces(make_trace(3, 1.0), Trace(), 5)
        assert cmp.task_ratio == float("inf")
        assert cmp.right.task_count == 0

    def test_both_empty(self):
        cmp = compare_traces(Trace(), Trace(), 0)
        assert cmp.task_ratio == 1.0
        assert cmp.makespan_ratio == 1.0

    def test_real_fig3_shape(self):
        """compare_traces on actual lazy runs reproduces the Fig. 3 verdict."""
        from repro.easypap.monitor import Trace as T
        from repro.sandpile import run_to_fixpoint, sparse_random

        traces = {}
        iters = {}
        for ts in (8, 16):
            g = sparse_random(64, 64, n_piles=4, pile_grains=512, seed=3)
            tr = T()
            r = run_to_fixpoint(g, "asandpile", "omp", tile_size=ts, nworkers=4,
                                lazy=True, trace=tr)
            traces[ts] = tr
            iters[ts] = r.iterations
        mid = min(iters.values()) // 2
        cmp = compare_traces(traces[8], traces[16], mid)
        assert cmp.task_ratio > 1.0  # finer tiles -> more tasks
