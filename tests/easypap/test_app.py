"""Tests for the EASYPAP-style application loop."""

import numpy as np
import pytest

import repro.sandpile  # noqa: F401 - registers the variants
from repro.common.errors import ConfigurationError, KernelError
from repro.easypap.app import EasyPapApp
from repro.sandpile.model import center_pile, random_uniform
from repro.sandpile.theory import stabilize


class TestRun:
    def test_converges_to_oracle(self):
        grid = random_uniform(16, 16, max_grains=10, seed=8)
        oracle = stabilize(grid.copy())
        app = EasyPapApp("sandpile", "lazy", grid, tile_size=4)
        result = app.run()
        assert result.converged
        assert np.array_equal(grid.interior, oracle.interior)
        assert result.iterations > 0
        assert result.wall_seconds > 0

    def test_iteration_budget(self):
        grid = center_pile(32, 32, 50_000)
        result = EasyPapApp("sandpile", "vec", grid).run(max_iterations=5)
        assert not result.converged
        assert result.iterations == 5

    def test_frames_collected(self):
        grid = center_pile(16, 16, 300)
        result = EasyPapApp("asandpile", "tiled", grid, tile_size=4).run(frame_every=3)
        assert result.frames
        assert result.frames[0].shape == (16, 16, 3)
        assert len(result.frames) == len(result.frame_iterations)
        # final state always included
        assert result.frame_iterations[-1] == result.iterations

    def test_no_frames_by_default(self):
        grid = center_pile(8, 8, 20)
        result = EasyPapApp("sandpile", "vec", grid).run()
        assert result.frames == []

    def test_save_frames(self, tmp_path):
        grid = center_pile(8, 8, 40)
        result = EasyPapApp("sandpile", "vec", grid).run(frame_every=2)
        paths = result.save_frames(tmp_path, prefix="sp")
        assert paths
        assert all(p.exists() and p.name.startswith("sp_") for p in paths)

    def test_on_iteration_early_stop(self):
        grid = center_pile(32, 32, 5000)
        result = EasyPapApp("sandpile", "vec", grid).run(
            on_iteration=lambda it, g: it >= 4
        )
        assert result.iterations == 4
        assert not result.converged

    def test_callback_sees_grid(self):
        grid = center_pile(8, 8, 30)
        seen = []
        EasyPapApp("sandpile", "vec", grid).run(
            on_iteration=lambda it, g: seen.append(g.total_grains())
        )
        assert seen  # called every iteration with the live grid

    def test_trace_collected_when_requested(self):
        grid = center_pile(16, 16, 100)
        app = EasyPapApp("sandpile", "omp", grid, trace=True, tile_size=8, nworkers=2)
        result = app.run()
        assert result.trace is not None
        assert len(result.trace) > 0

    def test_mean_iteration_seconds(self):
        grid = center_pile(8, 8, 20)
        result = EasyPapApp("sandpile", "vec", grid).run()
        assert result.mean_iteration_seconds >= 0

    def test_unknown_variant(self):
        with pytest.raises(KernelError):
            EasyPapApp("sandpile", "warp-drive", center_pile(8, 8, 1))

    def test_negative_budget_rejected(self):
        app = EasyPapApp("sandpile", "vec", center_pile(8, 8, 1))
        with pytest.raises(ConfigurationError):
            app.run(max_iterations=-1)
