"""Property-based tests for the scheduling simulation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.easypap.schedule import POLICIES, chunk_plan, simulate_schedule

SETTINGS = dict(max_examples=40, deadline=None)

costs_strategy = st.lists(st.floats(0.0, 100.0), min_size=0, max_size=40)
workers_strategy = st.integers(1, 8)
policy_strategy = st.sampled_from(POLICIES)
chunk_strategy = st.integers(1, 5)


@given(costs=costs_strategy, p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_every_task_scheduled_exactly_once(costs, p, policy, chunk):
    r = simulate_schedule(costs, p, policy, chunk=chunk)
    assert sorted(s.task for s in r.spans) == list(range(len(costs)))


@given(costs=costs_strategy, p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_makespan_lower_bounds(costs, p, policy, chunk):
    r = simulate_schedule(costs, p, policy, chunk=chunk)
    assert r.makespan >= max(costs, default=0.0) - 1e-9       # critical task
    assert r.makespan >= sum(costs) / p - 1e-9                # mean load


@given(costs=costs_strategy, p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_makespan_upper_bound_serial(costs, p, policy, chunk):
    # no policy is ever worse than running everything serially
    r = simulate_schedule(costs, p, policy, chunk=chunk)
    assert r.makespan <= sum(costs) + 1e-9


@given(costs=costs_strategy, p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_busy_time_conserved(costs, p, policy, chunk):
    r = simulate_schedule(costs, p, policy, chunk=chunk)
    assert abs(sum(r.worker_busy()) - sum(costs)) < 1e-6


@given(costs=costs_strategy, p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_no_overlap_per_worker(costs, p, policy, chunk):
    r = simulate_schedule(costs, p, policy, chunk=chunk)
    by_worker: dict[int, list] = {}
    for s in r.spans:
        by_worker.setdefault(s.worker, []).append(s)
    for spans in by_worker.values():
        spans.sort(key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert b.start >= a.end - 1e-9


@given(costs=costs_strategy, p=workers_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_dynamic_never_worse_than_cyclic_by_much(costs, p, chunk):
    # dynamic adapts to skew; cyclic is its static pre-assignment.  Dynamic
    # hands out whole chunks greedily, so by Graham's bound it can lose on
    # adversarial orders by at most one max-cost *chunk* (cyclic may happen
    # to balance the chunks that greedy assignment lands last).
    dyn = simulate_schedule(costs, p, "dynamic", chunk=chunk).makespan
    cyc = simulate_schedule(costs, p, "cyclic", chunk=chunk).makespan
    assert dyn <= cyc + chunk * max(costs, default=0.0) + 1e-9


@given(n=st.integers(0, 60), p=workers_strategy, policy=policy_strategy, chunk=chunk_strategy)
@settings(**SETTINGS)
def test_chunk_plan_partitions_tasks(n, p, policy, chunk):
    chunks = chunk_plan(n, p, policy, chunk)
    flat = [t for c in chunks for t in c]
    assert sorted(flat) == list(range(n))
    assert all(c for c in chunks)  # no empty chunks


@given(costs=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=30), p=workers_strategy)
@settings(**SETTINGS)
def test_uniform_unit_chunks_speedup_monotone(costs, p):
    s1 = simulate_schedule(costs, 1, "dynamic").makespan
    sp = simulate_schedule(costs, p, "dynamic").makespan
    assert sp <= s1 + 1e-9
