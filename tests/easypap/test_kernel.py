"""Tests for the kernel/variant registry."""

import pytest

from repro.common.errors import KernelError
from repro.easypap.kernel import KernelRegistry, get_variant, register_variant


@pytest.fixture
def registry():
    return KernelRegistry()


class TestRegistration:
    def test_register_and_get(self, registry):
        fn = lambda g: None
        registry.register("k", "v", fn, description="d", tags=("x",))
        info = registry.get("k", "v")
        assert info.fn is fn
        assert info.description == "d"
        assert info.tags == ("x",)
        assert info.qualified_name == "k/v"

    def test_duplicate_rejected(self, registry):
        registry.register("k", "v", lambda: None)
        with pytest.raises(KernelError):
            registry.register("k", "v", lambda: None)

    def test_overwrite_allowed_explicitly(self, registry):
        registry.register("k", "v", lambda: 1)
        new = lambda: 2
        registry.register("k", "v", new, overwrite=True)
        assert registry.get("k", "v").fn is new

    def test_decorator(self, registry):
        @register_variant("k", "v", registry=registry)
        def step(grid):
            return grid

        assert registry.get("k", "v").fn is step


class TestLookup:
    def test_unknown_lists_available(self, registry):
        registry.register("k", "a", lambda: None)
        registry.register("k", "b", lambda: None)
        with pytest.raises(KernelError, match="a, b"):
            registry.get("k", "nope")

    def test_kernels_and_variants_sorted(self, registry):
        registry.register("z", "v2", lambda: None)
        registry.register("a", "v1", lambda: None)
        registry.register("z", "v1", lambda: None)
        assert registry.kernels() == ["a", "z"]
        assert registry.variants("z") == ["v1", "v2"]

    def test_contains_and_len(self, registry):
        registry.register("k", "v", lambda: None)
        assert ("k", "v") in registry
        assert ("k", "w") not in registry
        assert len(registry) == 1

    def test_all_variants(self, registry):
        registry.register("k", "v", lambda: None)
        assert [i.qualified_name for i in registry.all_variants()] == ["k/v"]


class TestGlobalRegistry:
    def test_sandpile_variants_registered_on_import(self):
        import repro.sandpile  # noqa: F401 - triggers registration

        info = get_variant("sandpile", "vec")
        assert callable(info.fn)
        info = get_variant("asandpile", "lazy")
        assert callable(info.fn)

    def test_expected_variant_sets(self):
        import repro.sandpile  # noqa: F401
        from repro.easypap.kernel import REGISTRY

        assert set(REGISTRY.variants("sandpile")) >= {"seq", "vec", "tiled", "lazy", "omp", "split"}
        assert set(REGISTRY.variants("asandpile")) >= {"seq", "vec", "tiled", "lazy", "omp"}
