"""Tests for repro.easypap.tiling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.tiling import TileGrid


class TestDecomposition:
    def test_even_split(self):
        tg = TileGrid(64, 64, 32)
        assert len(tg) == 4
        assert tg.tiles_y == tg.tiles_x == 2
        assert all(t.h == t.w == 32 for t in tg)

    def test_uneven_edges(self):
        tg = TileGrid(10, 10, 4)
        assert tg.tiles_y == 3
        edge = tg.at(2, 2)
        assert edge.h == 2 and edge.w == 2

    def test_rectangular_tiles(self):
        tg = TileGrid(8, 12, 4, 6)
        assert (tg.tiles_y, tg.tiles_x) == (2, 2)
        assert tg.at(0, 0).w == 6

    def test_covers_exactly(self):
        tg = TileGrid(13, 7, 5)
        covered = sum(t.area for t in tg)
        assert covered == 13 * 7

    def test_no_overlap(self):
        tg = TileGrid(9, 9, 4)
        seen = set()
        for t in tg:
            for y in range(t.y0, t.y1):
                for x in range(t.x0, t.x1):
                    assert (y, x) not in seen
                    seen.add((y, x))

    def test_indices_row_major(self):
        tg = TileGrid(8, 8, 4)
        assert [t.index for t in tg] == [0, 1, 2, 3]
        assert tg.at(1, 0).index == 2

    @pytest.mark.parametrize("args", [(0, 4, 2), (4, 4, 0), (4, 0, 2)])
    def test_rejects_bad_dims(self, args):
        with pytest.raises(ConfigurationError):
            TileGrid(*args)

    def test_tile_bigger_than_grid(self):
        tg = TileGrid(5, 5, 100)
        assert len(tg) == 1
        assert tg[0].h == 5

    def test_slices(self):
        t = TileGrid(8, 8, 4).at(1, 1)
        ys, xs = t.slices()
        assert (ys.start, ys.stop) == (4, 8)
        assert (xs.start, xs.stop) == (4, 8)

    def test_at_out_of_range(self):
        with pytest.raises(IndexError):
            TileGrid(8, 8, 4).at(2, 0)


class TestNeighbors:
    def test_interior_tile_has_four(self):
        tg = TileGrid(12, 12, 4)
        nbrs = tg.neighbors(tg.at(1, 1))
        assert len(nbrs) == 4
        assert {(n.ty, n.tx) for n in nbrs} == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_corner_tile_has_two(self):
        tg = TileGrid(12, 12, 4)
        assert len(tg.neighbors(tg.at(0, 0))) == 2

    def test_diagonal_option(self):
        tg = TileGrid(12, 12, 4)
        assert len(tg.neighbors(tg.at(1, 1), diagonal=True)) == 8


class TestBorderClassification:
    def test_inner_outer_partition(self):
        tg = TileGrid(16, 16, 4)
        inner, outer = tg.inner_tiles(), tg.outer_tiles()
        assert len(inner) + len(outer) == len(tg)
        assert len(inner) == 4  # 2x2 core of a 4x4 tile grid

    def test_small_grid_all_outer(self):
        tg = TileGrid(8, 8, 4)
        assert tg.inner_tiles() == []

    def test_border_predicate(self):
        tg = TileGrid(12, 12, 4)
        assert tg.is_border_tile(tg.at(0, 1))
        assert not tg.is_border_tile(tg.at(1, 1))

    def test_repr(self):
        assert "TileGrid" in repr(TileGrid(8, 8, 4))
