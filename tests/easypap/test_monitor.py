"""Tests for trace recording and analysis."""

import numpy as np

from repro.easypap.monitor import TaskRecord, Trace


def rec(iteration=0, task=0, worker=0, start=0.0, end=1.0, kind="compute", ty=-1, tx=-1):
    return TaskRecord(iteration, task, worker, start, end, kind, ty, tx)


class TestTrace:
    def test_add_and_len(self):
        t = Trace()
        t.add(rec())
        t.extend([rec(task=1), rec(task=2)])
        assert len(t) == 3

    def test_iterations_sorted(self):
        t = Trace()
        t.add(rec(iteration=5))
        t.add(rec(iteration=1))
        assert t.iterations() == [1, 5]

    def test_iteration_records_sorted_by_start(self):
        t = Trace()
        t.add(rec(task=1, start=2.0, end=3.0))
        t.add(rec(task=0, start=0.0, end=1.0))
        recs = t.iteration_records(0)
        assert [r.task for r in recs] == [0, 1]


class TestSummary:
    def test_basic_stats(self):
        t = Trace()
        t.add(rec(worker=0, start=0.0, end=2.0))
        t.add(rec(task=1, worker=1, start=0.0, end=1.0))
        s = t.summarize(0)
        assert s.task_count == 2
        assert s.makespan == 2.0
        assert s.total_work == 3.0
        assert s.worker_busy == {0: 2.0, 1: 1.0}
        assert s.imbalance > 0.0

    def test_balanced_zero_imbalance(self):
        t = Trace()
        t.add(rec(worker=0, start=0.0, end=1.0))
        t.add(rec(task=1, worker=1, start=0.0, end=1.0))
        assert t.summarize(0).imbalance == 0.0

    def test_empty_iteration(self):
        s = Trace().summarize(42)
        assert s.task_count == 0
        assert s.makespan == 0.0
        assert s.imbalance == 0.0


class TestOwnerMap:
    def test_basic(self):
        t = Trace()
        t.add(rec(worker=3, ty=0, tx=1))
        t.add(rec(task=1, worker=1, ty=1, tx=0))
        owners = t.tile_owner_map(2, 2, 0)
        assert owners[0, 1] == 3
        assert owners[1, 0] == 1
        assert owners[0, 0] == -1  # not computed: black in Fig. 4

    def test_out_of_range_tiles_ignored(self):
        t = Trace()
        t.add(rec(ty=99, tx=0))
        owners = t.tile_owner_map(2, 2, 0)
        assert (owners == -1).all()

    def test_dtype(self):
        owners = Trace().tile_owner_map(3, 3, 0)
        assert owners.dtype == np.int32


class TestGantt:
    def test_contains_workers_and_marks(self):
        t = Trace()
        t.add(rec(worker=0, start=0.0, end=1.0))
        t.add(rec(task=1, worker=1, start=0.5, end=1.0, kind="gpu"))
        out = t.gantt_ascii(0)
        assert "w0" in out and "w1" in out
        assert "#" in out and "G" in out

    def test_empty(self):
        assert "<no tasks>" in Trace().gantt_ascii(3)


class TestExport:
    def test_to_rows(self):
        t = Trace()
        t.add(rec(iteration=2, task=7, worker=1, ty=3, tx=4))
        rows = t.to_rows()
        assert rows == [
            {
                "iteration": 2,
                "task": 7,
                "worker": 1,
                "start": 0.0,
                "end": 1.0,
                "kind": "compute",
                "tile_ty": 3,
                "tile_tx": 4,
            }
        ]
