"""Tests for grid/owner-map rendering."""

import numpy as np
import pytest

from repro.easypap.display import WORKER_PALETTE, render_grid, render_tile_owners, upscale
from repro.easypap.grid import Grid2D


class TestRenderGrid:
    def test_accepts_grid2d(self):
        g = Grid2D(3, 3)
        img = render_grid(g)
        assert img.shape == (3, 3, 3)

    def test_accepts_raw_array(self):
        img = render_grid(np.zeros((2, 2), dtype=int))
        assert img.shape == (2, 2, 3)


class TestRenderTileOwners:
    def test_uncomputed_black(self):
        owners = np.full((2, 2), -1, dtype=np.int32)
        img = render_tile_owners(owners, tile_pixels=2)
        assert (img == 0).all()

    def test_worker_colors(self):
        owners = np.array([[0, 1]], dtype=np.int32)
        img = render_tile_owners(owners, tile_pixels=1)
        assert tuple(img[0, 0]) == WORKER_PALETTE[0]
        assert tuple(img[0, 1]) == WORKER_PALETTE[1]

    def test_gpu_hue(self):
        owners = np.array([[4]], dtype=np.int32)
        img = render_tile_owners(owners, tile_pixels=1, gpu_workers={4})
        r, g, b = img[0, 0]
        assert r > 200 and b == 0  # orange family

    def test_palette_cycles(self):
        owners = np.array([[len(WORKER_PALETTE)]], dtype=np.int32)
        img = render_tile_owners(owners, tile_pixels=1)
        assert tuple(img[0, 0]) == WORKER_PALETTE[0]

    def test_geometry(self):
        owners = np.zeros((3, 5), dtype=np.int32)
        img = render_tile_owners(owners, tile_pixels=4)
        assert img.shape == (12, 20, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_tile_owners(np.zeros(4, dtype=np.int32))


class TestUpscale:
    def test_factor(self):
        img = np.arange(12, dtype=np.uint8).reshape(2, 2, 3)
        up = upscale(img, 3)
        assert up.shape == (6, 6, 3)
        assert (up[0:3, 0:3] == img[0, 0]).all()

    def test_identity(self):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        assert upscale(img, 1).shape == img.shape

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            upscale(np.zeros((2, 2, 3), dtype=np.uint8), 0)
