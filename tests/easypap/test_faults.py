"""Fault-injection tests: worker crashes, retries, degradation paths.

These kill real pool workers (``os._exit`` inside the child), so they are
marked ``faults`` and run as their own CI job with a hard timeout; locally
they are part of the normal suite.
"""

import numpy as np
import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.common.errors import SchedulingError
from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
from repro.easypap.executor import ProcessBackend, TaskBatch, TileTask
from repro.easypap.grid import Grid2D
from repro.easypap.tiling import TileGrid
from repro.sandpile.kernels import sync_step, sync_tile

pytestmark = pytest.mark.faults

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="fork/shared_memory unavailable"
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def make_sync_setup(n=8, grains=6):
    """Grid + scratch + tiles + picklable spec + expected next state."""
    g = Grid2D(n, n)
    g.interior[:] = grains
    scratch = g.data.copy()
    tiles = list(TileGrid(n, n, 4))
    spec = [TileTask("sync_tile", 0, 1, t) for t in tiles]
    expected = g.copy()
    sync_step(expected)
    return g, scratch, tiles, spec, expected


def make_closure_batch(p0, p1, tiles, spec):
    """A batch whose parent-side closures do the same work as the spec.

    Worker processes execute the spec; if the backend degrades to threads,
    the closures run against the same shared planes, so either path must
    produce identical tile results.
    """

    def mk(tile):
        def task():
            return sync_tile(p0, p1, tile)

        return task

    return TaskBatch([mk(t) for t in tiles], tiles=tiles, spec=spec)


class TestWorkerCrashRecovery:
    @needs_processes
    def test_kill_mid_batch_recovers_on_rebuilt_pool(self):
        g, scratch, tiles, spec, expected = make_sync_setup()
        log = DegradationLog()
        injector = FaultInjector(kill_on_tasks={2}, max_fires=1)
        with ProcessBackend(
            2, "dynamic", retry=FAST_RETRY, degradation=log, fault_injector=injector
        ) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            r = be.run(make_closure_batch(p0, p1, tiles, spec))
            # the batch completed despite a genuine worker death
            assert injector.fires == 1
            assert len(r.spans) == len(tiles)
            assert r.returns is not None and any(r.returns)
            assert np.array_equal(p1[1:-1, 1:-1], expected.interior)
            # still on processes: the pool was rebuilt, not abandoned
            assert be.uses_processes
        assert len(log.by_action("pool-rebuild")) >= 1

    @needs_processes
    def test_recovery_preserves_multi_iteration_fixpoint(self):
        """A mid-run crash must not corrupt the simulation outcome."""
        from repro.sandpile.omp import TiledSyncStepper
        from repro.sandpile.reference import sync_step_reference

        g = Grid2D(12, 12)
        g.interior[:] = 5
        ref = g.copy()
        while sync_step_reference(ref):
            pass

        injector = FaultInjector(kill_on_tasks={1}, max_fires=1)
        be = ProcessBackend(
            2, "dynamic", retry=FAST_RETRY, degradation=DegradationLog(), fault_injector=injector
        )
        stepper = TiledSyncStepper(g, 4, backend=be)
        try:
            while stepper():
                pass
        finally:
            stepper.close()
        assert injector.fires == 1
        assert np.array_equal(g.interior, ref.interior)


class TestFrontierCrashRecovery:
    @needs_processes
    def test_kill_mid_frontier_batch_resumes_from_dirty_bbox(self):
        """Satellite: a worker death inside a *dynamic* frontier batch must
        heal on the rebuilt pool and resume from the correct dirty bbox —
        the whole run stays bit-identical to the single-worker frontier."""
        from repro.sandpile.pfrontier import ParallelFrontierStepper
        from repro.sandpile.vectorized import FrontierSyncStepper

        ref = Grid2D(24, 24)
        ref.interior[4, 4] = 500
        ref.interior[18, 19] = 300
        g = ref.copy()
        ref_stepper = FrontierSyncStepper(ref)
        ref_steps = 0
        while ref_stepper():
            ref_steps += 1

        log = DegradationLog()
        injector = FaultInjector(kill_on_tasks={1}, max_fires=1)
        be = ProcessBackend(
            2, "dynamic", retry=FAST_RETRY, degradation=log, fault_injector=injector
        )
        with ParallelFrontierStepper(g, tile_size=4, backend=be) as stepper:
            steps = 0
            while stepper():
                steps += 1
                # recovery must not corrupt the frontier's view of the grid:
                # the next bbox is recomputed from the healed window
                assert stepper._bbox is None or stepper._bbox[0] < stepper._bbox[1]
            assert be.uses_processes  # rebuilt, not degraded to threads
        assert injector.fires == 1
        assert len(log.by_action("pool-rebuild")) >= 1
        assert steps == ref_steps
        assert np.array_equal(g.interior, ref.interior)
        assert g.sink_absorbed == ref.sink_absorbed


class TestRetryExhaustion:
    @needs_processes
    def test_exhaustion_degrades_to_threads(self):
        g, scratch, tiles, spec, expected = make_sync_setup()
        log = DegradationLog()
        # more fires than attempts: every rebuilt pool dies again
        injector = FaultInjector(kill_on_tasks={2}, max_fires=100)
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        with ProcessBackend(
            2, "dynamic", retry=retry, degradation=log, fault_injector=injector
        ) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            r = be.run(make_closure_batch(p0, p1, tiles, spec))
            # degraded, but the closures completed the work on threads
            assert not be.uses_processes
            assert len(r.spans) == len(tiles)
            assert np.array_equal(p1[1:-1, 1:-1], expected.interior)
        assert len(log.by_action("thread-fallback")) == 1
        assert len(log.by_action("pool-rebuild")) >= 1

    @needs_processes
    def test_no_fallback_raises_naming_unfinished_tiles(self):
        g, scratch, tiles, spec, _ = make_sync_setup()
        log = DegradationLog()
        injector = FaultInjector(kill_on_tasks={2}, max_fires=100)
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        with ProcessBackend(
            2,
            "dynamic",
            retry=retry,
            allow_fallback=False,
            degradation=log,
            fault_injector=injector,
        ) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            with pytest.raises(SchedulingError) as exc_info:
                be.run(make_closure_batch(p0, p1, tiles, spec))
        msg = str(exc_info.value)
        assert "retries exhausted" in msg
        assert "fallback disabled" in msg
        assert "task 2" in msg  # the unfinished tile is named
        assert "tile(" in msg
        assert len(log.by_action("give-up")) == 1

    @needs_processes
    def test_injected_raise_is_retried(self):
        """An in-process task exception (not a crash) also goes through retry."""
        g, scratch, tiles, spec, expected = make_sync_setup()
        log = DegradationLog()
        injector = FaultInjector(raise_on_tasks={0}, max_fires=1)
        with ProcessBackend(
            2, "dynamic", retry=FAST_RETRY, degradation=log, fault_injector=injector
        ) as be:
            p0, p1 = be.bind_planes(g.data, scratch)
            be.run(make_closure_batch(p0, p1, tiles, spec))
            assert injector.fires == 1
            assert np.array_equal(p1[1:-1, 1:-1], expected.interior)
            assert be.uses_processes


class TestDiagnostics:
    @needs_processes
    def test_missing_task_description_names_tiles_and_plan(self):
        """Satellite: the opaque 'some tasks did not complete' error is gone."""
        g, scratch, tiles, spec, _ = make_sync_setup()
        from repro.easypap.schedule import chunk_plan

        be = ProcessBackend(2, "static", chunk=1)
        be.bind_planes(g.data, scratch)
        try:
            batch = TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec)
            chunks = chunk_plan(len(batch), be.nworkers, be.policy, be.chunk)
            desc = be._describe_missing(batch, {1, 3}, chunks)
            assert "task 1" in desc and "task 3" in desc
            assert "tile(" in desc
            assert "policy='static'" in desc
            assert "worker" in desc
        finally:
            be.close()

    @needs_processes
    def test_close_after_crash_is_exception_safe(self):
        g, scratch, tiles, spec, _ = make_sync_setup()
        injector = FaultInjector(kill_on_tasks={0}, max_fires=100)
        retry = RetryPolicy(max_attempts=1, base_delay=0.0)
        be = ProcessBackend(
            2, retry=retry, allow_fallback=False,
            degradation=DegradationLog(), fault_injector=injector,
        )
        be.bind_planes(g.data, scratch)
        with pytest.raises(SchedulingError):
            be.run(TaskBatch([lambda: None] * len(tiles), tiles=tiles, spec=spec))
        be.close()  # must not raise or leak shared memory
        be.close()  # idempotent
