"""Tests for the OpenMP-style scheduling simulation."""

import pytest

from repro.common.errors import SchedulingError
from repro.easypap.schedule import (
    POLICIES,
    chunk_plan,
    chunk_plan_cached,
    dynamic_chunk_plan,
    simulate_schedule,
)


class TestChunkPlan:
    def test_static_contiguous_blocks(self):
        chunks = chunk_plan(10, 3, "static", 1)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_cyclic_chunked(self):
        chunks = chunk_plan(7, 2, "cyclic", 2)
        assert chunks == [[0, 1], [2, 3], [4, 5], [6]]

    def test_guided_decreasing(self):
        chunks = chunk_plan(100, 4, "guided", 2)
        sizes = [len(c) for c in chunks]
        assert sizes[0] == 25
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] >= 1
        assert sum(sizes) == 100

    def test_guided_respects_min_chunk(self):
        chunks = chunk_plan(20, 4, "guided", 4)
        assert all(len(c) >= 4 or c is chunks[-1] for c in chunks)

    def test_covers_all_tasks_once(self):
        for policy in POLICIES:
            tasks = [t for c in chunk_plan(23, 3, policy, 2) for t in c]
            assert sorted(tasks) == list(range(23))

    def test_empty(self):
        assert chunk_plan(0, 4, "static", 1) == []
        assert chunk_plan(0, 4, "dynamic", 1) == []

    def test_bad_policy(self):
        with pytest.raises(SchedulingError):
            chunk_plan(4, 2, "magic", 1)

    def test_bad_chunk(self):
        with pytest.raises(SchedulingError):
            chunk_plan(4, 2, "dynamic", 0)


class TestSchedulingEdgeCases:
    """Degenerate shapes: fewer tasks than workers, no tasks, guided shrink."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_fewer_tasks_than_workers_plan(self, policy):
        chunks = chunk_plan(3, 8, policy, 1)
        assert sorted(t for c in chunks for t in c) == [0, 1, 2]
        assert all(chunks), "no empty chunks"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_fewer_tasks_than_workers_schedule(self, policy):
        r = simulate_schedule([2.0, 3.0, 5.0], 8, policy)
        assert len(r.spans) == 3
        assert all(0 <= s.worker < 8 for s in r.spans)
        # nothing forces serialisation: the longest task bounds the makespan
        assert r.makespan == pytest.approx(5.0)
        assert len(r.worker_busy()) == 8

    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_tasks(self, policy):
        assert chunk_plan(0, 4, policy, 1) == []
        r = simulate_schedule([], 4, policy)
        assert r.spans == []
        assert r.makespan == 0.0
        assert r.imbalance == 0.0

    def test_guided_shrink_sequence_exact(self):
        # size_k = min(max(remaining // nworkers, chunk), remaining)
        chunks = chunk_plan(100, 4, "guided", 1)
        sizes, expected, remaining = [len(c) for c in chunks], [], 100
        while remaining:
            size = min(max(remaining // 4, 1), remaining)
            expected.append(size)
            remaining -= size
        assert sizes == expected
        assert sizes[0] == 25 and sizes[-1] == 1

    def test_guided_tail_hits_min_chunk(self):
        chunks = chunk_plan(64, 4, "guided", 8)
        # shrink: 16, 12, 9, then the floor of 8 until the 3-task remainder
        assert [len(c) for c in chunks] == [16, 12, 9, 8, 8, 8, 3]


class TestSimulateSchedule:
    def test_uniform_static_perfect_balance(self):
        r = simulate_schedule([1.0] * 8, 4, "static")
        assert r.makespan == pytest.approx(2.0)
        assert r.imbalance == pytest.approx(0.0)
        assert r.speedup() == pytest.approx(4.0)
        assert r.efficiency() == pytest.approx(1.0)

    def test_every_task_has_span(self):
        r = simulate_schedule([1.0, 2.0, 3.0], 2, "dynamic")
        assert sorted(s.task for s in r.spans) == [0, 1, 2]

    def test_dynamic_beats_static_on_skew(self):
        # one huge task first: static gives worker 0 the huge + more;
        # dynamic lets other workers drain the rest concurrently
        costs = [100.0] + [1.0] * 30
        ms_static = simulate_schedule(costs, 4, "static").makespan
        ms_dynamic = simulate_schedule(costs, 4, "dynamic").makespan
        assert ms_dynamic < ms_static

    def test_makespan_at_least_critical_task(self):
        costs = [50.0, 1.0, 1.0]
        for policy in POLICIES:
            assert simulate_schedule(costs, 8, policy).makespan >= 50.0

    def test_makespan_at_least_mean_load(self):
        costs = [3.0] * 10
        for policy in POLICIES:
            r = simulate_schedule(costs, 4, policy)
            assert r.makespan >= sum(costs) / 4 - 1e-9

    def test_single_worker_serializes(self):
        r = simulate_schedule([1.0, 2.0, 3.0], 1, "dynamic")
        assert r.makespan == pytest.approx(6.0)
        assert r.speedup() == pytest.approx(1.0)

    def test_worker_busy_sums_to_total(self):
        costs = [1.0, 2.5, 0.5, 4.0]
        r = simulate_schedule(costs, 3, "guided")
        assert sum(r.worker_busy()) == pytest.approx(sum(costs))

    def test_spans_do_not_overlap_per_worker(self):
        r = simulate_schedule([0.5] * 20, 3, "dynamic", chunk=2)
        by_worker = {}
        for s in sorted(r.spans, key=lambda s: s.start):
            if s.worker in by_worker:
                assert s.start >= by_worker[s.worker] - 1e-12
            by_worker[s.worker] = s.end

    def test_empty_tasks(self):
        r = simulate_schedule([], 4, "dynamic")
        assert r.makespan == 0.0
        assert r.imbalance == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_schedule([-1.0], 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_schedule([1.0], 0)

    def test_assignment_mapping(self):
        r = simulate_schedule([1.0] * 6, 2, "cyclic", chunk=1)
        a = r.assignment()
        assert a[0] == 0 and a[1] == 1 and a[2] == 0  # round-robin

    def test_start_time_offset(self):
        r = simulate_schedule([1.0], 1, "static", start_time=5.0)
        assert r.spans[0].start == pytest.approx(5.0)

    def test_cyclic_chunk_grouping(self):
        r = simulate_schedule([1.0] * 4, 2, "cyclic", chunk=2)
        a = r.assignment()
        assert a[0] == a[1] == 0 and a[2] == a[3] == 1


class TestChunkOversizeAndRejection:
    """chunk > ntasks, zero/negative parameters, cache identity."""

    @pytest.mark.parametrize("policy", ("cyclic", "dynamic"))
    def test_chunk_larger_than_ntasks_single_chunk(self, policy):
        assert chunk_plan(3, 2, policy, 10) == [[0, 1, 2]]

    def test_guided_chunk_larger_than_ntasks_single_chunk(self):
        assert chunk_plan(3, 4, "guided", 10) == [[0, 1, 2]]

    def test_static_ignores_chunk(self):
        assert chunk_plan(6, 2, "static", 99) == chunk_plan(6, 2, "static", 1)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_chunk_oversize_still_covers_all_tasks(self, policy):
        tasks = [t for c in chunk_plan(5, 3, policy, 100) for t in c]
        assert sorted(tasks) == list(range(5))

    @pytest.mark.parametrize("chunk", [0, -1, -100])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_and_negative_chunk_rejected(self, policy, chunk):
        with pytest.raises(SchedulingError):
            chunk_plan(4, 2, policy, chunk)

    def test_negative_ntasks_rejected(self):
        with pytest.raises(SchedulingError):
            chunk_plan(-1, 2, "dynamic", 1)

    def test_cache_identity_vs_fresh_lists(self):
        # the cached form returns one immutable object per parameter tuple;
        # the plain form must return fresh mutable lists every call
        cached_a = chunk_plan_cached(12, 3, "guided", 2)
        cached_b = chunk_plan_cached(12, 3, "guided", 2)
        assert cached_a is cached_b
        plain_a = chunk_plan(12, 3, "guided", 2)
        plain_b = chunk_plan(12, 3, "guided", 2)
        assert plain_a == plain_b
        assert plain_a is not plain_b
        assert all(x is not y for x, y in zip(plain_a, plain_b))


class TestChunkPlanCache:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_cached_plan_matches_plain(self, policy):
        plain = chunk_plan(37, 4, policy, 3)
        cached = chunk_plan_cached(37, 4, policy, 3)
        assert [list(c) for c in cached] == plain

    def test_repeat_calls_return_identical_object(self):
        a = chunk_plan_cached(64, 4, "dynamic", 2)
        b = chunk_plan_cached(64, 4, "dynamic", 2)
        assert a is b  # memoised: the hot path rebuilds nothing

    def test_mutating_chunk_plan_output_does_not_poison_cache(self):
        first = chunk_plan(16, 4, "static", 1)
        first[0][0] = 999
        first.clear()
        assert chunk_plan(16, 4, "static", 1)[0][0] == 0

    def test_cached_plan_is_immutable(self):
        plan = chunk_plan_cached(16, 4, "static", 1)
        with pytest.raises(TypeError):
            plan[0][0] = 999

    def test_invalid_args_raise_every_time(self):
        for _ in range(2):  # errors must not be cached away
            with pytest.raises(SchedulingError):
                chunk_plan_cached(8, 4, "bogus", 1)
            with pytest.raises(SchedulingError):
                chunk_plan_cached(8, 4, "static", 0)


class TestDynamicChunkPlan:
    """The uncached planner behind frontier-style varying task counts.

    Regression for the LRU-thrash bug: a moving frontier produces a new
    ``ntasks`` every iteration, and planning those through the cached path
    churned (and could evict hot static plans from) the LRU.  The dynamic
    path must produce identical plans while leaving the cache untouched.
    """

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_cached_plan_contents(self, policy):
        for ntasks in (0, 1, 7, 37, 100):
            assert dynamic_chunk_plan(ntasks, 4, policy, 3) == chunk_plan_cached(
                ntasks, 4, policy, 3
            )

    def test_does_not_touch_the_lru_cache(self):
        chunk_plan_cached.cache_clear()
        hot = chunk_plan_cached(256, 8, "static", 1)  # a hot static plan
        before = chunk_plan_cached.cache_info()
        # a shrinking frontier: a different task count every iteration
        for ntasks in range(64, 0, -1):
            dynamic_chunk_plan(ntasks, 8, "dynamic", 1)
        after = chunk_plan_cached.cache_info()
        assert after.currsize == before.currsize
        assert after.misses == before.misses
        # the hot plan survived: identity preserved, no eviction
        assert chunk_plan_cached(256, 8, "static", 1) is hot

    @pytest.mark.parametrize("policy", POLICIES)
    def test_fresh_tuples_every_call(self, policy):
        a = dynamic_chunk_plan(12, 3, policy, 2)
        b = dynamic_chunk_plan(12, 3, policy, 2)
        assert a == b
        assert a is not b  # uncached: nothing retained between calls

    def test_invalid_args_rejected(self):
        with pytest.raises(SchedulingError):
            dynamic_chunk_plan(-1, 2, "dynamic", 1)
        with pytest.raises(SchedulingError):
            dynamic_chunk_plan(8, 2, "bogus", 1)
        with pytest.raises(SchedulingError):
            dynamic_chunk_plan(8, 2, "static", 0)
