"""Tests for repro.easypap.grid."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.easypap.grid import Grid2D


class TestConstruction:
    def test_shape_and_frame(self):
        g = Grid2D(5, 7)
        assert g.shape == (5, 7)
        assert g.data.shape == (7, 9)
        assert g.interior.shape == (5, 7)

    def test_starts_empty_and_stable(self):
        g = Grid2D(4, 4)
        assert g.total_grains() == 0
        assert g.is_stable()

    @pytest.mark.parametrize("h,w", [(0, 4), (4, 0), (-1, 3)])
    def test_rejects_bad_dims(self, h, w):
        with pytest.raises(ConfigurationError):
            Grid2D(h, w)

    def test_from_interior_copies(self):
        arr = np.arange(12).reshape(3, 4)
        g = Grid2D.from_interior(arr)
        arr[0, 0] = 999
        assert g.interior[0, 0] == 0

    def test_from_interior_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            Grid2D.from_interior(np.zeros(4))

    def test_interior_is_view(self):
        g = Grid2D(3, 3)
        g.interior[1, 1] = 5
        assert g.data[2, 2] == 5


class TestSink:
    def test_drain_counts_and_zeroes(self):
        g = Grid2D(3, 3)
        g.data[0, 1] = 4
        g.data[2, 0] = 2
        absorbed = g.drain_sink()
        assert absorbed == 6
        assert g.sink_absorbed == 6
        assert g.border_sum() == 0

    def test_corner_counted_once(self):
        g = Grid2D(2, 2)
        g.data[0, 0] = 5
        assert g.border_sum() == 5

    def test_repeated_drain_accumulates(self):
        g = Grid2D(2, 2)
        g.data[0, 1] = 1
        g.drain_sink()
        g.data[0, 1] = 2
        g.drain_sink()
        assert g.sink_absorbed == 3


class TestQueries:
    def test_stability(self):
        g = Grid2D(2, 2)
        g.interior[0, 0] = 3
        assert g.is_stable()
        g.interior[0, 0] = 4
        assert not g.is_stable()
        assert g.unstable_count() == 1

    def test_total_grains_excludes_frame(self):
        g = Grid2D(2, 2)
        g.interior[...] = 1
        g.data[0, 0] = 100
        assert g.total_grains() == 4


class TestCopyAndEquality:
    def test_copy_independent(self):
        g = Grid2D(3, 3)
        g.interior[0, 0] = 7
        g.sink_absorbed = 5
        c = g.copy()
        c.interior[0, 0] = 1
        assert g.interior[0, 0] == 7
        assert c.sink_absorbed == 5

    def test_equality_by_interior(self):
        a = Grid2D.from_interior(np.ones((2, 2), dtype=np.int64))
        b = Grid2D.from_interior(np.ones((2, 2), dtype=np.int64))
        assert a == b
        b.interior[0, 0] = 2
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Grid2D(2, 2))

    def test_eq_other_type(self):
        assert (Grid2D(2, 2) == 42) is False


class TestSwapBuffer:
    def test_swap_installs_and_returns(self):
        g = Grid2D(2, 2)
        buf = np.full((4, 4), 3, dtype=np.int64)
        old = g.swap_buffer(buf)
        assert g.data is buf
        assert old.shape == (4, 4)
        assert (old == 0).all()

    def test_swap_rejects_wrong_shape(self):
        g = Grid2D(2, 2)
        with pytest.raises(ConfigurationError):
            g.swap_buffer(np.zeros((5, 5), dtype=np.int64))

    def test_swap_rejects_wrong_dtype(self):
        g = Grid2D(2, 2)
        with pytest.raises(ConfigurationError):
            g.swap_buffer(np.zeros((4, 4), dtype=np.int32))

    def test_repr(self):
        assert "Grid2D(2x2" in repr(Grid2D(2, 2))
