"""Tests for the archived survey data — the counts ARE the paper's numbers."""

import pytest

from repro.surveys.data import BIG_DATA_SURVEY, EASYPAP_SURVEY, TABLE_I, Survey, SurveyQuestion


class TestSurveyQuestion:
    def test_count_choice_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SurveyQuestion("q", ("a", "b"), (1,))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SurveyQuestion("q", ("a",), (-1,))

    def test_top_choice(self):
        q = SurveyQuestion("q", ("a", "b", "c"), (1, 5, 2))
        assert q.top_choice() == "b"

    def test_positive_fraction(self):
        q = SurveyQuestion("q", ("a", "b", "c"), (3, 1, 4))
        assert q.positive_fraction(2) == pytest.approx(0.5)

    def test_empty_counts(self):
        q = SurveyQuestion("q", ("a",), (0,))
        assert q.positive_fraction() == 0.0


class TestTableI:
    """Exact counts from the paper's Table I (n = 11)."""

    def test_n_participants(self):
        assert TABLE_I.n_participants == 11

    def test_six_questions(self):
        assert len(TABLE_I.questions) == 6

    def test_question_totals_match_published_table(self):
        # Five rows total 11; the "How useful is simulation" row totals 12
        # *in the published table itself* (6+3+3 with n = 11) — we archive
        # the paper's numbers verbatim, typo included.
        totals = [q.n_responses for q in TABLE_I.questions]
        assert totals == [11, 11, 11, 11, 12, 11]

    def test_difficulty_row(self):
        q = TABLE_I.question("How easy / difficult")
        assert q.counts == (1, 6, 4, 0, 0)
        assert q.top_choice() == "somewhat easy"

    def test_usefulness_row(self):
        assert TABLE_I.question("How useful is the assignment").counts == (5, 3, 3, 0, 0)

    def test_learning_row(self):
        assert TABLE_I.question("To what extent").counts == (5, 4, 2, 0, 0)

    def test_interest_row(self):
        q = TABLE_I.question("Are you interested")
        assert q.counts == (10, 1)

    def test_simulation_usefulness_row(self):
        assert TABLE_I.question("How useful is simulation").counts == (6, 3, 3, 0, 0)

    def test_overall_value_row(self):
        assert TABLE_I.question("How valuable").counts == (7, 3, 1, 0, 0)

    def test_nobody_found_it_difficult(self):
        q = TABLE_I.question("How easy / difficult")
        assert q.counts[3] == 0 and q.counts[4] == 0

    def test_unknown_question_raises(self):
        with pytest.raises(KeyError):
            TABLE_I.question("How many GPUs")


class TestBigDataSurvey:
    """Sec. III-B's n = 8 survey bullets."""

    def test_n_participants(self):
        assert BIG_DATA_SURVEY.n_participants == 8

    def test_prerequisites_sufficient(self):
        # "Six students thought ... sufficient ... two absolutely sufficient"
        q = BIG_DATA_SURVEY.question("Were the prerequisites")
        assert q.counts == (2, 6, 0, 0, 0)

    def test_difficulty(self):
        # "Seven ... reasonable and one ... difficult"
        q = BIG_DATA_SURVEY.question("How difficult")
        assert q.counts[1] == 1 and q.counts[2] == 7

    def test_interest_increased(self):
        assert BIG_DATA_SURVEY.question("Did the assignment increase").counts == (7, 1)

    def test_coolness(self):
        # "Seven ... mostly cool and one person very cool"
        q = BIG_DATA_SURVEY.question("How cool")
        assert q.counts == (1, 7, 0, 0, 0)

    def test_awareness_unchanged_for_most(self):
        q = BIG_DATA_SURVEY.question("Did the assignment change your awareness")
        assert q.counts == (1, 7)

    def test_all_questions_total_8(self):
        for q in BIG_DATA_SURVEY.questions:
            assert q.n_responses == 8, q.text


class TestEasypapSurvey:
    def test_positive_skew(self):
        # Fig. 5's message: overwhelmingly positive feedback
        for q in EASYPAP_SURVEY.questions:
            assert q.positive_fraction(2) > 0.75, q.text

    def test_statement_coverage(self):
        texts = " ".join(q.text.lower() for q in EASYPAP_SURVEY.questions)
        # the paper's quoted student comments map onto these statements
        assert "variants" in texts
        assert "monitoring" in texts
        assert "learning curve" in texts
        assert "productivity" in texts

    def test_consistent_totals(self):
        totals = {q.n_responses for q in EASYPAP_SURVEY.questions}
        assert totals == {EASYPAP_SURVEY.n_participants}


class TestSurveyContainer:
    def test_question_prefix_case_insensitive(self):
        assert isinstance(TABLE_I.question("how easy"), SurveyQuestion)

    def test_survey_is_frozen(self):
        with pytest.raises(Exception):
            TABLE_I.n_participants = 99
