"""Tests for survey rendering."""

from repro.surveys.data import BIG_DATA_SURVEY, TABLE_I
from repro.surveys.render import render_bar_summary, render_table_i, survey_statistics


class TestRenderTableI:
    def test_layout_matches_paper(self):
        out = render_table_i(TABLE_I)
        assert "(n = 11)" in out
        assert "How easy / difficult is the assignment?" in out
        assert "somewhat easy" in out

    def test_zero_rendered_as_dash(self):
        out = render_table_i(TABLE_I)
        difficult_line = next(l for l in out.splitlines() if "very difficult" in l)
        assert difficult_line.rstrip().endswith("-")

    def test_question_printed_once(self):
        out = render_table_i(TABLE_I)
        assert out.count("How easy / difficult is the assignment?") == 1


class TestRenderBarSummary:
    def test_bars_proportional(self):
        out = render_bar_summary(BIG_DATA_SURVEY, width=14)
        lines = out.splitlines()
        reasonable = next(l for l in lines if "reasonable" in l)
        difficult = next(l for l in lines if l.strip().startswith("difficult "))
        assert reasonable.count("#") > difficult.count("#")

    def test_source_shown(self):
        assert "Jena" in render_bar_summary(BIG_DATA_SURVEY)


class TestStatistics:
    def test_mean_agreement(self):
        stats = survey_statistics(TABLE_I)
        assert 0.0 < stats["__mean__"] <= 1.0

    def test_per_question_keys(self):
        stats = survey_statistics(TABLE_I)
        assert len(stats) == len(TABLE_I.questions) + 1
