"""Tests for variant-level race certification."""

import pytest

from repro.analysis.variants import (
    RACY_TAG,
    certify_all,
    certify_variant,
    variant_phases,
    verdict_table,
)
from repro.common.errors import KernelError
from repro.easypap.kernel import REGISTRY, KernelRegistry


class TestVariantPhases:
    def test_sync_cell_model_is_per_interior_cell(self):
        phases = variant_phases("sandpile", "seq", height=3, width=4, tile_size=2)
        assert len(phases) == 1
        assert len(phases[0]) == 12

    def test_async_waves_are_serialised_phases(self):
        phases = variant_phases("asandpile", "omp", height=8, width=8, tile_size=4)
        assert len(phases) == 4  # checkerboard waves
        assert sum(len(p) for p in phases) == 4  # 2x2 tiles total

    def test_unknown_variant_has_no_model(self):
        assert variant_phases("sandpile", "cuda", height=4, width=4, tile_size=2) is None


class TestCertifyVariant:
    def test_sync_tiled_certifies_race_free(self):
        v = certify_variant("sandpile", "tiled")
        assert v.verdict == "race-free" and v.expected == "race-free" and v.ok

    def test_async_sweep_flagged_racy_and_expected(self):
        # the deliberately-racy variant: flagged, and the whitelist tag
        # makes the flag the *expected* outcome
        v = certify_variant("asandpile", "seq")
        assert v.verdict == "racy"
        assert v.expected == "racy"
        assert v.ok
        assert RACY_TAG in REGISTRY.get("asandpile", "seq").tags

    def test_async_waves_certify_race_free(self):
        v = certify_variant("asandpile", "omp")
        assert v.verdict == "race-free" and v.ok

    def test_unit_tiles_break_the_wave_guarantee(self):
        # checker sensitivity: with 1-cell tiles the wave partition no
        # longer separates write halos, and certification must fail
        v = certify_variant("asandpile", "omp", tile_size=1)
        assert v.verdict == "racy"
        assert not v.ok

    def test_unmodelled_variant_fails_certification(self):
        reg = KernelRegistry()
        reg.register("sandpile", "mystery", lambda grid: None)
        v = certify_variant("sandpile", "mystery", registry=reg)
        assert v.verdict == "unmodelled"
        assert not v.ok

    def test_unknown_variant_raises(self):
        with pytest.raises(KernelError):
            certify_variant("sandpile", "nope")


class TestCertifyAll:
    def test_every_registered_variant_certifies(self):
        verdicts = certify_all()
        assert len(verdicts) == len(REGISTRY)
        assert all(v.ok for v in verdicts), verdict_table(verdicts)

    def test_exactly_the_tagged_variants_are_racy(self):
        verdicts = certify_all()
        racy = {v.qualified_name for v in verdicts if v.verdict == "racy"}
        tagged = {
            info.qualified_name for info in REGISTRY.all_variants() if RACY_TAG in info.tags
        }
        assert racy == tagged
        assert racy == {"asandpile/seq", "asandpile/vec", "asandpile/frontier"}

    def test_verdict_table_lists_all_variants(self):
        verdicts = certify_all()
        table = verdict_table(verdicts)
        for v in verdicts:
            assert v.qualified_name in table
        assert "FAIL" not in table


class TestCertifyDynamicFrontier:
    """End-to-end certification of the frontier's per-iteration plans."""

    def test_real_run_certifies_race_free(self):
        from repro.analysis.variants import certify_dynamic_frontier

        cert = certify_dynamic_frontier(
            height=20, width=20, tile_size=4, nworkers=4, max_iterations=120
        )
        assert cert.ok
        assert cert.iterations > 0
        # the off-centre seed shrinks the frontier: dynamic batches happen
        assert cert.dynamic_batches > 0
        assert len(cert.crosses) == cert.iterations
        for cc in cert.crosses:
            assert cc.sound and cc.ok
            assert not cc.static.racy
        text = cert.summary()
        assert "race-free" in text
        assert str(cert.iterations) in text

    def test_certifies_under_static_policy_too(self):
        from repro.analysis.variants import certify_dynamic_frontier

        cert = certify_dynamic_frontier(
            height=16, width=16, tile_size=4, nworkers=2, policy="static",
            max_iterations=120,
        )
        assert cert.ok
        assert "policy=static" in cert.summary()
