"""Tests for the per-task footprint model."""

import pytest

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.analysis.footprint import (
    Footprint,
    _FOOTPRINTS,
    async_tile_relax_footprint,
    declare_footprint,
    declared_footprint,
    footprint_for,
    rect_cells,
    sync_tile_footprint,
)
from repro.common.errors import KernelError
from repro.easypap.executor import TileTask
from repro.easypap.tiling import Tile, TileGrid

SHAPE = (10, 10)  # framed 8x8 grid


def tile_at(index, ty, tx, y0, x0, h=4, w=4):
    return Tile(index, ty, tx, y0, x0, h, w)


class TestRectCells:
    def test_expands_half_open_rectangle(self):
        cells = rect_cells(1, 0, 2, 3, 5)
        assert cells == {(1, 0, 3), (1, 0, 4), (1, 1, 3), (1, 1, 4)}

    def test_empty_rectangle(self):
        assert rect_cells(0, 2, 2, 0, 4) == set()


class TestFootprint:
    def test_write_write_conflict(self):
        a = Footprint.of(set(), {(0, 1, 1)})
        b = Footprint.of(set(), {(0, 1, 1), (0, 1, 2)})
        c = a.conflicts_with(b)
        assert c["write-write"] == {(0, 1, 1)}
        assert not c["read-write"]
        assert not a.independent_of(b)

    def test_read_write_conflict(self):
        a = Footprint.of({(0, 1, 1)}, {(0, 5, 5)})
        b = Footprint.of(set(), {(0, 1, 1)})
        c = a.conflicts_with(b)
        assert c["read-write"] == {(0, 1, 1)}
        assert not c["write-write"]

    def test_read_read_is_independent(self):
        a = Footprint.of({(0, 1, 1)}, {(0, 2, 2)})
        b = Footprint.of({(0, 1, 1)}, {(0, 3, 3)})
        assert a.independent_of(b)

    def test_union(self):
        a = Footprint.of({(0, 0, 0)}, {(1, 0, 0)})
        b = Footprint.of({(0, 1, 1)}, {(1, 1, 1)})
        u = a.union(b)
        assert u.reads == {(0, 0, 0), (0, 1, 1)}
        assert u.writes == {(1, 0, 0), (1, 1, 1)}

    def test_touched_is_reads_and_writes(self):
        fp = Footprint.of({(0, 0, 0)}, {(0, 1, 1)})
        assert fp.touched == {(0, 0, 0), (0, 1, 1)}


class TestSyncTileFootprint:
    def test_writes_only_tile_interior_of_dst(self):
        task = TileTask("sync_tile", 0, 1, tile_at(0, 0, 0, 0, 0))
        fp = sync_tile_footprint(task, SHAPE)
        assert fp.writes == rect_cells(1, 1, 5, 1, 5)

    def test_reads_tile_plus_cross_halo_of_src(self):
        task = TileTask("sync_tile", 0, 1, tile_at(0, 1, 1, 4, 4))
        fp = sync_tile_footprint(task, SHAPE)
        # interior
        assert rect_cells(0, 5, 9, 5, 9) <= fp.reads
        # one-cell cross bands, corners excluded
        assert (0, 5, 4) in fp.reads and (0, 4, 5) in fp.reads
        assert (0, 4, 4) not in fp.reads  # corner: 4-point stencil skips it

    def test_adjacent_tiles_write_disjoint(self):
        a = sync_tile_footprint(TileTask("sync_tile", 0, 1, tile_at(0, 0, 0, 0, 0)), SHAPE)
        b = sync_tile_footprint(TileTask("sync_tile", 0, 1, tile_at(1, 0, 1, 0, 4)), SHAPE)
        assert not a.writes & b.writes
        # but b writes cells a reads (a's east halo): read-write on distinct planes
        assert a.conflicts_with(b)["write-write"] == frozenset()

    def test_full_grid_gather_is_race_free_pairwise(self):
        tasks = [TileTask("sync_tile", 0, 1, t) for t in TileGrid(8, 8, 4)]
        fps = [sync_tile_footprint(t, SHAPE) for t in tasks]
        for i, a in enumerate(fps):
            for b in fps[i + 1 :]:
                assert not a.writes & b.writes


class TestAsyncTileFootprint:
    def test_reads_equal_writes_on_one_plane(self):
        task = TileTask("async_tile_relax", 0, 0, tile_at(0, 0, 0, 0, 0))
        fp = async_tile_relax_footprint(task, SHAPE)
        assert fp.reads == fp.writes
        assert all(c[0] == 0 for c in fp.touched)

    def test_edge_adjacent_tiles_conflict(self):
        a = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(0, 0, 0, 0, 0)), SHAPE
        )
        b = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(1, 0, 1, 0, 4)), SHAPE
        )
        assert a.conflicts_with(b)["write-write"]

    def test_corner_adjacent_tiles_conflict(self):
        # diagonal neighbours clash through their shifted halo bands --
        # exactly why the wave partition needs 4 colours, not 2
        a = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(0, 0, 0, 0, 0)), SHAPE
        )
        b = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(3, 1, 1, 4, 4)), SHAPE
        )
        assert not a.independent_of(b)

    def test_same_wave_tiles_independent(self):
        # two tiles apart in one axis (same checkerboard colour): halos miss
        a = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(0, 0, 0, 0, 0, 2, 2)), SHAPE
        )
        b = async_tile_relax_footprint(
            TileTask("async_tile_relax", 0, 0, tile_at(1, 2, 2, 4, 4, 2, 2)), SHAPE
        )
        assert a.independent_of(b)


class TestDeclarations:
    def test_stock_kernels_declared(self):
        for name in ("sync_tile", "sync_tile_nc", "async_tile_relax"):
            task = TileTask(name, 0, 1 if name.startswith("sync") else 0, tile_at(0, 0, 0, 0, 0))
            assert declared_footprint(task, SHAPE) is not None

    def test_duplicate_declaration_rejected(self):
        name = "tmp_dup_fp"
        declare_footprint(name, sync_tile_footprint)
        try:
            with pytest.raises(KernelError):
                declare_footprint(name, async_tile_relax_footprint)
            # same function again is a no-op (re-import safety)
            declare_footprint(name, sync_tile_footprint)
            # explicit overwrite allowed
            declare_footprint(name, async_tile_relax_footprint, overwrite=True)
            assert _FOOTPRINTS[name] is async_tile_relax_footprint
        finally:
            _FOOTPRINTS.pop(name, None)

    def test_footprint_for_prefers_declaration(self):
        task = TileTask("sync_tile", 0, 1, tile_at(0, 0, 0, 0, 0))
        assert footprint_for(task, SHAPE) == sync_tile_footprint(task, SHAPE)

    def test_undeclared_kernel_raises_without_trace(self):
        task = TileTask("no_such_kernel_fp", 0, 0, tile_at(0, 0, 0, 0, 0))
        with pytest.raises(KernelError):
            footprint_for(task, SHAPE, allow_trace=False)
