"""Tests for the static/dynamic race checkers, including the property-based
static-vs-dynamic agreement check and the corrupted-schedule detection."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.analysis.races import (
    ConcurrencyModel,
    check_batch,
    check_phases,
    cross_check,
    dynamic_check,
)
from repro.analysis.variants import async_wave_specs, sync_tile_specs
from repro.easypap.executor import TileTask
from repro.easypap.schedule import POLICIES

SETTINGS = dict(max_examples=25, deadline=None)


def framed(h, w, fill):
    """Framed plane: interior filled, sink frame zero."""
    p = np.zeros((h + 2, w + 2), dtype=np.int64)
    p[1:-1, 1:-1] = fill
    return p


class TestConcurrencyModel:
    def test_single_worker_serialises_everything(self):
        m = ConcurrencyModel(8, 1, "dynamic", 1)
        assert not any(m.concurrent(a, b) for a in range(8) for b in range(8))

    def test_same_chunk_not_concurrent(self):
        m = ConcurrencyModel(8, 4, "dynamic", 4)
        assert m.chunk_of(0) == m.chunk_of(3)
        assert not m.concurrent(0, 3)

    def test_dynamic_cross_chunk_concurrent(self):
        m = ConcurrencyModel(8, 4, "dynamic", 1)
        assert m.concurrent(0, 7)

    def test_static_same_worker_serialised(self):
        # 8 tasks, 2 workers, static: blocks [0..3] -> w0, [4..7] -> w1
        m = ConcurrencyModel(8, 2, "static", 1)
        assert m.worker_of(0) == m.worker_of(1) == 0
        assert not m.concurrent(0, 1)
        assert m.concurrent(0, 4)

    def test_cyclic_worker_pinning(self):
        m = ConcurrencyModel(4, 2, "cyclic", 1)
        assert [m.worker_of(i) for i in range(4)] == [0, 1, 0, 1]
        assert not m.concurrent(0, 2)  # both on worker 0
        assert m.concurrent(0, 1)

    def test_task_not_concurrent_with_itself(self):
        m = ConcurrencyModel(4, 4, "dynamic", 1)
        assert not m.concurrent(2, 2)


class TestStaticChecker:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sync_batch_race_free_under_every_policy(self, policy):
        specs = sync_tile_specs(8, 8, 4)
        report = check_batch(specs, (10, 10), nworkers=4, policy=policy, chunk=1)
        assert report.verdict == "race-free"
        assert not report.racy

    def test_async_flat_batch_is_racy(self):
        specs = [t for wave in async_wave_specs(8, 8, 4) for t in wave]
        report = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        assert report.racy
        kinds = {c.kind for c in report.conflicts}
        assert "write-write" in kinds

    def test_async_waves_race_free(self):
        phases = async_wave_specs(8, 8, 4)
        shape = (10, 10)
        from repro.analysis.footprint import footprint_for

        fps = [[footprint_for(t, shape) for t in wave] for wave in phases]
        report = check_phases(fps, nworkers=4, policy="dynamic", chunk=1)
        assert report.verdict == "race-free"
        assert report.phases == len(phases)

    def test_async_waves_with_unit_tiles_detected_racy(self):
        # tile_size=1 breaks the wave guarantee: same-wave tiles are 2 apart
        # but their 1-cell halos land on the shared intermediate cell
        phases = async_wave_specs(4, 4, 1)
        shape = (6, 6)
        from repro.analysis.footprint import footprint_for

        fps = [[footprint_for(t, shape) for t in wave] for wave in phases]
        report = check_phases(fps, nworkers=4, policy="dynamic", chunk=1)
        assert report.racy

    def test_single_worker_never_racy(self):
        specs = [t for wave in async_wave_specs(8, 8, 4) for t in wave]
        report = check_batch(specs, (10, 10), nworkers=1, policy="dynamic", chunk=1)
        assert report.verdict == "race-free"

    def test_corrupted_schedule_detected(self):
        # seeded corruption: redirect one task's destination tile onto
        # another task's tile -- two concurrent writers of the same cells
        rng = np.random.default_rng(1234)
        specs = sync_tile_specs(8, 8, 4)
        clean = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        assert not clean.racy
        victim, donor = rng.choice(len(specs), size=2, replace=False)
        corrupted = list(specs)
        corrupted[victim] = TileTask(
            specs[victim].kernel, specs[victim].src, specs[victim].dst, specs[donor].tile
        )
        report = check_batch(corrupted, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        assert report.racy
        pair = {int(victim), int(donor)}
        assert any({c.task_a, c.task_b} == pair for c in report.conflicts)
        assert any(c.kind == "write-write" for c in report.conflicts)

    def test_summary_mentions_verdict_and_conflicts(self):
        specs = [t for wave in async_wave_specs(4, 4, 2) for t in wave]
        report = check_batch(specs, (6, 6), nworkers=2, policy="dynamic", chunk=1)
        text = report.summary(limit=2)
        assert "racy" in text
        assert "write-write" in text or "read-write" in text


class TestDynamicChecker:
    def test_sync_dynamic_race_free_and_sound(self):
        specs = sync_tile_specs(8, 8, 4)
        static = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        planes = [framed(8, 8, 5), np.zeros((10, 10), dtype=np.int64)]
        dynamic, trace = dynamic_check(specs, planes, nworkers=4, policy="dynamic", chunk=1)
        cc = cross_check(static, dynamic)
        assert dynamic.mode == "dynamic"
        assert not dynamic.racy
        assert cc.sound and cc.agree and cc.ok

    def test_async_dynamic_observes_the_predicted_races(self):
        specs = [t for wave in async_wave_specs(8, 8, 4) for t in wave]
        static = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        planes = [framed(8, 8, 8)]
        dynamic, _ = dynamic_check(specs, planes, nworkers=4, policy="dynamic", chunk=1)
        cc = cross_check(static, dynamic)
        assert static.racy and dynamic.racy
        assert cc.sound and cc.agree and cc.ok

    def test_cross_check_flags_underdeclaration(self):
        # dynamic sees a conflict the static model missed -> not sound
        specs = sync_tile_specs(4, 4, 2)
        static = check_batch(specs, (6, 6), nworkers=2, policy="dynamic", chunk=1)
        planes = [framed(4, 4, 8)]  # src == dst: in-place through sync kernels
        in_place = [TileTask(t.kernel, 0, 0, t.tile) for t in specs]
        dynamic, _ = dynamic_check(in_place, planes, nworkers=2, policy="dynamic", chunk=1)
        cc = cross_check(static, dynamic)
        assert dynamic.racy
        assert not cc.sound
        assert not cc.ok


# -- property: the static verdict matches the dynamic detector -----------------------


grid_strategy = dict(
    h=st.integers(2, 6),
    w=st.integers(2, 6),
    ts=st.integers(1, 3),
    nworkers=st.integers(2, 4),
    policy=st.sampled_from(POLICIES),
)


@given(**grid_strategy)
@settings(**SETTINGS)
def test_property_sync_agrees_race_free(h, w, ts, nworkers, policy):
    specs = sync_tile_specs(h, w, ts)
    shape = (h + 2, w + 2)
    static = check_batch(specs, shape, nworkers=nworkers, policy=policy, chunk=1)
    dynamic, _ = dynamic_check(
        specs,
        [framed(h, w, 6), np.zeros(shape, dtype=np.int64)],
        nworkers=nworkers,
        policy=policy,
        chunk=1,
    )
    cc = cross_check(static, dynamic)
    assert static.verdict == "race-free"
    assert dynamic.verdict == "race-free"
    assert cc.sound and cc.agree and cc.ok


@given(**grid_strategy)
@settings(**SETTINGS)
def test_property_async_flat_agrees_racy(h, w, ts, nworkers, policy):
    assume(h > ts or w > ts)  # need at least two (adjacent) tiles
    specs = [t for wave in async_wave_specs(h, w, ts) for t in wave]
    shape = (h + 2, w + 2)
    static = check_batch(specs, shape, nworkers=nworkers, policy=policy, chunk=1)
    # saturated grid: every cell topples, so halo spills genuinely happen
    dynamic, _ = dynamic_check(
        specs, [framed(h, w, 8)], nworkers=nworkers, policy=policy, chunk=1
    )
    cc = cross_check(static, dynamic)
    assert static.verdict == "racy"
    assert dynamic.verdict == "racy"
    assert cc.sound and cc.agree and cc.ok


@given(**grid_strategy)
@settings(**SETTINGS)
def test_property_dynamic_conflicts_subset_of_static(h, w, ts, nworkers, policy):
    # soundness alone, on the wave-partitioned schedule (mixed outcomes ok)
    phases = async_wave_specs(h, w, ts)
    shape = (h + 2, w + 2)
    plane = framed(h, w, 8)
    from repro.analysis.footprint import footprint_for

    fps = [[footprint_for(t, shape) for t in wave] for wave in phases]
    static = check_phases(fps, nworkers=nworkers, policy=policy, chunk=1)
    for p, wave in enumerate(phases):
        dynamic, _ = dynamic_check(wave, [plane], nworkers=nworkers, policy=policy, chunk=1)
        static_keys = {
            (c.kind, c.task_a, c.task_b, c.plane, c.cell)
            for c in static.conflicts
            if c.phase == p
        }
        for c in dynamic.conflicts:
            assert (c.kind, c.task_a, c.task_b, c.plane, c.cell) in static_keys


# -- plan pinning: certifying externally built (dynamic frontier) plans --------------


class TestPlanOverride:
    def test_single_chunk_plan_serialises_everything(self):
        m = ConcurrencyModel(4, 4, "dynamic", 1, plan=((0, 1, 2, 3),))
        assert not any(m.concurrent(a, b) for a in range(4) for b in range(4))

    def test_pinned_plan_overrides_parameter_rebuild(self):
        # parameters alone would give unit chunks (all pairs concurrent);
        # the pinned plan groups 0,1 and 2,3, serialising those pairs
        m = ConcurrencyModel(4, 2, "dynamic", 1, plan=((0, 1), (2, 3)))
        assert m.chunk_of(1) == 0 and m.chunk_of(2) == 1
        assert not m.concurrent(0, 1)
        assert not m.concurrent(2, 3)
        assert m.concurrent(1, 2)

    def test_racy_batch_certified_safe_under_serialising_plan(self):
        # the flat async batch is racy under the rebuilt plan, but an
        # externally built one-chunk plan proves this execution race-free
        specs = [t for wave in async_wave_specs(8, 8, 4) for t in wave]
        racy = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1)
        assert racy.racy
        plan = (tuple(range(len(specs))),)
        safe = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1, plan=plan)
        assert safe.verdict == "race-free"

    def test_dynamic_check_respects_pinned_plan(self):
        specs = [t for wave in async_wave_specs(8, 8, 4) for t in wave]
        plan = (tuple(range(len(specs))),)
        static = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1, plan=plan)
        dynamic, _ = dynamic_check(
            specs, [framed(8, 8, 8)], nworkers=4, policy="dynamic", chunk=1, plan=plan
        )
        cc = cross_check(static, dynamic)
        assert not static.racy and not dynamic.racy
        assert cc.sound and cc.agree and cc.ok

    def test_frontier_subset_plan_race_free(self):
        # a partial frontier batch: a subset of sync tiles under the exact
        # uncached plan the process backend would execute
        from repro.easypap.schedule import dynamic_chunk_plan

        specs = sync_tile_specs(8, 8, 4)[:3]  # 3 active tiles of 4
        plan = dynamic_chunk_plan(len(specs), 4, "dynamic", 1)
        report = check_batch(specs, (10, 10), nworkers=4, policy="dynamic", chunk=1, plan=plan)
        assert report.verdict == "race-free"
