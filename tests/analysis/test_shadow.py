"""Tests for the shadow-memory instrumentation."""

import numpy as np

import repro.sandpile.kernels  # noqa: F401 - registers the tile kernels
from repro.analysis.footprint import (
    async_tile_relax_footprint,
    rect_cells,
    sync_tile_footprint,
)
from repro.analysis.shadow import (
    ShadowPlane,
    ShadowRecorder,
    trace_batch,
    trace_tile_kernel,
)
from repro.easypap.executor import TileTask, get_tile_kernel
from repro.easypap.tiling import Tile, TileGrid


def make_plane(shape=(6, 6), fill=0):
    rec = ShadowRecorder()
    plane = ShadowPlane.wrap(np.full(shape, fill, dtype=np.int64), rec, 0)
    return rec, plane


def cells(rec, kind):
    out = set()
    for ev in rec.events:
        if ev.kind == kind:
            out |= ev.cells()
    return out


class TestShadowPlane:
    def test_operand_read_recorded(self):
        rec, p = make_plane(fill=2)
        _ = p[1:3, 1:3] + 1
        assert cells(rec, "read") == rect_cells(0, 1, 3, 1, 3)

    def test_setitem_write_recorded(self):
        rec, p = make_plane()
        p[2:4, 0:2] = 7
        assert cells(rec, "write") == rect_cells(0, 2, 4, 0, 2)

    def test_inplace_op_records_read_and_write(self):
        rec, p = make_plane(fill=5)
        sub = p[1:3, 1:3]
        sub &= 3
        assert rect_cells(0, 1, 3, 1, 3) <= cells(rec, "read")
        assert rect_cells(0, 1, 3, 1, 3) <= cells(rec, "write")

    def test_augmented_setitem_records_write(self):
        rec, p = make_plane(fill=1)
        p[0:2, 0:2] += 1
        assert rect_cells(0, 0, 2, 0, 2) <= cells(rec, "write")
        assert np.array_equal(np.asarray(p[0:2, 0:2]), np.full((2, 2), 2))

    def test_nested_subview_window_composes(self):
        rec, p = make_plane(fill=1)
        inner = p[2:6, 2:6][1:3, 0:2]  # absolute rows 3:5, cols 2:4
        _ = inner + 0
        assert cells(rec, "read") == rect_cells(0, 3, 5, 2, 4)

    def test_reduction_records_read(self):
        rec, p = make_plane(fill=1)
        assert p[0:3, 0:3].sum() == 9
        assert cells(rec, "read") == rect_cells(0, 0, 3, 0, 3)

    def test_derived_array_is_untracked(self):
        rec, p = make_plane(fill=4)
        derived = p[1:3, 1:3] >> 2
        before = len(rec.events)
        _ = derived + 1  # operating on the result must not record again
        assert len(rec.events) == before

    def test_paused_suppresses_recording(self):
        rec, p = make_plane(fill=1)
        with rec.paused():
            _ = p[0:2, 0:2] + 1
            p[0:1, 0:1] = 9
        assert rec.events == []

    def test_context_attributes_accesses(self):
        rec, p = make_plane(fill=1)
        with rec.context(task=7, worker=2, iteration=3):
            p[0:1, 0:1] = 5
        ev = rec.events[-1]
        assert (ev.task, ev.worker, ev.iteration) == (7, 2, 3)
        assert rec.tasks() == [7]

    def test_scalar_read_recorded_conservatively(self):
        rec, p = make_plane(fill=1)
        _ = p[2, 3]
        assert (0, 2, 3) in cells(rec, "read")


class TestTraceTileKernel:
    def test_sync_trace_matches_declaration(self):
        task = TileTask("sync_tile", 0, 1, Tile(0, 0, 0, 0, 0, 4, 4))
        traced = trace_tile_kernel(task, (10, 10))
        declared = sync_tile_footprint(task, (10, 10))
        # soundness: every observed access is inside the declared bound
        assert traced.reads <= declared.reads
        assert traced.writes <= declared.writes
        # saturated fill makes the kernel touch its whole window
        assert traced.writes == declared.writes

    def test_async_trace_within_declaration(self):
        task = TileTask("async_tile_relax", 0, 0, Tile(0, 0, 0, 0, 0, 4, 4))
        traced = trace_tile_kernel(task, (10, 10))
        declared = async_tile_relax_footprint(task, (10, 10))
        assert traced.reads <= declared.reads
        assert traced.writes <= declared.writes
        # every halo band receives grains on the all-unstable grid
        assert declared.writes - rect_cells(0, 1, 5, 1, 5) <= traced.writes


class TestTraceBatch:
    def test_planes_mutated_like_a_real_run(self):
        specs = [TileTask("sync_tile", 0, 1, t) for t in TileGrid(6, 6, 3)]
        src = np.zeros((8, 8), dtype=np.int64)
        src[1:-1, 1:-1] = 5
        expected_src, expected_dst = src.copy(), np.zeros_like(src)
        for t in specs:
            get_tile_kernel(t.kernel)([expected_src, expected_dst], t)

        planes = [src.copy(), np.zeros_like(src)]
        trace = trace_batch(specs, planes, nworkers=4)
        assert np.array_equal(planes[0], expected_src)
        assert np.array_equal(planes[1], expected_dst)
        assert trace.ntasks == len(specs)
        assert trace.recorder.tasks() == list(range(len(specs)))

    def test_footprints_indexed_like_batch(self):
        specs = [TileTask("sync_tile", 0, 1, t) for t in TileGrid(6, 6, 3)]
        planes = [np.full((8, 8), 4, dtype=np.int64), np.zeros((8, 8), dtype=np.int64)]
        trace = trace_batch(specs, planes, nworkers=2)
        fps = trace.footprints()
        assert len(fps) == len(specs)
        for spec, fp in zip(specs, fps):
            assert fp.writes == sync_tile_footprint(spec, (8, 8)).writes

    def test_workers_follow_chunk_plan(self):
        specs = [TileTask("sync_tile", 0, 1, t) for t in TileGrid(6, 6, 3)]
        planes = [np.zeros((8, 8), dtype=np.int64), np.zeros((8, 8), dtype=np.int64)]
        trace = trace_batch(specs, planes, nworkers=2, policy="cyclic", chunk=1)
        workers = {ev.task: ev.worker for ev in trace.events}
        assert workers == {0: 0, 1: 1, 2: 0, 3: 1}
