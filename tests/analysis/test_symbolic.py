"""Tests for symbolic footprint inference (the AST abstract interpreter).

Covers the three wirings of :mod:`repro.analysis.symbolic`:

* verification — every hand declaration is reproduced (or soundly
  over-approximated) by inference, and a seeded under-declaration is
  caught and fails the CLI gate;
* certification — undeclared gallery kernels get ``source="inferred"``
  footprints and sound race/halo verdicts; uninterpretable kernels are
  refused with a reason, never silently traced;
* the soundness chain itself, as a hypothesis property: one observed
  shadow execution ⊆ inferred may-sets ⊆ declared model (where one
  exists), across random grid geometries, clamped edge tiles, and fused
  step counts k > 1.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.gallery  # noqa: F401 - registers heat_tile / life_tile
import repro.sandpile.simulate  # noqa: F401 - registers the sandpile kernels
from repro.analysis.footprint import (
    Footprint,
    declare_footprint,
    declared_footprint,
    footprint_for,
    rect_cells,
    sync_tile_footprint,
)
from repro.analysis.halo import footprint_halo_radius
from repro.analysis.shadow import trace_tile_kernel
from repro.analysis.symbolic import (
    SymbolicRefusal,
    certify_kernel,
    certify_kernels,
    infer_footprint,
    inference_refusal,
    kernel_verdict_table,
    probe_tasks,
    verdicts_to_json,
    verify_declaration,
    verify_declarations,
)
from repro.common.errors import KernelError
from repro.easypap import executor
from repro.easypap.executor import TileTask, register_tile_kernel, registered_tile_kernels
from repro.easypap.tiling import Tile, TileGrid

#: every kernel the stock registry holds after the imports above
STOCK_KERNELS = (
    "async_tile_relax",
    "heat_tile",
    "life_tile",
    "sync_tile",
    "sync_tile_cnc",
    "sync_tile_k",
    "sync_tile_kc",
    "sync_tile_nc",
)


def middle_task(kernel, height=12, width=12, tile_size=4, arg=None):
    grid = TileGrid(height, width, tile_size)
    tiles = list(grid)
    return TileTask(kernel, 0, 1, tiles[len(tiles) // 2], arg=arg), (height + 2, width + 2)


class TestInferFootprint:
    def test_sync_tile_matches_hand_declaration(self):
        task, shape = middle_task("sync_tile")
        inferred = infer_footprint(task, shape)
        assert inferred == declared_footprint(task, shape)
        assert inferred.source == "inferred"

    def test_heat_tile_cross_stencil(self):
        # interior tile at rows 4:8, cols 4:8 (framed 5:9, 5:9)
        task, shape = middle_task("heat_tile")
        fp = infer_footprint(task, shape)
        t = task.tile
        writes = rect_cells(1, t.y0 + 1, t.y1 + 1, t.x0 + 1, t.x1 + 1)
        assert fp.writes == writes
        centre = rect_cells(0, t.y0 + 1, t.y1 + 1, t.x0 + 1, t.x1 + 1)
        assert centre <= fp.reads
        # cross halo, no corners
        assert (0, t.y0, t.x0 + 1) in fp.reads
        assert (0, t.y0, t.x0) not in fp.reads

    def test_life_tile_includes_diagonal_corners(self):
        # the Moore stencil is the shape the hand-written cross model
        # cannot express — inference must include the corner cells
        task, shape = middle_task("life_tile")
        fp = infer_footprint(task, shape)
        t = task.tile
        for dy, dx in ((0, 0), (0, t.w + 1), (t.h + 1, 0), (t.h + 1, t.w + 1)):
            assert (0, t.y0 + dy, t.x0 + dx) in fp.reads
        assert fp.writes == rect_cells(1, t.y0 + 1, t.y1 + 1, t.x0 + 1, t.x1 + 1)

    def test_edge_tile_is_clamped(self):
        # corner tile: the inferred halo must not reach outside the frame
        grid = TileGrid(10, 11, 4)
        task = TileTask("life_tile", 0, 1, list(grid)[0])
        fp = infer_footprint(task, (12, 13))
        assert all(y >= 0 and x >= 0 for _p, y, x in fp.touched)

    def test_fused_k_footprint_grows_with_k(self):
        t1, shape = middle_task("sync_tile_k", arg=1)
        t3, _ = middle_task("sync_tile_k", arg=3)
        f1 = infer_footprint(t1, shape)
        f3 = infer_footprint(t3, shape)
        assert f1.reads < f3.reads

    def test_refusal_carries_kernel_name(self, refused_kernel):
        task, shape = middle_task(refused_kernel)
        with pytest.raises(SymbolicRefusal, match=refused_kernel):
            infer_footprint(task, shape)


class TestVerifyDeclarations:
    @pytest.mark.parametrize(
        "kernel", ["sync_tile", "sync_tile_nc", "sync_tile_cnc", "async_tile_relax"]
    )
    def test_hand_declarations_reproduced_exactly(self, kernel):
        check = verify_declaration(kernel)
        assert check.status == "exact", check.detail
        assert check.ok

    @pytest.mark.parametrize("kernel", ["sync_tile_k", "sync_tile_kc"])
    def test_fused_declarations_over_declared_but_sound(self, kernel):
        # the hand model declares the grown rect's corner ring the kernel
        # never reads at k=1 — conservative, so sound: warn, don't fail
        check = verify_declaration(kernel)
        assert check.status == "over-declared", check.detail
        assert check.ok

    def test_undeclared_kernel_reports_none(self):
        assert verify_declaration("heat_tile").status == "none"

    def test_verify_declarations_skips_undeclared(self):
        names = {c.kernel for c in verify_declarations()}
        assert "heat_tile" not in names
        assert "sync_tile" in names
        assert all(c.ok for c in verify_declarations())

    def test_seeded_under_declaration_caught(self):
        # shrink sync_tile's model to the tile interior (drops the halo
        # reads inference finds) — the verifier must flag it as an error
        def too_small(task, shape):
            t = task.tile
            rect = rect_cells(task.src, t.y0 + 1, t.y1 + 1, t.x0 + 1, t.x1 + 1)
            return Footprint.of(rect, rect_cells(task.dst, t.y0 + 1, t.y1 + 1,
                                                 t.x0 + 1, t.x1 + 1))

        declare_footprint("sync_tile", too_small, overwrite=True)
        try:
            check = verify_declaration("sync_tile")
            assert check.status == "UNDER-DECLARED"
            assert not check.ok
            assert "missing from the declaration" in check.detail
            verdict = certify_kernel("sync_tile")
            assert not verdict.ok
        finally:
            declare_footprint("sync_tile", sync_tile_footprint, overwrite=True)
        assert verify_declaration("sync_tile").status == "exact"

    def test_seeded_under_declaration_fails_cli_gate(self, capsys):
        from repro.cli import symbolic_main

        def too_small(task, shape):
            t = task.tile
            rect = rect_cells(task.src, t.y0 + 1, t.y1 + 1, t.x0 + 1, t.x1 + 1)
            return Footprint.of(rect, rect_cells(task.dst, t.y0 + 1, t.y1 + 1,
                                                 t.x0 + 1, t.x1 + 1))

        declare_footprint("sync_tile", too_small, overwrite=True)
        try:
            assert symbolic_main([]) == 1
            captured = capsys.readouterr()
            assert "UNDER-DECLARED" in captured.out
            assert "FAIL" in captured.err
        finally:
            declare_footprint("sync_tile", sync_tile_footprint, overwrite=True)
        assert symbolic_main([]) == 0


@pytest.fixture
def refused_kernel():
    """Register a kernel the interpreter must refuse (list comprehension)."""
    name = "_test_refused_kernel"

    def kernel(planes, task):
        src = planes[task.src]
        vals = [src[y, task.tile.x0 + 1] for y in range(task.tile.y0 + 1,
                                                        task.tile.y1 + 1)]
        planes[task.dst][task.tile.y0 + 1, task.tile.x0 + 1] = sum(vals)

    register_tile_kernel(name, kernel, overwrite=True)
    try:
        yield name
    finally:
        executor._TILE_KERNELS.pop(name, None)
        executor._TILE_KERNEL_TAGS.pop(name, None)
        executor._REGISTRY_VERSION += 1  # invalidate the inference cache


class TestRefusal:
    def test_inference_refusal_names_the_construct(self, refused_kernel):
        reason = inference_refusal(refused_kernel)
        assert reason is not None
        assert "ListComp" in reason or "comprehension" in reason.lower()

    def test_inference_refusal_none_for_unregistered(self):
        assert inference_refusal("no_such_kernel") is None

    def test_inference_refusal_none_for_inferable(self):
        assert inference_refusal("heat_tile") is None

    def test_certify_refused_with_reason(self, refused_kernel):
        verdict = certify_kernel(refused_kernel)
        assert verdict.source == "refused"
        assert verdict.verdict_word() == "refused-with-reason"
        assert verdict.reason
        assert verdict.ok  # refusal is honest, not a gate failure

    def test_footprint_for_refuses_without_trace(self, refused_kernel):
        task, shape = middle_task(refused_kernel)
        with pytest.raises(KernelError, match="refused"):
            footprint_for(task, shape, allow_trace=False)

    def test_footprint_for_trace_fallback_warns(self, refused_kernel):
        # the fallback is loud: a UserWarning carrying the refusal reason
        task, shape = middle_task(refused_kernel)
        with pytest.warns(UserWarning, match="refused"):
            fp = footprint_for(task, shape)
        assert fp.source == "traced"


class TestCertification:
    def test_every_stock_kernel_certifies_ok(self):
        verdicts = certify_kernels(list(STOCK_KERNELS))
        assert all(v.ok for v in verdicts), kernel_verdict_table(verdicts)

    def test_gallery_kernels_certified_by_inference(self):
        for name in ("heat_tile", "life_tile"):
            v = certify_kernel(name)
            assert v.source == "inferred"
            assert v.race == "race-free"
            assert v.halo_radius == 1

    def test_async_relax_is_racy_by_design(self):
        v = certify_kernel("async_tile_relax")
        assert v.race == "racy"
        assert v.expected == "racy-by-design"
        assert v.verdict_word() == "racy-by-design"
        assert v.ok

    def test_fused_kernel_halo_radius_matches_declared_model(self):
        # the declared k-model at arg=None covers the grown rect + ring
        v = certify_kernel("sync_tile_k")
        assert v.halo_radius == 2

    def test_footprint_for_inferred_provenance(self):
        task, shape = middle_task("heat_tile")
        assert footprint_for(task, shape).source == "inferred"
        task, shape = middle_task("sync_tile")
        assert footprint_for(task, shape).source == "declared"

    def test_verdict_table_renders_all_kernels(self):
        table = kernel_verdict_table(certify_kernels(list(STOCK_KERNELS)))
        for name in STOCK_KERNELS:
            assert name in table
        assert "refused" not in table

    def test_json_report_round_trips(self):
        verdicts = certify_kernels(list(STOCK_KERNELS))
        checks = verify_declarations(list(STOCK_KERNELS))
        report = verdicts_to_json(verdicts, checks)
        assert json.loads(json.dumps(report)) == report
        assert report["ok"] is True
        assert {k["kernel"] for k in report["kernels"]} == set(STOCK_KERNELS)


class TestHaloRadius:
    TILE = Tile(0, 1, 1, 4, 4, 4, 4)  # framed rect rows 5:9, cols 5:9

    def test_tile_local_reads_radius_zero(self):
        fp = Footprint.of(rect_cells(0, 5, 9, 5, 9), set())
        assert footprint_halo_radius(fp, self.TILE) == 0

    def test_cross_and_diagonal_neighbours_radius_one(self):
        assert footprint_halo_radius(Footprint.of({(0, 4, 6)}, set()), self.TILE) == 1
        assert footprint_halo_radius(Footprint.of({(0, 4, 4)}, set()), self.TILE) == 1

    def test_two_cell_reach_radius_two(self):
        fp = Footprint.of({(0, 3, 6), (0, 8, 8)}, set())
        assert footprint_halo_radius(fp, self.TILE) == 2

    def test_writes_do_not_count(self):
        fp = Footprint.of(set(), {(1, 0, 0)})
        assert footprint_halo_radius(fp, self.TILE) == 0


@st.composite
def geometries(draw):
    height = draw(st.integers(6, 14))
    width = draw(st.integers(6, 14))
    tile_size = draw(st.integers(3, 5))
    grid = TileGrid(height, width, tile_size)
    tiles = list(grid)
    tile = tiles[draw(st.integers(0, len(tiles) - 1))]
    arg = draw(st.sampled_from([None, 1, 2, 3]))
    return height, width, tile, arg


class TestSoundnessChain:
    """observed ⊆ inferred ⊆ declared, per kernel, across random geometry."""

    @settings(max_examples=25, deadline=None)
    @given(geom=geometries(), kernel=st.sampled_from(STOCK_KERNELS))
    def test_observed_subset_inferred_subset_declared(self, geom, kernel):
        height, width, tile, arg = geom
        shape = (height + 2, width + 2)
        task = TileTask(kernel, 0, 1, tile, arg=arg)
        inferred = infer_footprint(task, shape)  # refusing a stock kernel fails
        observed = trace_tile_kernel(task, shape)
        assert observed.reads <= inferred.reads, (kernel, tile, arg)
        assert observed.writes <= inferred.writes, (kernel, tile, arg)
        declared = declared_footprint(task, shape)
        if declared is not None:
            assert inferred.reads <= declared.reads, (kernel, tile, arg)
            assert inferred.writes <= declared.writes, (kernel, tile, arg)
