"""Tests for the AST-based project lint."""

import textwrap

from repro.analysis.lint import lint_paths, lint_source, run_lint


def lint_snippet(source, path="snippet.py"):
    issues, _ = lint_source(path, textwrap.dedent(source))
    return issues


def rules(issues):
    return [i.rule for i in issues]


class TestMutableDefaultArg:
    def test_list_literal_flagged(self):
        issues = lint_snippet("def f(x, acc=[]):\n    return acc\n")
        assert rules(issues) == ["mutable-default-arg"]

    def test_dict_and_set_constructors_flagged(self):
        issues = lint_snippet("def f(a=dict(), *, b=set()):\n    return a, b\n")
        assert rules(issues) == ["mutable-default-arg"] * 2

    def test_none_default_clean(self):
        assert lint_snippet("def f(x=None, y=(), z='s'):\n    return x\n") == []


class TestUnseededRng:
    def test_legacy_global_numpy_rng_flagged(self):
        issues = lint_snippet(
            """
            import numpy as np
            def f():
                return np.random.rand(3)
            """
        )
        assert rules(issues) == ["unseeded-rng"]

    def test_stdlib_random_flagged(self):
        issues = lint_snippet(
            """
            import random
            def f():
                return random.random()
            """
        )
        assert rules(issues) == ["unseeded-rng"]

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        bad = lint_snippet("import numpy as np\nr = np.random.default_rng()\n")
        good = lint_snippet("import numpy as np\nr = np.random.default_rng(42)\n")
        assert rules(bad) == ["unseeded-rng"]
        assert good == []

    def test_generator_methods_not_flagged(self):
        # rng.normal() on a seeded Generator is the sanctioned idiom
        src = """
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.normal(size=3)
        """
        assert lint_snippet(src) == []


class TestAllocInTileKernel:
    def test_allocation_in_registered_kernel_flagged(self):
        issues = lint_snippet(
            """
            import numpy as np
            def hot(planes, task):
                buf = np.zeros((4, 4))
                return buf
            register_tile_kernel("hot", hot)
            """
        )
        assert rules(issues) == ["alloc-in-tile-kernel"]

    def test_transitive_callee_flagged(self):
        issues = lint_snippet(
            """
            import numpy as np
            def helper(n):
                return np.empty(n)
            def hot(planes, task):
                return helper(4)
            register_tile_kernel("hot", hot)
            """
        )
        assert rules(issues) == ["alloc-in-tile-kernel"]

    def test_allocation_outside_kernels_allowed(self):
        src = """
        import numpy as np
        def setup():
            return np.zeros((4, 4))
        def hot(planes, task):
            return planes[task.src].sum()
        register_tile_kernel("hot", hot)
        """
        assert lint_snippet(src) == []

    def test_slice_arithmetic_in_kernel_allowed(self):
        src = """
        import numpy as np
        def hot(planes, task):
            d = planes[task.src]
            d[1:-1, 1:-1] &= 3
            return bool((d > 0).any())
        register_tile_kernel("hot", hot)
        """
        assert lint_snippet(src) == []


class TestUnregisteredTileKernel:
    def test_unregistered_name_flagged(self, tmp_path):
        # the rule is cross-file: registrations anywhere in the linted set count
        use = tmp_path / "use.py"
        use.write_text('t = TileTask("ghost_kernel", 0, 1, tile)\n')
        issues = lint_paths([use])
        assert rules(issues) == ["unregistered-tile-kernel"]
        assert "ghost_kernel" in issues[0].message

    def test_registration_in_another_file_counts(self, tmp_path):
        reg = tmp_path / "reg.py"
        use = tmp_path / "use.py"
        reg.write_text('register_tile_kernel("shared", fn)\n')
        use.write_text('t = TileTask("shared", 0, 1, tile)\n')
        assert lint_paths([reg, use]) == []

    def test_suppression_marker(self, tmp_path):
        use = tmp_path / "use.py"
        use.write_text('t = TileTask("ghost_kernel", 0, 1, tile)  # analysis: allow\n')
        assert lint_paths([use]) == []


class TestFootprintUndeclaredUninferable:
    UNINFERABLE = (
        'def hot(planes, task):\n'
        '    cells = [planes[0][y, y] for y in range(task.tile.y0, task.tile.y1)]\n'
        '    return sum(cells)\n'
        'register_tile_kernel("synthetic_hot", hot)\n'
    )

    def test_uninferable_registration_flagged(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.UNINFERABLE)
        issues = [i for i in lint_paths([mod])
                  if i.rule == "footprint-undeclared-uninferable"]
        assert len(issues) == 1
        assert "synthetic_hot" in issues[0].message
        assert "ListComp" in issues[0].message

    def test_declared_footprint_silences_rule(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.UNINFERABLE + 'declare_footprint("synthetic_hot", model)\n')
        assert [i for i in lint_paths([mod])
                if i.rule == "footprint-undeclared-uninferable"] == []

    def test_declaration_in_another_file_counts(self, tmp_path):
        reg = tmp_path / "reg.py"
        dec = tmp_path / "dec.py"
        reg.write_text(self.UNINFERABLE)
        dec.write_text('declare_footprint("synthetic_hot", model)\n')
        assert [i for i in lint_paths([reg, dec])
                if i.rule == "footprint-undeclared-uninferable"] == []

    def test_suppression_marker(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(self.UNINFERABLE.replace(
            'register_tile_kernel("synthetic_hot", hot)',
            'register_tile_kernel("synthetic_hot", hot)  # analysis: allow',
        ))
        assert [i for i in lint_paths([mod])
                if i.rule == "footprint-undeclared-uninferable"] == []

    def test_inferable_kernel_clean(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            'def hot(planes, task):\n'
            '    planes[1][1:-1, 1:-1] = planes[0][1:-1, 1:-1]\n'
            'register_tile_kernel("synthetic_copy", hot)\n'
        )
        assert [i for i in lint_paths([mod])
                if i.rule == "footprint-undeclared-uninferable"] == []

    def test_live_registry_kernels_probe_clean(self):
        # gallery kernels are undeclared but inferable: the runtime probe
        # (not the syntactic fallback) must clear them
        from pathlib import Path

        import repro.gallery as gallery

        path = Path(gallery.__path__[0]) / "life.py"
        assert [i for i in lint_paths([path])
                if i.rule == "footprint-undeclared-uninferable"] == []


class TestStdlibRandomInstances:
    def test_seeded_random_instance_clean(self):
        assert lint_snippet(
            "import random\ndef f(seed):\n    return random.Random(seed)\n"
        ) == []

    def test_unseeded_random_instance_flagged(self):
        issues = lint_snippet("import random\ndef f():\n    return random.Random()\n")
        assert rules(issues) == ["unseeded-rng"]

    def test_module_level_functions_still_flagged(self):
        issues = lint_snippet("import random\ndef f():\n    return random.choice([1])\n")
        assert rules(issues) == ["unseeded-rng"]


class TestBlockingCallInAsync:
    def test_time_sleep_in_coroutine_flagged(self):
        issues = lint_snippet(
            """
            import time
            async def poll():
                time.sleep(0.1)
            """
        )
        assert rules(issues) == ["blocking-call-in-async"]
        assert "asyncio.sleep" in issues[0].message

    def test_job_step_in_coroutine_flagged(self):
        issues = lint_snippet(
            """
            async def drive(job):
                while job.step():
                    pass
            """
        )
        assert rules(issues) == ["blocking-call-in-async"]
        assert "run_in_executor" in issues[0].message

    def test_sync_function_not_flagged(self):
        issues = lint_snippet(
            """
            import time
            def poll():
                time.sleep(0.1)
            """
        )
        assert issues == []

    def test_nested_sync_def_is_exempt(self):
        # the offload pattern itself: a sync closure handed to an executor
        issues = lint_snippet(
            """
            async def drive(job, loop, pool):
                def work():
                    while job.step():
                        pass
                await loop.run_in_executor(pool, work)
            """
        )
        assert issues == []

    def test_asyncio_sleep_clean(self):
        issues = lint_snippet(
            """
            import asyncio
            async def poll():
                await asyncio.sleep(0.1)
            """
        )
        assert issues == []

    def test_suppression_comment(self):
        issues = lint_snippet(
            """
            import time
            async def probe():
                time.sleep(0.1)  # analysis: allow
            """
        )
        assert issues == []

    def test_stepper_with_args_not_flagged(self):
        # EasyPAP steppers take an iteration count: step(n) is a compute
        # call, not the Job protocol method this rule targets
        issues = lint_snippet(
            """
            async def drive(stepper):
                stepper.step(5)
            """
        )
        assert issues == []


class TestRepoIsClean:
    def test_src_repro_passes_its_own_lint(self):
        issues = run_lint()
        assert issues == [], "\n".join(str(i) for i in issues)

    def test_issue_str_is_clickable(self):
        issues = lint_snippet("def f(a=[]):\n    return a\n", path="pkg/mod.py")
        assert str(issues[0]).startswith("pkg/mod.py:1:")
