"""Tests for halo-depth sufficiency and sendrecv pattern analysis."""

import pytest

from repro.analysis import halo
from repro.analysis.halo import (
    Op,
    analyze_exchange_pattern,
    check_halo_depth,
    halo_ops,
    match_pattern,
)
from repro.common.errors import ConfigurationError
from repro.simmpi import ghost


class TestTagMirror:
    def test_tags_match_the_exchanger(self):
        # the analyzer models ghost.py symbolically; the constants must agree
        assert halo.TAG_UP == ghost._TAG_UP
        assert halo.TAG_DOWN == ghost._TAG_DOWN


class TestCheckHaloDepth:
    def test_depth_equal_to_requirement_ok(self):
        v = check_halo_depth(3, stencil_radius=1, iterations_between_exchanges=3)
        assert v.ok and v.required_depth == 3

    def test_depth_below_requirement_rejected(self):
        v = check_halo_depth(2, stencil_radius=1, iterations_between_exchanges=3)
        assert not v.ok
        assert v.required_depth == 3
        assert "stale" in str(v)

    def test_radius_scales_requirement(self):
        assert not check_halo_depth(3, stencil_radius=2, iterations_between_exchanges=2).ok
        assert check_halo_depth(4, stencil_radius=2, iterations_between_exchanges=2).ok

    def test_default_iterations_is_depth(self):
        # the runner's convention: depth-k halo runs k iterations per superstep
        v = check_halo_depth(4)
        assert v.ok and v.iterations_between_exchanges == 4

    def test_owned_rows_bound(self):
        assert check_halo_depth(2, owned_rows=2).ok
        v = check_halo_depth(3, owned_rows=2)
        assert not v.ok
        assert "owns 2 rows" in " ".join(v.reasons)

    def test_nonsensical_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            check_halo_depth(0)
        with pytest.raises(ConfigurationError):
            check_halo_depth(1, stencil_radius=0)
        with pytest.raises(ConfigurationError):
            check_halo_depth(1, iterations_between_exchanges=0)


class TestHaloOps:
    def test_middle_rank_has_two_sendrecv_pairs(self):
        ops = halo_ops(1, 3)
        assert ops == [
            Op("send", 0, halo.TAG_UP),
            Op("recv", 2, halo.TAG_UP),
            Op("send", 2, halo.TAG_DOWN),
            Op("recv", 0, halo.TAG_DOWN),
        ]

    def test_edge_ranks_have_single_halves(self):
        assert halo_ops(0, 3) == [Op("recv", 1, halo.TAG_UP), Op("send", 1, halo.TAG_DOWN)]
        assert halo_ops(2, 3) == [Op("send", 1, halo.TAG_UP), Op("recv", 1, halo.TAG_DOWN)]

    def test_single_rank_is_silent(self):
        assert halo_ops(0, 1) == []


class TestPatternMatching:
    @pytest.mark.parametrize("nranks", range(1, 9))
    def test_real_pattern_matches_at_every_world_size(self, nranks):
        report = analyze_exchange_pattern(nranks)
        assert report.ok, report.describe()
        assert "matched" in report.describe()

    def test_repeated_supersteps_stay_clean(self):
        assert analyze_exchange_pattern(5, rounds=4).ok

    def test_wrong_tag_reported_as_mismatch(self):
        def corrupt(rank, nranks):
            ops = halo_ops(rank, nranks)
            if rank == 1:  # bottom rank of a 2-rank world sends a bogus tag
                ops = [Op("send", 0, 999) if o.kind == "send" else o for o in ops]
            return ops

        report = analyze_exchange_pattern(2, ops_fn=corrupt)
        assert not report.ok
        assert any(op.tag == 999 for _, op in report.unconsumed)
        # rank 0's recv of the real tag now starves
        assert any(rank == 0 for rank, _ in report.blocked)
        assert "deadlock" in report.describe() or "never received" in report.describe()

    def test_recv_before_send_cycle_deadlocks(self):
        # every rank blocks receiving before anyone sends: classic cycle
        def corrupt(rank, nranks):
            ops = halo_ops(rank, nranks)
            recvs = [o for o in ops if o.kind == "recv"]
            sends = [o for o in ops if o.kind == "send"]
            return recvs + sends

        report = analyze_exchange_pattern(3, ops_fn=corrupt)
        assert not report.ok
        assert len(report.blocked) == 3  # nobody makes progress

    def test_wrong_partner_blocks(self):
        def corrupt(rank, nranks):
            if rank == 0:
                return [Op("recv", 5, halo.TAG_UP)]  # partner outside the world
            return halo_ops(rank, nranks)

        report = analyze_exchange_pattern(2, ops_fn=corrupt)
        assert not report.ok
        assert any(rank == 0 for rank, _ in report.blocked)

    def test_eager_sends_tolerate_any_send_order(self):
        # sends complete immediately, so a rank may send everything first
        def reorder(rank, nranks):
            ops = halo_ops(rank, nranks)
            sends = [o for o in ops if o.kind == "send"]
            recvs = [o for o in ops if o.kind == "recv"]
            return sends + recvs

        assert analyze_exchange_pattern(4, ops_fn=reorder).ok

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_exchange_pattern(0)

    def test_match_pattern_counts_duplicate_messages(self):
        programs = [
            [Op("send", 1, 7), Op("send", 1, 7)],
            [Op("recv", 0, 7)],
        ]
        report = match_pattern(programs)
        assert not report.ok
        assert report.unconsumed == [(0, Op("send", 1, 7))]
