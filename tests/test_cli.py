"""Tests for the command-line entry points."""

import pytest

from repro.cli import carbon_main, sandpile_main, stripes_main


class TestSandpileCli:
    def test_default_run(self, capsys):
        rc = sandpile_main(["--size", "32", "--grains", "500", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stable after" in out

    def test_lazy_reports_savings(self, capsys):
        rc = sandpile_main(["--size", "64", "--config", "sparse", "--variant", "lazy", "--quiet"])
        assert rc == 0
        assert "lazy savings" in capsys.readouterr().out

    def test_async_kernel(self, capsys):
        rc = sandpile_main(["--size", "32", "--kernel", "asandpile", "--variant", "tiled",
                            "--grains", "500", "--quiet"])
        assert rc == 0

    def test_unknown_variant_exits_2(self, capsys):
        rc = sandpile_main(["--variant", "quantum"])
        assert rc == 2
        assert "unknown variant" in capsys.readouterr().err

    def test_ppm_output(self, tmp_path, capsys):
        ppm = tmp_path / "out.ppm"
        rc = sandpile_main(["--size", "16", "--grains", "100", "--quiet", "--ppm", str(ppm)])
        assert rc == 0
        assert ppm.read_bytes().startswith(b"P6\n")

    def test_ascii_render_shown_by_default(self, capsys):
        sandpile_main(["--size", "16", "--grains", "64"])
        out = capsys.readouterr().out
        assert "\n" in out.strip()


class TestStripesCli:
    def test_default_run(self, capsys):
        rc = stripes_main(["--first-year", "2000", "--last-year", "2010"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reference mean" in out
        assert "all 11 years complete" in out

    def test_missing_winter_flagged(self, capsys):
        rc = stripes_main(["--first-year", "2010", "--last-year", "2020",
                           "--missing-winter", "2020"])
        assert rc == 0
        assert "2020" in capsys.readouterr().out

    def test_cluster_flag(self, capsys):
        rc = stripes_main(["--first-year", "2000", "--last-year", "2003", "--cluster"])
        assert rc == 0

    def test_ppm_output(self, tmp_path, capsys):
        ppm = tmp_path / "stripes.ppm"
        rc = stripes_main(["--first-year", "2000", "--last-year", "2005", "--ppm", str(ppm)])
        assert rc == 0
        assert ppm.exists()


@pytest.mark.slow
class TestCarbonCli:
    def test_tab1(self, capsys):
        rc = carbon_main(["--tab", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q1:" in out
        assert "heuristic" in out

    def test_tab2(self, capsys):
        rc = carbon_main(["--tab", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all-local" in out and "all-cloud" in out


@pytest.mark.slow
class TestCarbonAnswerKey:
    def test_answer_key_covers_both_tabs(self, capsys):
        rc = carbon_main(["--answer-key"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ANSWER KEY" in out
        assert "TAB 1" in out and "TAB 2" in out
        assert "Reference optimum" in out
        assert "Q3-5 reference optimum" in out
