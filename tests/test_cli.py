"""Tests for the command-line entry points."""

import pytest

from repro.cli import carbon_main, sandpile_main, stripes_main


class TestSandpileCli:
    def test_default_run(self, capsys):
        rc = sandpile_main(["--size", "32", "--grains", "500", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stable after" in out

    def test_lazy_reports_savings(self, capsys):
        rc = sandpile_main(["--size", "64", "--config", "sparse", "--variant", "lazy", "--quiet"])
        assert rc == 0
        assert "lazy savings" in capsys.readouterr().out

    def test_async_kernel(self, capsys):
        rc = sandpile_main(["--size", "32", "--kernel", "asandpile", "--variant", "tiled",
                            "--grains", "500", "--quiet"])
        assert rc == 0

    def test_unknown_variant_exits_2(self, capsys):
        rc = sandpile_main(["--variant", "quantum"])
        assert rc == 2
        assert "unknown variant" in capsys.readouterr().err

    def test_ppm_output(self, tmp_path, capsys):
        ppm = tmp_path / "out.ppm"
        rc = sandpile_main(["--size", "16", "--grains", "100", "--quiet", "--ppm", str(ppm)])
        assert rc == 0
        assert ppm.read_bytes().startswith(b"P6\n")

    def test_ascii_render_shown_by_default(self, capsys):
        sandpile_main(["--size", "16", "--grains", "64"])
        out = capsys.readouterr().out
        assert "\n" in out.strip()


class TestStripesCli:
    def test_default_run(self, capsys):
        rc = stripes_main(["--first-year", "2000", "--last-year", "2010"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reference mean" in out
        assert "all 11 years complete" in out

    def test_missing_winter_flagged(self, capsys):
        rc = stripes_main(["--first-year", "2010", "--last-year", "2020",
                           "--missing-winter", "2020"])
        assert rc == 0
        assert "2020" in capsys.readouterr().out

    def test_cluster_flag(self, capsys):
        rc = stripes_main(["--first-year", "2000", "--last-year", "2003", "--cluster"])
        assert rc == 0

    def test_ppm_output(self, tmp_path, capsys):
        ppm = tmp_path / "stripes.ppm"
        rc = stripes_main(["--first-year", "2000", "--last-year", "2005", "--ppm", str(ppm)])
        assert rc == 0
        assert ppm.exists()


@pytest.mark.slow
class TestCarbonCli:
    def test_tab1(self, capsys):
        rc = carbon_main(["--tab", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q1:" in out
        assert "heuristic" in out

    def test_tab2(self, capsys):
        rc = carbon_main(["--tab", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all-local" in out and "all-cloud" in out


@pytest.mark.slow
class TestCarbonAnswerKey:
    def test_answer_key_covers_both_tabs(self, capsys):
        rc = carbon_main(["--answer-key"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ANSWER KEY" in out
        assert "TAB 1" in out and "TAB 2" in out
        assert "Reference optimum" in out
        assert "Q3-5 reference optimum" in out


class TestChaosCli:
    def test_list_prints_matrix_without_running(self, capsys):
        from repro.cli import chaos_main

        rc = chaos_main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "easypap/kill-resume" in out
        assert "14 scenario(s)" in out

    def test_list_respects_filters(self, capsys):
        from repro.cli import chaos_main

        rc = chaos_main(["list", "--substrate", "simmpi", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simmpi/inject-raise@seed=7" in out
        assert "easypap" not in out

    def test_empty_filter_errors_out(self):
        from repro.cli import chaos_main
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            chaos_main(["run", "--substrate", "wrench", "--kind", "deadline"])

    def test_run_lite_campaign_with_exports(self, tmp_path, capsys):
        import json

        from repro.cli import chaos_main

        mj = tmp_path / "metrics.json"
        mp = tmp_path / "metrics.prom"
        tr = tmp_path / "trace.jsonl"
        rc = chaos_main(
            [
                "run",
                "--substrate", "simmpi",
                "--kind", "kill-resume",
                "--metrics-json", str(mj),
                "--metrics-prom", str(mp),
                "--trace-out", str(tr),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 passed, 0 violated, 0 skipped, 0 errored -> OK" in out
        payload = json.loads(mj.read_text())
        assert any("chaos_scenarios_total" in str(k) for k in payload)
        assert "chaos_scenarios_total" in mp.read_text()
        assert tr.exists()


class TestSymbolicCli:
    def test_table_output(self, capsys):
        from repro.cli import symbolic_main

        assert symbolic_main([]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out and "verdict" in out  # table header
        assert "heat_tile" in out and "inferred" in out
        assert "racy-by-design" in out
        assert "declaration sync_tile: exact [ok]" in out
        assert "over-declared" in out  # the fused k-family warns

    def test_json_output_is_parseable(self, capsys):
        import json

        from repro.cli import symbolic_main

        assert symbolic_main(["--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        kernels = {k["kernel"]: k for k in report["kernels"]}
        assert kernels["life_tile"]["source"] == "inferred"
        assert kernels["async_tile_relax"]["verdict"] == "racy-by-design"
        assert all(k["verdict"] != "refused-with-reason" for k in kernels.values())

    def test_out_file_always_json(self, tmp_path, capsys):
        import json

        from repro.cli import symbolic_main

        out = tmp_path / "verdicts.json"
        assert symbolic_main(["--out", str(out)]) == 0  # table to stdout
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert {c["status"] for c in report["declarations"]} == {"exact", "over-declared"}

    def test_check_main_dispatches_subcommand(self, capsys):
        from repro.cli import check_main

        assert check_main(["symbolic", "--format", "json"]) == 0
        assert '"kernels"' in capsys.readouterr().out
