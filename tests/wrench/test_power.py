"""Tests for the DVFS power model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.power import PowerModel, PState, default_pstates


class TestPState:
    def test_valid(self):
        PState(0, 1e9, busy_power=100.0, idle_power=50.0)

    def test_zero_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            PState(0, 0.0, 100.0, 50.0)

    def test_busy_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            PState(0, 1e9, 40.0, 50.0)


class TestPowerModel:
    def test_seven_pstates_default(self):
        states = default_pstates()
        assert len(states) == 7
        assert [s.index for s in states] == list(range(7))

    def test_speed_increases_with_index(self):
        states = default_pstates()
        speeds = [s.speed for s in states]
        assert speeds == sorted(speeds)
        assert speeds[-1] == pytest.approx(PowerModel().base_speed)

    def test_lowest_state_at_min_frequency(self):
        pm = PowerModel(min_frequency=0.4)
        assert pm.pstates()[0].speed == pytest.approx(0.4 * pm.base_speed)

    def test_busy_power_cubic(self):
        pm = PowerModel(idle_watts=0.0, dynamic_watts=100.0, min_frequency=0.5, n_pstates=2)
        lo, hi = pm.pstates()
        assert hi.busy_power == pytest.approx(100.0)
        assert lo.busy_power == pytest.approx(100.0 * 0.5**3)

    def test_idle_power_constant(self):
        states = default_pstates()
        assert len({s.idle_power for s in states}) == 1

    def test_energy_efficiency_tradeoff(self):
        # flops per joule while busy must IMPROVE at lower p-states —
        # the physical fact behind the downclocking option
        states = default_pstates()
        eff = [s.speed / s.busy_power for s in states]
        assert eff[0] > eff[-1]

    def test_single_pstate(self):
        states = PowerModel(n_pstates=1).pstates()
        assert len(states) == 1
        assert states[0].speed == pytest.approx(PowerModel().base_speed)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel(n_pstates=0)
        with pytest.raises(ConfigurationError):
            PowerModel(min_frequency=0.0)
        with pytest.raises(ConfigurationError):
            PowerModel(min_frequency=1.5)
