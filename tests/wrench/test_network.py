"""Tests for the FCFS shared link."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.network import Link


class TestTransfer:
    def test_duration(self):
        link = Link(bandwidth=1e6, latency=0.5)
        end = link.transfer("f", 1e6, now=0.0, src="local", dst="cloud")
        assert end == pytest.approx(0.5 + 1.0)

    def test_fcfs_serialisation(self):
        link = Link(bandwidth=1e6, latency=0.0)
        e1 = link.transfer("a", 1e6, now=0.0, src="l", dst="c")
        e2 = link.transfer("b", 1e6, now=0.0, src="l", dst="c")
        assert e1 == pytest.approx(1.0)
        assert e2 == pytest.approx(2.0)  # queued behind the first

    def test_idle_gap_respected(self):
        link = Link(bandwidth=1e6, latency=0.0)
        link.transfer("a", 1e6, now=0.0, src="l", dst="c")
        end = link.transfer("b", 1e6, now=10.0, src="l", dst="c")
        assert end == pytest.approx(11.0)  # starts at now, not busy_until

    def test_records(self):
        link = Link(bandwidth=1e6)
        link.transfer("f1", 500, now=0.0, src="l", dst="c")
        link.transfer("f2", 700, now=1.0, src="c", dst="l")
        assert link.total_bytes == pytest.approx(1200)
        assert len(link.records) == 2
        assert link.records[1].src == "c"

    def test_busy_time(self):
        link = Link(bandwidth=1e3, latency=0.0)
        link.transfer("f", 1e3, now=0.0, src="a", dst="b")
        assert link.busy_time == pytest.approx(1.0)

    def test_reset(self):
        link = Link()
        link.transfer("f", 100, now=0.0, src="a", dst="b")
        link.reset()
        assert link.busy_until == 0.0
        assert link.records == []

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            Link().transfer("f", -1, now=0.0, src="a", dst="b")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Link(bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            Link(latency=-1.0)
