"""Tests for workflow JSON persistence."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.platform import make_platform
from repro.wrench.simulation import simulate
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        wf = montage_workflow(n_projections=6, n_difffits=10)
        clone = Workflow.from_dict(wf.to_dict())
        assert clone.name == wf.name
        assert len(clone) == len(wf)
        for t in wf.tasks:
            c = clone.task(t.name)
            assert c.flops == t.flops
            assert c.category == t.category
            assert [(f.name, f.size) for f in c.inputs] == [(f.name, f.size) for f in t.inputs]
        assert clone.levels() == wf.levels()

    def test_json_file_roundtrip(self, tmp_path):
        wf = montage_workflow(n_projections=4, n_difffits=6)
        path = tmp_path / "wf.json"
        wf.save_json(path)
        clone = Workflow.load_json(path)
        assert len(clone) == len(wf)
        assert clone.total_bytes() == pytest.approx(wf.total_bytes())

    def test_loaded_workflow_simulates_identically(self, tmp_path):
        wf = montage_workflow(n_projections=6, n_difffits=10, gflop_scale=5)
        path = tmp_path / "wf.json"
        wf.save_json(path)
        clone = Workflow.load_json(path)
        r1 = simulate(wf, make_platform(cluster_nodes=3, cluster_pstate=6))
        r2 = simulate(clone, make_platform(cluster_nodes=3, cluster_pstate=6))
        assert r1.makespan == pytest.approx(r2.makespan)
        assert r1.total_energy == pytest.approx(r2.total_energy)


class TestValidation:
    def test_malformed_document(self):
        with pytest.raises(ConfigurationError):
            Workflow.from_dict({"name": "x"})  # no tasks key

    def test_malformed_task(self):
        with pytest.raises(ConfigurationError):
            Workflow.from_dict({"name": "x", "tasks": [{"name": "t"}]})

    def test_cycle_rejected_on_load(self):
        doc = {
            "name": "cyclic",
            "tasks": [
                {"name": "A", "flops": 1.0, "inputs": [{"name": "b", "size": 1}],
                 "outputs": [{"name": "a", "size": 1}]},
                {"name": "B", "flops": 1.0, "inputs": [{"name": "a", "size": 1}],
                 "outputs": [{"name": "b", "size": 1}]},
            ],
        }
        with pytest.raises(ConfigurationError):
            Workflow.from_dict(doc)

    def test_empty_workflow_roundtrip(self):
        clone = Workflow.from_dict(Workflow("empty").to_dict())
        assert len(clone) == 0
