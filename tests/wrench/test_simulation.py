"""Tests for the discrete-event execution engine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import grams_co2e
from repro.wrench.platform import CLOUD, LOCAL, make_platform
from repro.wrench.power import PowerModel
from repro.wrench.scheduler import place_all, place_levels
from repro.wrench.simulation import simulate
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow


def single_task_workflow(flops=1e9, in_bytes=0.0):
    wf = Workflow("one")
    inputs = (WorkflowFile("in", in_bytes),) if in_bytes else ()
    wf.add_task(Task("T", flops, inputs=inputs, outputs=(WorkflowFile("out", 10),)))
    return wf


def chain_workflow(n=3, flops=1e9):
    wf = Workflow("chain")
    prev = None
    for i in range(n):
        inputs = (prev,) if prev is not None else ()
        out = WorkflowFile(f"f{i}", 100)
        wf.add_task(Task(f"T{i}", flops, inputs=inputs, outputs=(out,)))
        prev = out
    return wf


def fan_workflow(n=8, flops=1e9):
    wf = Workflow("fan")
    for i in range(n):
        wf.add_task(Task(f"T{i}", flops, outputs=(WorkflowFile(f"f{i}", 10),)))
    return wf


class TestClosedForms:
    """Single-task runs have exact closed-form time/energy."""

    def test_compute_time(self):
        pm = PowerModel(base_speed=1e9)
        plat = make_platform(cluster_nodes=1, cluster_pstate=6, power_model=pm)
        res = simulate(single_task_workflow(flops=2e9), plat)
        assert res.makespan == pytest.approx(2.0)

    def test_energy_busy_only_node(self):
        pm = PowerModel(base_speed=1e9, idle_watts=50.0, dynamic_watts=100.0)
        plat = make_platform(cluster_nodes=1, cluster_pstate=6, power_model=pm)
        res = simulate(single_task_workflow(flops=1e9), plat)
        # 1 second at busy power (idle 50 + dynamic 100 at f=1)
        assert res.energy_joules[LOCAL] == pytest.approx(150.0)

    def test_co2_from_energy(self):
        pm = PowerModel(base_speed=1e9, idle_watts=50.0, dynamic_watts=100.0)
        plat = make_platform(cluster_nodes=1, cluster_pstate=6, power_model=pm)
        res = simulate(single_task_workflow(flops=1e9), plat)
        assert res.co2_grams[LOCAL] == pytest.approx(grams_co2e(150.0, 291.0))

    def test_idle_node_charged_idle_power(self):
        pm = PowerModel(base_speed=1e9, idle_watts=50.0, dynamic_watts=100.0)
        plat = make_platform(cluster_nodes=2, cluster_pstate=6, power_model=pm)
        res = simulate(single_task_workflow(flops=1e9), plat)
        # busy node 150 J + idle node 50 J
        assert res.energy_joules[LOCAL] == pytest.approx(200.0)

    def test_pstate_slows_and_saves(self):
        plat_fast = make_platform(cluster_nodes=1, cluster_pstate=6)
        plat_slow = make_platform(cluster_nodes=1, cluster_pstate=0)
        wf = single_task_workflow(flops=100e9)
        fast = simulate(wf, plat_fast)
        slow = simulate(wf, plat_slow)
        assert slow.makespan > fast.makespan
        assert slow.total_energy < fast.total_energy  # cubic power wins


class TestSchedulingSemantics:
    def test_chain_serialises(self):
        plat = make_platform(cluster_nodes=4, cluster_pstate=6)
        pm_speed = plat.site(LOCAL).resources[0].speed
        res = simulate(chain_workflow(3, flops=pm_speed), plat)
        assert res.makespan == pytest.approx(3.0, rel=1e-6)

    def test_fan_parallelises(self):
        plat = make_platform(cluster_nodes=8, cluster_pstate=6)
        speed = plat.site(LOCAL).resources[0].speed
        res = simulate(fan_workflow(8, flops=speed), plat)
        assert res.makespan == pytest.approx(1.0, rel=1e-6)

    def test_fan_on_fewer_nodes_waves(self):
        plat = make_platform(cluster_nodes=2, cluster_pstate=6)
        speed = plat.site(LOCAL).resources[0].speed
        res = simulate(fan_workflow(8, flops=speed), plat)
        assert res.makespan == pytest.approx(4.0, rel=1e-6)

    def test_deterministic(self):
        wf = montage_workflow(n_projections=8, n_difffits=12)
        r1 = simulate(wf, make_platform(cluster_nodes=4, cluster_pstate=6))
        r2 = simulate(wf, make_platform(cluster_nodes=4, cluster_pstate=6))
        assert r1.makespan == r2.makespan
        assert [e.task for e in r1.executions] == [e.task for e in r2.executions]

    def test_all_tasks_executed_once(self):
        wf = montage_workflow(n_projections=6, n_difffits=10)
        res = simulate(wf, make_platform(cluster_nodes=3, cluster_pstate=6))
        names = [e.task for e in res.executions]
        assert len(names) == len(wf)
        assert len(set(names)) == len(wf)

    def test_dependencies_respected(self):
        wf = montage_workflow(n_projections=6, n_difffits=10)
        res = simulate(wf, make_platform(cluster_nodes=3, cluster_pstate=6))
        ends = {e.task: e.end for e in res.executions}
        starts = {e.task: e.start for e in res.executions}
        for t in wf.tasks:
            for parent in wf.parents(t.name):
                assert starts[t.name] >= ends[parent] - 1e-9


class TestDataMovement:
    def _two_site_platform(self, bw=1e6):
        return make_platform(
            cluster_nodes=1, cluster_pstate=6, cloud_vms=1, link_bandwidth=bw, link_latency=0.0
        )

    def test_cloud_task_fetches_input(self):
        wf = single_task_workflow(flops=0.0, in_bytes=2e6)
        plat = self._two_site_platform(bw=1e6)
        res = simulate(wf, plat, place_all(wf, CLOUD))
        assert res.makespan == pytest.approx(2.0)  # pure transfer time
        assert res.link_bytes == pytest.approx(2e6)

    def test_local_task_no_transfer(self):
        wf = single_task_workflow(flops=0.0, in_bytes=2e6)
        plat = self._two_site_platform()
        res = simulate(wf, plat, place_all(wf, LOCAL))
        assert res.link_bytes == 0.0

    def test_data_locality_on_cloud(self):
        # parent and child both on cloud: the intermediate file does not
        # cross the link again
        wf = chain_workflow(2, flops=0.0)
        plat = self._two_site_platform()
        res = simulate(wf, plat, place_all(wf, CLOUD))
        assert res.link_bytes == 0.0  # chain has no external input

    def test_file_cached_after_first_fetch(self):
        # two cloud tasks consuming the same local input: one transfer
        wf = Workflow()
        shared = WorkflowFile("shared", 1e6)
        wf.add_task(Task("A", 0.0, inputs=(shared,), outputs=(WorkflowFile("oa", 1),)))
        wf.add_task(Task("B", 0.0, inputs=(shared,), outputs=(WorkflowFile("ob", 1),)))
        plat = self._two_site_platform()
        res = simulate(wf, plat, place_all(wf, CLOUD))
        assert res.link_bytes == pytest.approx(1e6)

    def test_output_returns_when_child_is_local(self):
        wf = chain_workflow(2, flops=0.0)
        plat = self._two_site_platform()
        placement = {"T0": CLOUD, "T1": LOCAL}
        res = simulate(wf, plat, placement)
        assert res.link_bytes == pytest.approx(100)  # T0's output comes back


class TestValidation:
    def test_unknown_site_rejected(self):
        wf = single_task_workflow()
        plat = make_platform(cluster_nodes=1, cluster_pstate=0)
        with pytest.raises(ConfigurationError):
            simulate(wf, plat, {"T": "mars"})

    def test_empty_site_rejected(self):
        wf = single_task_workflow()
        plat = make_platform(cluster_nodes=1, cluster_pstate=0, cloud_vms=0)
        with pytest.raises(ConfigurationError):
            simulate(wf, plat, place_all(wf, CLOUD))

    def test_empty_workflow(self):
        plat = make_platform(cluster_nodes=1, cluster_pstate=0)
        res = simulate(Workflow(), plat)
        assert res.makespan == 0.0


class TestResultViews:
    def test_site_task_counts(self):
        wf = montage_workflow(n_projections=6, n_difffits=10)
        plat = make_platform(cluster_nodes=2, cluster_pstate=6, cloud_vms=2)
        res = simulate(wf, plat, place_levels(wf, {0}))
        counts = res.site_task_counts()
        assert counts[CLOUD] == 6
        assert counts[LOCAL] == len(wf) - 6

    def test_mean_power(self):
        wf = single_task_workflow(flops=1e9)
        pm = PowerModel(base_speed=1e9, idle_watts=50.0, dynamic_watts=100.0)
        plat = make_platform(cluster_nodes=1, cluster_pstate=6, power_model=pm)
        res = simulate(wf, plat)
        assert res.mean_power_watts == pytest.approx(150.0)

    def test_transfer_and_compute_time_split(self):
        wf = single_task_workflow(flops=1e9, in_bytes=1e6)
        plat = make_platform(
            cluster_nodes=0, cluster_pstate=0, cloud_vms=1, link_bandwidth=1e6, link_latency=0.0
        )
        res = simulate(wf, plat, place_all(wf, CLOUD))
        ex = res.executions[0]
        assert ex.transfer_time == pytest.approx(1.0)
        assert ex.compute_time > 0.0
