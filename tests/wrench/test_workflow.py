"""Tests for workflow DAGs and the Montage generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow


def simple_chain():
    wf = Workflow("chain")
    f1 = WorkflowFile("a.out", 100)
    f2 = WorkflowFile("b.out", 100)
    wf.add_task(Task("A", 1e9, inputs=(WorkflowFile("in", 10),), outputs=(f1,)))
    wf.add_task(Task("B", 1e9, inputs=(f1,), outputs=(f2,)))
    wf.add_task(Task("C", 1e9, inputs=(f2,)))
    return wf


class TestWorkflowStructure:
    def test_dependencies_from_files(self):
        wf = simple_chain()
        assert wf.parents("B") == ["A"]
        assert wf.children("B") == ["C"]
        assert wf.parents("A") == []

    def test_levels(self):
        wf = simple_chain()
        assert wf.levels() == {"A": 0, "B": 1, "C": 2}
        assert wf.depth == 3

    def test_level_tasks(self):
        wf = simple_chain()
        assert [t.name for t in wf.level_tasks(1)] == ["B"]

    def test_input_files_are_unproduced(self):
        wf = simple_chain()
        assert [f.name for f in wf.input_files()] == ["in"]

    def test_duplicate_task_rejected(self):
        wf = simple_chain()
        with pytest.raises(ConfigurationError):
            wf.add_task(Task("A", 1.0))

    def test_duplicate_producer_rejected(self):
        wf = Workflow()
        f = WorkflowFile("x", 1)
        wf.add_task(Task("P1", 1.0, outputs=(f,)))
        with pytest.raises(ConfigurationError):
            wf.add_task(Task("P2", 1.0, outputs=(f,)))

    def test_cycle_detected(self):
        wf = Workflow()
        fa, fb = WorkflowFile("a", 1), WorkflowFile("b", 1)
        wf.add_task(Task("A", 1.0, inputs=(fb,), outputs=(fa,)))
        wf.add_task(Task("B", 1.0, inputs=(fa,), outputs=(fb,)))
        with pytest.raises(ConfigurationError, match="cycle"):
            wf.graph()

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            Task("X", -1.0)

    def test_negative_file_size_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkflowFile("x", -5)

    def test_critical_path(self):
        wf = simple_chain()
        assert wf.critical_path_flops() == pytest.approx(3e9)

    def test_total_bytes_unique_files(self):
        wf = simple_chain()
        assert wf.total_bytes() == pytest.approx(210)


class TestMontageGenerator:
    @pytest.fixture(scope="class")
    def montage(self):
        return montage_workflow()

    def test_paper_task_count(self, montage):
        assert len(montage) == 738

    def test_paper_data_footprint(self, montage):
        assert montage.total_bytes() == pytest.approx(7.5e9, rel=1e-6)

    def test_nine_levels(self, montage):
        assert montage.depth == 9

    def test_level_widths(self, montage):
        widths = [len(montage.level_tasks(lv)) for lv in range(montage.depth)]
        assert widths == [182, 368, 1, 1, 182, 1, 1, 1, 1]

    def test_level_categories(self, montage):
        cats = [montage.level_tasks(lv)[0].category for lv in range(montage.depth)]
        assert cats == [
            "mProject", "mDiffFit", "mConcatFit", "mBgModel",
            "mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG",
        ]

    def test_deterministic(self):
        a = montage_workflow(seed=3)
        b = montage_workflow(seed=3)
        assert {t.name: t.flops for t in a.tasks} == {t.name: t.flops for t in b.tasks}

    def test_gflop_scale(self):
        small = montage_workflow(gflop_scale=1.0)
        big = montage_workflow(gflop_scale=10.0)
        assert big.total_flops() == pytest.approx(10 * small.total_flops())

    def test_difffit_consumes_two_projections(self, montage):
        t = montage.level_tasks(1)[0]
        assert len(t.inputs) == 2
        assert all(f.name.startswith("proj_") for f in t.inputs)

    def test_custom_size(self):
        wf = montage_workflow(n_projections=10, n_difffits=15)
        assert len(wf) == 10 + 15 + 10 + 6

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            montage_workflow(n_projections=1)
