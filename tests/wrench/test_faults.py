"""Tests for task-failure injection in the workflow simulator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.platform import make_platform
from repro.wrench.simulation import FaultModel, simulate
from repro.wrench.workflow import montage_workflow


@pytest.fixture(scope="module")
def wf():
    return montage_workflow(n_projections=8, n_difffits=12, gflop_scale=5)


def plat():
    return make_platform(cluster_nodes=4, cluster_pstate=6)


class TestFaultModelValidation:
    @pytest.mark.parametrize("kw", [
        {"failure_prob": 1.0},
        {"failure_prob": -0.1},
        {"max_attempts": 0},
        {"detect_factor": 0.0},
        {"detect_factor": 1.5},
    ])
    def test_invalid(self, kw):
        with pytest.raises(ConfigurationError):
            FaultModel(**kw)

    def test_final_attempt_never_fails(self):
        fm = FaultModel(failure_prob=0.9, max_attempts=3, seed=1)
        assert fm.attempt_fails("t", 3) is False

    def test_draws_deterministic(self):
        fm = FaultModel(failure_prob=0.5, seed=2)
        assert fm.attempt_fails("x", 1) == fm.attempt_fails("x", 1)


class TestFaultyExecution:
    def test_all_tasks_eventually_complete(self, wf):
        res = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.3, seed=3))
        succeeded = {e.task for e in res.executions if not e.failed}
        assert succeeded == {t.name for t in wf.tasks}
        assert res.failures > 0

    def test_no_faults_without_model(self, wf):
        res = simulate(wf, plat())
        assert res.failures == 0
        assert len(res.executions) == len(wf)

    def test_failures_slow_the_run(self, wf):
        clean = simulate(wf, plat()).makespan
        faulty = simulate(
            wf, plat(), fault_model=FaultModel(failure_prob=0.4, seed=1)
        ).makespan
        assert faulty > clean

    def test_retry_attempts_numbered(self, wf):
        res = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.4, seed=5))
        by_task: dict[str, list] = {}
        for e in res.executions:
            by_task.setdefault(e.task, []).append(e)
        for name, attempts in by_task.items():
            attempts.sort(key=lambda e: e.attempt)
            assert [e.attempt for e in attempts] == list(range(1, len(attempts) + 1))
            # all but the last attempt failed; the last succeeded
            assert all(e.failed for e in attempts[:-1])
            assert not attempts[-1].failed

    def test_retry_starts_after_failure_detected(self, wf):
        res = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.4, seed=5))
        by_task: dict[str, list] = {}
        for e in res.executions:
            by_task.setdefault(e.task, []).append(e)
        for attempts in by_task.values():
            attempts.sort(key=lambda e: e.attempt)
            for a, b in zip(attempts, attempts[1:]):
                assert b.start >= a.end - 1e-9

    def test_deterministic(self, wf):
        fm = FaultModel(failure_prob=0.3, seed=7)
        r1 = simulate(wf, plat(), fault_model=fm)
        r2 = simulate(wf, plat(), fault_model=fm)
        assert r1.makespan == r2.makespan
        assert r1.failures == r2.failures

    def test_dependencies_still_respected(self, wf):
        res = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.3, seed=9))
        ends = {e.task: e.end for e in res.executions if not e.failed}
        starts = {}
        for e in res.executions:
            starts.setdefault(e.task, e.start)
            starts[e.task] = min(starts[e.task], e.start)
        for t in wf.tasks:
            for parent in wf.parents(t.name):
                assert starts[t.name] >= ends[parent] - 1e-9 or any(
                    e.task == t.name and e.failed for e in res.executions
                )
        # strong form: first *successful* start after parent's success
        first_success = {
            e.task: e.start for e in sorted(res.executions, key=lambda e: e.start)
            if not e.failed
        }
        for t in wf.tasks:
            for parent in wf.parents(t.name):
                assert first_success[t.name] >= ends[parent] - 1e-9

    def test_failed_attempts_burn_energy(self, wf):
        clean = simulate(wf, plat())
        faulty = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.4, seed=2))
        assert faulty.total_energy > clean.total_energy

    def test_site_counts_exclude_failures(self, wf):
        res = simulate(wf, plat(), fault_model=FaultModel(failure_prob=0.4, seed=2))
        assert sum(res.site_task_counts().values()) == len(wf)
