"""Property-based tests for the workflow simulator on random DAGs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wrench.platform import CLOUD, LOCAL, make_platform
from repro.wrench.scheduler import place_level_fractions
from repro.wrench.simulation import simulate
from repro.wrench.workflow import Task, Workflow, WorkflowFile

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def random_workflows(draw):
    """Layered random DAGs: up to 4 levels of up to 4 tasks; each task
    consumes a random subset of the previous level's outputs."""
    n_levels = draw(st.integers(1, 4))
    wf = Workflow("random")
    prev_outputs: list[WorkflowFile] = []
    uid = 0
    for lv in range(n_levels):
        width = draw(st.integers(1, 4))
        new_outputs = []
        for i in range(width):
            inputs = tuple(
                f for f in prev_outputs if draw(st.booleans())
            )
            out = WorkflowFile(f"f{uid}", draw(st.floats(0.0, 1e6)))
            uid += 1
            flops = draw(st.floats(1e6, 5e9))
            wf.add_task(Task(f"t{lv}_{i}", flops, inputs=inputs, outputs=(out,)))
            new_outputs.append(out)
        prev_outputs = new_outputs
    return wf


@given(wf=random_workflows(), nodes=st.integers(1, 6))
@settings(**SETTINGS)
def test_all_tasks_run_dependencies_respected(wf, nodes):
    plat = make_platform(cluster_nodes=nodes, cluster_pstate=6)
    res = simulate(wf, plat)
    executed = {e.task for e in res.executions}
    assert executed == {t.name for t in wf.tasks}
    starts = {e.task: e.start for e in res.executions}
    ends = {e.task: e.end for e in res.executions}
    for t in wf.tasks:
        for parent in wf.parents(t.name):
            assert starts[t.name] >= ends[parent] - 1e-9


@given(wf=random_workflows(), nodes=st.integers(1, 4))
@settings(**SETTINGS)
def test_energy_and_co2_positive_and_consistent(wf, nodes):
    plat = make_platform(cluster_nodes=nodes, cluster_pstate=3)
    res = simulate(wf, plat)
    assert res.total_energy >= 0
    assert res.total_co2 >= 0
    if res.makespan > 0:
        # energy at least idle floor, at most busy ceiling
        site = plat.site(LOCAL)
        idle_floor = nodes * site.resources[0].pstate.idle_power * res.makespan
        busy_ceiling = nodes * site.resources[0].pstate.busy_power * res.makespan
        assert idle_floor - 1e-6 <= res.energy_joules[LOCAL] <= busy_ceiling + 1e-6


@given(wf=random_workflows())
@settings(**SETTINGS)
def test_more_nodes_never_slower(wf):
    t2 = simulate(wf, make_platform(cluster_nodes=2, cluster_pstate=6)).makespan
    t4 = simulate(wf, make_platform(cluster_nodes=4, cluster_pstate=6)).makespan
    assert t4 <= t2 + 1e-9


@given(wf=random_workflows())
@settings(**SETTINGS)
def test_makespan_at_least_critical_path_seconds(wf):
    plat = make_platform(cluster_nodes=8, cluster_pstate=6)
    speed = plat.site(LOCAL).resources[0].speed
    res = simulate(wf, plat)
    assert res.makespan >= wf.critical_path_flops() / speed - 1e-9


@given(wf=random_workflows(), frac=st.floats(0.0, 1.0))
@settings(**SETTINGS)
def test_two_site_placement_runs_everything(wf, frac):
    plat = make_platform(cluster_nodes=2, cluster_pstate=6, cloud_vms=2)
    placement = place_level_fractions(wf, {0: frac})
    res = simulate(wf, plat, placement)
    assert len(res.executions) == len(wf)
    counts = res.site_task_counts()
    assert counts.get(LOCAL, 0) + counts.get(CLOUD, 0) == len(wf)


@given(wf=random_workflows())
@settings(**SETTINGS)
def test_simulation_deterministic(wf):
    r1 = simulate(wf, make_platform(cluster_nodes=3, cluster_pstate=6))
    r2 = simulate(wf, make_platform(cluster_nodes=3, cluster_pstate=6))
    assert r1.makespan == r2.makespan
    assert [e.task for e in r1.executions] == [e.task for e in r2.executions]


@given(wf=random_workflows())
@settings(**SETTINGS)
def test_json_roundtrip_simulates_identically(wf):
    from repro.wrench.workflow import Workflow

    clone = Workflow.from_dict(wf.to_dict())
    r1 = simulate(wf, make_platform(cluster_nodes=2, cluster_pstate=6))
    r2 = simulate(clone, make_platform(cluster_nodes=2, cluster_pstate=6))
    assert np.isclose(r1.makespan, r2.makespan)
