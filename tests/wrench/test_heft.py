"""Tests for the HEFT placement heuristics."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.heft import heft_placement, upward_ranks
from repro.wrench.platform import CLOUD, LOCAL, make_platform
from repro.wrench.scheduler import place_all
from repro.wrench.simulation import simulate
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow


@pytest.fixture(scope="module")
def small_montage():
    return montage_workflow(n_projections=12, n_difffits=20, gflop_scale=10)


def two_site_platform():
    return make_platform(
        cluster_nodes=4, cluster_pstate=6, cloud_vms=4,
        link_bandwidth=50e6, link_latency=0.05,
    )


class TestUpwardRanks:
    def test_exit_task_rank_is_own_compute(self):
        wf = Workflow()
        wf.add_task(Task("only", 2e9))
        ranks = upward_ranks(wf, avg_speed=1e9, avg_bandwidth=1e9)
        assert ranks["only"] == pytest.approx(2.0)

    def test_rank_decreases_along_chain(self):
        wf = Workflow()
        f1, f2 = WorkflowFile("f1", 100), WorkflowFile("f2", 100)
        wf.add_task(Task("A", 1e9, outputs=(f1,)))
        wf.add_task(Task("B", 1e9, inputs=(f1,), outputs=(f2,)))
        wf.add_task(Task("C", 1e9, inputs=(f2,)))
        ranks = upward_ranks(wf, 1e9, 1e9)
        assert ranks["A"] > ranks["B"] > ranks["C"]

    def test_entry_rank_is_critical_path(self):
        wf = Workflow()
        f1 = WorkflowFile("f1", 0)
        wf.add_task(Task("A", 1e9, outputs=(f1,)))
        wf.add_task(Task("B", 3e9, inputs=(f1,)))
        ranks = upward_ranks(wf, 1e9, 1e9)
        assert ranks["A"] == pytest.approx(4.0)

    def test_validation(self, small_montage):
        with pytest.raises(ConfigurationError):
            upward_ranks(small_montage, 0.0, 1e9)


class TestHeftPlacement:
    def test_every_task_placed_on_real_site(self, small_montage):
        placement = heft_placement(small_montage, two_site_platform())
        assert set(placement) == {t.name for t in small_montage.tasks}
        assert set(placement.values()) <= {LOCAL, CLOUD}

    def test_placement_simulates_successfully(self, small_montage):
        plat = two_site_platform()
        placement = heft_placement(small_montage, plat)
        res = simulate(small_montage, two_site_platform(), placement)
        assert res.makespan > 0

    def test_beats_both_pure_placements_when_sites_balanced(self):
        # a slow local cluster and a comparable cloud: mixing must win
        wf = montage_workflow(n_projections=12, n_difffits=20, gflop_scale=20)

        def plat():
            return make_platform(
                cluster_nodes=3, cluster_pstate=0, cloud_vms=3,
                link_bandwidth=100e6, link_latency=0.02,
            )

        heft_time = simulate(wf, plat(), heft_placement(wf, plat())).makespan
        local_time = simulate(wf, plat(), place_all(wf, LOCAL)).makespan
        cloud_time = simulate(wf, plat(), place_all(wf, CLOUD)).makespan
        assert heft_time < local_time
        assert heft_time < cloud_time

    def test_near_optimal_when_one_site_dominates(self, small_montage):
        # a fast local cluster the cloud cannot help: HEFT must not fall
        # far behind the obvious all-local schedule (its plan-time model
        # is first-order, so a modest gap is tolerated), and must beat
        # the wrong pure choice comfortably
        placement = heft_placement(small_montage, two_site_platform())
        heft_time = simulate(small_montage, two_site_platform(), placement).makespan
        local_time = simulate(
            small_montage, two_site_platform(), place_all(small_montage, LOCAL)
        ).makespan
        cloud_time = simulate(
            small_montage, two_site_platform(), place_all(small_montage, CLOUD)
        ).makespan
        assert heft_time < cloud_time
        assert heft_time < 1.5 * local_time

    def test_uses_both_sites_when_profitable(self, small_montage):
        placement = heft_placement(small_montage, two_site_platform())
        assert set(placement.values()) == {LOCAL, CLOUD}

    def test_single_site_platform_all_there(self, small_montage):
        plat = make_platform(cluster_nodes=4, cluster_pstate=6, cloud_vms=0)
        placement = heft_placement(small_montage, plat)
        assert set(placement.values()) == {LOCAL}

    def test_co2_objective_prefers_green_site(self, small_montage):
        # with generous slack, the co2 objective shifts work cloudwards
        time_p = heft_placement(small_montage, two_site_platform(), objective="makespan")
        co2_p = heft_placement(
            small_montage, two_site_platform(), objective="co2", co2_slack=3.0
        )
        cloud_time = sum(1 for s in time_p.values() if s == CLOUD)
        cloud_co2 = sum(1 for s in co2_p.values() if s == CLOUD)
        assert cloud_co2 >= cloud_time

    def test_unknown_objective_rejected(self, small_montage):
        with pytest.raises(ConfigurationError):
            heft_placement(small_montage, two_site_platform(), objective="joy")

    def test_empty_platform_rejected(self, small_montage):
        plat = make_platform(cluster_nodes=0, cluster_pstate=0, cloud_vms=0)
        with pytest.raises(ConfigurationError):
            heft_placement(small_montage, plat)

    def test_deterministic(self, small_montage):
        a = heft_placement(small_montage, two_site_platform())
        b = heft_placement(small_montage, two_site_platform())
        assert a == b
