"""Tests for WrenchJob, the wrench OneShot Job adapter."""

from repro.wrench.job import WrenchJob
from repro.wrench.platform import make_platform
from repro.wrench.simulation import FaultModel
from repro.wrench.workflow import montage_workflow


def _wf(seed=3):
    return montage_workflow(n_projections=4, n_difffits=5, seed=seed)


def _factory():
    return make_platform(cluster_nodes=4)


class TestWrenchJob:
    def test_runs_whole_workflow(self):
        wf = _wf()
        result = WrenchJob(wf, _factory).run()
        assert result["makespan"] > 0
        assert len(result["executions"]) == len(wf.tasks)
        assert result["failures"] == 0

    def test_fresh_platform_per_run_keeps_replays_identical(self):
        wf = _wf()
        job = WrenchJob(wf, _factory)
        first = job.run()
        again = WrenchJob(wf, _factory).run()
        assert first == again

    def test_faulted_run_is_deterministic_per_seed(self):
        wf = _wf()
        fm = FaultModel(failure_prob=0.3, max_attempts=6, seed=13)
        a = WrenchJob(wf, _factory, fault_model=fm).run()
        b = WrenchJob(wf, _factory, fault_model=FaultModel(failure_prob=0.3, max_attempts=6, seed=13)).run()
        assert a == b
        assert a["failures"] >= 0

    def test_completion_checkpoint_skips_rerun(self):
        wf = _wf()
        job = WrenchJob(wf, _factory)
        result = job.run()
        snap = job.checkpoint()
        fresh = WrenchJob(wf, _factory)
        fresh.restore(snap)
        assert fresh.run() == result
