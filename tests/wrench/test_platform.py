"""Tests for platform assembly."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.platform import (
    CLOUD,
    LOCAL,
    make_cloud_site,
    make_cluster_site,
    make_platform,
)


class TestClusterSite:
    def test_node_count_and_pstate(self):
        site = make_cluster_site(8, 3)
        assert site.n_resources == 8
        assert all(r.pstate.index == 3 for r in site.resources)
        assert site.carbon_intensity == 291.0

    def test_zero_nodes_allowed(self):
        assert make_cluster_site(0, 0).n_resources == 0

    def test_bad_pstate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster_site(4, 7)  # only 0..6 exist

    def test_negative_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster_site(-1, 0)

    def test_homogeneous(self):
        site = make_cluster_site(4, 2)
        speeds = {r.speed for r in site.resources}
        assert len(speeds) == 1


class TestCloudSite:
    def test_vm_count(self):
        site = make_cloud_site(16)
        assert site.n_resources == 16
        assert site.name == CLOUD

    def test_green_intensity_default(self):
        assert make_cloud_site(1).carbon_intensity < 50.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cloud_site(-1)


class TestPlatform:
    def test_two_sites(self):
        p = make_platform(cluster_nodes=4, cluster_pstate=6, cloud_vms=2)
        assert set(p.sites) == {LOCAL, CLOUD}
        assert len(p.all_resources()) == 6

    def test_unknown_site_lookup(self):
        p = make_platform(cluster_nodes=1, cluster_pstate=0)
        with pytest.raises(ConfigurationError):
            p.site("mars")

    def test_link_parameters(self):
        p = make_platform(cluster_nodes=1, cluster_pstate=0, link_bandwidth=5e6, link_latency=0.2)
        assert p.link.bandwidth == 5e6
        assert p.link.latency == 0.2

    def test_negative_intensity_rejected(self):
        from repro.wrench.platform import Site

        with pytest.raises(ConfigurationError):
            Site(name="x", carbon_intensity=-1.0)
