"""Tests for post-simulation execution analysis."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.analysis import bounds, level_gantt_ascii, level_timeline, utilization
from repro.wrench.platform import make_platform
from repro.wrench.simulation import simulate
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow


@pytest.fixture(scope="module")
def executed():
    wf = montage_workflow(n_projections=8, n_difffits=12, gflop_scale=5)
    plat = make_platform(cluster_nodes=4, cluster_pstate=6)
    return wf, plat, simulate(wf, plat)


class TestLevelTimeline:
    def test_one_row_per_level(self, executed):
        wf, _, result = executed
        rows = level_timeline(result)
        assert len(rows) == wf.depth
        assert [r.level for r in rows] == list(range(wf.depth))

    def test_levels_ordered_in_time(self, executed):
        _, _, result = executed
        rows = level_timeline(result)
        for a, b in zip(rows, rows[1:]):
            assert b.end >= a.start  # later levels cannot finish before earlier start
        # level 1 depends on level 0: it cannot *end* before level 0 ends
        assert rows[1].end >= rows[0].end

    def test_task_counts(self, executed):
        wf, _, result = executed
        rows = level_timeline(result)
        assert [r.tasks for r in rows] == [len(wf.level_tasks(lv)) for lv in range(wf.depth)]

    def test_span_positive(self, executed):
        _, _, result = executed
        for r in level_timeline(result):
            assert r.span >= 0
            assert r.compute_time > 0


class TestUtilization:
    def test_in_unit_interval(self, executed):
        _, plat, result = executed
        u = utilization(result, plat)
        assert 0.0 < u <= 1.0

    def test_serial_chain_utilization_one_over_n(self):
        wf = Workflow()
        prev = None
        for i in range(3):
            inputs = (prev,) if prev else ()
            out = WorkflowFile(f"f{i}", 1)
            wf.add_task(Task(f"T{i}", 1e9, inputs=inputs, outputs=(out,)))
            prev = out
        plat = make_platform(cluster_nodes=4, cluster_pstate=6)
        result = simulate(wf, plat)
        u = utilization(result, plat)
        assert u == pytest.approx(0.25, rel=1e-6)  # 1 of 4 nodes busy

    def test_empty_platform_rejected(self, executed):
        _, _, result = executed
        plat = make_platform(cluster_nodes=0, cluster_pstate=0)
        with pytest.raises(ConfigurationError):
            utilization(result, plat)


class TestBounds:
    def test_achieved_at_least_lower_bound(self, executed):
        wf, plat, result = executed
        b = bounds(result, wf, plat)
        assert b.achieved >= b.critical_path - 1e-9
        assert b.achieved >= b.work_bound - 1e-9
        assert b.optimality_gap >= -1e-9

    def test_single_task_tight(self):
        wf = Workflow()
        wf.add_task(Task("only", 5e9))
        plat = make_platform(cluster_nodes=2, cluster_pstate=6)
        result = simulate(wf, plat)
        b = bounds(result, wf, plat)
        assert b.achieved == pytest.approx(b.critical_path)
        assert b.optimality_gap == pytest.approx(0.0)

    def test_perfectly_parallel_work_bound_tight(self):
        wf = Workflow()
        for i in range(8):
            wf.add_task(Task(f"T{i}", 1e9, outputs=(WorkflowFile(f"f{i}", 1),)))
        plat = make_platform(cluster_nodes=4, cluster_pstate=6)
        result = simulate(wf, plat)
        b = bounds(result, wf, plat)
        assert b.achieved == pytest.approx(b.work_bound, rel=1e-6)


class TestGantt:
    def test_renders_all_levels(self, executed):
        wf, _, result = executed
        out = level_gantt_ascii(result)
        for lv in range(wf.depth):
            assert f"L{lv} " in out
        assert "#" in out

    def test_empty(self):
        from repro.wrench.simulation import SimulationResult

        empty = SimulationResult(0.0, [], {}, {}, 0.0, 0.0)
        assert "empty" in level_gantt_ascii(empty)
