"""Tests for placement policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.wrench.platform import CLOUD, LOCAL
from repro.wrench.scheduler import (
    describe_placement,
    place_all,
    place_level_fractions,
    place_levels,
)
from repro.wrench.workflow import montage_workflow


@pytest.fixture(scope="module")
def wf():
    return montage_workflow(n_projections=8, n_difffits=12)


class TestPlaceAll:
    def test_everything_on_site(self, wf):
        p = place_all(wf, CLOUD)
        assert len(p) == len(wf)
        assert set(p.values()) == {CLOUD}


class TestPlaceLevels:
    def test_selected_levels_cloud(self, wf):
        p = place_levels(wf, {0, 4})
        levels = wf.levels()
        for name, site in p.items():
            assert site == (CLOUD if levels[name] in (0, 4) else LOCAL)

    def test_empty_set_all_local(self, wf):
        assert set(place_levels(wf, set()).values()) == {LOCAL}


class TestPlaceLevelFractions:
    def test_rounding(self, wf):
        p = place_level_fractions(wf, {0: 0.5})
        cloud_l0 = [n for n, s in p.items() if s == CLOUD]
        assert len(cloud_l0) == 4  # half of 8 projections

    def test_zero_fraction_all_local(self, wf):
        p = place_level_fractions(wf, {0: 0.0})
        assert set(p.values()) == {LOCAL}

    def test_full_fraction_whole_level(self, wf):
        p = place_level_fractions(wf, {1: 1.0})
        levels = wf.levels()
        for name, site in p.items():
            if levels[name] == 1:
                assert site == CLOUD

    def test_deterministic_name_order(self, wf):
        p = place_level_fractions(wf, {0: 0.25})
        cloud = sorted(n for n, s in p.items() if s == CLOUD)
        assert cloud == ["mProject_0000", "mProject_0001"]

    def test_all_tasks_placed(self, wf):
        p = place_level_fractions(wf, {0: 0.3, 4: 0.7})
        assert len(p) == len(wf)

    def test_invalid_fraction_rejected(self, wf):
        with pytest.raises(ConfigurationError):
            place_level_fractions(wf, {0: 1.5})

    def test_unknown_level_rejected(self, wf):
        with pytest.raises(ConfigurationError):
            place_level_fractions(wf, {99: 0.5})


class TestDescribe:
    def test_all_local(self, wf):
        assert describe_placement(wf, place_all(wf, LOCAL)) == "all local"

    def test_fraction_summary(self, wf):
        p = place_level_fractions(wf, {0: 0.5})
        desc = describe_placement(wf, p)
        assert "L0" in desc and "50%" in desc and "(4/8)" in desc
