"""Tests for per-site storage services."""

import pytest

from repro.common.errors import SimulationError
from repro.wrench.storage import StorageService


class TestStorage:
    def test_put_and_has(self):
        s = StorageService("local")
        assert not s.has("f")
        s.put("f", 100)
        assert s.has("f")
        assert s.size_of("f") == 100

    def test_missing_file_raises(self):
        with pytest.raises(SimulationError):
            StorageService("local").size_of("nope")

    def test_bytes_written_counts_new_files_only(self):
        s = StorageService("cloud")
        s.put("f", 100)
        s.put("f", 100)  # refresh of an existing replica
        assert s.bytes_written == 100

    def test_total_bytes(self):
        s = StorageService("x")
        s.put("a", 10)
        s.put("b", 20)
        assert s.total_bytes == 30
        assert len(s) == 2

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            StorageService("x").put("f", -1)
