"""The real chaos matrix (``faults`` marker; CI runs it in its own job).

Covers the acceptance bar directly: the full default campaign passes
with zero violations, and kill-and-resume is bit-identical on the
easypap process backend (pfrontier) and on mapreduce.
"""

import pytest

from repro.chaos import Scenario, default_campaign, run_campaign
from repro.common.checkpoint import CheckpointStore
from repro.common.resilience import RetryPolicy
from repro.common.rng import make_rng
from repro.common.supervisor import JobInterrupted, Supervisor
from repro.easypap.executor import ProcessBackend

pytestmark = pytest.mark.faults

needs_processes = pytest.mark.skipif(
    not ProcessBackend.available(), reason="worker processes unavailable"
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestCampaignMatrix:
    @needs_processes
    def test_full_default_campaign_zero_violations(self, tmp_path):
        report = run_campaign(default_campaign(), workdir=tmp_path)
        assert report.ok, report.render()
        assert report.counts["violated"] == 0
        assert report.counts["error"] == 0
        assert report.counts["skipped"] == 0  # with processes, everything runs

    def test_two_substrates_three_kinds(self, tmp_path):
        # the CI chaos job's core cut: no process dependency, still real faults
        scs = default_campaign(
            substrates=("mapreduce", "simmpi"),
            kinds=("inject-raise", "corrupt-checkpoint", "kill-resume"),
        )
        assert len(scs) >= 5
        report = run_campaign(scs, workdir=tmp_path)
        assert report.ok, report.render()

    def test_campaign_reproducible_per_seed(self, tmp_path):
        scs = [Scenario(substrate="wrench", kind="worker-kill", seed=9)]
        a = run_campaign(scs, workdir=tmp_path / "a")
        b = run_campaign(scs, workdir=tmp_path / "b")
        assert a.ok and b.ok, a.render() + "\n" + b.render()
        assert a.outcomes[0].detail["failures"] == b.outcomes[0].detail["failures"]


def _pile(seed: int, n: int = 48):
    from repro.easypap.grid import Grid2D

    g = Grid2D(n, n)
    g.interior[:] = 0
    rng = make_rng(seed)
    r, c = int(rng.integers(n // 4, 3 * n // 4)), int(rng.integers(n // 4, 3 * n // 4))
    g.interior[r, c] = 1200
    return g


@needs_processes
class TestKillResumePFrontierProcess:
    """Acceptance: kill-and-resume on the parallel frontier stepper over
    real worker processes is bit-identical to an uninterrupted run."""

    def test_bit_identical_resume(self, tmp_path):
        from repro.easypap.job import SandpileJob

        def make_job():
            return SandpileJob(
                _pile(11),
                variant="pfrontier",
                backend="process",
                nworkers=2,
                tile_size=8,
                retry=FAST_RETRY,
            )

        with make_job() as baseline_job:
            baseline = baseline_job.run()
        store = CheckpointStore(tmp_path / "ckpt", keep=5)
        with make_job() as job:
            sup = Supervisor(job, retry=FAST_RETRY, store=store, checkpoint_every_steps=16)
            with pytest.raises(JobInterrupted) as intr:
                sup.run(stop_after_steps=baseline["iterations"] // 2)
            assert intr.value.snapshot_path is not None
        with make_job() as job2:
            sup2 = Supervisor(job2, retry=FAST_RETRY, store=store)
            resumed = sup2.resume()
        assert resumed["iterations"] == baseline["iterations"]
        assert resumed["sink_absorbed"] == baseline["sink_absorbed"]
        assert resumed["grid"].tobytes() == baseline["grid"].tobytes()


class TestKillResumeMapReduce:
    """Acceptance: kill-and-resume mid-shuffle matches the sequential oracle."""

    def test_bit_identical_resume(self, tmp_path):
        from repro.mapreduce.engine import run_job
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.stepjob import MapReduceStepJob

        rng = make_rng(5)
        words = ["ash", "beech", "cedar", "fir", "oak"]
        splits = [
            [(f"s{i}:{j}", " ".join(rng.choice(words, size=8))) for j in range(4)]
            for i in range(6)
        ]

        def mapper(key, value):
            for w in value.split():
                yield (w, 1)

        def reducer(key, values):
            yield (key, sum(values))

        job = MapReduceJob(name="wc", mapper=mapper, reducer=reducer, num_reducers=3)
        baseline = run_job(job, splits)

        store = CheckpointStore(tmp_path / "ckpt", keep=5)
        sup = Supervisor(
            MapReduceStepJob(job, splits),
            retry=FAST_RETRY,
            store=store,
            checkpoint_every_steps=1,
        )
        with pytest.raises(JobInterrupted):
            sup.run(stop_after_steps=len(splits) + 1)  # stop right after shuffle
        resumed = Supervisor(
            MapReduceStepJob(job, splits), retry=FAST_RETRY, store=store
        ).resume()
        assert resumed.pairs == baseline.pairs
        assert resumed.partitions == baseline.partitions
        assert resumed.counters.as_dict() == baseline.counters.as_dict()
