"""Tests for the campaign runner: classification, metrics, reporting.

A tiny real subset runs in the default suite; the full matrix lives in
``test_faults_matrix.py`` under the ``faults`` marker.
"""

import pytest

from repro.chaos import CampaignReport, Scenario, ScenarioOutcome, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class TestLiteCampaign:
    def test_kill_resume_lite(self, tmp_path):
        # one checkpointing substrate and one atomic substrate, for real
        scs = [
            Scenario(substrate="mapreduce", kind="kill-resume"),
            Scenario(substrate="simmpi", kind="kill-resume"),
        ]
        reg = MetricsRegistry()
        tr = Tracer(process="chaos")
        report = run_campaign(scs, metrics=reg, tracer=tr, workdir=tmp_path)
        assert report.ok, report.render()
        assert [o.status for o in report.outcomes] == ["passed", "passed"]
        prom = reg.to_prometheus()
        assert 'chaos_scenarios_total{kind="kill-resume",status="passed",substrate="mapreduce"}' in prom
        assert "supervisor_checkpoints_total" in prom

    def test_corrupt_checkpoint_lite(self, tmp_path):
        report = run_campaign(
            [Scenario(substrate="mapreduce", kind="corrupt-checkpoint")],
            workdir=tmp_path,
        )
        assert report.ok, report.render()
        assert report.outcomes[0].detail["rejected_snapshots"] >= 1


class TestClassification:
    def test_violations_fail_the_campaign(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.chaos.campaign.run_scenario",
            lambda sc, ctx: (["bit-identical"], {}),
        )
        reg = MetricsRegistry()
        report = run_campaign(
            [Scenario(substrate="simmpi", kind="kill-resume")],
            metrics=reg,
            workdir=tmp_path,
        )
        assert not report.ok
        assert report.outcomes[0].status == "violated"
        assert report.outcomes[0].violations == ("bit-identical",)
        assert "chaos_invariant_violations_total" in reg.to_prometheus()
        assert "FAILED" in report.render()

    def test_harness_crash_becomes_error_row(self, monkeypatch, tmp_path):
        def boom(sc, ctx):
            raise RuntimeError("harness exploded")

        monkeypatch.setattr("repro.chaos.campaign.run_scenario", boom)
        report = run_campaign(
            [Scenario(substrate="simmpi", kind="kill-resume")], workdir=tmp_path
        )
        assert not report.ok
        out = report.outcomes[0]
        assert out.status == "error"
        assert out.violations == ("unexpected-exception",)
        assert "harness exploded" in out.detail["traceback"]

    def test_process_scenarios_skip_visibly(self, monkeypatch, tmp_path):
        monkeypatch.setattr("repro.chaos.campaign._processes_available", lambda: False)
        reg = MetricsRegistry()
        report = run_campaign(
            [Scenario(substrate="easypap", kind="worker-kill", requires_processes=True)],
            metrics=reg,
            workdir=tmp_path,
        )
        assert report.ok  # skipped is not a failure...
        assert report.outcomes[0].status == "skipped"
        assert "worker processes unavailable" in report.render()  # ...but stays visible
        assert 'status="skipped"' in reg.to_prometheus()


class TestReport:
    def test_render_and_counts(self):
        outcomes = [
            ScenarioOutcome(Scenario(substrate="simmpi", kind="deadline"), "passed"),
            ScenarioOutcome(
                Scenario(substrate="wrench", kind="kill-resume"),
                "violated",
                violations=("bit-identical", "honest-work"),
            ),
        ]
        report = CampaignReport(outcomes=outcomes, metrics=MetricsRegistry())
        assert report.counts == {"passed": 1, "violated": 1, "skipped": 0, "error": 0}
        text = report.render()
        assert "bit-identical, honest-work" in text
        assert "1 passed, 1 violated, 0 skipped, 0 errored -> FAILED" in text

    def test_empty_campaign_is_ok(self):
        assert CampaignReport(outcomes=[], metrics=MetricsRegistry()).ok


@pytest.mark.parametrize("substrate", ["simmpi", "wrench"])
def test_atomic_substrate_kill_resume(substrate, tmp_path):
    """Atomic substrates resume to the same result from a cold snapshot."""
    report = run_campaign(
        [Scenario(substrate=substrate, kind="kill-resume")], workdir=tmp_path
    )
    assert report.ok, report.render()
