"""Tests for the scenario matrix (cheap: no harness runs)."""

import pytest

from repro.chaos import KINDS, SUBSTRATES, Scenario, default_campaign
from repro.common.errors import ConfigurationError


class TestScenario:
    def test_name(self):
        sc = Scenario(substrate="simmpi", kind="kill-resume", seed=7)
        assert sc.name == "simmpi/kill-resume@seed=7"

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ConfigurationError, match="substrate"):
            Scenario(substrate="slurm", kind="kill-resume")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Scenario(substrate="easypap", kind="cosmic-ray")


class TestDefaultCampaign:
    def test_covers_all_substrates_and_kinds(self):
        scs = default_campaign()
        assert {sc.substrate for sc in scs} == set(SUBSTRATES)
        assert {sc.kind for sc in scs} == KINDS
        assert len(scs) == 14

    def test_kill_resume_everywhere(self):
        # the headline invariant applies to every substrate
        subs = {sc.substrate for sc in default_campaign(kinds=("kill-resume",))}
        assert subs == set(SUBSTRATES)

    def test_seed_fanout(self):
        scs = default_campaign(substrates=("simmpi",), seeds=(1, 2, 3))
        assert len(scs) == 9
        assert {sc.seed for sc in scs} == {1, 2, 3}

    def test_filters(self):
        scs = default_campaign(substrates=("mapreduce",), kinds=("inject-raise",))
        assert [(sc.substrate, sc.kind) for sc in scs] == [("mapreduce", "inject-raise")]

    def test_empty_filter_is_an_error(self):
        with pytest.raises(ConfigurationError, match="no scenarios"):
            default_campaign(substrates=("wrench",), kinds=("deadline",))

    def test_only_easypap_faults_need_processes(self):
        needy = {(sc.substrate, sc.kind) for sc in default_campaign() if sc.requires_processes}
        assert needy == {("easypap", "inject-raise"), ("easypap", "worker-kill")}
