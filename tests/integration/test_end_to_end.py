"""End-to-end runs of the three assignments at reduced scale."""

import numpy as np
import pytest

from repro.carbon.tab1 import question1_baseline, question3_comparison
from repro.carbon.tab2 import question1_baselines
from repro.climate.workflow import run_warming_stripes_workflow
from repro.sandpile import center_pile, run_to_fixpoint


class TestAssignment1Sandpile:
    def test_fig1a_pipeline(self, tmp_path):
        """Initial config -> stabilise -> render -> write image."""
        from repro.common.colors import sandpile_to_rgb, write_ppm

        g = center_pile(64, 64, 10_000)
        result = run_to_fixpoint(g, "asandpile", "lazy", tile_size=8)
        assert g.is_stable()
        img = sandpile_to_rgb(g.interior)
        path = tmp_path / "fig1a.ppm"
        write_ppm(path, img)
        assert path.stat().st_size > 64 * 64 * 3

    def test_report_quality_numbers(self):
        """The numbers a student's report needs are all derivable."""
        from repro.easypap.monitor import Trace

        g = center_pile(48, 48, 4000)
        trace = Trace()
        result = run_to_fixpoint(
            g, "sandpile", "omp", tile_size=8, nworkers=4, policy="dynamic", trace=trace
        )
        summary = trace.summarize(result.iterations // 2)
        assert summary.task_count > 0
        assert summary.makespan > 0
        assert 0 <= summary.imbalance


class TestAssignment2WarmingStripes:
    def test_full_pipeline_with_image(self, tmp_path):
        wf = run_warming_stripes_workflow(first_year=1950, last_year=2019, seed=11)
        img = wf.stripes.image(height=20, stripe_width=2)
        assert img.shape == (20, 70 * 2, 3)
        wf.stripes.save_ppm(tmp_path / "fig6.ppm")
        # warming visible: last decade redder than first
        first = np.mean([wf.annual_means[y] for y in range(1950, 1960)])
        last = np.mean([wf.annual_means[y] for y in range(2010, 2020)])
        assert last > first + 0.5


class TestAssignment3Carbon:
    def test_tab1_narrative(self, tiny_scenario):
        baseline = question1_baseline(tiny_scenario)
        opts = question3_comparison(tiny_scenario)
        assert opts["heuristic"].co2_grams < baseline.config.co2_grams
        assert all(c.makespan <= tiny_scenario.time_bound for c in opts.values())

    def test_tab2_narrative(self, tiny_scenario):
        bl = question1_baselines(tiny_scenario)
        assert bl["all-local"].link_gb == 0.0
        assert bl["all-cloud"].link_gb > 0.0


class TestLibraryMetadata:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_packages_importable(self):
        import repro.carbon
        import repro.climate
        import repro.common
        import repro.easypap
        import repro.mapreduce
        import repro.sandpile
        import repro.simmpi
        import repro.surveys
        import repro.wrench
