"""Cross-cutting integration: every execution path of every subsystem must
agree with its oracle on shared scenarios."""

import numpy as np
import pytest

from repro.easypap.monitor import Trace
from repro.sandpile import (
    HybridStepper,
    LazyGpuStepper,
    center_pile,
    run_distributed,
    run_to_fixpoint,
    sparse_random,
)
from repro.sandpile.theory import stabilize


class TestSandpileGrandUnification:
    """One configuration, every engine: the fixpoints must be identical."""

    @pytest.fixture(scope="class")
    def scenario(self):
        grid = sparse_random(48, 48, n_piles=6, pile_grains=900, seed=21)
        oracle = stabilize(grid.copy())
        return grid, oracle

    def test_all_registered_variants(self, scenario):
        grid, oracle = scenario
        for kernel, variant, opts in [
            ("sandpile", "vec", {}),
            ("sandpile", "split", {"tile_size": 8}),
            ("sandpile", "tiled", {"tile_size": 8}),
            ("sandpile", "lazy", {"tile_size": 8}),
            ("sandpile", "omp", {"tile_size": 8, "nworkers": 4}),
            ("asandpile", "vec", {}),
            ("asandpile", "tiled", {"tile_size": 8}),
            ("asandpile", "lazy", {"tile_size": 8}),
            ("asandpile", "omp", {"tile_size": 8, "nworkers": 4}),
        ]:
            g = grid.copy()
            run_to_fixpoint(g, kernel, variant, **opts)
            assert np.array_equal(g.interior, oracle.interior), f"{kernel}/{variant}"

    def test_gpu_and_hybrid(self, scenario):
        grid, oracle = scenario
        g = grid.copy()
        stepper = LazyGpuStepper(g)
        while stepper():
            pass
        assert np.array_equal(g.interior, oracle.interior)

        g = grid.copy()
        hybrid = HybridStepper(g, tile_size=8, nworkers=4, lazy=True)
        while hybrid():
            pass
        assert np.array_equal(g.interior, oracle.interior)

    @pytest.mark.parametrize("nranks,depth", [(2, 1), (4, 2), (3, 4)])
    def test_distributed(self, scenario, nranks, depth):
        grid, oracle = scenario
        res = run_distributed(grid, nranks, halo_depth=depth)
        assert np.array_equal(res.final.interior, oracle.interior)


class TestFig1Configurations:
    """The two Fig. 1 setups at reduced scale, across engines."""

    def test_center_pile_four_fold_symmetry(self):
        g = center_pile(65, 65, 20_000)
        stabilize(g)
        m = g.interior
        assert np.array_equal(m, m[::-1, :])
        assert np.array_equal(m, m[:, ::-1])
        assert np.array_equal(m, m.T)

    def test_uniform4_loses_grains_and_stabilizes(self):
        from repro.sandpile import uniform

        g = uniform(64, 64, 4)
        total0 = g.total_grains()
        run_to_fixpoint(g, "asandpile", "lazy", tile_size=8)
        assert g.is_stable()
        assert g.sink_absorbed > 0
        assert g.total_grains() + g.sink_absorbed == total0

    def test_all_four_colors_present_in_center_config(self):
        g = center_pile(65, 65, 20_000)
        stabilize(g)
        values = set(np.unique(g.interior))
        assert values == {0, 1, 2, 3}


class TestTraceConsistency:
    def test_trace_covers_every_computed_tile(self):
        grid = sparse_random(32, 32, n_piles=3, pile_grains=200, seed=4)
        trace = Trace()
        result = run_to_fixpoint(
            grid, "sandpile", "omp", tile_size=8, nworkers=3, lazy=True, trace=trace
        )
        assert len(trace) == result.tiles_computed
        # every record maps to a real tile
        for r in trace.records:
            assert 0 <= r.tile_ty < 4 and 0 <= r.tile_tx < 4
