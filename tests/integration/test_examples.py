"""Smoke tests: the shipped example scripts must keep running.

Each example executes in a subprocess exactly as a user would run it;
the fast ones run always, the heavyweight ones are marked slow.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args, timeout: float = 600.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


class TestFastExamples:
    def test_mapreduce_wordcount(self):
        out = run_example("mapreduce_wordcount.py")
        assert "identical to the structured run: True" in out
        assert "output identical to the clean run: True" in out

    def test_soc_avalanches(self, tmp_path):
        out = run_example("soc_avalanches.py", str(tmp_path))
        assert "CCDF slope" in out
        assert (tmp_path / "toppling_profile.ppm").exists()

    def test_trace_explorer(self, tmp_path):
        out = run_example("trace_explorer.py", str(tmp_path))
        assert "static vs dynamic" in out
        assert "makespan" in out and "% busy" in out
        for policy in ("static", "dynamic"):
            doc = json.loads((tmp_path / f"trace_{policy}.json").read_text())
            assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_warming_stripes(self, tmp_path):
        out = run_example("warming_stripes.py", str(tmp_path))
        assert "phase 4 (validate)" in out
        assert "2020" in out
        assert (tmp_path / "fig6_warming_stripes.ppm").exists()


@pytest.mark.slow
class TestSlowExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Abelian sandpile" in out
        assert "Warming stripes" in out
        assert "heuristic" in out

    def test_mpi_ghost_cells(self):
        out = run_example("mpi_ghost_cells.py")
        assert "best halo depth" in out

    def test_carbon_scheduling(self):
        out = run_example("carbon_scheduling.py", "--hunt-resolution", "2")
        assert "Optimal schedule found" in out

    def test_sandpile_fractal(self, tmp_path):
        out = run_example("sandpile_fractal.py", str(tmp_path))
        assert "fixpoint identical: True" in out
        assert (tmp_path / "identity_128.ppm").exists()
