"""Unit tests for the bench harness's baseline comparison.

Satellite regression: ``bench --check`` used to index the baseline table
directly (``ref[name]``), so any variant asymmetry between the baseline
and the current build — a newly added variant, or a stale baseline naming
a removed one — crashed with a KeyError instead of reporting drift.  The
comparison must fail only on genuine regressions over the intersection
and surface asymmetries as warnings.

The harness lives in ``benchmarks/`` (outside the package), so it is
loaded by file path; importing it executes only constants and function
definitions, never a measurement.
"""

import importlib.util
import pathlib
import sys

_BENCH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_hotpath.py"
_spec = importlib.util.spec_from_file_location("bench_hotpath_under_test", _BENCH)
bench = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = bench
_spec.loader.exec_module(bench)

compare_ratio_tables = bench.compare_ratio_tables


class TestCompareRatioTables:
    def test_identical_tables_clean(self):
        table = {"vec": 1.0, "frontier": 0.3, "omp": 1.4}
        failures, warnings = compare_ratio_tables(table, dict(table), 0.30)
        assert failures == []
        assert warnings == []

    def test_regression_over_tolerance_fails(self):
        ref = {"vec": 1.0, "frontier": 0.30}
        cur = {"vec": 1.0, "frontier": 0.45}  # +50% > 30% tolerance
        failures, _ = compare_ratio_tables(ref, cur, 0.30)
        assert len(failures) == 1
        assert "frontier" in failures[0]

    def test_within_tolerance_passes(self):
        ref = {"vec": 1.0, "frontier": 0.30}
        cur = {"vec": 1.0, "frontier": 0.36}  # +20% <= 30%
        failures, warnings = compare_ratio_tables(ref, cur, 0.30)
        assert failures == [] and warnings == []

    def test_improvement_never_fails(self):
        ref = {"frontier": 0.30}
        cur = {"frontier": 0.10}
        failures, _ = compare_ratio_tables(ref, cur, 0.30)
        assert failures == []

    def test_new_variant_warns_not_keyerror(self):
        ref = {"vec": 1.0, "frontier": 0.3}
        cur = {"vec": 1.0, "frontier": 0.3, "pfrontier": 2.5}  # not in baseline
        failures, warnings = compare_ratio_tables(ref, cur, 0.30)
        assert failures == []
        assert len(warnings) == 1
        assert "pfrontier" in warnings[0]
        assert "absent from baseline" in warnings[0]

    def test_removed_variant_warns_not_keyerror(self):
        ref = {"vec": 1.0, "frontier": 0.3, "lazy": 9.0}  # stale baseline entry
        cur = {"vec": 1.0, "frontier": 0.3}
        failures, warnings = compare_ratio_tables(ref, cur, 0.30)
        assert failures == []
        assert len(warnings) == 1
        assert "lazy" in warnings[0]
        assert "not measured" in warnings[0]

    def test_asymmetry_does_not_mask_real_regression(self):
        ref = {"frontier": 0.30, "lazy": 9.0}
        cur = {"frontier": 0.60, "pfrontier": 2.5}
        failures, warnings = compare_ratio_tables(ref, cur, 0.30)
        assert len(failures) == 1 and "frontier" in failures[0]
        assert len(warnings) == 2

    def test_vec_yardstick_is_skipped(self):
        # vec is the normalisation unit: always 1.0 vs itself, never judged
        ref = {"vec": 1.0}
        cur = {"vec": 5.0}
        failures, warnings = compare_ratio_tables(ref, cur, 0.0)
        assert failures == [] and warnings == []

    def test_failures_name_the_section(self):
        failures, _ = compare_ratio_tables({"a": 1.0}, {"a": 2.0}, 0.1, section="fixpoint")
        assert failures[0].startswith("fixpoint/a:")
