#!/usr/bin/env python
"""Assignment 4's distributed sandpile: the Ghost Cell Pattern.

Distributes a 256x256 stabilisation over simulated MPI ranks and sweeps
the halo depth, printing the communication/recomputation trade-off table
students are asked to produce — on a fast LAN and on a slow WAN, where
the conclusions differ.

Usage::

    python examples/mpi_ghost_cells.py
"""

import numpy as np

from repro.common.tables import Table
from repro.common.units import format_bytes, format_duration
from repro.sandpile import center_pile, run_distributed
from repro.sandpile.theory import stabilize
from repro.simmpi import CostModel

SIZE = 256
GRAINS = 40_000

NETWORKS = {
    "LAN (10us, 10GB/s)": CostModel(latency=10e-6, bandwidth=10e9),
    "WAN (2ms, 1GB/s)": CostModel(latency=2e-3, bandwidth=1e9),
}


def main() -> None:
    grid = center_pile(SIZE, SIZE, GRAINS)
    oracle = stabilize(grid.copy())
    print(f"stabilising {SIZE}x{SIZE} with {GRAINS} centre grains on 4 simulated ranks\n")

    for net_name, cost_model in NETWORKS.items():
        t = Table(
            ["halo depth", "supersteps", "iterations", "messages", "traffic", "virtual time"],
            title=f"halo-depth sweep on {net_name}",
        )
        best = None
        for depth in (1, 2, 4, 8):
            res = run_distributed(grid, 4, halo_depth=depth, cost_model=cost_model)
            assert np.array_equal(res.final.interior, oracle.interior), "wrong fixpoint!"
            t.add_row([depth, res.supersteps, res.iterations, res.messages,
                       format_bytes(res.comm_bytes), format_duration(res.makespan)])
            if best is None or res.makespan < best[1]:
                best = (depth, res.makespan)
        print(t.render())
        print(f"=> best halo depth on this network: {best[0]}\n")

    print("lesson: deeper halos trade redundant rows of computation for")
    print("fewer, larger messages — worth it exactly when messages are expensive.")


if __name__ == "__main__":
    main()
