#!/usr/bin/env python
"""The Abelian sandpile assignment, end to end (Sec. II of the paper).

Reproduces both Fig. 1 configurations as PPM images, compares every
kernel variant of the four course assignments on the same input, and
renders the sandpile group's identity element — the fractal students
love.

Usage::

    python examples/sandpile_fractal.py [output_dir]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.common.colors import sandpile_to_rgb, write_ppm
from repro.easypap.display import upscale
from repro.sandpile import center_pile, identity, run_to_fixpoint, uniform


def fig1_images(outdir: Path) -> None:
    print("-- Fig. 1: the two stable 128x128 configurations")
    for name, grid in [
        ("fig1a_center25000", center_pile(128, 128, 25_000)),
        ("fig1b_uniform4", uniform(128, 128, 4)),
    ]:
        result = run_to_fixpoint(grid, "asandpile", "lazy", tile_size=16)
        counts = np.bincount(grid.interior.ravel(), minlength=4)
        path = outdir / f"{name}.ppm"
        write_ppm(path, upscale(sandpile_to_rgb(grid.interior), 4))
        print(f"   {name}: {result.iterations} iterations, "
              f"colours 0/1/2/3 = {counts[0]}/{counts[1]}/{counts[2]}/{counts[3]} -> {path}")


def variant_shootout() -> None:
    print("-- All variants on one 128x128 centre pile (30 000 grains)")
    variants = [
        ("sandpile", "vec", {}),
        ("sandpile", "split", {"tile_size": 16}),
        ("sandpile", "tiled", {"tile_size": 16}),
        ("sandpile", "lazy", {"tile_size": 16}),
        ("sandpile", "omp", {"tile_size": 16, "nworkers": 4}),
        ("asandpile", "vec", {}),
        ("asandpile", "tiled", {"tile_size": 16}),
        ("asandpile", "lazy", {"tile_size": 16}),
    ]
    reference = None
    for kernel, variant, opts in variants:
        grid = center_pile(128, 128, 30_000)
        t0 = time.perf_counter()
        result = run_to_fixpoint(grid, kernel, variant, **opts)
        dt = time.perf_counter() - t0
        if reference is None:
            reference = grid.interior.copy()
        agrees = np.array_equal(grid.interior, reference)
        print(f"   {kernel}/{variant:6s}: {dt:6.2f}s, {result.iterations:5d} iterations, "
              f"fixpoint identical: {agrees}")
        assert agrees, "Dhar's theorem violated — a kernel has a bug!"


def identity_fractal(outdir: Path) -> None:
    print("-- The sandpile group identity on 128x128 (the hidden fractal)")
    t0 = time.perf_counter()
    e = identity(128, 128)
    dt = time.perf_counter() - t0
    path = outdir / "identity_128.ppm"
    write_ppm(path, upscale(sandpile_to_rgb(e.interior), 4))
    print(f"   computed in {dt:.1f}s, {e.total_grains()} grains -> {path}")


if __name__ == "__main__":
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    outdir.mkdir(parents=True, exist_ok=True)
    fig1_images(outdir)
    variant_shootout()
    identity_fractal(outdir)
