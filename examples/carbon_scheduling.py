#!/usr/bin/env python
"""The carbon-footprint assignment, end to end (Sec. IV of the paper).

Answers every question of both tabs against the calibrated Montage-738
scenario: the Tab-1 baseline and power-management options, and the Tab-2
cloud-placement baselines, first-two-levels comparison, and a treasure
hunt for the CO2 minimum.

Usage::

    python examples/carbon_scheduling.py [--hunt-resolution N]
"""

import argparse

from repro.carbon import (
    DEFAULT_SCENARIO,
    baseline_summary,
    question1_baseline,
    question1_baselines,
    question2_first_two_levels,
    question3_comparison,
    tab1_table,
    tab2_table,
    tab2_exhaustive_optimum,
)
from repro.common.units import format_co2, format_duration


def tab1() -> None:
    print("#" * 70)
    print("# Tab 1 — the local cluster, 64 nodes, 291 gCO2e/kWh")
    print("#" * 70)
    baseline = question1_baseline()
    print("Q1.", baseline_summary(baseline))
    options = question3_comparison()
    print(tab1_table(options, bound=DEFAULT_SCENARIO.time_bound))
    h = options["heuristic"]
    saved = options["power-off"].co2_grams - h.co2_grams
    print(f"Q3 verdict: the combined heuristic ({h.n_nodes} nodes @ p{h.pstate}) saves "
          f"{format_co2(saved)} over the best single lever — combining "
          f"power management techniques is useful.\n")


def tab2(hunt_resolution: int) -> None:
    print("#" * 70)
    print("# Tab 2 — 12 local nodes @ lowest p-state + 16 green cloud VMs")
    print("#" * 70)
    baselines = question1_baselines()
    print(tab2_table(list(baselines.values())))
    local, cloud = baselines["all-local"], baselines["all-cloud"]
    print(f"Q1 verdict: the cloud is greener "
          f"({format_co2(cloud.co2_grams)} vs {format_co2(local.co2_grams)}) but slower "
          f"({format_duration(cloud.makespan)} vs {format_duration(local.makespan)}) "
          f"behind the limited link.\n")

    print(tab2_table(list(question2_first_two_levels().values())))
    print()

    print(f"Treasure hunt: sweeping per-level cloud fractions "
          f"({hunt_resolution} steps x 3 wide levels = {hunt_resolution ** 3} simulations)...")
    best, results = tab2_exhaustive_optimum(resolution=hunt_resolution)
    print(tab2_table(results, top=8))
    print(f"Optimal schedule found: {best.label} ({best.description})")
    print(f"  time {format_duration(best.makespan)}, {format_co2(best.co2_grams)} — "
          f"{format_co2(min(local.co2_grams, cloud.co2_grams) - best.co2_grams)} below the "
          f"best pure option.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--hunt-resolution", type=int, default=5)
    args = parser.parse_args()
    tab1()
    tab2(args.hunt_resolution)
