#!/usr/bin/env python
"""The Warming-Stripes assignment, end to end (Sec. III of the paper).

Walks the four data-science phases — acquisition, pre-processing,
analysis (MapReduce), validation — twice: once on clean 1881-2019 data
(producing the Fig. 6 image) and once reproducing the missing-winter-2020
lesson, where the naive annual mean comes out too warm.

Usage::

    python examples/warming_stripes.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.climate import run_warming_stripes_workflow, seasonal_bias_estimate


def clean_run(outdir: Path) -> None:
    print("-- Fig. 6: Germany 1881-2019")
    wf = run_warming_stripes_workflow(first_year=1881, last_year=2019, seed=42)
    s = wf.stripes
    print(f"   phase 1 (acquire)   : {wf.dataset.temps.shape[0]} years x 12 months x "
          f"{len(wf.dataset.states)} states")
    print(f"   phase 2 (preprocess): {len(wf.input_lines)} text lines in 12 month-files")
    print(f"   phase 3 (analyze)   : "
          f"{wf.job_result.counters.value('task', 'map_output_records')} mapper outputs -> "
          f"{len(wf.annual_means)} annual means")
    print(f"   phase 4 (validate)  : {wf.quality.summary()}")
    print(f"   colourbar [{s.vmin:.2f}, {s.vmax:.2f}] degC; trend {s.trend_degrees():+.2f} degC")
    print(f"   {s.ascii()}")
    path = outdir / "fig6_warming_stripes.ppm"
    s.save_ppm(path, height=120, stripe_width=6)
    print(f"   image -> {path}")


def missing_winter_lesson() -> None:
    print("-- The 2020 lesson: missing winter months bias the mean warm")
    wf = run_warming_stripes_workflow(
        first_year=2000, last_year=2020, seed=7, with_missing_winter=2020
    )
    print(f"   validation flags: {wf.quality.summary()}")
    recent = float(np.mean([wf.annual_means[y] for y in range(2015, 2020)]))
    naive_2020 = wf.annual_means[2020]
    predicted_bias = seasonal_bias_estimate(list(range(1, 11)))  # Jan..Oct present
    print(f"   2015-2019 mean        : {recent:.2f} degC")
    print(f"   naive 2020 mean       : {naive_2020:.2f} degC "
          f"({naive_2020 - recent:+.2f} vs neighbours)")
    print(f"   climatological warning: Jan-Oct-only means run {predicted_bias:+.2f} degC warm")
    print("   => always check sample counts before trusting an aggregate!")


def global_stripes(outdir: Path) -> None:
    print("-- going global: the same job on a GISTEMP-like anomaly source")
    from repro.climate import WarmingStripes, global_annual_mean_job, global_anomaly_file
    from repro.mapreduce.engine import run_job
    from repro.mapreduce.textio import text_splits

    lines = list(global_anomaly_file(1880, 2019))
    result = run_job(global_annual_mean_job(), text_splits(lines, 12))
    stripes = WarmingStripes.from_annual_means(
        {int(k): float(v) for k, v in result.pairs}
    )
    print(f"   140 global annual anomalies; trend {stripes.trend_degrees():+.2f} degC")
    print(f"   {stripes.ascii()}")
    path = outdir / "global_stripes.ppm"
    stripes.save_ppm(path, height=120, stripe_width=6)
    bars = outdir / "global_bars.ppm"
    from repro.common.colors import write_ppm

    write_ppm(bars, stripes.bars_image(baseline=(1880, 1909), height=160, stripe_width=6))
    print(f"   images -> {path} and {bars} (the 'bars' variant)")


if __name__ == "__main__":
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    outdir.mkdir(parents=True, exist_ok=True)
    clean_run(outdir)
    missing_winter_lesson()
    global_stripes(outdir)
