#!/usr/bin/env python
"""Trace explorer: compare two scheduling policies through `repro.obs`.

The Fig. 3 classroom exercise — "run the same workload under two OpenMP
schedules and explain the Gantt charts" — done with the observability
subsystem instead of eyeballs:

1. stabilise the same sandpile twice on the *simulated* backend (virtual
   clocks, so the comparison is deterministic and machine-independent),
   once with ``policy="static"`` and once with ``policy="dynamic"``;
2. pick the iteration where static scheduling is most imbalanced (lazy
   tile skipping makes per-worker loads uneven) and summarise it under
   both policies;
3. diff the two summaries side by side (makespan ratio, per-lane busy%);
4. render the ASCII timeline of that iteration for each policy;
5. export the two timelines as Chrome trace-event JSON — load them at
   https://ui.perfetto.dev to scrub the same iteration interactively.

Usage::

    python examples/trace_explorer.py [output-dir]
"""

import sys
from pathlib import Path

from repro.easypap.monitor import Trace
from repro.obs import Tracer, ascii_timeline, diff_summaries, save_chrome_trace, summarize
from repro.obs.adapters.easypap import trace_to_tracer
from repro.sandpile import center_pile, run_to_fixpoint


def traced_run(policy: str) -> tuple[Tracer, int]:
    """Stabilise the same centre pile under one schedule; return its tracer."""
    grid = center_pile(48, 48, 4_000)
    trace = Trace()
    result = run_to_fixpoint(
        grid,
        "sandpile",
        "omp",
        tile_size=8,
        nworkers=4,
        policy=policy,
        backend="simulated",
        lazy=True,          # uneven tile activity -> the schedules actually differ
        trace=trace,
    )
    return trace_to_tracer(trace), result.iterations


def iteration_view(tracer: Tracer, iteration: int) -> Tracer:
    """One iteration's spans as their own tracer (timelines, export)."""
    sub = Tracer(process="easypap")
    sub.absorb([s for s in tracer.spans() if s.args["iteration"] == iteration])
    return sub


def summarize_iteration(tracer: Tracer, iteration: int):
    return summarize(tracer, where=lambda s: s.args["iteration"] == iteration)


def main(argv: list[str]) -> int:
    out_dir = Path(argv[0]) if argv else Path(".")

    tracers = {}
    iterations = 0
    for policy in ("static", "dynamic"):
        tracers[policy], iterations = traced_run(policy)
        print(f"{policy:>8}: stable after {iterations} iterations, "
              f"{len(tracers[policy].spans())} tile tasks traced")

    # the iteration where the static schedule hurts the most: virtual
    # clocks make this a property of the workload, not of this machine
    pick = max(
        range(iterations),
        key=lambda i: summarize_iteration(tracers["static"], i).imbalance,
    )
    print(f"most static-imbalanced iteration: {pick}\n")

    summaries = {p: summarize_iteration(t, pick) for p, t in tracers.items()}
    for policy, s in summaries.items():
        print(s.render(title=f"{policy} iteration {pick}"))
    print()

    diff = diff_summaries(
        summaries["static"], summaries["dynamic"],
        left_name="static", right_name="dynamic",
    )
    print(diff.render())
    print()

    for policy, tracer in tracers.items():
        print(f"{policy} iteration {pick}:")
        print(ascii_timeline(iteration_view(tracer, pick), width=64))
        print()

    for policy, tracer in tracers.items():
        path = out_dir / f"trace_{policy}.json"
        save_chrome_trace(iteration_view(tracer, pick), path)
        print(f"wrote {path} — open it at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
