#!/usr/bin/env python
"""MapReduce from first principles: wordcount three ways.

The "Hello World!" of the paradigm, run through every layer of the
engine:

1. the structured API (mapper/combiner/reducer objects);
2. the Hadoop-streaming line protocol (what students actually write);
3. the simulated cluster with injected failures and stragglers —
   demonstrating that re-execution-based fault tolerance leaves the
   output bit-identical.

Usage::

    python examples/mapreduce_wordcount.py
"""

from repro.mapreduce import (
    ClusterConfig,
    MapReduceJob,
    SimulatedCluster,
    group_sorted_lines,
    run_job,
    run_streaming,
    text_splits,
)

DOCUMENT = """the quick brown fox jumps over the lazy dog
the dog barks and the fox runs
big data is just many small data
the mapreduce paradigm maps then reduces""".splitlines()


def structured() -> dict:
    print("-- 1. structured API")

    def mapper(_offset, line):
        for word in str(line).split():
            yield word, 1

    def reducer(word, counts):
        yield word, sum(counts)

    job = MapReduceJob(mapper=mapper, reducer=reducer, combiner=reducer, num_reducers=2)
    result = run_job(job, text_splits(DOCUMENT, 3))
    top = sorted(result.pairs, key=lambda kv: -kv[1])[:5]
    print(f"   {result.counters.value('task', 'map_output_records')} mapped records, "
          f"{result.counters.value('task', 'shuffle_records')} shuffled "
          f"(combiner at work), top words: {top}")
    return result.as_dict()


def streaming(expected: dict) -> None:
    print("-- 2. Hadoop-streaming protocol (cat | mapper | sort | reducer)")

    def stream_mapper(lines):
        for line in lines:
            for word in line.split():
                yield f"{word}\t1"

    def stream_reducer(lines):
        for word, ones in group_sorted_lines(lines):
            yield f"{word}\t{len(ones)}"

    out = run_streaming(stream_mapper, stream_reducer, DOCUMENT)
    parsed = {k: int(v) for k, v in (line.split("\t") for line in out)}
    assert parsed == expected, "streaming and structured answers diverge!"
    print(f"   {len(out)} output lines, identical to the structured run: True")


def chaos_cluster(expected: dict) -> None:
    print("-- 3. simulated cluster with failures and stragglers")

    def mapper(_offset, line):
        for word in str(line).split():
            yield word, 1

    def reducer(word, counts):
        yield word, sum(counts)

    job = MapReduceJob(mapper=mapper, reducer=reducer, num_reducers=2)
    cfg = ClusterConfig(n_workers=4, failure_prob=0.3, straggler_prob=0.3, seed=13)
    result, report = SimulatedCluster(cfg).run(job, text_splits(DOCUMENT, 4))
    print(f"   {len(report.attempts)} task attempts, {report.failures} failed and were "
          f"re-executed, {report.stragglers} straggled "
          f"(virtual makespan {report.makespan:.3f}s)")
    assert result.as_dict() == expected, "fault tolerance broke the output!"
    print("   output identical to the clean run: True")


if __name__ == "__main__":
    expected = structured()
    streaming(expected)
    chaos_cluster(expected)
