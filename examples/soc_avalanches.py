#!/usr/bin/env python
"""Self-organised criticality: the physics behind the sandpile assignment.

Bak, Tang and Wiesenfeld invented the model the first assignment
simulates; this example shows why it is famous.  A pile driven by single
grains organises itself into a critical state whose avalanches have no
typical size — the distribution is (approximately) a power law, and the
largest events span the whole system.

Also renders the toppling profile of a centre pile, whose level sets are
the rings of Fig. 1a.

Usage::

    python examples/soc_avalanches.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.common.colors import write_ppm
from repro.common.tables import Table, histogram_bar
from repro.sandpile import avalanche_statistics, center_pile, toppling_profile


def avalanche_demo() -> None:
    print("-- driving a critical 48x48 pile with 2000 single grains")
    stats = avalanche_statistics(48, 48, n_drops=2000, seed=7)
    print(f"   quiescent drops : {100 * stats.quiescent_fraction:.0f}%")
    print(f"   mean avalanche  : {stats.mean_size:.1f} topplings")
    print(f"   largest         : {stats.max_size} topplings "
          f"({stats.max_size / 48**2:.1f}x the cell count)")
    print(f"   CCDF slope      : {stats.power_law_slope():.2f} (log-log)")
    print()
    rows = stats.size_histogram(n_bins=10)
    peak = max(c for _, _, c in rows) if rows else 1
    t = Table(["avalanche size", "count", "histogram"], title="log-binned avalanche sizes")
    for lo, hi, count in rows:
        t.add_row([f"{lo}-{hi}", count, histogram_bar(count, peak, width=30)])
    print(t.render())
    print()


def toppling_rings(outdir: Path) -> None:
    print("-- toppling profile of a 129x129 centre pile (the Fig. 1a rings)")
    grid = center_pile(129, 129, 60_000)
    profile = toppling_profile(grid)
    # render the profile with a logarithmic grey ramp
    logp = np.log1p(profile.astype(float))
    img = np.zeros((*profile.shape, 3), dtype=np.uint8)
    if logp.max() > 0:
        level = (255 * logp / logp.max()).astype(np.uint8)
        img[..., 0] = level
        img[..., 1] = (level * 0.7).astype(np.uint8)
        img[..., 2] = 255 - level
    path = outdir / "toppling_profile.ppm"
    write_ppm(path, img)
    centre_topples = int(profile[64, 64])
    print(f"   centre cell toppled {centre_topples} times; edge cells "
          f"{int(profile[0, 64])} times -> {path}")


if __name__ == "__main__":
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    outdir.mkdir(parents=True, exist_ok=True)
    avalanche_demo()
    toppling_rings(outdir)
