#!/usr/bin/env python
"""Quickstart: a two-minute tour of all three assignments.

Runs a small instance of each system:

1. Abelian sandpile — stabilise a centre pile and render it in ASCII;
2. Warming stripes — the MapReduce climate pipeline on 70 years of data;
3. Carbon scheduling — the Tab-1 power-management comparison.

Usage::

    python examples/quickstart.py
"""

from repro.carbon import DEFAULT_SCENARIO, baseline_summary, question1_baseline, question3_comparison, tab1_table
from repro.climate import run_warming_stripes_workflow
from repro.common.colors import ascii_render
from repro.sandpile import center_pile, run_to_fixpoint


def sandpile_demo() -> None:
    print("=" * 70)
    print("1. Abelian sandpile: 10 000 grains dropped on the centre of 64x64")
    print("=" * 70)
    grid = center_pile(64, 64, 10_000)
    result = run_to_fixpoint(grid, "asandpile", "lazy", tile_size=8)
    print(f"stable after {result.iterations} iterations "
          f"({100 * result.skip_fraction:.0f}% of tile visits skipped lazily)")
    print(ascii_render(grid.interior, max_size=64))
    print()


def stripes_demo() -> None:
    print("=" * 70)
    print("2. Warming stripes: Germany 1950-2019 via MapReduce")
    print("=" * 70)
    wf = run_warming_stripes_workflow(first_year=1950, last_year=2019, seed=42)
    s = wf.stripes
    print(f"{len(wf.annual_means)} annual means, colourbar "
          f"[{s.vmin:.2f}, {s.vmax:.2f}] degC, trend {s.trend_degrees():+.2f} degC")
    print(f"data quality: {wf.quality.summary()}")
    print(s.ascii())
    print()


def carbon_demo() -> None:
    print("=" * 70)
    print("3. Carbon-aware scheduling: Montage-738 on the 64-node cluster")
    print("=" * 70)
    print("Q1 baseline:", baseline_summary(question1_baseline()))
    print(tab1_table(question3_comparison(), bound=DEFAULT_SCENARIO.time_bound))
    print()


if __name__ == "__main__":
    sandpile_demo()
    stripes_demo()
    carbon_demo()
    print("done — see the other examples for each system in depth.")
