"""Execution platforms: sites of compute resources joined by a link.

The assignment's platform has two sites:

* a **local cluster** of up to 64 single-task nodes, each configurable to
  one of seven p-states (all powered-on nodes share one p-state — "the
  cluster is homogeneous"), powered by a 291 gCO2e/kWh plant;
* a **remote cloud** of up to 16 virtual machine instances on green
  (low-carbon) physical hosts, reachable over a limited-bandwidth link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.wrench.network import Link
from repro.wrench.power import PowerModel, PState

__all__ = ["ComputeResource", "Site", "Platform", "LOCAL", "CLOUD"]

LOCAL = "local"
CLOUD = "cloud"


@dataclass
class ComputeResource:
    """One single-task execution slot (a cluster node or a cloud VM)."""

    name: str
    site: str
    pstate: PState
    available_at: float = 0.0
    busy_time: float = 0.0
    tasks_run: int = 0

    @property
    def speed(self) -> float:
        """Compute speed at the current p-state, in flop/s."""
        return self.pstate.speed


@dataclass
class Site:
    """A named pool of resources with one carbon intensity."""

    name: str
    resources: list[ComputeResource] = field(default_factory=list)
    carbon_intensity: float = 0.0  # gCO2e per kWh
    #: power drawn by site infrastructure regardless of load (watts); kept 0
    #: by default so single-site closed-form energy checks stay simple
    overhead_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.carbon_intensity < 0:
            raise ConfigurationError("carbon intensity cannot be negative")

    @property
    def n_resources(self) -> int:
        """Number of compute resources at the site."""
        return len(self.resources)


@dataclass
class Platform:
    """Sites plus the wide-area link joining them."""

    sites: dict[str, Site]
    link: Link

    def site(self, name: str) -> Site:
        """Look up a site by name; raises on unknown names."""
        try:
            return self.sites[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown site {name!r}; have {sorted(self.sites)}"
            ) from None

    def all_resources(self) -> list[ComputeResource]:
        """Every resource across all sites."""
        return [r for s in self.sites.values() for r in s.resources]


def make_cluster_site(
    n_nodes: int,
    pstate_index: int,
    *,
    power_model: PowerModel | None = None,
    carbon_intensity: float = 291.0,
) -> Site:
    """The assignment's local cluster: *n_nodes* powered-on homogeneous nodes.

    ``pstate_index`` follows the paper's convention: the *highest* p-state
    (index ``n_pstates - 1``) is the fastest.  Powered-off nodes simply do
    not appear (they draw no power).
    """
    pm = power_model or PowerModel()
    states = pm.pstates()
    if not (0 <= pstate_index < len(states)):
        raise ConfigurationError(
            f"p-state {pstate_index} out of range 0..{len(states) - 1}"
        )
    if n_nodes < 0:
        raise ConfigurationError("node count cannot be negative")
    ps = states[pstate_index]
    return Site(
        name=LOCAL,
        resources=[ComputeResource(f"node_{i:02d}", LOCAL, ps) for i in range(n_nodes)],
        carbon_intensity=carbon_intensity,
    )


def make_cloud_site(
    n_vms: int,
    *,
    vm_speed: float = 80e9,
    vm_busy_watts: float = 150.0,
    vm_idle_watts: float = 70.0,
    carbon_intensity: float = 20.0,
) -> Site:
    """The remote green cloud: *n_vms* fixed-speed VM instances.

    VMs are slightly slower than a top-p-state cluster node (they are
    shares of virtualised hosts) and their physical hosts run on a green
    source, so the site carbon intensity is low but not zero (embodied
    transmission/overheads).
    """
    if n_vms < 0:
        raise ConfigurationError("VM count cannot be negative")
    ps = PState(index=0, speed=vm_speed, busy_power=vm_busy_watts, idle_power=vm_idle_watts)
    return Site(
        name=CLOUD,
        resources=[ComputeResource(f"vm_{i:02d}", CLOUD, ps) for i in range(n_vms)],
        carbon_intensity=carbon_intensity,
    )


def make_platform(
    *,
    cluster_nodes: int = 64,
    cluster_pstate: int = 6,
    cloud_vms: int = 0,
    link_bandwidth: float = 100e6,
    link_latency: float = 0.01,
    power_model: PowerModel | None = None,
    cluster_carbon_intensity: float = 291.0,
    cloud_carbon_intensity: float = 20.0,
) -> Platform:
    """Assemble the assignment's two-site platform."""
    sites: dict[str, Site] = {}
    sites[LOCAL] = make_cluster_site(
        cluster_nodes,
        cluster_pstate,
        power_model=power_model,
        carbon_intensity=cluster_carbon_intensity,
    )
    sites[CLOUD] = make_cloud_site(cloud_vms, carbon_intensity=cloud_carbon_intensity)
    return Platform(sites=sites, link=Link(bandwidth=link_bandwidth, latency=link_latency))
