"""The discrete-event workflow execution simulator.

This is the WRENCH/SimGrid stand-in: given a :class:`~repro.wrench.platform.Platform`,
a :class:`~repro.wrench.workflow.Workflow`, and a *placement* (task ->
site), it simulates a greedy list-scheduled execution and reports the
three numbers the assignment's in-browser simulator shows students —
"execution time, power consumed, and gCO2e generated" — plus per-task and
per-transfer records for deeper analysis.

Execution model (deliberately WRENCH-like but minimal):

* every resource (cluster node / cloud VM) runs one task at a time;
* a task may start when all parents are done and a resource of its
  placed site is idle; ties break by (level, name) so runs are fully
  deterministic;
* inputs missing at the task's site are fetched over the shared FCFS
  link before computing (and cached at the site — data locality);
* energy integrates busy/idle power per resource over the makespan;
  CO2 = energy x site carbon intensity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import grams_co2e
from repro.wrench.platform import LOCAL, Platform
from repro.wrench.storage import StorageService
from repro.wrench.workflow import Task, Workflow

__all__ = ["TaskExecution", "SimulationResult", "WorkflowSimulation", "simulate", "FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Transient task-failure injection (WRENCH's host-failure teaching case).

    Each *attempt* of a task fails independently with ``failure_prob``;
    failures surface after ``detect_factor`` of the attempt's compute time
    (a heartbeat timeout), and the task is retried on the next free
    resource of its site, up to ``max_attempts``.  Failure draws are keyed
    by ``(seed, task name, attempt)`` so they do not depend on dispatch
    order — runs stay deterministic and placement-comparable.
    """

    failure_prob: float = 0.0
    max_attempts: int = 4
    detect_factor: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.failure_prob < 1.0):
            raise ConfigurationError("failure_prob must be in [0, 1)")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not (0.0 < self.detect_factor <= 1.0):
            raise ConfigurationError("detect_factor must be in (0, 1]")

    def attempt_fails(self, task_name: str, attempt: int) -> bool:
        """Deterministic failure draw for (task, attempt)."""
        if self.failure_prob == 0.0:
            return False
        if attempt >= self.max_attempts:
            return False  # the final permitted attempt always succeeds
        from repro.common.rng import derive_seed, make_rng

        rng = make_rng(derive_seed(self.seed, task_name, attempt))
        return bool(rng.random() < self.failure_prob)


@dataclass(frozen=True)
class TaskExecution:
    """Timing record of one executed task attempt."""

    task: str
    category: str
    level: int
    site: str
    resource: str
    ready: float
    start: float
    compute_start: float
    end: float
    attempt: int = 1
    failed: bool = False

    @property
    def transfer_time(self) -> float:
        """Seconds spent fetching inputs before computing."""
        return self.compute_start - self.start

    @property
    def compute_time(self) -> float:
        """Seconds spent computing (transfers excluded)."""
        return self.end - self.compute_start


@dataclass
class SimulationResult:
    """Outputs of one simulated execution."""

    makespan: float
    executions: list[TaskExecution]
    energy_joules: dict[str, float]
    co2_grams: dict[str, float]
    link_bytes: float
    link_busy: float

    @property
    def total_energy(self) -> float:
        """Energy over all sites, in joules."""
        return sum(self.energy_joules.values())

    @property
    def total_co2(self) -> float:
        """CO2 over all sites, in grams."""
        return sum(self.co2_grams.values())

    @property
    def mean_power_watts(self) -> float:
        """Average platform power draw over the makespan."""
        return self.total_energy / self.makespan if self.makespan > 0 else 0.0

    def site_task_counts(self) -> dict[str, int]:
        """Successful task count per site."""
        counts: dict[str, int] = {}
        for ex in self.executions:
            if not ex.failed:
                counts[ex.site] = counts.get(ex.site, 0) + 1
        return counts

    @property
    def failures(self) -> int:
        """Number of failed task attempts (0 without a fault model)."""
        return sum(1 for ex in self.executions if ex.failed)


class WorkflowSimulation:
    """One executable simulation instance (platform state is consumed)."""

    def __init__(
        self,
        platform: Platform,
        workflow: Workflow,
        placement: dict[str, str] | None = None,
        *,
        initial_data_site: str = LOCAL,
        fault_model: FaultModel | None = None,
    ) -> None:
        self.platform = platform
        self.workflow = workflow
        self.placement = dict(placement or {})
        self.initial_data_site = initial_data_site
        self.fault_model = fault_model
        # default placement: everything local
        for t in workflow.tasks:
            self.placement.setdefault(t.name, LOCAL)
        for name, site in self.placement.items():
            if site not in platform.sites:
                raise ConfigurationError(f"task {name!r} placed on unknown site {site!r}")
            if platform.site(site).n_resources == 0:
                raise ConfigurationError(
                    f"task {name!r} placed on site {site!r} which has no resources"
                )

    # -- internals ------------------------------------------------------------------

    def _dispatch(
        self,
        task: Task,
        resource,
        now: float,
        ready_time: float,
        storages: dict[str, StorageService],
        levels: dict[str, int],
        attempt: int = 1,
    ) -> TaskExecution:
        site = resource.site
        store = storages[site]
        start = now
        compute_start = start
        for f in sorted(task.inputs, key=lambda f: f.name):
            if store.has(f.name):
                continue
            src = next((s for s, st in storages.items() if st.has(f.name)), None)
            if src is None:
                raise SimulationError(f"input {f.name!r} of {task.name!r} exists nowhere")
            end = self.platform.link.transfer(f.name, f.size, compute_start, src, site)
            store.put(f.name, f.size)
            compute_start = end
        duration = task.flops / resource.speed
        failed = (
            self.fault_model is not None
            and self.fault_model.attempt_fails(task.name, attempt)
        )
        if failed:
            # the failure surfaces part-way through; no outputs materialise
            duration *= self.fault_model.detect_factor
        end = compute_start + duration
        resource.available_at = end
        resource.busy_time += duration
        resource.tasks_run += 1
        if not failed:
            for f in task.outputs:
                store.put(f.name, f.size)
        return TaskExecution(
            task=task.name,
            category=task.category,
            level=levels[task.name],
            site=site,
            resource=resource.name,
            ready=ready_time,
            start=start,
            compute_start=compute_start,
            end=end,
            attempt=attempt,
            failed=failed,
        )

    # -- public ----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the batch; returns the resulting schedule placement."""
        wf = self.workflow
        graph = wf.graph()
        levels = wf.levels()
        storages = {name: StorageService(name) for name in self.platform.sites}
        for f in wf.input_files():
            storages[self.initial_data_site].put(f.name, f.size)

        remaining = {name: graph.in_degree(name) for name in graph.nodes}
        ready_time = {name: 0.0 for name in graph.nodes}
        # per-site priority queues of ready tasks, keyed (level, name)
        site_names = sorted(self.platform.sites)
        pending: dict[str, list[tuple[int, str]]] = {s: [] for s in site_names}
        n_pending = 0
        for n, d in remaining.items():
            if d == 0:
                heapq.heappush(pending[self.placement[n]], (levels[n], n))
                n_pending += 1
        # per-site pools of idle resources (order by name for determinism)
        idle: dict[str, list] = {
            s: sorted(self.platform.site(s).resources, key=lambda r: r.name, reverse=True)
            for s in site_names
        }
        events: list[tuple[float, int, str, object]] = []
        seq = 0
        executions: list[TaskExecution] = []
        now = 0.0

        attempts = {name: 0 for name in graph.nodes}

        def try_dispatch() -> None:
            nonlocal seq, n_pending
            for site in site_names:
                queue = pending[site]
                free = idle[site]
                while queue and free:
                    _, name = heapq.heappop(queue)
                    resource = free.pop()
                    n_pending -= 1
                    attempts[name] += 1
                    ex = self._dispatch(
                        wf.task(name), resource, now, ready_time[name], storages, levels,
                        attempt=attempts[name],
                    )
                    executions.append(ex)
                    heapq.heappush(events, (ex.end, seq, name, resource, ex.failed))
                    seq += 1

        try_dispatch()
        while events:
            now, _, done, resource, failed = heapq.heappop(events)
            idle[resource.site].append(resource)
            if failed:
                # re-execution: the task goes back in its site's queue
                ready_time[done] = now
                heapq.heappush(pending[self.placement[done]], (levels[done], done))
                n_pending += 1
            else:
                for child in graph.successors(done):
                    remaining[child] -= 1
                    if remaining[child] == 0:
                        ready_time[child] = now
                        heapq.heappush(pending[self.placement[child]], (levels[child], child))
                        n_pending += 1
            try_dispatch()

        if n_pending or any(v > 0 for v in remaining.values()):
            stuck = [n for n, v in remaining.items() if v > 0]
            raise SimulationError(f"simulation stalled; unfinished tasks: {stuck[:5]}...")

        makespan = max((ex.end for ex in executions), default=0.0)
        energy: dict[str, float] = {}
        co2: dict[str, float] = {}
        for site_name, site in self.platform.sites.items():
            e = 0.0
            for r in site.resources:
                idle_time = max(makespan - r.busy_time, 0.0)
                e += r.busy_time * r.pstate.busy_power + idle_time * r.pstate.idle_power
            e += site.overhead_watts * makespan
            energy[site_name] = e
            co2[site_name] = grams_co2e(e, site.carbon_intensity)

        return SimulationResult(
            makespan=makespan,
            executions=executions,
            energy_joules=energy,
            co2_grams=co2,
            link_bytes=self.platform.link.total_bytes,
            link_busy=self.platform.link.busy_time,
        )


def simulate(
    workflow: Workflow,
    platform: Platform,
    placement: dict[str, str] | None = None,
    *,
    initial_data_site: str = LOCAL,
    fault_model: FaultModel | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`WorkflowSimulation`."""
    return WorkflowSimulation(
        platform,
        workflow,
        placement,
        initial_data_site=initial_data_site,
        fault_model=fault_model,
    ).run()
