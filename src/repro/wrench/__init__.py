"""A WRENCH/SimGrid-like workflow-execution simulator, from scratch.

The carbon-footprint assignment (Sec. IV of the paper) runs on WRENCH +
SimGrid behind the EduWRENCH site.  This package is the offline
replacement: platforms of p-state-configurable cluster nodes and green
cloud VMs (:mod:`~repro.wrench.platform`, :mod:`~repro.wrench.power`),
a bandwidth-limited shared link (:mod:`~repro.wrench.network`), per-site
storage with data locality (:mod:`~repro.wrench.storage`), Montage-like
workflow DAGs (:mod:`~repro.wrench.workflow`), placement policies
(:mod:`~repro.wrench.scheduler`), and the greedy list-scheduled
discrete-event execution engine with energy/CO2 accounting
(:mod:`~repro.wrench.simulation`).
"""

from repro.wrench.analysis import (
    EnergyBreakdown,
    LevelRow,
    MakespanBounds,
    bounds,
    energy_breakdown,
    level_gantt_ascii,
    level_timeline,
    utilization,
)
from repro.wrench.heft import heft_placement, upward_ranks
from repro.wrench.network import Link, TransferRecord
from repro.wrench.platform import (
    CLOUD,
    LOCAL,
    ComputeResource,
    Platform,
    Site,
    make_cloud_site,
    make_cluster_site,
    make_platform,
)
from repro.wrench.power import PowerModel, PState, default_pstates
from repro.wrench.scheduler import (
    describe_placement,
    place_all,
    place_level_fractions,
    place_levels,
)
from repro.wrench.simulation import (
    FaultModel,
    SimulationResult,
    TaskExecution,
    WorkflowSimulation,
    simulate,
)
from repro.wrench.storage import StorageService
from repro.wrench.workflow import Task, Workflow, WorkflowFile, montage_workflow

__all__ = [
    "LevelRow",
    "EnergyBreakdown",
    "energy_breakdown",
    "MakespanBounds",
    "bounds",
    "level_gantt_ascii",
    "level_timeline",
    "utilization",
    "heft_placement",
    "upward_ranks",
    "Link",
    "TransferRecord",
    "LOCAL",
    "CLOUD",
    "ComputeResource",
    "Site",
    "Platform",
    "make_cluster_site",
    "make_cloud_site",
    "make_platform",
    "PState",
    "PowerModel",
    "default_pstates",
    "place_all",
    "place_levels",
    "place_level_fractions",
    "describe_placement",
    "SimulationResult",
    "FaultModel",
    "TaskExecution",
    "WorkflowSimulation",
    "simulate",
    "StorageService",
    "Task",
    "Workflow",
    "WorkflowFile",
    "montage_workflow",
]
