"""List-scheduling placement heuristics (HEFT and a carbon-aware variant).

The assignment has students hand-craft placements; a production workflow
system would compute them.  This module implements the classic baseline —
HEFT [Topcuoglu et al. 2002]: order tasks by *upward rank* (critical-path
distance to the exit), then greedily assign each to the resource with the
earliest estimated finish time — plus a carbon-aware twist that scores
candidate sites by estimated incremental CO2 instead of finish time
(subject to not blowing up the makespan estimate).

These produce *placements* consumed by the same simulator as the manual
options, so heuristics, hand-crafted schedules, and the exhaustive optimum
are all comparable on equal footing (see the C6 ablation bench).
"""

from __future__ import annotations

import heapq

from repro.common.errors import ConfigurationError
from repro.common.units import grams_co2e
from repro.wrench.platform import Platform
from repro.wrench.workflow import Workflow

__all__ = ["upward_ranks", "heft_placement"]


def upward_ranks(workflow: Workflow, avg_speed: float, avg_bandwidth: float) -> dict[str, float]:
    """HEFT's upward rank: critical-path length from each task to the exit.

    ``rank(t) = flops(t)/avg_speed + max over children (transfer + rank)``,
    using platform-average speed and bandwidth as the estimator.
    """
    if avg_speed <= 0 or avg_bandwidth <= 0:
        raise ConfigurationError("average speed and bandwidth must be positive")
    graph = workflow.graph()
    ranks: dict[str, float] = {}
    import networkx as nx

    for name in reversed(list(nx.topological_sort(graph))):
        task = workflow.task(name)
        compute = task.flops / avg_speed
        best_child = 0.0
        for child in graph.successors(name):
            # estimated bytes crossing if child lands elsewhere: the files
            # the child consumes from this task
            produced = {f.name: f.size for f in task.outputs}
            xfer_bytes = sum(
                f.size for f in workflow.task(child).inputs if f.name in produced
            )
            best_child = max(best_child, xfer_bytes / avg_bandwidth + ranks[child])
        ranks[name] = compute + best_child
    return ranks


def heft_placement(
    workflow: Workflow,
    platform: Platform,
    *,
    objective: str = "makespan",
    co2_slack: float = 1.5,
) -> dict[str, str]:
    """Compute a per-task site placement with a HEFT-style greedy pass.

    Parameters
    ----------
    objective:
        ``"makespan"`` — classic HEFT: earliest estimated finish wins.
        ``"co2"`` — pick the site with the lowest estimated incremental
        CO2 among those whose estimated finish is within ``co2_slack``
        times the best finish (so the green choice cannot stall the DAG
        arbitrarily).
    co2_slack:
        Allowed finish-time degradation factor for the co2 objective.

    The estimator mirrors the simulator's first-order behaviour: per-site
    resource heaps for compute, and a single shared-link occupancy clock so
    cross-site transfers *serialise* in the plan just as they do in the
    FCFS link model.  It remains an estimate (no event interleaving); the
    true outcome comes from simulating the returned placement.
    """
    if objective not in ("makespan", "co2"):
        raise ConfigurationError(f"unknown objective {objective!r}")
    sites = {name: site for name, site in platform.sites.items() if site.n_resources > 0}
    if not sites:
        raise ConfigurationError("platform has no resources")

    speeds = [r.speed for s in sites.values() for r in s.resources]
    avg_speed = sum(speeds) / len(speeds)
    ranks = upward_ranks(workflow, avg_speed, platform.link.bandwidth)

    # per-site min-heaps of resource available times
    pools: dict[str, list[float]] = {
        name: [0.0] * site.n_resources for name, site in sites.items()
    }
    for heap in pools.values():
        heapq.heapify(heap)

    placement: dict[str, str] = {}
    finish_est: dict[str, float] = {}
    order = sorted(workflow.tasks, key=lambda t: -ranks[t.name])
    graph = workflow.graph()
    link_free = 0.0  # estimated shared-link occupancy (FCFS, like the simulator)
    # replica sets per file (workflow inputs start at the default site,
    # matching the simulator's initial_data_site="local")
    default_site = "local" if "local" in sites else sorted(sites)[0]
    file_sites: dict[str, set[str]] = {
        f.name: {default_site} for f in workflow.input_files()
    }

    for task in order:
        candidates = []
        for site_name, site in sites.items():
            speed = site.resources[0].speed
            resource_free = pools[site_name][0]
            data_ready = max(
                (finish_est[p] for p in graph.predecessors(task.name)), default=0.0
            )
            # serialise the transfers of inputs with no replica here
            xfer_bytes = sum(
                f.size
                for f in task.inputs
                if site_name not in file_sites.get(f.name, {default_site})
            )
            link_after = link_free
            if xfer_bytes > 0:
                start_xfer = max(data_ready, link_free)
                data_ready = start_xfer + platform.link.latency + xfer_bytes / platform.link.bandwidth
                link_after = data_ready
            start = max(resource_free, data_ready)
            compute = task.flops / speed
            finish = start + compute
            # incremental CO2 estimate: busy energy at this site's intensity
            busy_power = site.resources[0].pstate.busy_power
            co2 = grams_co2e(compute * busy_power, site.carbon_intensity)
            candidates.append((finish, co2, site_name, link_after))

        best_finish = min(c[0] for c in candidates)
        if objective == "makespan":
            finish, co2, chosen, link_after = min(candidates)
        else:
            eligible = [c for c in candidates if c[0] <= co2_slack * best_finish]
            co2, finish, chosen, link_after = min(
                (c[1], c[0], c[2], c[3]) for c in eligible
            )
        placement[task.name] = chosen
        finish_est[task.name] = finish
        link_free = link_after
        heapq.heapreplace(pools[chosen], finish)
        # inputs fetched to the chosen site are now replicated there; the
        # outputs materialise there
        for f in task.inputs:
            file_sites.setdefault(f.name, {default_site}).add(chosen)
        for f in task.outputs:
            file_sites.setdefault(f.name, set()).add(chosen)

    return placement
