"""The wrench substrate as a :class:`~repro.common.job.Job`.

A discrete-event workflow simulation is atomic from the outside — the
event loop owns all state — so :class:`WrenchJob` is a
:class:`~repro.common.job.OneShotJob`: one protocol step runs the whole
simulation, the only checkpoint boundary is completion, and retried
steps re-run it (safe: the simulator is deterministic per seed, and
each run consumes a *fresh* platform from ``platform_factory`` because
platform resource state is mutated by a run).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.job import OneShotJob
from repro.wrench.simulation import FaultModel, simulate
from repro.wrench.workflow import Workflow

__all__ = ["WrenchJob"]


class WrenchJob(OneShotJob):
    """Simulate *workflow* on platforms built by *platform_factory*.

    The result is a plain dict fingerprint of the
    :class:`~repro.wrench.simulation.SimulationResult`: makespan, the
    per-task ``(name, site, start, end, attempt, failed)`` execution
    tuples (sorted by name for order-stable comparison), energy, and the
    failure count — picklable and bit-comparable across runs.
    """

    substrate = "wrench"

    def __init__(
        self,
        workflow: Workflow,
        platform_factory: Callable[[], object],
        placement: dict[str, str] | None = None,
        *,
        initial_data_site: str | None = None,
        fault_model: FaultModel | None = None,
    ) -> None:
        super().__init__()
        self.workflow = workflow
        self.platform_factory = platform_factory
        self.placement = placement
        self.initial_data_site = initial_data_site
        self.fault_model = fault_model
        self.name = f"wrench/{workflow.name}"
        #: spec params when built via from_spec; None for direct jobs
        self._spec_params: dict | None = None

    # -- spec / describe ---------------------------------------------------------

    #: spec param defaults understood by from_spec (Montage on the
    #: two-site assignment platform)
    SPEC_DEFAULTS = {
        "n_projections": 6,
        "n_difffits": 8,
        "gflop_scale": 1.0,
        "seed": 7,
        "cluster_nodes": 8,
    }

    @classmethod
    def from_spec(cls, params: dict) -> "WrenchJob":
        """Build a Montage simulation from canonical spec params."""
        from repro.wrench.platform import make_platform
        from repro.wrench.workflow import montage_workflow

        unknown = set(params) - set(cls.SPEC_DEFAULTS)
        if unknown:
            raise ConfigurationError(f"unknown wrench spec params: {sorted(unknown)}")
        p = {**cls.SPEC_DEFAULTS, **params}
        wf = montage_workflow(
            n_projections=int(p["n_projections"]),
            n_difffits=int(p["n_difffits"]),
            gflop_scale=float(p["gflop_scale"]),
            seed=int(p["seed"]),
        )
        nodes = int(p["cluster_nodes"])
        job = cls(wf, lambda: make_platform(cluster_nodes=nodes))
        job._spec_params = {
            "n_projections": int(p["n_projections"]),
            "n_difffits": int(p["n_difffits"]),
            "gflop_scale": float(p["gflop_scale"]),
            "seed": int(p["seed"]),
            "cluster_nodes": nodes,
        }
        return job

    def describe(self) -> dict:
        """Canonical cache-key fields (montage params, or workflow name)."""
        out = {"substrate": self.substrate, "workflow": self.workflow.name}
        if self._spec_params is not None:
            out["workload"] = "montage"
            out["params"] = dict(self._spec_params)
        else:
            out["workload"] = "custom"
            out["tasks"] = len(self.workflow.tasks)
        return out

    def compute(self) -> dict:
        kwargs = {"fault_model": self.fault_model}
        if self.initial_data_site is not None:
            kwargs["initial_data_site"] = self.initial_data_site
        result = simulate(self.workflow, self.platform_factory(), self.placement, **kwargs)
        executions = sorted(
            (e.task, e.site, e.start, e.end, e.attempt, e.failed) for e in result.executions
        )
        return {
            "makespan": result.makespan,
            "executions": executions,
            "total_energy": result.total_energy,
            "failures": result.failures,
        }
