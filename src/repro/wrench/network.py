"""Bandwidth-limited network links.

The cluster and the cloud are joined by "a network link with limited
bandwidth"; whether moving data across it is worth the carbon savings is
the crux of the Tab-2 questions.  :class:`Link` is a FCFS shared resource:
transfers queue and serialise, each costing ``latency + bytes/bandwidth``.
FCFS (rather than fluid fair-sharing) slightly *over*-serialises
concurrent transfers; experiments only rely on orderings, which FCFS
preserves, and the simplification is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

__all__ = ["TransferRecord", "Link"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer over a link."""

    file_name: str
    nbytes: float
    start: float
    end: float
    src: str
    dst: str


@dataclass
class Link:
    """A shared, FCFS, full-duplex-agnostic network link."""

    name: str = "wide-area"
    bandwidth: float = 100e6  # bytes/s — the assignment's limited WAN link
    latency: float = 0.01     # seconds
    busy_until: float = 0.0
    records: list[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError("latency cannot be negative")

    def transfer(self, file_name: str, nbytes: float, now: float, src: str, dst: str) -> float:
        """Enqueue a transfer at *now*; returns its completion time."""
        if nbytes < 0:
            raise ConfigurationError("cannot transfer negative bytes")
        start = max(now, self.busy_until)
        end = start + self.latency + nbytes / self.bandwidth
        self.busy_until = end
        self.records.append(TransferRecord(file_name, nbytes, start, end, src, dst))
        return end

    @property
    def total_bytes(self) -> float:
        """Total bytes, summed."""
        return sum(r.nbytes for r in self.records)

    @property
    def busy_time(self) -> float:
        """Total seconds the link spent transferring."""
        return sum(r.end - r.start for r in self.records)

    def reset(self) -> None:
        """Clear all accumulated state."""
        self.busy_until = 0.0
        self.records.clear()
