"""Workflow DAGs and the Montage-like generator.

The carbon assignment executes "an astronomy scientific workflow (738
tasks with a 7.5GB total data footprint)" — an instance of Montage.  This
module provides the general DAG machinery (tasks, file-based dependencies,
levels) plus :func:`montage_workflow`, a structural generator matching the
published Montage shape: a wide projection level, a wider difference-fit
level, a serial fitting bottleneck, a wide background-correction level,
and a serial mosaic tail.  The default parameters produce exactly 738
tasks and ~7.5 GB of files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.common.errors import ConfigurationError
from repro.common.units import MB

__all__ = ["WorkflowFile", "Task", "Workflow", "montage_workflow"]


@dataclass(frozen=True)
class WorkflowFile:
    """A named data product with a size in bytes."""

    name: str
    size: float  # bytes

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"file {self.name}: negative size")


@dataclass
class Task:
    """One workflow task.

    ``flops`` is the task's work; dependencies are induced by files: a task
    consuming a file produced by another task runs after it.
    """

    name: str
    flops: float
    inputs: tuple[WorkflowFile, ...] = ()
    outputs: tuple[WorkflowFile, ...] = ()
    category: str = ""  # e.g. "mProject" — used by reports

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ConfigurationError(f"task {self.name}: negative flops")

    @property
    def input_bytes(self) -> float:
        """Total size of the task's inputs."""
        return sum(f.size for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        """Total size of the task's outputs."""
        return sum(f.size for f in self.outputs)


class Workflow:
    """A DAG of tasks with file-induced dependencies."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._producer: dict[str, str] = {}  # file name -> producing task name
        self._graph: nx.DiGraph | None = None
        self._levels: dict[str, int] | None = None

    # -- construction ------------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Add a task, registering its outputs' producer."""
        if task.name in self._tasks:
            raise ConfigurationError(f"duplicate task {task.name!r}")
        for f in task.outputs:
            if f.name in self._producer:
                raise ConfigurationError(
                    f"file {f.name!r} produced by both {self._producer[f.name]!r} "
                    f"and {task.name!r}"
                )
            self._producer[f.name] = task.name
        self._tasks[task.name] = task
        self._graph = None
        self._levels = None
        return task

    # -- structure ----------------------------------------------------------------

    @property
    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        return self._tasks[name]

    def __len__(self) -> int:
        return len(self._tasks)

    def producer_of(self, file_name: str) -> str | None:
        """Name of the task producing *file_name* (None for workflow inputs)."""
        return self._producer.get(file_name)

    def graph(self) -> nx.DiGraph:
        """The dependency graph (cached); raises on cycles."""
        if self._graph is None:
            g = nx.DiGraph()
            g.add_nodes_from(self._tasks)
            for t in self._tasks.values():
                for f in t.inputs:
                    producer = self._producer.get(f.name)
                    if producer is not None and producer != t.name:
                        g.add_edge(producer, t.name)
            if not nx.is_directed_acyclic_graph(g):
                cycle = nx.find_cycle(g)
                raise ConfigurationError(f"workflow has a cycle: {cycle}")
            self._graph = g
        return self._graph

    def parents(self, task_name: str) -> list[str]:
        """Names of tasks this one depends on."""
        return sorted(self.graph().predecessors(task_name))

    def children(self, task_name: str) -> list[str]:
        """Names of tasks depending on this one."""
        return sorted(self.graph().successors(task_name))

    def levels(self) -> dict[str, int]:
        """Task -> level (longest path from an entry task; entries are 0).

        The assignment's Tab-2 placement choices are phrased per *workflow
        level* ("execute fractions of some workflow levels on the cloud").
        """
        if self._levels is None:
            g = self.graph()
            lv: dict[str, int] = {}
            for name in nx.topological_sort(g):
                preds = list(g.predecessors(name))
                lv[name] = 0 if not preds else 1 + max(lv[p] for p in preds)
            self._levels = lv
        return self._levels

    def level_tasks(self, level: int) -> list[Task]:
        """Tasks at one level, in name order."""
        lv = self.levels()
        return [self._tasks[n] for n in sorted(lv) if lv[n] == level]

    @property
    def depth(self) -> int:
        """Number of levels."""
        lv = self.levels()
        return max(lv.values()) + 1 if lv else 0

    def total_flops(self) -> float:
        """Sum of every task's flops."""
        return sum(t.flops for t in self._tasks.values())

    def total_bytes(self) -> float:
        """Total unique file footprint (workflow inputs + all outputs)."""
        seen: dict[str, float] = {}
        for t in self._tasks.values():
            for f in (*t.inputs, *t.outputs):
                seen[f.name] = f.size
        return sum(seen.values())

    def input_files(self) -> list[WorkflowFile]:
        """Files consumed but never produced — the workflow's external inputs."""
        out: dict[str, WorkflowFile] = {}
        for t in self._tasks.values():
            for f in t.inputs:
                if f.name not in self._producer:
                    out[f.name] = f
        return [out[k] for k in sorted(out)]

    # -- persistence (WfCommons-flavoured JSON) -----------------------------------

    def to_dict(self) -> dict:
        """Serialisable description: name + tasks with files and flops.

        The shape follows the WfCommons/WRENCH workflow-instance idea
        (tasks with per-file input/output lists) so real instances can be
        hand-converted easily.
        """
        return {
            "name": self.name,
            "tasks": [
                {
                    "name": t.name,
                    "flops": t.flops,
                    "category": t.category,
                    "inputs": [{"name": f.name, "size": f.size} for f in t.inputs],
                    "outputs": [{"name": f.name, "size": f.size} for f in t.outputs],
                }
                for t in self.tasks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workflow":
        """Inverse of :meth:`to_dict`; validates structure on the way in."""
        try:
            wf = cls(str(data["name"]))
            for t in data["tasks"]:
                wf.add_task(
                    Task(
                        name=str(t["name"]),
                        flops=float(t["flops"]),
                        category=str(t.get("category", "")),
                        inputs=tuple(
                            WorkflowFile(str(f["name"]), float(f["size"])) for f in t["inputs"]
                        ),
                        outputs=tuple(
                            WorkflowFile(str(f["name"]), float(f["size"])) for f in t["outputs"]
                        ),
                    )
                )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed workflow document: {exc!r}") from exc
        wf.graph()  # validate acyclicity eagerly
        return wf

    def save_json(self, path) -> None:
        """Write the workflow as a JSON document."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @classmethod
    def load_json(cls, path) -> "Workflow":
        """Load a workflow previously written by :meth:`save_json`."""
        import json

        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def critical_path_flops(self) -> float:
        """Maximum total flops along any dependency chain (ideal-speedup bound)."""
        g = self.graph()
        best: dict[str, float] = {}
        for name in nx.topological_sort(g):
            preds = list(g.predecessors(name))
            base = max((best[p] for p in preds), default=0.0)
            best[name] = base + self._tasks[name].flops
        return max(best.values(), default=0.0)


def montage_workflow(
    *,
    n_projections: int = 182,
    n_difffits: int = 368,
    gflop_scale: float = 1.0,
    seed: int = 7,
) -> Workflow:
    """A Montage-shaped workflow: 738 tasks / ~7.5 GB with the defaults.

    Level structure (category: count with defaults):

    0. ``mProject``    : 182 — reproject one input image each (wide)
    1. ``mDiffFit``    : 368 — fit pairwise overlaps (widest)
    2. ``mConcatFit``  : 1   — concatenate the fits (serial bottleneck)
    3. ``mBgModel``    : 1   — model background corrections (serial)
    4. ``mBackground`` : 182 — apply corrections per image (wide)
    5. ``mImgtbl``     : 1   — build the image table
    6. ``mAdd``        : 1   — co-add into the mosaic (heavy serial)
    7. ``mShrink``     : 1   — shrink the mosaic
    8. ``mJPEG``       : 1   — render the JPEG

    File sizes are drawn deterministically around Montage-realistic
    magnitudes and normalised so the *total* footprint is ~7.5 GB.
    ``gflop_scale`` scales every task's flops, letting experiments tune
    absolute runtimes without touching the structure.
    """
    from repro.common.rng import make_rng

    if n_projections < 2:
        raise ConfigurationError("need at least two projections")
    if n_difffits < 1:
        raise ConfigurationError("need at least one difffit")
    rng = make_rng(seed)
    wf = Workflow("montage-738")
    G = 1e9 * gflop_scale

    def mkfile(name: str, mean_mb: float) -> WorkflowFile:
        size = float(rng.uniform(0.8, 1.2) * mean_mb * MB)
        return WorkflowFile(name, size)

    # Level 0: mProject — each consumes a raw image, produces a projected one.
    projected: list[WorkflowFile] = []
    for i in range(n_projections):
        raw = mkfile(f"raw_{i:04d}.fits", 8.0)
        proj = mkfile(f"proj_{i:04d}.fits", 16.0)
        projected.append(proj)
        wf.add_task(
            Task(f"mProject_{i:04d}", flops=rng.uniform(8, 12) * G, inputs=(raw,),
                 outputs=(proj,), category="mProject")
        )

    # Level 1: mDiffFit — each consumes two neighbouring projections.
    fit_files: list[WorkflowFile] = []
    for j in range(n_difffits):
        a = j % n_projections
        b = (j + 1 + (j // n_projections)) % n_projections
        if a == b:
            b = (b + 1) % n_projections
        fit = mkfile(f"fit_{j:04d}.tbl", 0.02)
        fit_files.append(fit)
        wf.add_task(
            Task(f"mDiffFit_{j:04d}", flops=rng.uniform(1.5, 2.5) * G,
                 inputs=(projected[a], projected[b]), outputs=(fit,), category="mDiffFit")
        )

    # Level 2: mConcatFit — consumes all fits.
    concat = mkfile("fits_all.tbl", 1.0)
    wf.add_task(Task("mConcatFit", flops=6 * G, inputs=tuple(fit_files),
                     outputs=(concat,), category="mConcatFit"))

    # Level 3: mBgModel.
    corrections = mkfile("corrections.tbl", 0.5)
    wf.add_task(Task("mBgModel", flops=25 * G, inputs=(concat,),
                     outputs=(corrections,), category="mBgModel"))

    # Level 4: mBackground — per projected image, needs the corrections.
    corrected: list[WorkflowFile] = []
    for i in range(n_projections):
        corr = mkfile(f"corr_{i:04d}.fits", 16.0)
        corrected.append(corr)
        wf.add_task(
            Task(f"mBackground_{i:04d}", flops=rng.uniform(4, 6) * G,
                 inputs=(projected[i], corrections), outputs=(corr,), category="mBackground")
        )

    # Level 5-8: serial tail.
    imgtbl = mkfile("images.tbl", 0.3)
    wf.add_task(Task("mImgtbl", flops=4 * G, inputs=tuple(corrected),
                     outputs=(imgtbl,), category="mImgtbl"))
    mosaic = mkfile("mosaic.fits", 900.0)
    wf.add_task(Task("mAdd", flops=60 * G, inputs=(*corrected, imgtbl),
                     outputs=(mosaic,), category="mAdd"))
    shrunk = mkfile("mosaic_small.fits", 120.0)
    wf.add_task(Task("mShrink", flops=12 * G, inputs=(mosaic,),
                     outputs=(shrunk,), category="mShrink"))
    jpeg = mkfile("mosaic.jpg", 8.0)
    wf.add_task(Task("mJPEG", flops=6 * G, inputs=(shrunk,),
                     outputs=(jpeg,), category="mJPEG"))

    # Normalise the footprint to ~7.5 GB, matching the paper's number.
    target = 7.5e9
    actual = wf.total_bytes()
    scale = target / actual
    scaled = Workflow(wf.name)
    for t in wf.tasks:
        scaled.add_task(
            Task(
                t.name,
                t.flops,
                tuple(WorkflowFile(f.name, f.size * scale) for f in t.inputs),
                tuple(WorkflowFile(f.name, f.size * scale) for f in t.outputs),
                t.category,
            )
        )
    return scaled
