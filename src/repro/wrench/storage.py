"""Per-site storage services.

Each execution site (the local cluster, the remote cloud) has a storage
service holding file replicas.  "The remote cloud has storage, so the
output of a task executed on the cloud is available locally to a
subsequent child task that also executes on the cloud" — data locality is
just membership in the right :class:`StorageService`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError

__all__ = ["StorageService"]


@dataclass
class StorageService:
    """A set of file replicas at one site, with byte accounting."""

    site: str
    files: dict[str, float] = field(default_factory=dict)  # name -> bytes
    bytes_written: float = 0.0

    def has(self, file_name: str) -> bool:
        """True when a replica of the file is present."""
        return file_name in self.files

    def put(self, file_name: str, nbytes: float) -> None:
        """Store (or refresh) a replica."""
        if nbytes < 0:
            raise SimulationError("file size cannot be negative")
        if file_name not in self.files:
            self.bytes_written += nbytes
        self.files[file_name] = nbytes

    def size_of(self, file_name: str) -> float:
        """Size of a stored replica; raises when absent."""
        try:
            return self.files[file_name]
        except KeyError:
            raise SimulationError(f"{self.site}: file {file_name!r} not present") from None

    @property
    def total_bytes(self) -> float:
        """Total bytes, summed."""
        return sum(self.files.values())

    def __len__(self) -> int:
        return len(self.files)
