"""Host power model and p-states.

The assignment's cluster nodes "can be configured to operate in one of
seven power states (p-states), each corresponding to a different trade-off
between compute speed and power consumption", and idle nodes still burn
power unless powered off — which is why powering nodes off and
downclocking are *different* levers, and why combining them (Tab-1 Q3)
wins.

The model follows standard DVFS physics: per-node power is
``idle + dynamic * f^3`` when computing at relative frequency ``f`` and
``idle`` when idle; a powered-off node consumes nothing.  Speed scales
linearly with ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["PState", "PowerModel", "default_pstates"]


@dataclass(frozen=True)
class PState:
    """One operating point of a host."""

    index: int
    speed: float        # flop/s while computing
    busy_power: float   # watts while computing
    idle_power: float   # watts while powered on but idle

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigurationError(f"p-state {self.index}: speed must be positive")
        if self.busy_power < self.idle_power:
            raise ConfigurationError(f"p-state {self.index}: busy power below idle power")


@dataclass(frozen=True)
class PowerModel:
    """Per-host DVFS parameter set generating a ladder of p-states."""

    # Defaults are calibrated so the assignment's downclocking lever works:
    # with low idle power and strongly frequency-dependent dynamic power,
    # a *busy* node is more flops-per-joule efficient at a lower p-state.
    # (With idle ~= half of peak — common on real servers — race-to-idle
    # wins instead and the assignment's Tab-1 Q2b has no solution space.)
    base_speed: float = 100e9   # flop/s at the highest p-state
    idle_watts: float = 30.0
    dynamic_watts: float = 170.0  # extra power at full frequency (f = 1)
    n_pstates: int = 7
    min_frequency: float = 0.4  # lowest p-state's relative frequency

    def __post_init__(self) -> None:
        if self.n_pstates < 1:
            raise ConfigurationError("need at least one p-state")
        if not (0 < self.min_frequency <= 1.0):
            raise ConfigurationError("min_frequency must be in (0, 1]")

    def pstates(self) -> list[PState]:
        """P-states ordered 0 (slowest) .. n-1 (fastest), paper-style.

        "Highest p-state" in the assignment text means fastest; we use
        index ``n_pstates - 1`` for it.
        """
        out = []
        for i in range(self.n_pstates):
            if self.n_pstates == 1:
                f = 1.0
            else:
                f = self.min_frequency + (1.0 - self.min_frequency) * i / (self.n_pstates - 1)
            out.append(
                PState(
                    index=i,
                    speed=self.base_speed * f,
                    busy_power=self.idle_watts + self.dynamic_watts * f**3,
                    idle_power=self.idle_watts,
                )
            )
        return out


def default_pstates() -> list[PState]:
    """The seven p-states of the assignment's cluster nodes."""
    return PowerModel().pstates()
