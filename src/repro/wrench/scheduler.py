"""Placement policies: which site runs which task.

The Tab-2 questions are all placement questions: "all on the local
cluster", "all on the cloud", and "configurations that execute fractions
of some workflow levels on the cloud".  A placement here is simply a
``{task_name: site_name}`` dict consumed by the simulator; this module
builds the dicts.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.wrench.platform import CLOUD, LOCAL
from repro.wrench.workflow import Workflow

__all__ = [
    "place_all",
    "place_levels",
    "place_level_fractions",
    "describe_placement",
]


def place_all(workflow: Workflow, site: str) -> dict[str, str]:
    """Every task on one site."""
    return {t.name: site for t in workflow.tasks}


def place_levels(workflow: Workflow, cloud_levels: set[int]) -> dict[str, str]:
    """Whole levels on the cloud, the rest local."""
    levels = workflow.levels()
    return {
        name: (CLOUD if lv in cloud_levels else LOCAL) for name, lv in levels.items()
    }


def place_level_fractions(
    workflow: Workflow, fractions: dict[int, float]
) -> dict[str, str]:
    """Send a *fraction* of each listed level's tasks to the cloud.

    ``fractions`` maps level -> fraction in [0, 1]; unlisted levels stay
    local.  Within a level, tasks are sent in name order (deterministic),
    the first ``round(fraction * n)`` of them — matching how the
    EduWRENCH app exposes "run some fraction of the tasks in particular
    workflow levels on the remote cloud".
    """
    placement: dict[str, str] = {}
    levels = workflow.levels()
    by_level: dict[int, list[str]] = {}
    for name, lv in levels.items():
        by_level.setdefault(lv, []).append(name)
    for lv, frac in fractions.items():
        if not (0.0 <= frac <= 1.0):
            raise ConfigurationError(f"level {lv}: fraction {frac} outside [0, 1]")
        if lv not in by_level:
            raise ConfigurationError(f"workflow has no level {lv}")
    for lv, names in by_level.items():
        names.sort()
        frac = fractions.get(lv, 0.0)
        n_cloud = round(frac * len(names))
        for i, name in enumerate(names):
            placement[name] = CLOUD if i < n_cloud else LOCAL
    return placement


def describe_placement(workflow: Workflow, placement: dict[str, str]) -> str:
    """Human-readable per-level summary, e.g. ``L0: 50% cloud (91/182)``."""
    levels = workflow.levels()
    per_level: dict[int, list[str]] = {}
    for name, lv in levels.items():
        per_level.setdefault(lv, []).append(name)
    parts = []
    for lv in sorted(per_level):
        names = per_level[lv]
        n_cloud = sum(1 for n in names if placement.get(n, LOCAL) == CLOUD)
        if n_cloud == 0:
            continue
        pct = 100.0 * n_cloud / len(names)
        parts.append(f"L{lv}: {pct:.0f}% cloud ({n_cloud}/{len(names)})")
    return "; ".join(parts) if parts else "all local"
