"""Post-simulation analysis of workflow executions.

The EduWRENCH questions repeatedly ask students to *reason* about an
execution — where the time goes, which level is the bottleneck, how close
the run is to its theoretical bounds.  This module computes those views
from a :class:`~repro.wrench.simulation.SimulationResult`:

* :func:`level_timeline` — per-level start/end/work/span rows;
* :func:`utilization` — fraction of resource-seconds actually computing;
* :func:`bounds` — the two classic lower bounds (critical path, total
  work / aggregate speed) and the achieved makespan;
* :func:`level_gantt_ascii` — a terminal Gantt chart of the levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.wrench.platform import Platform
from repro.wrench.simulation import SimulationResult
from repro.wrench.workflow import Workflow

__all__ = [
    "LevelRow",
    "level_timeline",
    "utilization",
    "bounds",
    "level_gantt_ascii",
    "MakespanBounds",
    "EnergyBreakdown",
    "energy_breakdown",
]


@dataclass(frozen=True)
class LevelRow:
    """Aggregate timing of one workflow level in one execution."""

    level: int
    category: str
    tasks: int
    start: float
    end: float
    compute_time: float   # sum of task compute durations
    transfer_time: float  # sum of task input-transfer durations

    @property
    def span(self) -> float:
        """Seconds from the level's first start to its last end."""
        return self.end - self.start


def level_timeline(result: SimulationResult) -> list[LevelRow]:
    """Per-level rows ordered by level."""
    by_level: dict[int, list] = {}
    for ex in result.executions:
        by_level.setdefault(ex.level, []).append(ex)
    rows = []
    for lv in sorted(by_level):
        exs = by_level[lv]
        rows.append(
            LevelRow(
                level=lv,
                category=exs[0].category,
                tasks=len(exs),
                start=min(e.start for e in exs),
                end=max(e.end for e in exs),
                compute_time=sum(e.compute_time for e in exs),
                transfer_time=sum(e.transfer_time for e in exs),
            )
        )
    return rows


def utilization(result: SimulationResult, platform: Platform) -> float:
    """Computing resource-seconds / available resource-seconds.

    Uses the platform's *current* resource set (the one that executed the
    result) and the result's makespan as the availability window.
    """
    n = len(platform.all_resources())
    if n == 0:
        raise ConfigurationError("platform has no resources")
    if result.makespan <= 0:
        return 0.0
    compute = sum(e.compute_time for e in result.executions)
    return compute / (n * result.makespan)


@dataclass(frozen=True)
class MakespanBounds:
    """The two classic lower bounds next to the achieved makespan."""

    critical_path: float
    work_bound: float
    achieved: float

    @property
    def lower_bound(self) -> float:
        """The binding lower bound: max(critical path, work bound)."""
        return max(self.critical_path, self.work_bound)

    @property
    def optimality_gap(self) -> float:
        """achieved / max(bounds) - 1 (0 = provably optimal schedule)."""
        lb = self.lower_bound
        return self.achieved / lb - 1.0 if lb > 0 else 0.0


def bounds(result: SimulationResult, workflow: Workflow, platform: Platform) -> MakespanBounds:
    """Critical-path and work lower bounds for this platform (compute only).

    Speeds are taken per placed site, so the work bound respects the
    placement's split; transfers are excluded (the bounds stay valid
    lower bounds).
    """
    site_speed = {
        name: (site.resources[0].speed if site.resources else float("inf"))
        for name, site in platform.sites.items()
    }
    placement = {e.task: e.site for e in result.executions}
    # critical path in seconds, using each task's placed speed
    import networkx as nx

    graph = workflow.graph()
    longest: dict[str, float] = {}
    for name in nx.topological_sort(graph):
        t = workflow.task(name)
        seconds = t.flops / site_speed[placement.get(name, next(iter(site_speed)))]
        base = max((longest[p] for p in graph.predecessors(name)), default=0.0)
        longest[name] = base + seconds
    critical = max(longest.values(), default=0.0)

    # work bound: total seconds of compute / number of resources, per site,
    # taking the max over sites (each site must at least finish its share)
    work_bound = 0.0
    for site_name, site in platform.sites.items():
        if not site.resources:
            continue
        site_work = sum(
            workflow.task(e.task).flops / site_speed[site_name]
            for e in result.executions
            if e.site == site_name
        )
        work_bound = max(work_bound, site_work / len(site.resources))

    return MakespanBounds(critical_path=critical, work_bound=work_bound, achieved=result.makespan)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-site split of an execution's energy into busy and idle parts."""

    site: str
    busy_joules: float
    idle_joules: float
    co2_grams: float

    @property
    def total_joules(self) -> float:
        """Busy plus idle energy, in joules."""
        return self.busy_joules + self.idle_joules

    @property
    def idle_fraction(self) -> float:
        """Share of the site's energy burned while idle."""
        t = self.total_joules
        return self.idle_joules / t if t > 0 else 0.0


def energy_breakdown(result: SimulationResult, platform: Platform) -> list[EnergyBreakdown]:
    """Split each site's energy into busy vs idle joules.

    The idle share is the quantity the Tab-1 power-off lever attacks and
    the reason the greedy-green scheduler backfires — worth printing.
    """
    out = []
    for name, site in platform.sites.items():
        busy = 0.0
        idle = 0.0
        for r in site.resources:
            busy += r.busy_time * r.pstate.busy_power
            idle += max(result.makespan - r.busy_time, 0.0) * r.pstate.idle_power
        out.append(
            EnergyBreakdown(
                site=name,
                busy_joules=busy,
                idle_joules=idle,
                co2_grams=result.co2_grams.get(name, 0.0),
            )
        )
    return out


def level_gantt_ascii(result: SimulationResult, *, width: int = 64) -> str:
    """One line per level: ``#`` where the level has tasks running."""
    rows = level_timeline(result)
    if not rows:
        return "<empty execution>"
    t1 = max(r.end for r in rows)
    span = max(t1, 1e-12)
    lines = [f"levels over time (0 .. {t1:.4g}s)"]
    for r in rows:
        a = int(r.start / span * (width - 1))
        b = int(r.end / span * (width - 1))
        bar = "." * a + "#" * max(b - a + 1, 1)
        bar = bar.ljust(width, ".")
        lines.append(f"L{r.level} {r.category:<12s} |{bar}| {r.tasks} tasks")
    return "\n".join(lines)
