"""Substrate adapters: each converts (or instruments) one execution layer.

* :mod:`repro.obs.adapters.easypap`   — per-tile spans from
  :class:`~repro.easypap.monitor.TaskRecord`, losslessly both ways.
* :mod:`repro.obs.adapters.mapreduce` — simulated-cluster attempt spans
  with shuffle flow arrows; degradation events as instants.
* :mod:`repro.obs.adapters.simmpi`    — conversion helpers for the live
  instrumentation in :mod:`repro.simmpi.comm` (virtual-time pt2pt spans
  and send→recv flows are recorded by the communicator itself when its
  world carries a tracer).
* :mod:`repro.obs.adapters.wrench`    — DAG task spans per site/resource
  plus energy counter tracks.
* :mod:`repro.obs.adapters.serve`     — SLO views over the job service's
  metrics: histogram quantile estimation (p50/p99) and the summary table
  ``repro-serve`` prints.

The real thread/process backends and ``run_job_parallel`` take a tracer
directly; the adapters here cover the substrates that already produce
structured reports.
"""

from repro.obs.adapters.easypap import (
    EASYPAP_PID,
    degradation_to_instants,
    dispatch_to_counters,
    frontier_to_counters,
    trace_to_tracer,
    tracer_to_trace,
)
from repro.obs.adapters.mapreduce import MAPREDUCE_PID, cluster_report_to_tracer
from repro.obs.adapters.serve import SERVE_PID, estimate_quantile, render_slo, slo_summary
from repro.obs.adapters.simmpi import SIMMPI_PID, world_report_summary
from repro.obs.adapters.wrench import WRENCH_PID, simulation_result_to_tracer

__all__ = [
    "EASYPAP_PID",
    "MAPREDUCE_PID",
    "SERVE_PID",
    "SIMMPI_PID",
    "WRENCH_PID",
    "trace_to_tracer",
    "tracer_to_trace",
    "degradation_to_instants",
    "dispatch_to_counters",
    "frontier_to_counters",
    "cluster_report_to_tracer",
    "world_report_summary",
    "simulation_result_to_tracer",
    "estimate_quantile",
    "slo_summary",
    "render_slo",
]
