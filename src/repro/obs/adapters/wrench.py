"""wrench adapter: DAG task spans per site/resource, energy counter tracks.

:func:`simulation_result_to_tracer` projects a
:class:`~repro.wrench.simulation.SimulationResult` (discrete-event time)
onto the unified model.  Sites become track groups (``pid``) and
resources become lanes, so the Perfetto view mirrors the platform
topology; each execution attempt splits into a ``transfer`` span (input
staging over the shared link) and a compute span named after the task.
Passing the :class:`~repro.wrench.workflow.Workflow` adds flow arrows
along the DAG edges — parent end to child start — which is what makes
the critical path visually obvious in the Montage-738 trace.  Per-site
energy totals land on counter tracks, stepped linearly over the makespan.
"""

from __future__ import annotations

from repro.obs.records import FlowPoint
from repro.obs.tracer import Tracer
from repro.wrench.simulation import SimulationResult
from repro.wrench.workflow import Workflow

__all__ = ["WRENCH_PID", "simulation_result_to_tracer"]

WRENCH_PID = "wrench"


def simulation_result_to_tracer(
    result: SimulationResult,
    workflow: Workflow | None = None,
    *,
    tracer: Tracer | None = None,
) -> Tracer:
    """Convert one simulated execution into spans, flows and counters."""
    if tracer is None:
        tracer = Tracer(process=WRENCH_PID)

    # last successful attempt per task, for DAG arrows
    done: dict[str, object] = {}
    for ex in result.executions:
        if ex.transfer_time > 0:
            tracer.add_span(
                f"stage-in:{ex.task}",
                start=ex.start,
                end=ex.compute_start,
                cat="transfer",
                pid=ex.site,
                tid=ex.resource,
                args={"task": ex.task, "level": ex.level, "attempt": ex.attempt},
            )
        span = tracer.add_span(
            ex.task,
            start=ex.compute_start,
            end=ex.end,
            cat="failed" if ex.failed else ex.category,
            pid=ex.site,
            tid=ex.resource,
            args={
                "task": ex.task,
                "category": ex.category,
                "level": ex.level,
                "attempt": ex.attempt,
                "failed": ex.failed,
            },
        )
        if ex.failed:
            tracer.instant(
                f"{ex.task} attempt {ex.attempt} failed",
                ts=ex.end,
                cat="fault",
                pid=ex.site,
                tid=ex.resource,
                args={"task": ex.task, "attempt": ex.attempt},
            )
        else:
            done[ex.task] = span

    if workflow is not None:
        graph = workflow.graph()
        for parent in graph.nodes:
            src = done.get(parent)
            if src is None:
                continue
            for child in graph.successors(parent):
                dst = done.get(child)
                if dst is None:
                    continue
                tracer.flow(
                    f"{parent}->{child}",
                    FlowPoint(src.pid, src.tid, src.end),
                    FlowPoint(dst.pid, dst.tid, dst.start),
                    cat="dag",
                )

    # energy accrues roughly linearly (idle power dominates the envelope);
    # two samples per site give Perfetto a slope without pretending to
    # model the true busy/idle stepping
    for site, joules in sorted(result.energy_joules.items()):
        tracer.counter("energy_joules", {site: 0.0}, ts=0.0, pid=site)
        tracer.counter("energy_joules", {site: joules}, ts=result.makespan, pid=site)
    return tracer
