"""simmpi adapter: summaries and metrics for virtual-time MPI traces.

Unlike the report-shaped substrates, simmpi records its trace *live*:
pass ``tracer=`` to :func:`repro.simmpi.runner.run_ranks` (or to
:class:`~repro.simmpi.comm.World` directly) and every rank's communicator
writes compute/comm spans on its own virtual clock, with send→recv flow
arrows carried by the messages themselves.  This module holds the
post-run helpers: :func:`world_report_summary` merges the trace view with
the :class:`~repro.simmpi.runner.WorldReport` numbers, and
:func:`stats_to_registry` folds per-rank :class:`~repro.simmpi.comm.CommStats`
into a metrics registry.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import TraceSummary, summarize
from repro.obs.tracer import Tracer
from repro.simmpi.runner import WorldReport

__all__ = ["SIMMPI_PID", "world_report_summary", "stats_to_registry"]

SIMMPI_PID = "simmpi"


def world_report_summary(
    report: WorldReport,
    tracer: Tracer | None = None,
    *,
    pid: str = SIMMPI_PID,
) -> TraceSummary:
    """Summarise an SPMD run, preferring the trace when one was recorded.

    With a tracer, the lanes are per-rank and busy time splits into the
    compute/pt2pt/collective categories the communicator recorded; the
    makespan then agrees with ``report.makespan`` (the slowest rank's
    final virtual clock).  Without one, the report's clocks alone yield a
    lanes-only summary (one "span" per rank covering its whole clock).
    """
    if tracer is not None:
        return summarize(tracer, pid=pid)
    # degenerate view: each rank busy for its whole virtual clock
    synth = Tracer(process=pid)
    for rank, clock in enumerate(report.clocks):
        synth.add_span(
            f"rank {rank}",
            start=0.0,
            end=clock,
            cat="compute",
            pid=pid,
            tid=rank,
        )
    return summarize(synth, pid=pid)


def stats_to_registry(
    report: WorldReport,
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Fold per-rank communication counters into labelled metrics."""
    if registry is None:
        registry = MetricsRegistry()
    sent = registry.counter("simmpi_messages_sent_total", "Messages sent per rank")
    recvd = registry.counter("simmpi_messages_received_total", "Messages received per rank")
    bsent = registry.counter("simmpi_bytes_sent_total", "Bytes sent per rank")
    brecv = registry.counter("simmpi_bytes_received_total", "Bytes received per rank")
    clock = registry.gauge("simmpi_virtual_clock_seconds", "Final virtual clock per rank")
    for rank, st in enumerate(report.stats):
        label = {"rank": str(rank)}
        sent.inc(st.messages_sent, **label)
        recvd.inc(st.messages_received, **label)
        bsent.inc(st.bytes_sent, **label)
        brecv.inc(st.bytes_received, **label)
        clock.set(report.clocks[rank], **label)
    return registry
