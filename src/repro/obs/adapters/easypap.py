"""easypap adapter: per-tile spans from TaskRecord, losslessly both ways.

Every easypap backend already feeds a :class:`~repro.easypap.monitor.Trace`
of :class:`~repro.easypap.monitor.TaskRecord` rows (iteration, task,
worker, start, end, kind, tile coordinates).  :func:`trace_to_tracer`
maps each row onto a span — worker index becomes the lane, ``kind``
becomes the category, and iteration/task/tile coordinates ride in the
span args — and :func:`tracer_to_trace` inverts the mapping exactly, so
nothing EASYPAP's trace explorer shows is lost in the unified view.

:func:`degradation_to_instants` projects a
:class:`~repro.common.resilience.DegradationLog` (pool rebuilds, thread
fallbacks, retries) onto instant events, so recovery actions appear on
the same timeline as the tile spans they interrupted.
"""

from __future__ import annotations

from repro.common.resilience import DegradationLog
from repro.easypap.monitor import TaskRecord, Trace
from repro.obs.clock import WallClock
from repro.obs.tracer import Tracer

__all__ = [
    "EASYPAP_PID",
    "record_to_span",
    "trace_to_tracer",
    "tracer_to_trace",
    "degradation_to_instants",
    "frontier_to_counters",
    "dispatch_to_counters",
]

EASYPAP_PID = "easypap"


def record_to_span(tracer: Tracer, rec: TaskRecord, *, pid: str = EASYPAP_PID):
    """Append one TaskRecord as a span; returns the SpanRecord."""
    return tracer.add_span(
        f"i{rec.iteration}:t{rec.task}",
        start=rec.start,
        end=rec.end,
        cat=rec.kind,
        pid=pid,
        tid=rec.worker,
        args={
            "iteration": rec.iteration,
            "task": rec.task,
            "tile_ty": rec.tile_ty,
            "tile_tx": rec.tile_tx,
        },
    )


def trace_to_tracer(
    trace: Trace,
    tracer: Tracer | None = None,
    *,
    pid: str = EASYPAP_PID,
) -> Tracer:
    """Convert a whole easypap Trace into (or onto) a tracer."""
    if tracer is None:
        tracer = Tracer(process=pid)
    for rec in trace.records:
        record_to_span(tracer, rec, pid=pid)
    return tracer


def tracer_to_trace(tracer: Tracer, *, pid: str = EASYPAP_PID) -> Trace:
    """Rebuild the easypap Trace from spans produced by this adapter.

    The inverse of :func:`trace_to_tracer` — the tests assert the
    round-trip reproduces every TaskRecord field bit-for-bit.
    """
    trace = Trace()
    for s in tracer.spans():
        if s.pid != pid:
            continue
        a = s.args
        trace.add(
            TaskRecord(
                iteration=int(a.get("iteration", 0)),
                task=int(a.get("task", 0)),
                worker=int(s.tid),
                start=s.start,
                end=s.end,
                kind=s.cat,
                tile_ty=int(a.get("tile_ty", -1)),
                tile_tx=int(a.get("tile_tx", -1)),
            )
        )
    return trace


def frontier_to_counters(
    tracer: Tracer,
    window_log,
    *,
    pid: str = EASYPAP_PID,
    name: str = "frontier",
) -> int:
    """Project a frontier stepper's ``window_log`` onto counter tracks.

    *window_log* is the ``(iteration, (y0, y1, x0, x1), active_tiles)``
    list kept by :class:`~repro.sandpile.pfrontier.ParallelFrontierStepper`
    (and anything mirroring its contract).  Each entry becomes one counter
    sample — ``window_cells`` and ``active_tiles`` series, stamped with
    the iteration as the timestamp — so the shrinking frontier renders as
    a decaying curve next to the worker lanes of the same run.  Returns
    the number of samples written.
    """
    n = 0
    for iteration, window, active in window_log:
        y0, y1, x0, x1 = window
        tracer.counter(
            name,
            {
                "window_cells": (y1 - y0) * (x1 - x0),
                "active_tiles": active,
            },
            ts=float(iteration),
            pid=pid,
        )
        n += 1
    return n


def dispatch_to_counters(
    tracer: Tracer,
    registry,
    *,
    pid: str = EASYPAP_PID,
    prefix: str = "easypap_dispatch",
    ts: float = 0.0,
) -> int:
    """Project the process backend's dispatch metrics onto counter tracks.

    *registry* is the :class:`~repro.obs.metrics.MetricsRegistry` handed to
    :func:`~repro.easypap.executor.make_backend`; every family whose name
    starts with *prefix* (``easypap_dispatch_commands_total``,
    ``..._bytes_total``, ``..._batches_total``,
    ``..._queue_wait_seconds``) becomes one counter track.  Counter series
    are keyed by their labels (``mode=resident`` ...); histograms project
    their per-series ``sum`` and ``count``.  The samples land at *ts* (end
    of run — the registry holds totals, not a time series), which is
    enough for ``repro-trace summary`` to report how many commands and
    serialized bytes a run shipped per iteration.  Returns the number of
    counter records written.
    """

    def series_key(labels: dict) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "total"

    n = 0
    for name in registry.names():
        if not name.startswith(prefix):
            continue
        metric = registry.get(name)
        values: dict[str, float] = {}
        if metric.kind == "histogram":
            for row in metric.samples():
                key = series_key(row["labels"])
                values[f"{key}:sum"] = row["sum"]
                values[f"{key}:count"] = row["count"]
        else:
            for row in metric.samples():
                values[series_key(row["labels"])] = row["value"]
        if values:
            tracer.counter(name, values, ts=ts, pid=pid)
            n += 1
    return n


def degradation_to_instants(
    tracer: Tracer,
    log: DegradationLog,
    *,
    pid: str = EASYPAP_PID,
    tid: int | str = "resilience",
) -> int:
    """Project degradation events onto instant records; returns the count.

    Events stamped with an absolute ``perf_counter`` time are rebased
    onto the tracer's wall clock when it has an epoch; unstamped events
    (older producers) land at t=0.
    """
    clock = tracer.clock if isinstance(getattr(tracer, "clock", None), WallClock) else None
    n = 0
    for ev in log:
        ts = ev.ts
        if ts and clock is not None:
            ts = clock.rebase(ts)
        tracer.instant(
            f"{ev.component}:{ev.action}",
            ts=max(ts, 0.0),
            cat="degradation",
            pid=pid,
            tid=tid,
            args={"reason": ev.reason, "attempt": ev.attempt, **ev.detail},
        )
        n += 1
    return n
