"""SLO views over the serve layer's metrics.

The service records raw series (``serve_queue_latency_seconds``,
``serve_job_seconds`` histograms; ``serve_jobs_total`` counters;
``serve_cache_hit_ratio`` gauge); this adapter derives the operator-facing
summary: p50/p99 quantile estimates per series (the standard
Prometheus-style linear interpolation inside the owning cumulative
bucket) and a compact SLO table the CLI prints after ``repro-serve
run``/``bench``.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["SERVE_PID", "estimate_quantile", "slo_summary", "render_slo"]

#: track-group name the service records its spans under
SERVE_PID = "serve"


def estimate_quantile(hist: Histogram, q: float, **labels) -> float | None:
    """Estimate the q-quantile of one histogram series from its buckets.

    Linear interpolation within the bucket that holds the target rank
    (the ``histogram_quantile`` approach).  Observations above the last
    finite bucket clamp to that bucket's upper bound.  Returns None for
    an empty series or q outside [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        return None
    total = hist.count(**labels)
    if total == 0:
        return None
    rank = q * total
    # rebuild the cumulative counts for this one series from the snapshot
    from repro.obs.metrics import _labelkey  # same-package private helper

    key = _labelkey(labels)
    for row in hist.samples():
        if _labelkey(row["labels"]) != key:
            continue
        prev_cum, prev_ub = 0, 0.0
        finite = [(float(ub), c) for ub, c in row["buckets"].items() if ub != "+Inf"]
        for ub, cum in finite:
            if cum >= rank:
                in_bucket = cum - prev_cum
                if in_bucket <= 0:
                    return ub
                frac = (rank - prev_cum) / in_bucket
                return prev_ub + (ub - prev_ub) * frac
            prev_cum, prev_ub = cum, ub
        return finite[-1][0] if finite else None
    return None


def _series_labelsets(hist: Histogram) -> list[dict]:
    return [row["labels"] for row in hist.samples()]


def slo_summary(metrics: MetricsRegistry) -> dict:
    """The serve SLO view of *metrics* as a plain dict.

    Keys: ``queue_latency`` (per-tenant p50/p99/count),
    ``job_time`` (per-(tenant, substrate, outcome) p50/p99/count),
    ``cache_hit_ratio``, ``jobs`` (outcome counts per tenant).
    """
    out: dict = {"queue_latency": {}, "job_time": {}, "jobs": {}, "cache_hit_ratio": None}
    qh = metrics.get("serve_queue_latency_seconds")
    if isinstance(qh, Histogram):
        for labels in _series_labelsets(qh):
            name = labels.get("tenant", "?")
            out["queue_latency"][name] = {
                "count": qh.count(**labels),
                "p50": estimate_quantile(qh, 0.50, **labels),
                "p99": estimate_quantile(qh, 0.99, **labels),
            }
    jh = metrics.get("serve_job_seconds")
    if isinstance(jh, Histogram):
        for labels in _series_labelsets(jh):
            key = "/".join(
                labels.get(k, "?") for k in ("tenant", "substrate", "outcome")
            )
            out["job_time"][key] = {
                "count": jh.count(**labels),
                "p50": estimate_quantile(jh, 0.50, **labels),
                "p99": estimate_quantile(jh, 0.99, **labels),
            }
    jobs = metrics.get("serve_jobs_total")
    if jobs is not None:
        for row in jobs.samples():
            tenant = row["labels"].get("tenant", "?")
            outcome = row["labels"].get("outcome", "?")
            out["jobs"].setdefault(tenant, {})[outcome] = int(row["value"])
    ratio = metrics.get("serve_cache_hit_ratio")
    if ratio is not None and ratio.samples():
        out["cache_hit_ratio"] = ratio.samples()[0]["value"]
    return out


def _ms(v: float | None) -> str:
    return "-" if v is None else f"{v * 1e3:.1f}ms"


def render_slo(metrics: MetricsRegistry) -> str:
    """A terminal-friendly SLO table (see :func:`slo_summary`)."""
    s = slo_summary(metrics)
    lines = ["serve SLO summary"]
    for tenant, row in sorted(s["queue_latency"].items()):
        lines.append(
            f"  queue[{tenant}]: n={row['count']} p50={_ms(row['p50'])} p99={_ms(row['p99'])}"
        )
    for key, row in sorted(s["job_time"].items()):
        lines.append(
            f"  job[{key}]: n={row['count']} p50={_ms(row['p50'])} p99={_ms(row['p99'])}"
        )
    for tenant, row in sorted(s["jobs"].items()):
        cells = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        lines.append(f"  outcomes[{tenant}]: {cells}")
    if s["cache_hit_ratio"] is not None:
        lines.append(f"  cache hit ratio: {s['cache_hit_ratio']:.2f}")
    return "\n".join(lines)
