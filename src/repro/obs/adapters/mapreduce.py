"""mapreduce adapter: cluster attempts, shuffle arrows, job counters.

:func:`cluster_report_to_tracer` projects a
:class:`~repro.mapreduce.cluster.ClusterReport` (virtual time) onto the
unified model: each task *attempt* becomes a span on its worker's lane
(failed, straggling and speculative attempts carry those flags in args
and distinct categories, so Perfetto can colour them apart), the shuffle
barrier becomes a span on a dedicated lane, and flow arrows draw the
data's path — every successful map attempt into the shuffle, the shuffle
into every first successful reduce attempt.

:func:`counters_to_registry` folds Hadoop-style job
:class:`~repro.mapreduce.counters.Counters` into a metrics registry
(they already *are* one — see the shim in that module — but this also
bridges counters collected elsewhere).

The wall-clock twin, :func:`repro.mapreduce.engine.run_job_parallel`,
takes a tracer directly and records real attempt spans and retry
instants itself.
"""

from __future__ import annotations

from repro.mapreduce.cluster import ClusterConfig, ClusterReport
from repro.mapreduce.counters import Counters
from repro.obs.metrics import MetricsRegistry
from repro.obs.records import FlowPoint
from repro.obs.tracer import Tracer

__all__ = ["MAPREDUCE_PID", "SHUFFLE_LANE", "cluster_report_to_tracer", "counters_to_registry"]

MAPREDUCE_PID = "mapreduce"
SHUFFLE_LANE = "shuffle"


def _attempt_cat(a) -> str:
    if a.failed:
        return "failed"
    if a.speculative:
        return "speculative"
    return a.phase


def cluster_report_to_tracer(
    report: ClusterReport,
    config: ClusterConfig | None = None,
    *,
    tracer: Tracer | None = None,
    pid: str = MAPREDUCE_PID,
) -> Tracer:
    """Convert a simulated-cluster run into spans + shuffle flow arrows."""
    if tracer is None:
        tracer = Tracer(process=pid)

    shuffle_span = None
    if report.shuffle_finish > report.map_finish or report.attempts:
        shuffle_span = tracer.add_span(
            "shuffle",
            start=report.map_finish,
            end=report.shuffle_finish,
            cat="comm",
            pid=pid,
            tid=SHUFFLE_LANE,
            args={"phase": "shuffle"},
        )

    #: first successful (non-speculative) attempt per reduce task, for arrows
    first_reduce: dict[int, object] = {}
    for a in sorted(report.attempts, key=lambda a: (a.start, a.phase, a.task, a.attempt)):
        span = tracer.add_span(
            f"{a.phase}:{a.task}#a{a.attempt}",
            start=a.start,
            end=a.end,
            cat=_attempt_cat(a),
            pid=pid,
            tid=a.worker,
            args={
                "phase": a.phase,
                "task": a.task,
                "attempt": a.attempt,
                "failed": a.failed,
                "straggled": a.straggled,
                "speculative": a.speculative,
            },
        )
        if a.failed:
            tracer.instant(
                f"{a.phase} task {a.task} attempt {a.attempt} failed",
                ts=a.end,
                cat="fault",
                pid=pid,
                tid=a.worker,
                args={"phase": a.phase, "task": a.task, "attempt": a.attempt},
            )
            continue
        if shuffle_span is None:
            continue
        if a.phase == "map" and not a.speculative:
            # the spill leaves the mapper when the attempt completes
            tracer.flow(
                f"spill:{a.task}",
                FlowPoint(pid, a.worker, a.end),
                FlowPoint(pid, SHUFFLE_LANE, shuffle_span.start),
                cat="shuffle",
            )
        elif a.phase == "reduce" and not a.speculative and a.task not in first_reduce:
            first_reduce[a.task] = span
            tracer.flow(
                f"partition:{a.task}",
                FlowPoint(pid, SHUFFLE_LANE, shuffle_span.end),
                FlowPoint(pid, a.worker, a.start),
                cat="shuffle",
            )
    return tracer


def counters_to_registry(
    counters: Counters,
    registry: MetricsRegistry | None = None,
    *,
    name: str = "mapreduce_counter_total",
) -> MetricsRegistry:
    """Fold two-level job counters into a labelled registry counter."""
    if registry is None:
        registry = MetricsRegistry()
    metric = registry.counter(name, "Hadoop-style job counters (group/name)")
    for group, names in counters.as_dict().items():
        for cname, v in names.items():
            metric.inc(v, group=group, name=cname)
    return registry
