"""Metrics registry: counters, gauges, histograms with labels.

The second half of the observability layer (spans say *when*, metrics say
*how much*).  Modelled on the Prometheus client-library surface, trimmed
to what the substrates need:

* :class:`Counter`   — monotonically increasing totals (records mapped,
  retries taken, tiles skipped);
* :class:`Gauge`     — set-to-current values (active workers, frontier
  area);
* :class:`Histogram` — bucketed distributions with sum/count (task
  durations, message sizes).

Every metric takes free-form labels (``counter.inc(2, phase="map")``);
each distinct label combination is an independent series.  The registry
snapshots to plain dicts, diffs two snapshots (counters/histograms by
subtraction, gauges by final value), and exports JSON or the Prometheus
text exposition format.

``repro.mapreduce.counters.Counters`` is a thin shim over one registry
counter (see that module), so Hadoop-style job counters and these metrics
are a single source of truth.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left

from repro.common.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets (seconds-flavoured, Prometheus defaults)
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _labelkey(labels: dict) -> tuple:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ConfigurationError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Common storage: one float per label combination."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def value(self, **labels) -> float:
        """Current value of one series (0 when never touched)."""
        return self._values.get(_labelkey(labels), 0.0)

    def series(self) -> dict[tuple, float]:
        """Snapshot of every series: labelkey -> value."""
        with self._lock:
            return dict(self._values)

    def samples(self) -> list[dict]:
        """Snapshot rows: ``{"labels": {...}, "value": v}`` per series."""
        return [
            {"labels": dict(key), "value": v} for key, v in sorted(self.series().items())
        ]


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        """Add *amount* (>= 0) to the labelled series."""
        if amount < 0:
            raise ConfigurationError("counters only move forward")
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to *value*."""
        with self._lock:
            self._values[_labelkey(labels)] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        """Add *amount* (may be negative) to the labelled series."""
        key = _labelkey(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        """Subtract *amount* from the labelled series."""
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram with per-series sum and count."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=None) -> None:
        super().__init__(name, help)
        bs = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bs or list(bs) != sorted(bs) or len(set(bs)) != len(bs):
            raise ConfigurationError("buckets must be a non-empty strictly increasing sequence")
        self.buckets = bs
        #: labelkey -> [count per finite bucket] (cumulative counts are
        #: derived at snapshot time; +Inf is the series count)
        self._bucket_counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._counts: dict[tuple, int] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        if math.isnan(value):
            raise ConfigurationError("cannot observe NaN")
        key = _labelkey(labels)
        i = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._bucket_counts.setdefault(key, [0] * len(self.buckets))
            if i < len(self.buckets):
                counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels) -> int:
        """Observations recorded in one series."""
        return self._counts.get(_labelkey(labels), 0)

    def sum(self, **labels) -> float:
        """Sum of observations in one series."""
        return self._sums.get(_labelkey(labels), 0.0)

    def value(self, **labels) -> float:
        """For histograms, the series *sum* (keeps diffing uniform)."""
        return self.sum(**labels)

    def samples(self) -> list[dict]:
        """Snapshot rows with cumulative bucket counts per series."""
        with self._lock:
            keys = sorted(self._counts)
            out = []
            for key in keys:
                counts = self._bucket_counts.get(key, [0] * len(self.buckets))
                cumulative: dict[str, int] = {}
                running = 0
                for ub, c in zip(self.buckets, counts):
                    running += c
                    cumulative[repr(ub)] = running
                cumulative["+Inf"] = self._counts[key]
                out.append(
                    {
                        "labels": dict(key),
                        "count": self._counts[key],
                        "sum": self._sums[key],
                        "buckets": cumulative,
                    }
                )
            return out


class MetricsRegistry:
    """Named metric families; the unit of snapshot/export."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter family."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge family."""
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "", *, buckets=None) -> Histogram:
        """Get or create a histogram family."""
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        """The family registered under *name*, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted family names."""
        return sorted(self._metrics)

    # -- snapshot / diff ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every family and series (JSON-safe)."""
        return {
            name: {
                "type": m.kind,
                "help": m.help,
                "samples": m.samples(),
            }
            for name, m in sorted(self._metrics.items())
        }

    # -- export --------------------------------------------------------------------

    def to_json(self, *, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for name, m in sorted(self._metrics.items()):
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Histogram):
                for row in m.samples():
                    key = _labelkey(row["labels"])
                    for ub, c in row["buckets"].items():
                        le = _fmt_labels(key + (("le", ub),))
                        lines.append(f"{name}_bucket{le} {c}")
                    lines.append(f"{name}_sum{_fmt_labels(key)} {row['sum']}")
                    lines.append(f"{name}_count{_fmt_labels(key)} {row['count']}")
            else:
                for row in m.samples():
                    labels = _fmt_labels(_labelkey(row["labels"]))
                    v = row["value"]
                    out = repr(int(v)) if float(v).is_integer() else repr(v)
                    lines.append(f"{name}{labels} {out}")
        return "\n".join(lines) + ("\n" if lines else "")


def diff_snapshots(after: dict, before: dict) -> dict:
    """What changed between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histograms subtract (series missing from *before* count
    from zero); gauges report the *after* value.  Series whose delta is
    zero are dropped, so the result reads as "what this run did".
    """

    def sample_key(row: dict) -> tuple:
        return _labelkey(row["labels"])

    out: dict = {}
    for name, fam in after.items():
        old = before.get(name, {"samples": []})
        old_by_key = {sample_key(r): r for r in old.get("samples", [])}
        rows = []
        for row in fam["samples"]:
            prev = old_by_key.get(sample_key(row))
            if fam["type"] == "gauge":
                rows.append(dict(row))
                continue
            if fam["type"] == "histogram":
                d_count = row["count"] - (prev["count"] if prev else 0)
                d_sum = row["sum"] - (prev["sum"] if prev else 0.0)
                if d_count or d_sum:
                    rows.append(
                        {"labels": row["labels"], "count": d_count, "sum": d_sum}
                    )
                continue
            delta = row["value"] - (prev["value"] if prev else 0.0)
            if delta:
                rows.append({"labels": row["labels"], "value": delta})
        if rows:
            out[name] = {"type": fam["type"], "help": fam.get("help", ""), "samples": rows}
    return out
