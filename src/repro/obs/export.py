"""Exporters: Chrome trace-event JSON (Perfetto) and ASCII timelines.

:func:`to_chrome_trace` projects a :class:`~repro.obs.tracer.Tracer` onto
the Chrome trace-event JSON format, loadable at https://ui.perfetto.dev —
the modern stand-in for EASYPAP's SDL trace-explorer window.  Track
groups (``pid``) become Perfetto processes, lanes (``tid``) become
threads, both named via ``"M"`` metadata events; spans become complete
``"X"`` events; flows (MPI send→recv, mapreduce shuffle) become
``"s"``/``"f"`` arrow pairs; counter samples become ``"C"`` tracks.

Timestamps are converted from seconds to integer-friendly microseconds.
Virtual clocks export unchanged — Perfetto does not care whether a
microsecond was real.

:func:`ascii_timeline` is the terminal fallback, generalising
:meth:`repro.easypap.monitor.Trace.gantt_ascii` to any number of track
groups, with a legend and a per-lane busy%% column.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

from repro.obs.records import CounterRecord, FlowRecord, InstantRecord, SpanRecord
from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "ascii_timeline",
]

_US = 1e6  # seconds -> microseconds

#: timeline marks by category; unlisted categories use their first letter
_CAT_MARKS = {"compute": "#", "comm": "c", "gpu": "G"}


def _mark_for(cat: str) -> str:
    mark = _CAT_MARKS.get(cat)
    if mark is None:
        mark = cat[0] if cat else "#"
    return mark


def _lane_tables(tracer: Tracer):
    """Stable integer ids for pids and (pid, tid) lanes.

    Chrome wants integer pid/tid; names go into ``"M"`` metadata events.
    Sorting by name keeps the mapping deterministic across runs.
    """
    pids: set[str] = set()
    lanes: set[tuple[str, object]] = set()
    for r in tracer.records:
        if isinstance(r, FlowRecord):
            pids.update((r.src.pid, r.dst.pid))
            lanes.update({(r.src.pid, r.src.tid), (r.dst.pid, r.dst.tid)})
        elif isinstance(r, CounterRecord):
            pids.add(r.pid)
        else:
            pids.add(r.pid)
            lanes.add((r.pid, r.tid))
    pid_ids = {name: i + 1 for i, name in enumerate(sorted(pids))}
    tid_ids: dict[tuple, int] = {}
    by_pid: dict[str, list] = defaultdict(list)
    for pid, tid in lanes:
        by_pid[pid].append(tid)
    def lane_order(tid):
        # numeric lanes first in numeric order, then named lanes
        if isinstance(tid, bool) or not isinstance(tid, (int, float)):
            return (1, 0, str(tid))
        return (0, tid, "")

    for pid, tids in by_pid.items():
        for i, tid in enumerate(sorted(tids, key=lane_order)):
            tid_ids[(pid, tid)] = i + 1
    return pid_ids, tid_ids


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` list for one tracer."""
    pid_ids, tid_ids = _lane_tables(tracer)
    events: list[dict] = []
    for name, p in sorted(pid_ids.items()):
        events.append(
            {"name": "process_name", "ph": "M", "pid": p, "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": p, "args": {"sort_index": p}}
        )
    for (pid, tid), t in sorted(tid_ids.items(), key=lambda kv: (kv[1], str(kv[0]))):
        label = tid if isinstance(tid, str) else f"worker {tid}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_ids[pid],
                "tid": t,
                "args": {"name": str(label)},
            }
        )
    for r in tracer.records:
        if isinstance(r, SpanRecord):
            events.append(
                {
                    "name": r.name,
                    "cat": r.cat,
                    "ph": "X",
                    "ts": r.start * _US,
                    "dur": max(r.end - r.start, 0.0) * _US,
                    "pid": pid_ids[r.pid],
                    "tid": tid_ids[(r.pid, r.tid)],
                    "args": r.args,
                }
            )
        elif isinstance(r, InstantRecord):
            events.append(
                {
                    "name": r.name,
                    "cat": r.cat,
                    "ph": "i",
                    "s": r.scope,
                    "ts": r.ts * _US,
                    "pid": pid_ids[r.pid],
                    "tid": tid_ids.get((r.pid, r.tid), 0),
                    "args": r.args,
                }
            )
        elif isinstance(r, FlowRecord):
            common = {"name": r.name, "cat": r.cat, "id": r.flow_id}
            events.append(
                {
                    **common,
                    "ph": "s",
                    "ts": r.src.ts * _US,
                    "pid": pid_ids[r.src.pid],
                    "tid": tid_ids[(r.src.pid, r.src.tid)],
                }
            )
            events.append(
                {
                    **common,
                    "ph": "f",
                    "bp": "e",
                    "ts": r.dst.ts * _US,
                    "pid": pid_ids[r.dst.pid],
                    "tid": tid_ids[(r.dst.pid, r.dst.tid)],
                }
            )
        elif isinstance(r, CounterRecord):
            events.append(
                {
                    "name": r.name,
                    "ph": "C",
                    "ts": r.ts * _US,
                    "pid": pid_ids[r.pid],
                    "args": r.values,
                }
            )
    return events


def to_chrome_trace(tracer: Tracer) -> dict:
    """The full Chrome trace JSON object (Perfetto-loadable)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "process": tracer.process},
    }


def save_chrome_trace(tracer: Tracer, path: str | os.PathLike) -> None:
    """Write :func:`to_chrome_trace` as a ``.json`` file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)


def ascii_timeline(
    tracer: Tracer,
    *,
    width: int = 72,
    pid: str | None = None,
) -> str:
    """Render spans as one ASCII lane per ``(pid, tid)``.

    Includes a legend (mark -> category) and a busy%% column per lane —
    the self-describing version of the EASYPAP Gantt view.  *pid*
    restricts the view to one track group.
    """
    spans = [s for s in tracer.spans() if pid is None or s.pid == pid]
    if not spans:
        where = f" for pid {pid!r}" if pid else ""
        return f"<no spans{where}>"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    span = max(t1 - t0, 1e-12)
    lanes: dict[tuple, list[SpanRecord]] = defaultdict(list)
    for s in spans:
        lanes[(s.pid, s.tid)].append(s)
    cats = sorted({s.cat for s in spans})
    legend = "legend: " + "  ".join(f"{_mark_for(c)}={c}" for c in cats) + "  .=idle"
    lines = [
        f"{len(spans)} spans over {span:.4g}s across {len(lanes)} lanes",
        legend,
    ]
    show_pid = pid is None and len({p for p, _ in lanes}) > 1
    for (p, tid), rows in sorted(lanes.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
        row = ["."] * width
        busy = 0.0
        for s in rows:
            a = int((s.start - t0) / span * (width - 1))
            b = int((s.end - t0) / span * (width - 1))
            mark = _mark_for(s.cat)
            for i in range(a, max(b, a) + 1):
                row[i] = mark
            busy += s.duration
        label = f"{p}/{tid}" if show_pid else f"{tid}"
        lines.append(
            f"{label:<12.12} |{''.join(row)}| {100 * busy / span:5.1f}% busy, "
            f"{len(rows)} spans"
        )
    return "\n".join(lines)
