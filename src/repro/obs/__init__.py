"""repro.obs — unified tracing & metrics across all execution substrates.

One data model (:mod:`~repro.obs.records`), one recorder
(:class:`~repro.obs.tracer.Tracer` and its zero-overhead stand-in
:class:`~repro.obs.tracer.NullTracer`), one registry
(:class:`~repro.obs.metrics.MetricsRegistry`), and exporters for Chrome
trace-event JSON (Perfetto), Prometheus text, and ASCII timelines.
Substrate adapters live in :mod:`repro.obs.adapters`; the CLI surface is
``python -m repro.cli trace {export,summary,diff}``.

Hot paths take an optional tracer and guard with plain truthiness::

    if tracer:
        tracer.instant("retry", ...)

``NullTracer`` is falsy, so disabled tracing costs a single branch.
"""

from repro.obs.clock import ManualClock, WallClock
from repro.obs.export import (
    ascii_timeline,
    chrome_trace_events,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.records import (
    SCHEMA_VERSION,
    CounterRecord,
    FlowPoint,
    FlowRecord,
    InstantRecord,
    SpanRecord,
)
from repro.obs.summary import (
    LaneSummary,
    SummaryDiff,
    TraceSummary,
    diff_summaries,
    summarize,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "SpanRecord",
    "InstantRecord",
    "FlowRecord",
    "FlowPoint",
    "CounterRecord",
    "WallClock",
    "ManualClock",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "diff_snapshots",
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "ascii_timeline",
    "LaneSummary",
    "TraceSummary",
    "SummaryDiff",
    "summarize",
    "diff_summaries",
]
