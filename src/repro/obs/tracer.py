"""Span/event collection: the write side of the observability layer.

:class:`Tracer` is an append-only store of the records defined in
:mod:`repro.obs.records`, safe to share between threads (the simmpi ranks,
the thread-pool backends).  Worker *processes* cannot share it; they
record into their own tracer and the parent calls :meth:`Tracer.absorb`
on the drained records at harvest time — the same parent-drains-results
pattern :class:`~repro.easypap.executor.ProcessBackend` already uses for
tile spans.

:class:`NullTracer` is the disabled-by-default stand-in.  It is *falsy*,
so hot paths guard with a single truthiness check::

    if tracer:                     # one branch when disabled
        with tracer.span("step"):
            stepper()
    else:
        stepper()

and pay essentially nothing when tracing is off (``bench_hotpath.py
--check`` enforces <= 5% overhead on the frontier hot path).  Every
recording method is also a no-op, so code that received a NullTracer and
calls it unconditionally still works.

Timestamps for context-manager spans come from the tracer's clock
(:class:`~repro.obs.clock.WallClock` by default); substrates with virtual
time record via :meth:`Tracer.add_span` with explicit start/end instead.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager

from repro.obs.clock import WallClock
from repro.obs.records import (
    SCHEMA_VERSION,
    CounterRecord,
    FlowPoint,
    FlowRecord,
    InstantRecord,
    SpanRecord,
    record_to_row,
    row_to_record,
)

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


def _as_point(p) -> FlowPoint:
    if isinstance(p, FlowPoint):
        return p
    if isinstance(p, SpanRecord):
        # default binding: the span's start (callers needing the end pass
        # an explicit FlowPoint)
        return FlowPoint(p.pid, p.tid, p.start)
    pid, tid, ts = p
    return FlowPoint(pid, tid, float(ts))


class Tracer:
    """Thread-safe append-only collector of trace records."""

    enabled = True

    def __init__(self, *, clock=None, process: str = "main") -> None:
        self.clock = clock if clock is not None else WallClock()
        #: default ``pid`` (track group) for records that do not name one
        self.process = process
        self._records: list = []
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)
        self._flow_ids = itertools.count(1)

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._records)

    # -- recording ---------------------------------------------------------------

    def add_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        cat: str = "compute",
        pid: str | None = None,
        tid: int | str = 0,
        args: dict | None = None,
    ) -> SpanRecord:
        """Record a span with explicit times (virtual-clock substrates)."""
        rec = SpanRecord(
            name=name,
            cat=cat,
            pid=pid if pid is not None else self.process,
            tid=tid,
            start=float(start),
            end=float(end),
            args=dict(args) if args else {},
            span_id=next(self._span_ids),
        )
        with self._lock:
            self._records.append(rec)
        return rec

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "compute",
        pid: str | None = None,
        tid: int | str = 0,
        args: dict | None = None,
    ):
        """Measure a ``with`` body on this tracer's clock.

        Yields a mutable dict of args (extend it inside the body); the
        finished :class:`SpanRecord` is appended on exit, exceptions
        included (the span is marked ``error=True``).
        """
        live_args = dict(args) if args else {}
        t0 = self.clock()
        try:
            yield live_args
        except BaseException:
            live_args.setdefault("error", True)
            raise
        finally:
            self.add_span(
                name, start=t0, end=self.clock(), cat=cat, pid=pid, tid=tid, args=live_args
            )

    def instant(
        self,
        name: str,
        *,
        ts: float | None = None,
        cat: str = "event",
        pid: str | None = None,
        tid: int | str = 0,
        args: dict | None = None,
        scope: str = "t",
    ) -> InstantRecord:
        """Record a point event (defaults to *now* on the tracer clock)."""
        rec = InstantRecord(
            name=name,
            cat=cat,
            pid=pid if pid is not None else self.process,
            tid=tid,
            ts=float(ts) if ts is not None else self.clock(),
            args=dict(args) if args else {},
            scope=scope,
        )
        with self._lock:
            self._records.append(rec)
        return rec

    def new_flow_id(self) -> int:
        """Reserve a flow id (e.g. stamped on a message at send time)."""
        return next(self._flow_ids)

    def flow(
        self,
        name: str,
        src,
        dst,
        *,
        cat: str = "flow",
        flow_id: int | None = None,
    ) -> FlowRecord:
        """Record an arrow between two lane points.

        *src*/*dst* accept a :class:`FlowPoint`, a ``(pid, tid, ts)``
        tuple, or a :class:`SpanRecord` (bound at its start).
        """
        rec = FlowRecord(
            name=name,
            cat=cat,
            flow_id=flow_id if flow_id is not None else self.new_flow_id(),
            src=_as_point(src),
            dst=_as_point(dst),
        )
        with self._lock:
            self._records.append(rec)
        return rec

    def counter(
        self,
        name: str,
        values: dict,
        *,
        ts: float | None = None,
        pid: str | None = None,
    ) -> CounterRecord:
        """Sample a counter track (series name -> numeric value)."""
        rec = CounterRecord(
            name=name,
            pid=pid if pid is not None else self.process,
            ts=float(ts) if ts is not None else self.clock(),
            values=dict(values),
        )
        with self._lock:
            self._records.append(rec)
        return rec

    # -- access ------------------------------------------------------------------

    @property
    def records(self) -> list:
        """All records, in insertion order (a copy)."""
        return list(self._records)

    def spans(self) -> list[SpanRecord]:
        """All span records."""
        return [r for r in self._records if isinstance(r, SpanRecord)]

    def instants(self) -> list[InstantRecord]:
        """All instant records."""
        return [r for r in self._records if isinstance(r, InstantRecord)]

    def flows(self) -> list[FlowRecord]:
        """All flow records."""
        return [r for r in self._records if isinstance(r, FlowRecord)]

    def counters(self) -> list[CounterRecord]:
        """All counter records."""
        return [r for r in self._records if isinstance(r, CounterRecord)]

    def pids(self) -> list[str]:
        """Sorted track-group names present."""
        out = set()
        for r in self._records:
            if isinstance(r, FlowRecord):
                out.add(r.src.pid)
                out.add(r.dst.pid)
            else:
                out.add(r.pid)
        return sorted(out)

    # -- multiprocess collection --------------------------------------------------

    def drain(self) -> list:
        """Remove and return every record (worker side of the harvest)."""
        with self._lock:
            out, self._records = self._records, []
        return out

    def absorb(self, records) -> None:
        """Append records drained from another tracer (parent side)."""
        records = list(records)
        with self._lock:
            self._records.extend(records)
            # keep locally-minted span ids unique w.r.t. absorbed ones
            top = max(
                (r.span_id for r in records if isinstance(r, SpanRecord)), default=0
            )
            if top > 0:
                self._span_ids = itertools.count(
                    max(top, next(self._span_ids)) + 1
                )

    # -- persistence ---------------------------------------------------------------

    def save_jsonl(self, path: str | os.PathLike) -> None:
        """Write the session as JSON lines (one meta row, then records)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"type": "meta", "schema": SCHEMA_VERSION, "process": self.process}
                )
                + "\n"
            )
            for r in self._records:
                fh.write(json.dumps(record_to_row(r)) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | os.PathLike) -> "Tracer":
        """Load a session written by :meth:`save_jsonl`.

        Unknown row types and unknown keys are skipped, so traces written
        by newer code stay loadable.
        """
        tracer = cls()
        records = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if row.get("type") == "meta":
                    tracer.process = row.get("process", tracer.process)
                    continue
                rec = row_to_record(row)
                if rec is not None:
                    records.append(rec)
        tracer.absorb(records)  # also re-seats the span-id counter past loaded ids
        return tracer


class _NullContext:
    """Reusable no-op context manager (no allocation per use)."""

    __slots__ = ("_args",)

    def __init__(self) -> None:
        self._args: dict = {}

    def __enter__(self) -> dict:
        self._args.clear()
        return self._args

    def __exit__(self, *exc) -> None:
        return None


class NullTracer:
    """The disabled tracer: falsy, never records, near-zero overhead."""

    enabled = False

    def __init__(self) -> None:
        self._ctx = _NullContext()

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def span(self, name, **kwargs):
        """No-op context manager."""
        return self._ctx

    def add_span(self, name, **kwargs) -> None:
        """No-op."""
        return None

    def instant(self, name, **kwargs) -> None:
        """No-op."""
        return None

    def flow(self, name, src, dst, **kwargs) -> None:
        """No-op."""
        return None

    def counter(self, name, values, **kwargs) -> None:
        """No-op."""
        return None

    def new_flow_id(self) -> int:
        """Flow ids from a disabled tracer are all zero."""
        return 0

    @property
    def records(self) -> list:
        """Always empty."""
        return []

    def spans(self) -> list:
        """Always empty."""
        return []

    def instants(self) -> list:
        """Always empty."""
        return []

    def flows(self) -> list:
        """Always empty."""
        return []

    def counters(self) -> list:
        """Always empty."""
        return []

    def pids(self) -> list:
        """Always empty."""
        return []

    def drain(self) -> list:
        """Always empty."""
        return []

    def absorb(self, records) -> None:
        """Discard (the tracer is disabled)."""
        return None


#: a process-wide shared disabled tracer, for defaulting keyword arguments
NULL_TRACER = NullTracer()
