"""Trace summaries and side-by-side diffs.

The numeric counterpart of the timeline views: makespan, per-lane busy
time and busy fraction, span counts per lane and per category.  The
fields deliberately mirror :class:`repro.easypap.monitor.IterationSummary`
(makespan, ``worker_busy``, task counts) so the CLI's ``trace summary``
agrees with the substrate-local summariser on the same run — the tests
assert it.

:func:`diff_summaries` is the paper's Fig. 3 operation generalised: the
same workload traced under two configurations (two scheduling policies,
two backends), compared lane by lane.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.records import SpanRecord
from repro.obs.tracer import Tracer

__all__ = ["LaneSummary", "TraceSummary", "summarize", "diff_summaries", "SummaryDiff"]


@dataclass(frozen=True)
class LaneSummary:
    """Aggregates for one ``(pid, tid)`` lane."""

    pid: str
    tid: int | str
    span_count: int
    busy: float

    def busy_fraction(self, makespan: float) -> float:
        """Busy seconds over the trace makespan (0 when empty)."""
        return self.busy / makespan if makespan > 0 else 0.0


@dataclass
class TraceSummary:
    """Aggregate statistics over (a filtered view of) one trace."""

    span_count: int
    t0: float
    t1: float
    lanes: dict[tuple, LaneSummary] = field(default_factory=dict)
    by_cat: dict[str, int] = field(default_factory=dict)
    #: degradation instants counted by ``(substrate pid, component:action)``
    degradations: dict[tuple, int] = field(default_factory=dict)
    #: counter tracks: name -> {series: last-sampled value} (e.g. the
    #: process backend's dispatch metrics projected by the easypap adapter)
    counters: dict[str, dict] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Last end minus first start."""
        return self.t1 - self.t0

    @property
    def total_busy(self) -> float:
        """Summed busy seconds over all lanes (serial-equivalent work)."""
        return sum(lane.busy for lane in self.lanes.values())

    @property
    def worker_busy(self) -> dict:
        """Busy seconds keyed by ``tid`` — IterationSummary's shape.

        Only meaningful when tids are unique across pids (single-substrate
        traces); colliding tids sum.
        """
        out: dict = defaultdict(float)
        for lane in self.lanes.values():
            out[lane.tid] += lane.busy
        return dict(out)

    @property
    def task_counts(self) -> dict:
        """Span counts keyed by ``tid``."""
        out: dict = defaultdict(int)
        for lane in self.lanes.values():
            out[lane.tid] += lane.span_count
        return dict(out)

    @property
    def imbalance(self) -> float:
        """``max(busy)/mean(busy) - 1`` over lanes (0 when empty)."""
        busy = [lane.busy for lane in self.lanes.values()]
        if not busy:
            return 0.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean - 1.0 if mean > 0 else 0.0

    def render(self, *, title: str = "trace") -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{title}: {self.span_count} spans, makespan {self.makespan:.6g}s, "
            f"total work {self.total_busy:.6g}s, imbalance {self.imbalance:.3f}"
        ]
        if self.by_cat:
            cats = ", ".join(f"{c}={n}" for c, n in sorted(self.by_cat.items()))
            lines.append(f"  by category: {cats}")
        for (pid, tid), lane in sorted(self.lanes.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            lines.append(
                f"  {pid}/{tid}: {lane.span_count} spans, busy {lane.busy:.6g}s "
                f"({100 * lane.busy_fraction(self.makespan):.1f}%)"
            )
        if self.degradations:
            total = sum(self.degradations.values())
            lines.append(f"  degradations: {total} event(s)")
            for (pid, kind), n in sorted(self.degradations.items()):
                lines.append(f"    {pid}: {kind} x{n}")
        if self.counters:
            lines.append("  counters:")
            for name, series in sorted(self.counters.items()):
                body = ", ".join(f"{k}={v:.6g}" for k, v in sorted(series.items()))
                lines.append(f"    {name}: {body}")
        return "\n".join(lines)


def summarize(
    tracer: Tracer,
    *,
    pid: str | None = None,
    where=None,
) -> TraceSummary:
    """Aggregate the trace's spans (optionally one pid, optionally filtered).

    *where* is a predicate over :class:`SpanRecord` — e.g.
    ``lambda s: s.args.get("iteration") == 7`` to summarise one iteration
    of an easypap run.

    Degradation instants (``cat="degradation"``, the shape every
    substrate adapter and the job supervisor emit) are counted by
    ``(pid, name)`` — substrate by fallback kind — so retries, pool
    rebuilds, and checkpoint rejections are visible in ``repro-trace
    summary`` without opening Perfetto.
    """
    degradations: dict[tuple, int] = defaultdict(int)
    for rec in tracer.instants():
        if rec.cat == "degradation" and (pid is None or rec.pid == pid):
            degradations[(rec.pid, rec.name)] += 1
    # counter tracks keep their *last* sample per series: totals (like the
    # dispatch metrics) read as the run's final count, decaying tracks
    # (like the frontier window) as where they ended up
    counters: dict[str, dict] = {}
    for rec in tracer.counters():
        if pid is None or rec.pid == pid:
            counters.setdefault(rec.name, {}).update(rec.values)
    spans: list[SpanRecord] = [
        s
        for s in tracer.spans()
        if (pid is None or s.pid == pid) and (where is None or where(s))
    ]
    if not spans:
        return TraceSummary(
            span_count=0, t0=0.0, t1=0.0,
            degradations=dict(degradations), counters=counters,
        )
    busy: dict[tuple, float] = defaultdict(float)
    counts: dict[tuple, int] = defaultdict(int)
    by_cat: dict[str, int] = defaultdict(int)
    for s in spans:
        key = (s.pid, s.tid)
        busy[key] += s.duration
        counts[key] += 1
        by_cat[s.cat] += 1
    lanes = {
        key: LaneSummary(pid=key[0], tid=key[1], span_count=counts[key], busy=busy[key])
        for key in busy
    }
    return TraceSummary(
        span_count=len(spans),
        t0=min(s.start for s in spans),
        t1=max(s.end for s in spans),
        lanes=lanes,
        by_cat=dict(by_cat),
        degradations=dict(degradations),
        counters=counters,
    )


@dataclass(frozen=True)
class SummaryDiff:
    """Two summaries of the same workload, side by side."""

    left: TraceSummary
    right: TraceSummary
    left_name: str = "left"
    right_name: str = "right"

    @property
    def makespan_ratio(self) -> float:
        """Left makespan over right makespan (inf when right is empty)."""
        if self.right.makespan == 0:
            return float("inf") if self.left.makespan else 1.0
        return self.left.makespan / self.right.makespan

    @property
    def span_ratio(self) -> float:
        """Left span count over right span count."""
        if self.right.span_count == 0:
            return float("inf") if self.left.span_count else 1.0
        return self.left.span_count / self.right.span_count

    def render(self) -> str:
        """Side-by-side comparison text (the Fig. 3 exercise)."""
        a, b = self.left, self.right
        lines = [
            f"{self.left_name} vs {self.right_name}",
            f"  spans     : {a.span_count} vs {b.span_count} (ratio {self.span_ratio:.2f})",
            f"  makespan  : {a.makespan:.6g} vs {b.makespan:.6g} "
            f"(ratio {self.makespan_ratio:.2f})",
            f"  total work: {a.total_busy:.6g} vs {b.total_busy:.6g}",
            f"  imbalance : {a.imbalance:.3f} vs {b.imbalance:.3f}",
        ]
        tids = sorted(
            set(a.worker_busy) | set(b.worker_busy), key=lambda t: (str(type(t)), str(t))
        )
        for tid in tids:
            la = a.worker_busy.get(tid, 0.0)
            lb = b.worker_busy.get(tid, 0.0)
            fa = 100 * la / a.makespan if a.makespan > 0 else 0.0
            fb = 100 * lb / b.makespan if b.makespan > 0 else 0.0
            lines.append(f"  lane {tid}: busy {fa:5.1f}% vs {fb:5.1f}%")
        return "\n".join(lines)


def diff_summaries(
    left: TraceSummary,
    right: TraceSummary,
    *,
    left_name: str = "left",
    right_name: str = "right",
) -> SummaryDiff:
    """Pair two summaries for rendering/ratio queries."""
    return SummaryDiff(left=left, right=right, left_name=left_name, right_name=right_name)
