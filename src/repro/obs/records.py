"""The trace event model shared by every execution substrate.

EASYPAP's trace explorer, Hadoop's job history, and WRENCH's simulation
dumps all answer the same question — *what ran where, when, and what did
it talk to* — with substrate-specific records.  ``repro.obs`` normalises
them into four record kinds, deliberately mirroring the Chrome
trace-event / Perfetto vocabulary so export is a projection rather than a
translation:

* :class:`SpanRecord`    — a named interval on a ``(pid, tid)`` lane
  (Chrome's complete ``"X"`` event).  ``pid`` is a *track group* (a
  backend, a simulated cluster, an MPI world, a platform site) and
  ``tid`` a lane within it (worker, rank, resource).
* :class:`InstantRecord` — a point event (retries, degradations,
  speculative launches; Chrome ``"i"``).
* :class:`FlowRecord`    — an arrow between two points on (possibly
  different) lanes: MPI send→recv, mapreduce map→shuffle→reduce
  (Chrome ``"s"``/``"f"``).
* :class:`CounterRecord` — a sampled counter track (energy, queue
  depth; Chrome ``"C"``).

Timestamps are float *seconds* on whichever clock the producing substrate
uses — wall clocks for the real backends, the **virtual clocks** of
``simmpi``/``wrench``/the simulated cluster.  Records never mix clocks
within one ``pid``, which is all the exporters need.

Rows (the JSONL persistence form) carry ``schema`` and ``type`` fields;
loaders ignore unknown keys and unknown types so old readers survive new
writers and vice versa.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "SpanRecord",
    "InstantRecord",
    "FlowRecord",
    "CounterRecord",
    "FlowPoint",
    "record_to_row",
    "row_to_record",
]

#: bump when a row shape changes incompatibly; loaders accept <= current
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FlowPoint:
    """One endpoint of a flow arrow: a point on a lane."""

    pid: str
    tid: int | str
    ts: float


@dataclass(frozen=True)
class SpanRecord:
    """A named interval on lane ``(pid, tid)``; times in seconds."""

    name: str
    cat: str
    pid: str
    tid: int | str
    start: float
    end: float
    args: dict = field(default_factory=dict)
    span_id: int = 0

    @property
    def duration(self) -> float:
        """Seconds from start to end."""
        return self.end - self.start


@dataclass(frozen=True)
class InstantRecord:
    """A point event on lane ``(pid, tid)``."""

    name: str
    cat: str
    pid: str
    tid: int | str
    ts: float
    args: dict = field(default_factory=dict)
    #: Chrome instant scope: "t" thread, "p" process, "g" global
    scope: str = "t"


@dataclass(frozen=True)
class FlowRecord:
    """An arrow from ``src`` to ``dst`` (e.g. an MPI message in flight)."""

    name: str
    cat: str
    flow_id: int
    src: FlowPoint
    dst: FlowPoint


@dataclass(frozen=True)
class CounterRecord:
    """A sample of one or more counter series on track ``(pid, name)``."""

    name: str
    pid: str
    ts: float
    values: dict = field(default_factory=dict)


_TYPE_OF = {
    SpanRecord: "span",
    InstantRecord: "instant",
    FlowRecord: "flow",
    CounterRecord: "counter",
}


def record_to_row(record) -> dict:
    """Serialise one record to a JSON-friendly row (with schema/type tags)."""
    row = {"type": _TYPE_OF[type(record)], "schema": SCHEMA_VERSION}
    for f in dataclasses.fields(record):
        v = getattr(record, f.name)
        if isinstance(v, FlowPoint):
            v = {"pid": v.pid, "tid": v.tid, "ts": v.ts}
        row[f.name] = v
    return row


def _filtered_kwargs(cls, row: dict) -> dict:
    """Keep only the keys *cls* declares — unknown keys are forward compat."""
    allowed = {f.name for f in dataclasses.fields(cls)}
    return {k: v for k, v in row.items() if k in allowed}


def row_to_record(row: dict):
    """Rebuild a record from a row; returns None for unknown row types.

    Unknown keys are ignored (newer writers may add fields); unknown
    ``type`` values yield None so loaders can skip rows they do not
    understand instead of crashing on them.
    """
    kind = row.get("type")
    if kind == "span":
        return SpanRecord(**_filtered_kwargs(SpanRecord, row))
    if kind == "instant":
        return InstantRecord(**_filtered_kwargs(InstantRecord, row))
    if kind == "flow":
        kw = _filtered_kwargs(FlowRecord, row)
        for end in ("src", "dst"):
            p = kw[end]
            if isinstance(p, dict):
                kw[end] = FlowPoint(**_filtered_kwargs(FlowPoint, p))
        return FlowRecord(**kw)
    if kind == "counter":
        return CounterRecord(**_filtered_kwargs(CounterRecord, row))
    return None
