"""Clock sources for tracers.

A tracer timestamps context-manager spans by calling its clock; substrates
with their own notion of time (the virtual clocks of ``simmpi``/``wrench``,
the simulated cluster's schedule) bypass the clock entirely and record
spans with explicit start/end instead.

* :class:`WallClock` — monotonic wall time, zeroed at construction.  The
  epoch is exposed so absolute ``time.perf_counter()`` stamps taken
  elsewhere (e.g. :class:`~repro.common.resilience.DegradationLog` events)
  can be rebased onto the same axis.
* :class:`ManualClock` — a clock that only moves when told to; useful in
  tests and for replaying simulated timelines through the context-manager
  API.
"""

from __future__ import annotations

import time

__all__ = ["WallClock", "ManualClock"]


class WallClock:
    """Monotonic seconds since construction (comparable across threads)."""

    def __init__(self) -> None:
        #: absolute ``time.perf_counter()`` at t=0 of this clock
        self.epoch = time.perf_counter()

    def __call__(self) -> float:
        return time.perf_counter() - self.epoch

    def rebase(self, absolute_perf_counter: float) -> float:
        """Convert an absolute ``perf_counter()`` stamp onto this clock."""
        return absolute_perf_counter - self.epoch


class ManualClock:
    """A clock under test/replay control: ``now`` is whatever was set."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def set(self, now: float) -> None:
        """Jump the clock to *now*."""
        self.now = float(now)

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self.now += seconds
        return self.now
