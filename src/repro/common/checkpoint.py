"""Durable, versioned, corruption-detecting checkpoint storage.

A :class:`CheckpointStore` is a directory of numbered snapshots.  Every
snapshot is written **atomically** (temp file in the same directory,
flush + fsync, then ``os.replace``) so a crash mid-write can never leave
a half-written file under a valid name, and carries

* a **format version** — the loader only accepts snapshots whose format
  it knows; bump :data:`CHECKPOINT_FORMAT` whenever the envelope layout
  changes incompatibly (policy: readers never guess at unknown formats,
  they fall back to an older readable snapshot or report none);
* a **SHA-256 digest** of the pickled payload — flipped bits or
  truncation make :meth:`CheckpointStore.load` raise
  :class:`~repro.common.errors.CheckpointError` instead of handing back
  silently wrong state;
* the **step counter** at snapshot time, so resume logic can account for
  work honestly.

:meth:`CheckpointStore.load_latest` walks snapshots newest-first and
skips unreadable ones (recording them in :attr:`CheckpointStore.rejected`),
which is what makes the chaos campaign's checkpoint-corruption scenario
recoverable: corrupting the newest file degrades to the previous one
rather than to an error.

**Concurrency.** ``mkstemp`` + ``os.replace`` already makes each write
atomic per file, but two writers sharing a directory used to race the
keep-N pruning: writer A could list, writer B replace a new snapshot, and
A's prune then delete B's just-written file — exactly what the
:mod:`repro.serve` result cache provokes when two identical submissions
finish together.  Two fixes close it: all stores on the same directory in
this process serialize save+prune on a shared per-directory lock, and
readers tolerate files that vanish between listing and open (a concurrent
prune is not corruption, so :meth:`CheckpointStore.load_latest` skips
vanished files without recording a rejection).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import CheckpointError, ConfigurationError

__all__ = ["CHECKPOINT_FORMAT", "Snapshot", "CheckpointStore"]

#: one lock per resolved store directory, shared by every CheckpointStore
#: instance in this process (save/prune serialization, see module docs)
_DIR_LOCKS: dict[str, threading.Lock] = {}
_DIR_LOCKS_GUARD = threading.Lock()


def _dir_lock(directory: Path) -> threading.Lock:
    key = str(directory.resolve())
    with _DIR_LOCKS_GUARD:
        lock = _DIR_LOCKS.get(key)
        if lock is None:
            lock = _DIR_LOCKS[key] = threading.Lock()
        return lock

#: current envelope format; see the module docstring for the bump policy
CHECKPOINT_FORMAT = 1

_NAME_RE = re.compile(r"^(?P<prefix>.+)-(?P<step>\d{8})\.ckpt$")


@dataclass(frozen=True)
class Snapshot:
    """One loaded snapshot: the job state plus its envelope metadata."""

    step: int
    state: dict
    meta: dict
    path: Path


class CheckpointStore:
    """Numbered snapshots in one directory, newest wins.

    Parameters
    ----------
    directory:
        Created if missing.  One store per job; snapshots are named
        ``{prefix}-{step:08d}.ckpt``.
    keep:
        How many snapshots to retain; older ones are pruned after each
        successful save (>= 2 keeps a fallback for corruption recovery).
    """

    def __init__(self, directory: str | os.PathLike, *, keep: int = 3, prefix: str = "ckpt") -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        if not prefix or "/" in prefix:
            raise ConfigurationError(f"invalid snapshot prefix {prefix!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self._lock = _dir_lock(self.directory)
        #: (path, reason) pairs for snapshots load_latest refused
        self.rejected: list[tuple[Path, str]] = []

    # -- write ------------------------------------------------------------------

    def save(self, state: dict, *, step: int, meta: dict | None = None) -> Path:
        """Atomically persist *state* as the snapshot for *step*.

        The payload is pickled first, digested, and wrapped in the
        versioned envelope; the envelope lands under its final name only
        via ``os.replace``, so concurrent readers never observe a partial
        file.  Returns the snapshot path.
        """
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        payload = pickle.dumps({"state": state, "meta": dict(meta or {})}, protocol=4)
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "step": int(step),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        final = self.directory / f"{self.prefix}-{step:08d}.ckpt"
        with self._lock:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{self.prefix}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(envelope, fh, protocol=4)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except FileNotFoundError:
                    pass
                raise
            self._fsync_directory()
            self._prune()
        return final

    def _fsync_directory(self) -> None:
        # make the rename itself durable (posix); best-effort elsewhere
        try:
            dfd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(dfd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(dfd)

    def _prune(self) -> None:
        snaps = self.snapshot_paths()
        for path in snaps[: -self.keep]:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass

    # -- read -------------------------------------------------------------------

    def snapshot_paths(self) -> list[Path]:
        """Snapshot files present, sorted oldest to newest by step."""
        out = []
        for path in self.directory.iterdir():
            m = _NAME_RE.match(path.name)
            if m and m.group("prefix") == self.prefix:
                out.append((int(m.group("step")), path))
        return [p for _, p in sorted(out)]

    def load(self, path: str | os.PathLike) -> Snapshot:
        """Load and verify one snapshot file.

        Raises :class:`CheckpointError` on truncation, bit corruption
        (digest mismatch), or an unknown format version.
        """
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
        except FileNotFoundError:
            raise CheckpointError(f"no such snapshot: {path}") from None
        except Exception as exc:
            raise CheckpointError(f"unreadable snapshot {path.name}: {exc!r}") from exc
        if not isinstance(envelope, dict) or "payload" not in envelope:
            raise CheckpointError(f"snapshot {path.name} has no envelope")
        fmt = envelope.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"snapshot {path.name} has format {fmt!r}; this reader only "
                f"understands format {CHECKPOINT_FORMAT}"
            )
        payload = envelope["payload"]
        digest = hashlib.sha256(payload).hexdigest()
        if digest != envelope.get("sha256"):
            raise CheckpointError(f"snapshot {path.name} failed its checksum (corrupt)")
        try:
            body = pickle.loads(payload)
        except Exception as exc:  # digest passed but payload unpicklable
            raise CheckpointError(f"snapshot {path.name} payload undecodable: {exc!r}") from exc
        return Snapshot(
            step=int(envelope.get("step", 0)),
            state=body.get("state", {}),
            meta=body.get("meta", {}),
            path=path,
        )

    def load_latest(self) -> Snapshot | None:
        """The newest *readable* snapshot, or None when none exists.

        Corrupt or unknown-format snapshots are skipped (and listed in
        :attr:`rejected`) so that a damaged newest file degrades to the
        previous good one instead of failing the resume.  A file that
        *vanished* between listing and open was pruned by a concurrent
        writer, not corrupted — it is skipped without a rejection entry.
        """
        for path in reversed(self.snapshot_paths()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                if not path.exists():  # concurrently pruned, not damaged
                    continue
                self.rejected.append((path, str(exc)))
        return None

    def __len__(self) -> int:
        return len(self.snapshot_paths())
