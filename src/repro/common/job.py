"""One ``Job`` protocol over every real execution path.

PR 2 gave each substrate its own resilience wiring; this module extracts
the contract that lets resilience, observability, and (eventually) a
service layer apply *uniformly*: a job is something that advances in
discrete, restartable **steps** towards a **result**, can report
**progress**, and — when the substrate allows it — can **checkpoint** its
state and be **restored** from a snapshot.

The four real execution paths implement it:

* :class:`repro.easypap.job.SandpileJob` — one step per stepper iteration
  (all registered variants, including ``pfrontier`` on the process
  backend); checkpoints carry the grid plane, sink counter, and iteration
  count.
* :class:`repro.mapreduce.stepjob.MapReduceStepJob` — one step per map
  task / shuffle / reduce partition; checkpoints carry the phase manifest
  (completed spills, partitions, outputs, per-task counters).
* :class:`repro.simmpi.job.SimMpiJob` — an SPMD world is atomic: one
  step runs the whole world; the only checkpoint boundary is completion.
* :class:`repro.wrench.job.WrenchJob` — likewise atomic: one step runs
  the discrete-event simulation.

:class:`~repro.common.supervisor.Supervisor` drives any job with
retries, a circuit breaker, heartbeats, and interval/SIGTERM
checkpointing; :mod:`repro.chaos` injects faults against the same
surface and asserts recovery invariants.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.errors import CheckpointError, ConfigurationError

__all__ = ["JobProgress", "Job", "OneShotJob"]


@dataclass(frozen=True)
class JobProgress:
    """How far a job has advanced.

    ``steps_total`` is ``None`` when the job cannot know it up front
    (run-to-fixpoint workloads discover their iteration count).
    """

    steps_done: int
    done: bool
    steps_total: int | None = None
    detail: dict = field(default_factory=dict)

    @property
    def fraction(self) -> float | None:
        """Completed fraction in [0, 1], or None when the total is unknown."""
        if self.steps_total is None or self.steps_total <= 0:
            return 1.0 if self.done else None
        return min(1.0, self.steps_done / self.steps_total)


class Job(abc.ABC):
    """A stepwise execution unit every substrate adapter implements.

    Contract:

    * :meth:`step` performs one unit of work and returns ``True`` while
      more work remains; once it has returned ``False`` the job is done
      and further calls must keep returning ``False``.
    * :meth:`result` is only meaningful after the job is done.
    * when :attr:`supports_checkpoint` is True, :meth:`checkpoint`
      returns a picklable snapshot from which :meth:`restore` (called on
      a *fresh* job built with the same configuration) reproduces the
      exact execution state — the resumed run must be bit-identical to an
      uninterrupted one.
    * :attr:`retryable_steps` declares that a step which *raised* left no
      partial state behind, so a supervisor may simply call it again.
    * :meth:`describe` returns the canonical construction-time fields —
      the content-addressed cache in :mod:`repro.serve` hashes them, so
      two jobs whose ``describe()`` dicts are equal must compute
      bit-identical results.
    """

    #: human-readable job name (campaign rows, metrics labels)
    name: str = "job"
    #: which execution substrate this job runs on
    substrate: str = "generic"
    #: a failed (raised) step may be re-invoked without corrupting state
    retryable_steps: bool = True
    #: checkpoint()/restore() are implemented
    supports_checkpoint: bool = False

    @abc.abstractmethod
    def step(self) -> bool:
        """Advance one unit of work; True while more work remains."""

    @abc.abstractmethod
    def result(self):
        """The job's outcome (call only once :meth:`progress` says done)."""

    @abc.abstractmethod
    def progress(self) -> JobProgress:
        """Current progress."""

    def describe(self) -> dict:
        """Canonical, JSON-serialisable construction-time description.

        The contract for cache correctness: every field the computed
        result depends on must appear here, and two jobs with equal
        descriptions must produce bit-identical results.  Substrate
        adapters built from a :class:`repro.serve.spec.JobSpec` return
        the spec's own fields so ``spec -> job -> describe()`` round-trips
        (see ``tests/serve/test_spec.py``); directly constructed jobs
        fall back to a digest of their inputs.  Call it before stepping —
        it reflects the *initial* configuration, not live state.
        """
        return {"substrate": self.substrate, "workload": "custom", "name": self.name}

    def checkpoint(self) -> dict:
        """A picklable snapshot of the execution state."""
        raise ConfigurationError(f"{type(self).__name__} does not support checkpointing")

    def restore(self, state: dict) -> None:
        """Reinstate a snapshot produced by :meth:`checkpoint`."""
        raise ConfigurationError(f"{type(self).__name__} does not support checkpointing")

    def close(self) -> None:
        """Release any owned resources (pools, shared memory); idempotent."""

    def __enter__(self) -> "Job":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, *, max_steps: int | None = None):
        """Drive the job to completion without supervision; returns the result.

        The unsupervised twin of :meth:`Supervisor.run
        <repro.common.supervisor.Supervisor.run>` — no retries, no
        checkpoints — used by tests and baselines.
        """
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps and not self.progress().done:
                raise ConfigurationError(
                    f"{self.name}: exceeded max_steps={max_steps} without completing"
                )
        return self.result()


class OneShotJob(Job):
    """Base for substrates whose execution is one atomic call.

    Subclasses implement :meth:`compute`; the only checkpoint boundary is
    completion — a snapshot of a finished job carries its result, so
    restoring it skips the recomputation entirely, while restoring an
    unfinished snapshot is a no-op (the work simply reruns, which is safe
    because :meth:`compute` must be pure).
    """

    supports_checkpoint = True
    retryable_steps = True

    def __init__(self) -> None:
        self._done = False
        self._result = None

    @abc.abstractmethod
    def compute(self):
        """Run the whole workload; must be pure (safe to re-invoke)."""

    def step(self) -> bool:
        if self._done:
            return False
        self._result = self.compute()
        self._done = True
        return False

    def result(self):
        """The computed outcome (None until done)."""
        return self._result

    def progress(self) -> JobProgress:
        """0 or 1 steps: atomic jobs have a single boundary."""
        return JobProgress(steps_done=1 if self._done else 0, done=self._done, steps_total=1)

    def checkpoint(self) -> dict:
        """Snapshot at the completion boundary (result included when done)."""
        return {"kind": "one-shot", "done": self._done, "result": self._result}

    def restore(self, state: dict) -> None:
        """Reinstate a completion snapshot (unfinished snapshots re-run)."""
        if state.get("kind") != "one-shot":
            raise CheckpointError(
                f"snapshot kind {state.get('kind')!r} does not fit a one-shot job"
            )
        self._done = bool(state.get("done", False))
        self._result = state.get("result") if self._done else None
