"""Fault-tolerant execution primitives shared by the real backends.

The simulated substrates (the virtual cluster, the scheduling replays)
promise re-execution-based fault tolerance: the output is identical no
matter how many workers, failures, or stragglers occur.  This module gives
the *hardware-backed* paths the same story:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter (seeded through :mod:`repro.common.rng`, so two runs
  with the same seed sleep the same amount);
* :class:`Deadline` — a wall-clock budget threaded through blocking calls;
* :class:`FaultInjector` — deterministic fault injection for tests: kill
  the executing worker process, or raise :class:`InjectedFault` inside a
  task, a bounded number of times;
* :class:`DegradationLog` — an audit trail of every fallback the system
  takes (pool rebuilds, thread-pool degradation, retries), so "it worked"
  never silently means "it worked on the slow path".

Everything here is pure stdlib + numpy and safe to import in forked
worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, ReproError
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng

__all__ = [
    "InjectedFault",
    "RetryPolicy",
    "Deadline",
    "FaultInjector",
    "DegradationEvent",
    "DegradationLog",
]


class InjectedFault(ReproError, RuntimeError):
    """Raised by :class:`FaultInjector` inside an instrumented task."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus up to two retries.  The delay before retry *k*
    (1-based) is ``base_delay * backoff ** (k - 1)`` capped at
    ``max_delay``, plus a jitter drawn uniformly from ``[0, jitter]``
    using a generator derived from ``seed`` — identical seeds produce
    identical sleep schedules, keeping fault-injection tests reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ConfigurationError("delays and jitter must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1 = first retry)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        d = min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)
        if self.jitter > 0:
            rng = make_rng(derive_seed(self.seed, "retry-jitter", attempt))
            d += float(rng.uniform(0.0, self.jitter))
        return d

    def retries_left(self, attempt: int) -> int:
        """Remaining retries after *attempt* attempts have been made."""
        return max(0, self.max_attempts - attempt)

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay`; returns the slept duration."""
        d = self.delay(attempt)
        if d > 0:
            time.sleep(d)
        return d


class Deadline:
    """A wall-clock budget: ``Deadline(5.0)`` expires five seconds later.

    ``Deadline(None)`` never expires (``remaining()`` returns ``None``),
    letting callers thread one object through without branching.
    """

    def __init__(self, budget: float | None) -> None:
        if budget is not None and budget <= 0:
            raise ConfigurationError(f"deadline budget must be > 0, got {budget}")
        self.budget = budget
        self._t0 = time.monotonic()

    @property
    def expired(self) -> bool:
        """True once the budget is exhausted."""
        r = self.remaining()
        return r is not None and r <= 0.0

    def remaining(self) -> float | None:
        """Seconds left (may be <= 0), or None for an unbounded deadline."""
        if self.budget is None:
            return None
        return self.budget - (time.monotonic() - self._t0)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return time.monotonic() - self._t0


class FaultInjector:
    """Deterministically inject faults into task execution (tests only).

    ``kill_on_tasks`` names task indices whose execution terminates the
    hosting worker process (``os._exit``), producing a genuine
    ``BrokenProcessPool`` in the parent; ``raise_on_tasks`` names indices
    that raise :class:`InjectedFault` in-process instead.  Each injector
    fires at most ``max_fires`` times *globally* — the count lives in a
    :class:`multiprocessing.Value`, shared with every worker (and with
    rebuilt pools), so retried tasks succeed and recovery paths can be
    asserted rather than looping forever.

    Start-method compatibility: the shared counter is created in the
    **spawn** context, which CPython accepts in every sharing mode we
    use — fork-pool inheritance, spawn ``Process(args=...)``, and spawn
    pool ``initargs`` (a *fork*-context ``Value`` handed to a spawn
    worker raises "A SemLock created in a fork context is being shared
    with a process in a spawn context").  Plain ``pickle.dumps`` of an
    injector still refuses by design — synchronized objects may only
    travel through multiprocessing's own channels.
    """

    #: exit status used by killed workers, distinctive in diagnostics
    KILL_EXIT_CODE = 39

    def __init__(
        self,
        *,
        kill_on_tasks: frozenset[int] | set[int] | tuple[int, ...] = (),
        raise_on_tasks: frozenset[int] | set[int] | tuple[int, ...] = (),
        max_fires: int = 1,
    ) -> None:
        if max_fires < 0:
            raise ConfigurationError(f"max_fires must be >= 0, got {max_fires}")
        self.kill_on_tasks = frozenset(kill_on_tasks)
        self.raise_on_tasks = frozenset(raise_on_tasks)
        if self.kill_on_tasks & self.raise_on_tasks:
            raise ConfigurationError("a task index cannot both kill and raise")
        self.max_fires = max_fires
        # spawn-context Value: inheritable by fork AND shippable to spawn
        # workers (a fork-context SemLock cannot cross into spawn children)
        self._fired = multiprocessing.get_context("spawn").Value("i", 0)

    @property
    def fires(self) -> int:
        """Number of faults injected so far (across all processes)."""
        return int(self._fired.value)

    def check(self, task_index: int) -> None:
        """Inject the configured fault for *task_index*, if armed.

        Called by instrumented executors immediately before running a
        task.  A no-op once ``max_fires`` faults have been injected.
        """
        if task_index in self.kill_on_tasks:
            with self._fired.get_lock():
                if self._fired.value >= self.max_fires:
                    return
                self._fired.value += 1
            # flush nothing, release nothing: simulate a hard crash
            os._exit(self.KILL_EXIT_CODE)
        if task_index in self.raise_on_tasks:
            with self._fired.get_lock():
                if self._fired.value >= self.max_fires:
                    return
                self._fired.value += 1
            raise InjectedFault(f"injected fault on task {task_index}")

    def wrap(self, task_index: int, fn):
        """Return a nullary callable running ``check`` then ``fn()``."""

        def wrapped():
            self.check(task_index)
            return fn()

        return wrapped


@dataclass(frozen=True)
class DegradationEvent:
    """One fallback the system took, and why."""

    component: str  # e.g. "ProcessBackend", "run_job_parallel"
    action: str  # e.g. "pool-rebuild", "thread-fallback", "retry"
    reason: str  # human-readable cause, e.g. the triggering exception
    attempt: int = 0  # which retry attempt recorded the event
    detail: dict = field(default_factory=dict)  # structured extras (tile ids...)
    ts: float = 0.0  # perf_counter stamp at record time (0.0 = unstamped)


class DegradationLog:
    """Append-only record of every fallback taken during a run.

    Passed into backends that can degrade; assertions in tests (and
    curious users) read it back.  Thread-safe by virtue of ``list.append``
    atomicity; events are plain frozen dataclasses.
    """

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []

    def record(
        self,
        component: str,
        action: str,
        reason: str,
        *,
        attempt: int = 0,
        **detail,
    ) -> DegradationEvent:
        """Append and return a :class:`DegradationEvent`."""
        ev = DegradationEvent(
            component, action, reason, attempt=attempt, detail=detail, ts=time.perf_counter()
        )
        self.events.append(ev)
        return ev

    def by_action(self, action: str) -> list[DegradationEvent]:
        """Events whose action matches."""
        return [e for e in self.events if e.action == action]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def summary(self) -> str:
        """One line per event, for logs and CLI output."""
        if not self.events:
            return "no degradation events"
        return "\n".join(
            f"[{e.component}] {e.action} (attempt {e.attempt}): {e.reason}" for e in self.events
        )
