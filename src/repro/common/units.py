"""Physical-unit helpers for the simulators.

The carbon-footprint simulator mixes seconds, watts, kilowatt-hours, bytes
and grams of CO2-equivalent; mixing them up silently is the classic source
of off-by-1000 bugs, so conversions are centralised here and named
explicitly.  All values are plain floats — the overhead of a full unit
system is not justified for an inner simulation loop.
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB",
    "KILO", "MEGA", "GIGA",
    "MINUTE", "HOUR",
    "joules_to_kwh", "kwh_to_joules",
    "watts_to_kw",
    "bytes_to_gb", "gb_to_bytes", "mb_to_bytes",
    "grams_co2e",
    "format_bytes", "format_duration", "format_power", "format_co2",
]

# Binary prefixes are deliberately *not* used: network/storage vendors and
# the paper's "7.5GB total data footprint" speak decimal units.
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

KILO = 1e3
MEGA = 1e6
GIGA = 1e9

MINUTE = 60.0
HOUR = 3600.0

_JOULES_PER_KWH = 3.6e6


def joules_to_kwh(joules: float) -> float:
    """Convert energy in joules to kilowatt-hours."""
    return joules / _JOULES_PER_KWH


def kwh_to_joules(kwh: float) -> float:
    """Convert energy in kilowatt-hours to joules."""
    return kwh * _JOULES_PER_KWH


def watts_to_kw(watts: float) -> float:
    """Convert power in watts to kilowatts."""
    return watts / 1e3


def bytes_to_gb(nbytes: float) -> float:
    """Convert a byte count to decimal gigabytes."""
    return nbytes / GB


def gb_to_bytes(gb: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gb * GB


def mb_to_bytes(mb: float) -> float:
    """Convert decimal megabytes to bytes."""
    return mb * MB


def grams_co2e(energy_joules: float, intensity_g_per_kwh: float) -> float:
    """Carbon emission (gCO2e) of *energy_joules* at a given carbon intensity.

    *intensity_g_per_kwh* is the grid's carbon intensity in grams of CO2
    equivalent per kWh (the paper's local power plant emits 291 gCO2e/kWh).
    """
    if intensity_g_per_kwh < 0:
        raise ValueError("carbon intensity cannot be negative")
    return joules_to_kwh(energy_joules) * intensity_g_per_kwh


def format_bytes(nbytes: float) -> str:
    """Human-readable decimal byte count, e.g. ``7.50 GB``."""
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(nbytes) >= unit:
            return f"{nbytes / unit:.2f} {name}"
    return f"{nbytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``2m 03.5s``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.2f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m {s:04.1f}s"
    h, rest = divmod(seconds, HOUR)
    m = rest / MINUTE
    return f"{int(h)}h {m:04.1f}m"


def format_power(watts: float) -> str:
    """Human-readable power, e.g. ``12.4 kW``."""
    if abs(watts) >= 1e3:
        return f"{watts / 1e3:.2f} kW"
    return f"{watts:.1f} W"


def format_co2(grams: float) -> str:
    """Human-readable CO2-equivalent mass, e.g. ``1.25 kgCO2e``."""
    if abs(grams) >= 1e3:
        return f"{grams / 1e3:.3f} kgCO2e"
    return f"{grams:.2f} gCO2e"
