"""Colour maps and image output.

Two palettes matter for the paper:

* the **sandpile palette** of Fig. 1 — black for 0 grains, green for 1,
  blue for 2, red for 3 (and a saturation ramp for still-unstable cells);
* a **diverging blue-white-red map** for the warming stripes of Fig. 6,
  modelled on ColorBrewer's RdBu ramp that Ed Hawkins' original uses.

Images are plain ``uint8`` RGB numpy arrays of shape ``(H, W, 3)``; they can
be written to the venerable binary PPM format, which needs no external
imaging library and is accepted by every viewer/converter.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

__all__ = [
    "SANDPILE_PALETTE",
    "sandpile_to_rgb",
    "diverging_rgb",
    "stripes_to_rgb",
    "write_ppm",
    "ascii_render",
]

#: Fig. 1 colours: index = grain count (0..3); unstable cells (>=4) reuse red
#: with increasing brightness so animations show activity.
SANDPILE_PALETTE: tuple[tuple[int, int, int], ...] = (
    (0, 0, 0),        # 0 grains: black
    (0, 200, 0),      # 1 grain : green
    (0, 80, 255),     # 2 grains: blue
    (255, 40, 40),    # 3 grains: red
)

#: ColorBrewer-like 11-class RdBu anchor colours, blue (cold) -> red (warm).
_RDBU_ANCHORS: tuple[tuple[int, int, int], ...] = (
    (5, 48, 97),
    (33, 102, 172),
    (67, 147, 195),
    (146, 197, 222),
    (209, 229, 240),
    (247, 247, 247),
    (253, 219, 199),
    (244, 165, 130),
    (214, 96, 77),
    (178, 24, 43),
    (103, 0, 31),
)


def sandpile_to_rgb(grid: np.ndarray) -> np.ndarray:
    """Render a sandpile state to an RGB image using the Fig. 1 palette.

    *grid* holds grain counts; values ``>= 4`` (unstable, mid-simulation)
    are drawn as bright white-hot pixels so activity is visible.
    """
    g = np.asarray(grid)
    if g.ndim != 2:
        raise ValueError(f"expected a 2D grid, got shape {g.shape}")
    img = np.empty((*g.shape, 3), dtype=np.uint8)
    stable = np.clip(g, 0, 3).astype(np.intp)
    palette = np.array(SANDPILE_PALETTE, dtype=np.uint8)
    img[:] = palette[stable]
    hot = g >= 4
    if hot.any():
        # brightness grows with log2 of the surplus, capped at white
        level = np.clip(180 + 15 * np.log2(g[hot].astype(float) - 2.0), 0, 255)
        img[hot] = np.stack([level, level * 0.9, level * 0.6], axis=-1).astype(np.uint8)
    return img


def diverging_rgb(value: float, vmin: float, vmax: float) -> tuple[int, int, int]:
    """Map *value* in ``[vmin, vmax]`` onto the blue-white-red diverging ramp.

    Values outside the range clamp to the end colours, mirroring how the
    warming-stripes colourbar is manually pinned to mean +/- 1.5 degC.
    """
    if vmax <= vmin:
        raise ValueError("vmax must exceed vmin")
    t = (float(value) - vmin) / (vmax - vmin)
    t = min(max(t, 0.0), 1.0)
    pos = t * (len(_RDBU_ANCHORS) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(_RDBU_ANCHORS) - 1)
    frac = pos - lo
    c0 = np.array(_RDBU_ANCHORS[lo], dtype=float)
    c1 = np.array(_RDBU_ANCHORS[hi], dtype=float)
    r, g, b = np.round(c0 + frac * (c1 - c0)).astype(int)
    return int(r), int(g), int(b)


def stripes_to_rgb(
    values: Sequence[float],
    vmin: float,
    vmax: float,
    *,
    height: int = 100,
    stripe_width: int = 4,
) -> np.ndarray:
    """Render one vertical stripe per value — the Fig. 6 visualization.

    *values* are annual mean temperatures ordered by year; each becomes a
    ``stripe_width``-pixel-wide column coloured by :func:`diverging_rgb`.
    Missing years may be passed as ``nan`` and are drawn grey.
    """
    vals = np.asarray(list(values), dtype=float)
    if vals.ndim != 1 or vals.size == 0:
        raise ValueError("values must be a non-empty 1D sequence")
    if height <= 0 or stripe_width <= 0:
        raise ValueError("height and stripe_width must be positive")
    img = np.empty((height, vals.size * stripe_width, 3), dtype=np.uint8)
    for i, v in enumerate(vals):
        colour = (128, 128, 128) if np.isnan(v) else diverging_rgb(v, vmin, vmax)
        img[:, i * stripe_width : (i + 1) * stripe_width] = colour
    return img


def write_ppm(path: str | os.PathLike, image: np.ndarray) -> None:
    """Write an ``(H, W, 3) uint8`` RGB array as a binary PPM (P6) file."""
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3 or img.dtype != np.uint8:
        raise ValueError("image must be an (H, W, 3) uint8 array")
    h, w = img.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(img.tobytes())


def ascii_render(grid: np.ndarray, *, max_size: int = 64) -> str:
    """Downsampled ASCII view of a sandpile grid (for terminals / logs).

    Each character encodes the dominant grain count of its block:
    ``' '`` 0, ``'.'`` 1, ``'+'`` 2, ``'#'`` 3, ``'@'`` unstable.
    """
    g = np.asarray(grid)
    if g.ndim != 2:
        raise ValueError("expected a 2D grid")
    step = max(1, int(np.ceil(max(g.shape) / max_size)))
    sampled = g[::step, ::step]
    chars = np.array([" ", ".", "+", "#"])
    out_lines = []
    for row in sampled:
        line = "".join("@" if v >= 4 else chars[int(v)] for v in row)
        out_lines.append(line)
    return "\n".join(out_lines)
