"""Deterministic random-number plumbing.

Everything stochastic in the library (synthetic climate data, sparse
sandpile configurations, simulated stragglers, ...) draws from a
:class:`numpy.random.Generator` obtained through :func:`make_rng` so that
every experiment is reproducible from a single integer seed.

:func:`spawn_rngs` derives independent child generators from one seed, which
is how the simulated cluster gives each worker its own stream without the
streams being correlated.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "spawn_rngs", "derive_seed"]

#: Seed used across examples and benchmarks when the caller does not care.
DEFAULT_SEED = 0x5EED


def make_rng(seed: int | np.random.Generator | None = DEFAULT_SEED) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts an existing generator (returned unchanged) so that APIs can take
    ``seed: int | Generator | None`` and normalise with one call.  ``None``
    yields an OS-entropy generator — only useful interactively, never in
    tests or benchmarks.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent generators from *seed*."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: int, *context: int | str) -> int:
    """Deterministically mix *context* into *seed*, returning a new seed.

    Used when a component needs a scalar seed (e.g. to persist in a config)
    rather than a generator.  Mixing is done through
    :class:`numpy.random.SeedSequence`, so distinct contexts give
    uncorrelated streams.
    """
    entropy: list[int] = [seed]
    for item in context:
        if isinstance(item, str):
            entropy.append(int.from_bytes(item.encode("utf-8"), "little") % (2**63))
        else:
            entropy.append(int(item))
    return int(np.random.SeedSequence(entropy).generate_state(1, np.uint64)[0])


def choice_weighted(rng: np.random.Generator, items: Sequence, weights: Sequence[float]):
    """Pick one element of *items* with the given (unnormalised) weights."""
    w = np.asarray(weights, dtype=float)
    if len(items) != w.size:
        raise ValueError("items and weights must have equal length")
    if w.size == 0:
        raise ValueError("cannot choose from an empty sequence")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    idx = rng.choice(len(items), p=w / total)
    return items[int(idx)]
