"""Plain-text table rendering for benchmark harnesses and reports.

Every benchmark in ``benchmarks/`` prints the rows the paper reports
(Table I, the survey of Fig. 5, per-experiment sweeps) through
:class:`Table`, so all harness output shares one format and the tests can
assert on structure instead of ad-hoc string formatting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["Table", "format_table", "histogram_bar"]


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """An accumulating plain-text table.

    >>> t = Table(["name", "value"], title="demo")
    >>> t.add_row(["x", 1.0])
    >>> print(t.render())  # doctest: +SKIP
    """

    columns: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable) -> None:
        """Append one row; values are stringified with 4-significant-digit floats."""
        cells = [_cell(v) for v in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render to an aligned ASCII table string."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(fmt_row(headers))
        lines.append(sep)
        lines.extend(fmt_row(r) for r in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(columns: Sequence[str], rows: Iterable[Iterable], title: str | None = None) -> str:
    """One-shot helper: build a :class:`Table` from rows and render it."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(row)
    return t.render()


def histogram_bar(count: int, max_count: int, width: int = 30, char: str = "#") -> str:
    """A text bar proportional to ``count / max_count``, used by the survey renderer."""
    if max_count <= 0:
        return ""
    if count < 0:
        raise ValueError("count cannot be negative")
    n = round(width * count / max_count)
    if count > 0:
        n = max(n, 1)  # nonzero counts always show at least one tick
    return char * n
