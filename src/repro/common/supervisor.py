"""Supervised job execution: retries, circuit breaker, heartbeat, checkpoints.

The :class:`Supervisor` drives any :class:`~repro.common.job.Job` and
layers the PR 2 resilience primitives on top of the protocol instead of
inside each substrate:

* **bounded step retries** via :class:`~repro.common.resilience.RetryPolicy`
  (only when the job declares ``retryable_steps``);
* a :class:`CircuitBreaker` that stops hammering a job whose steps fail
  consecutively, then probes again after a cool-down (half-open);
* a :class:`Heartbeat` the caller (or a chaos harness) can watch to detect
  a hung job;
* **interval checkpointing** into a
  :class:`~repro.common.checkpoint.CheckpointStore` every N steps and/or
  every T seconds, plus a final snapshot on ``SIGTERM`` or a cooperative
  :meth:`Supervisor.request_stop` — interruption surfaces as
  :class:`JobInterrupted` carrying the snapshot, and
  :meth:`Supervisor.resume` continues bit-identically.

Every fallback the supervisor takes is recorded three ways at once so no
consumer needs bespoke plumbing: a
:class:`~repro.common.resilience.DegradationEvent` in the log, an obs
instant (``cat="degradation"``, name ``component:action``, pid = the
job's substrate — the same shape
:func:`repro.obs.adapters.easypap.degradation_to_instants` produces), and
a Prometheus counter in the metrics registry.
"""

from __future__ import annotations

import signal
import threading
import time

from repro.common.checkpoint import CheckpointStore
from repro.common.errors import ConfigurationError, ReproError
from repro.common.job import Job
from repro.common.resilience import Deadline, DegradationLog, RetryPolicy

__all__ = [
    "CircuitOpenError",
    "JobInterrupted",
    "CircuitBreaker",
    "Heartbeat",
    "Supervisor",
]


class CircuitOpenError(ReproError, RuntimeError):
    """The circuit breaker refused to run another step (still cooling down)."""


class JobInterrupted(ReproError, RuntimeError):
    """A supervised run stopped before completion (SIGTERM or requested stop).

    ``snapshot_path`` names the final checkpoint (None when the job cannot
    checkpoint); ``steps_done`` counts completed steps.  Resume with
    :meth:`Supervisor.resume` on a freshly built job.
    """

    def __init__(self, message: str, *, steps_done: int, snapshot_path=None) -> None:
        super().__init__(message)
        self.steps_done = steps_done
        self.snapshot_path = snapshot_path


class CircuitBreaker:
    """Classic three-state breaker over consecutive step failures.

    CLOSED → OPEN after ``failure_threshold`` consecutive failures; OPEN
    refuses calls until ``reset_timeout`` seconds pass, then one probe is
    allowed (HALF_OPEN).  A successful probe closes the breaker; a failed
    one re-opens it and restarts the cool-down.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise ConfigurationError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, advancing OPEN → HALF_OPEN once cooled down."""
        if self._state == self.OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        """A call succeeded: close the breaker and forget failures."""
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        """A call failed: maybe trip (or re-trip after a failed probe)."""
        self._failures += 1
        if self.state == self.HALF_OPEN or self._failures >= self.failure_threshold:
            self._state = self.OPEN
            self._opened_at = self._clock()


class Heartbeat:
    """A liveness pulse the supervisor beats after every completed step.

    Watchers call :meth:`healthy` with the staleness they tolerate; chaos
    harnesses assert the beat count matches the step count (hung jobs
    stop beating, dead ones never start).  Thread-safe.
    """

    def __init__(self, *, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.count = 0
        self.last_beat: float | None = None

    def beat(self) -> None:
        """Record one pulse."""
        with self._lock:
            self.count += 1
            self.last_beat = self._clock()

    def age(self) -> float | None:
        """Seconds since the last pulse, or None before the first."""
        with self._lock:
            if self.last_beat is None:
                return None
            return self._clock() - self.last_beat

    def healthy(self, timeout: float) -> bool:
        """True when a pulse arrived within *timeout* seconds."""
        a = self.age()
        return a is not None and a <= timeout


class Supervisor:
    """Run a :class:`Job` with retries, breaker, heartbeat, checkpoints.

    Parameters
    ----------
    job:
        The job to drive.  Its ``retryable_steps``/``supports_checkpoint``
        declarations gate what the supervisor is allowed to do.
    retry:
        Per-step retry budget; a step that raises is re-invoked up to
        ``retry.max_attempts`` times total (requires ``retryable_steps``).
    store:
        Destination for snapshots; None disables checkpointing.
    checkpoint_every_steps / checkpoint_every_seconds:
        Interval triggers; either, both, or neither.
    breaker / heartbeat / degradation / tracer / metrics:
        Optional collaborators; sensible defaults are constructed when
        omitted (tracer/metrics default to doing nothing).
    handle_sigterm:
        Install a ``SIGTERM`` handler for the duration of :meth:`run`
        that requests a cooperative stop (checkpoint, then
        :class:`JobInterrupted`).  Only possible from the main thread.
    on_step:
        Optional callable invoked after every *completed* step with
        ``(steps_done, progress)`` — the progress-streaming hook the
        :mod:`repro.serve` service uses to publish
        :class:`~repro.common.job.JobProgress` snapshots without polling.
        It runs on the supervising thread and must not raise.
    """

    def __init__(
        self,
        job: Job,
        *,
        retry: RetryPolicy | None = None,
        store: CheckpointStore | None = None,
        checkpoint_every_steps: int | None = None,
        checkpoint_every_seconds: float | None = None,
        breaker: CircuitBreaker | None = None,
        heartbeat: Heartbeat | None = None,
        degradation: DegradationLog | None = None,
        tracer=None,
        metrics=None,
        handle_sigterm: bool = False,
        on_step=None,
    ) -> None:
        if checkpoint_every_steps is not None and checkpoint_every_steps < 1:
            raise ConfigurationError(
                f"checkpoint_every_steps must be >= 1, got {checkpoint_every_steps}"
            )
        if checkpoint_every_seconds is not None and checkpoint_every_seconds <= 0:
            raise ConfigurationError(
                f"checkpoint_every_seconds must be > 0, got {checkpoint_every_seconds}"
            )
        if (checkpoint_every_steps or checkpoint_every_seconds) and store is None:
            raise ConfigurationError("checkpoint intervals require a CheckpointStore")
        if store is not None and not job.supports_checkpoint:
            raise ConfigurationError(
                f"{type(job).__name__} does not support checkpointing; drop the store"
            )
        self.job = job
        self.retry = retry or RetryPolicy()
        self.store = store
        self.checkpoint_every_steps = checkpoint_every_steps
        self.checkpoint_every_seconds = checkpoint_every_seconds
        self.breaker = breaker or CircuitBreaker()
        self.heartbeat = heartbeat or Heartbeat()
        self.degradation = degradation if degradation is not None else DegradationLog()
        self.tracer = tracer
        self.metrics = metrics
        self.handle_sigterm = handle_sigterm
        self.on_step = on_step
        self.steps_done = 0
        self.retries_used = 0
        self.checkpoints_written = 0
        self._stop_requested = False
        self._last_checkpoint_time: float | None = None

    # -- degradation fan-out ----------------------------------------------------

    def _degrade(self, action: str, reason: str, *, attempt: int = 0, **detail) -> None:
        """Record one fallback in the log, the trace, and the metrics."""
        self.degradation.record("Supervisor", action, reason, attempt=attempt, **detail)
        if self.tracer:
            self.tracer.instant(
                f"Supervisor:{action}",
                cat="degradation",
                pid=self.job.substrate,
                args={"reason": reason, "attempt": attempt, "detail": dict(detail)},
            )
        if self.metrics is not None:
            self.metrics.counter(
                "supervisor_degradations_total",
                "fallbacks taken by the job supervisor",
            ).inc(substrate=self.job.substrate, job=self.job.name, action=action)

    def _count(self, name: str, help: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, help).inc(
                amount, substrate=self.job.substrate, job=self.job.name
            )

    # -- checkpointing ----------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to checkpoint and stop at the next boundary."""
        self._stop_requested = True

    def _checkpoint(self, *, reason: str):
        """Write a snapshot now; returns its path (None without a store)."""
        if self.store is None or not self.job.supports_checkpoint:
            return None
        path = self.store.save(
            self.job.checkpoint(),
            step=self.steps_done,
            meta={"job": self.job.name, "substrate": self.job.substrate, "reason": reason},
        )
        self.checkpoints_written += 1
        self._last_checkpoint_time = time.monotonic()
        self._count("supervisor_checkpoints_total", "snapshots written by the supervisor")
        if self.tracer:
            self.tracer.instant(
                "Supervisor:checkpoint",
                cat="checkpoint",
                pid=self.job.substrate,
                args={"step": self.steps_done, "reason": reason},
            )
        return path

    def _checkpoint_due(self) -> bool:
        if self.store is None:
            return False
        if (
            self.checkpoint_every_steps is not None
            and self.steps_done > 0
            and self.steps_done % self.checkpoint_every_steps == 0
        ):
            return True
        if self.checkpoint_every_seconds is not None:
            last = self._last_checkpoint_time
            if last is None or time.monotonic() - last >= self.checkpoint_every_seconds:
                return True
        return False

    # -- the run loop -----------------------------------------------------------

    def _step_with_retries(self) -> bool:
        """One protocol step under the retry policy and circuit breaker."""
        if not self.breaker.allow():
            self._degrade("circuit-open", "breaker refused the step")
            raise CircuitOpenError(
                f"{self.job.name}: circuit open after repeated step failures"
            )
        attempt = 0
        while True:
            attempt += 1
            try:
                more = self.job.step()
            except ReproError as exc:
                self.breaker.record_failure()
                if not self.job.retryable_steps or self.retry.retries_left(attempt) == 0:
                    raise
                self.retries_used += 1
                self._count("supervisor_retries_total", "step retries by the supervisor")
                self._degrade("step-retry", repr(exc), attempt=attempt)
                self.retry.sleep(attempt)
                if not self.breaker.allow():
                    raise CircuitOpenError(
                        f"{self.job.name}: circuit opened while retrying"
                    ) from exc
            else:
                self.breaker.record_success()
                return more

    def run(
        self,
        *,
        resume: bool = False,
        stop_after_steps: int | None = None,
        deadline: Deadline | None = None,
    ):
        """Drive the job to completion; returns its result.

        With ``resume=True`` the latest readable snapshot is restored
        first (a no-op when the store is empty).  ``stop_after_steps``
        interrupts deterministically after that many *newly completed*
        steps — checkpoint, then :class:`JobInterrupted` — which is how
        chaos scenarios kill a run mid-flight without real signals.  A
        *deadline* whose budget expires interrupts the same graceful way
        at the next step boundary, so an over-budget run leaves a
        resumable snapshot instead of a hard abort.
        """
        if resume:
            self.restore_latest()
        if self._last_checkpoint_time is None:
            # start the seconds-interval clock at run start, not import time
            self._last_checkpoint_time = time.monotonic() if self.checkpoint_every_seconds else None
        prev_handler = None
        use_signal = self.handle_sigterm and threading.current_thread() is threading.main_thread()
        if use_signal:
            prev_handler = signal.signal(signal.SIGTERM, lambda *_: self.request_stop())
        started_at = self.steps_done
        try:
            while True:
                expired = deadline is not None and deadline.expired
                if self._stop_requested or expired or (
                    stop_after_steps is not None
                    and self.steps_done - started_at >= stop_after_steps
                ):
                    if self._stop_requested:
                        why = "stop-requested"
                    elif expired:
                        why = "deadline-expired"
                    else:
                        why = "stop-after-steps"
                    path = self._checkpoint(reason=why)
                    self._degrade("interrupted", why, step=self.steps_done)
                    raise JobInterrupted(
                        f"{self.job.name}: interrupted ({why}) after {self.steps_done} steps",
                        steps_done=self.steps_done,
                        snapshot_path=path,
                    )
                more = self._step_with_retries()
                self.steps_done += 1
                self.heartbeat.beat()
                self._count("supervisor_steps_total", "job steps completed under supervision")
                if self.on_step is not None:
                    self.on_step(self.steps_done, self.job.progress())
                if self._checkpoint_due():
                    self._checkpoint(reason="interval")
                if not more:
                    break
        finally:
            if use_signal:
                signal.signal(signal.SIGTERM, prev_handler)
        return self.job.result()

    def restore_latest(self) -> bool:
        """Restore the newest readable snapshot; True when one was applied.

        Corrupt newest snapshots fall back to older valid ones (see
        :meth:`CheckpointStore.load_latest`); every rejected file is
        reported as a degradation event.
        """
        if self.store is None:
            return False
        before = len(self.store.rejected)
        snap = self.store.load_latest()
        for path, why in self.store.rejected[before:]:
            self._degrade("checkpoint-rejected", why, file=path.name)
        if snap is None:
            return False
        self.job.restore(snap.state)
        self.steps_done = snap.step
        if self.tracer:
            self.tracer.instant(
                "Supervisor:restore",
                cat="checkpoint",
                pid=self.job.substrate,
                args={"step": snap.step, "file": snap.path.name},
            )
        return True

    def resume(self):
        """Shorthand for ``run(resume=True)``."""
        return self.run(resume=True)
