"""Wall-clock measurement helpers.

EASYPAP teaches students "no optimisation without measuring"; this module is
the measuring tape.  :class:`Stopwatch` accumulates intervals (usable as a
context manager), and :func:`time_call` runs a callable several times and
reports the best-of-N, the standard methodology for micro-benchmarks (the
minimum is the least noisy estimator of intrinsic cost on a busy machine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "time_call", "TimingResult"]


class Stopwatch:
    """Accumulating timer based on :func:`time.perf_counter`.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._total = 0.0
        self._started: float | None = None
        self.intervals: list[float] = []

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch; returns self for chaining."""
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the just-measured interval (seconds)."""
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        dt = time.perf_counter() - self._started
        self._started = None
        self._total += dt
        self.intervals.append(dt)
        return dt

    @property
    def elapsed(self) -> float:
        """Total accumulated time, including a currently-running interval."""
        running = 0.0
        if self._started is not None:
            running = time.perf_counter() - self._started
        return self._total + running

    def reset(self) -> None:
        """Clear all accumulated state."""
        self._total = 0.0
        self._started = None
        self.intervals.clear()

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimingResult:
    """Outcome of :func:`time_call`."""

    best: float
    mean: float
    runs: list[float] = field(default_factory=list)

    @property
    def worst(self) -> float:
        """The slowest observed run, in seconds."""
        return max(self.runs) if self.runs else self.best


def time_call(fn, *args, repeat: int = 3, **kwargs) -> TimingResult:
    """Call ``fn(*args, **kwargs)`` *repeat* times; report best/mean seconds."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    runs: list[float] = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        runs.append(time.perf_counter() - t0)
    return TimingResult(best=min(runs), mean=sum(runs) / len(runs), runs=runs)
