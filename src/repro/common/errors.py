"""Exception hierarchy shared by every ``repro`` subpackage.

Keeping a single root exception (:class:`ReproError`) lets callers catch
"anything this library raised" without also swallowing genuine programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CommunicationError",
    "SchedulingError",
    "DataValidationError",
    "KernelError",
    "CheckpointError",
]


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError, RuntimeError):
    """A simulation reached an inconsistent or impossible state."""


class CommunicationError(ReproError, RuntimeError):
    """A message-passing operation failed (bad rank, deadlock, type...)."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduler could not produce a valid assignment."""


class DataValidationError(ReproError, ValueError):
    """Input data failed a quality/consistency check."""


class KernelError(ReproError, RuntimeError):
    """A compute kernel or kernel variant misbehaved (unknown name, ...)."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, read, or applied (corruption,
    format mismatch, or a snapshot that does not belong to the job)."""
