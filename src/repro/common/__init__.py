"""Shared infrastructure: RNG, units, tables, colours, timing, errors, resilience."""

from repro.common.checkpoint import CHECKPOINT_FORMAT, CheckpointStore, Snapshot
from repro.common.errors import (
    CheckpointError,
    CommunicationError,
    ConfigurationError,
    DataValidationError,
    KernelError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.common.job import Job, JobProgress, OneShotJob
from repro.common.resilience import (
    Deadline,
    DegradationEvent,
    DegradationLog,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng, spawn_rngs
from repro.common.supervisor import (
    CircuitBreaker,
    CircuitOpenError,
    Heartbeat,
    JobInterrupted,
    Supervisor,
)
from repro.common.tables import Table, format_table, histogram_bar
from repro.common.timing import Stopwatch, TimingResult, time_call

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CommunicationError",
    "SchedulingError",
    "DataValidationError",
    "KernelError",
    "CheckpointError",
    "Job",
    "JobProgress",
    "OneShotJob",
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "Snapshot",
    "Supervisor",
    "CircuitBreaker",
    "CircuitOpenError",
    "Heartbeat",
    "JobInterrupted",
    "InjectedFault",
    "RetryPolicy",
    "Deadline",
    "FaultInjector",
    "DegradationEvent",
    "DegradationLog",
    "DEFAULT_SEED",
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "Table",
    "format_table",
    "histogram_bar",
    "Stopwatch",
    "TimingResult",
    "time_call",
]
