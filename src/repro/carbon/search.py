"""Search utilities for the assignment's optimisation questions.

Tab-1 Q2 asks students "to perform a binary search to identify the minimum
number of nodes to power on and the minimum p-state to use" under the
3-minute bound; the paper's future-work note promises "exhaustively
evaluate all possible options so as to compute the actual optimal CO2
emission".  Both live here, generic enough to be tested against linear
scans.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

from repro.common.errors import ConfigurationError

__all__ = ["binary_search_min", "linear_search_min", "grid_search"]


def binary_search_min(
    lo: int,
    hi: int,
    feasible: Callable[[int], bool],
) -> int | None:
    """Smallest integer in ``[lo, hi]`` satisfying a *monotone* predicate.

    *feasible* must be monotone non-decreasing in its argument (if ``n``
    is feasible, so is ``n + 1``) — true for "enough nodes to meet the
    time bound" and "high-enough p-state".  Returns ``None`` when even
    *hi* is infeasible.  Exactly the search students perform by hand with
    the in-browser simulator.
    """
    if lo > hi:
        raise ConfigurationError(f"empty range [{lo}, {hi}]")
    if not feasible(hi):
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def linear_search_min(lo: int, hi: int, feasible: Callable[[int], bool]) -> int | None:
    """Reference implementation of :func:`binary_search_min` (O(n) scan)."""
    if lo > hi:
        raise ConfigurationError(f"empty range [{lo}, {hi}]")
    for n in range(lo, hi + 1):
        if feasible(n):
            return n
    return None


def grid_search(
    axes: Sequence[Iterable],
    objective: Callable[..., float],
    *,
    constraint: Callable[..., bool] | None = None,
    metrics=None,
):
    """Exhaustive minimisation of *objective* over the product of *axes*.

    Returns ``(best_point, best_value, evaluations)`` where *evaluations*
    is the full list of ``(point, value, feasible)`` triples (handy for
    reporting the whole landscape).  Points violating *constraint* are
    recorded but cannot win.

    *metrics* (a :class:`repro.obs.MetricsRegistry`) counts evaluated and
    infeasible points under ``carbon_grid_points_total``, so sweep cost
    shows up next to the substrate metrics.
    """
    counter = (
        metrics.counter("carbon_grid_points_total", "Grid-search points by outcome")
        if metrics is not None
        else None
    )
    best_point = None
    best_value = float("inf")
    evaluations: list[tuple[tuple, float, bool]] = []
    for point in itertools.product(*[list(a) for a in axes]):
        value = objective(*point)
        ok = constraint(*point) if constraint is not None else True
        evaluations.append((point, value, ok))
        if counter is not None:
            counter.inc(1, outcome="feasible" if ok else "infeasible")
        if ok and value < best_value:
            best_value = value
            best_point = point
    return best_point, best_value, evaluations
