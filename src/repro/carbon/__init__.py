"""The carbon-footprint workflow-scheduling assignment (Sec. IV).

Built on :mod:`repro.wrench`: the calibrated scenario
(:mod:`~repro.carbon.scenario`), the Tab-1 cluster power-management
questions (:mod:`~repro.carbon.tab1`), the Tab-2 cloud-placement
questions and exhaustive optimum (:mod:`~repro.carbon.tab2`), generic
searches (:mod:`~repro.carbon.search`), and report rendering
(:mod:`~repro.carbon.report`).
"""

from repro.carbon.assignment import answer_sheet
from repro.carbon.report import baseline_summary, tab1_table, tab2_table
from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.carbon.search import binary_search_min, grid_search, linear_search_min
from repro.carbon.sensitivity import SensitivityRow, sweep_parameter, verdicts
from repro.carbon.tab1 import (
    BaselineResult,
    ClusterConfigResult,
    boss_heuristic,
    question1_baseline,
    question2_min_nodes,
    question2_min_pstate,
    question3_comparison,
)
from repro.carbon.tab1 import exhaustive_optimum as tab1_exhaustive_optimum
from repro.carbon.tab2 import (
    WIDE_LEVELS,
    PlacementResult,
    question1_baselines,
    question2_first_two_levels,
    treasure_hunt,
)
from repro.carbon.tab2 import exhaustive_optimum as tab2_exhaustive_optimum

__all__ = [
    "answer_sheet",
    "AssignmentScenario",
    "DEFAULT_SCENARIO",
    "binary_search_min",
    "linear_search_min",
    "grid_search",
    "SensitivityRow",
    "sweep_parameter",
    "verdicts",
    "BaselineResult",
    "ClusterConfigResult",
    "question1_baseline",
    "question2_min_nodes",
    "question2_min_pstate",
    "boss_heuristic",
    "question3_comparison",
    "tab1_exhaustive_optimum",
    "PlacementResult",
    "WIDE_LEVELS",
    "question1_baselines",
    "question2_first_two_levels",
    "treasure_hunt",
    "tab2_exhaustive_optimum",
    "baseline_summary",
    "tab1_table",
    "tab2_table",
]
