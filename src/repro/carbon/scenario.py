"""The canonical assignment scenario, calibrated.

Every constant of the EduWRENCH ``workflow_co2`` module that the paper
states is used verbatim: a Montage instance of **738 tasks / 7.5 GB**, a
**64-node** local cluster powered at **291 gCO2e/kWh** with **seven
p-states**, a **3-minute** execution-time bound in Tab-1, and in Tab-2
**16 cloud VM instances** on a green source plus **12 local nodes at the
lowest p-state** behind a limited-bandwidth link.

The remaining free parameters (flop counts, power curves, link bandwidth,
VM speed) are calibrated so the *qualitative* results match the
assignment's: the combined power-off + downclock heuristic beats either
lever alone under the bound; all-cloud is greener but slower than
all-local; and mixed per-level placements beat both pure options.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.wrench.network import Link
from repro.wrench.platform import CLOUD, LOCAL, Platform, make_cloud_site, make_cluster_site
from repro.wrench.power import PowerModel
from repro.wrench.simulation import SimulationResult, simulate
from repro.wrench.workflow import Workflow, montage_workflow

__all__ = ["AssignmentScenario", "DEFAULT_SCENARIO"]


@dataclass(frozen=True)
class AssignmentScenario:
    """All parameters of the carbon-footprint assignment."""

    # workflow (defaults give the paper's 738-task / 7.5 GB Montage)
    gflop_scale: float = 50.0
    workflow_seed: int = 7
    n_projections: int = 182
    n_difffits: int = 368

    # local cluster (Tab 1)
    max_nodes: int = 64
    n_pstates: int = 7
    cluster_carbon_intensity: float = 291.0  # gCO2e/kWh, the paper's plant
    base_speed: float = 100e9                # flop/s at the highest p-state
    idle_watts: float = 30.0
    dynamic_watts: float = 170.0

    # Tab-1 constraint: "execute the workflow in under 3 minutes"
    time_bound: float = 180.0

    # Tab 2: cloud + reduced local cluster
    tab2_local_nodes: int = 12
    tab2_local_pstate: int = 0  # lowest p-state
    cloud_vms: int = 16
    vm_speed: float = 30e9
    vm_busy_watts: float = 120.0
    vm_idle_watts: float = 50.0
    cloud_carbon_intensity: float = 10.0  # green source
    link_bandwidth: float = 50e6          # the "limited bandwidth" WAN link
    link_latency: float = 0.05

    @cached_property
    def power_model(self) -> PowerModel:
        """The cluster's DVFS parameter set."""
        return PowerModel(
            base_speed=self.base_speed,
            idle_watts=self.idle_watts,
            dynamic_watts=self.dynamic_watts,
            n_pstates=self.n_pstates,
        )

    @cached_property
    def workflow(self) -> Workflow:
        """The Montage-738 instance (cached; treat as immutable)."""
        return montage_workflow(
            n_projections=self.n_projections,
            n_difffits=self.n_difffits,
            gflop_scale=self.gflop_scale,
            seed=self.workflow_seed,
        )

    @property
    def highest_pstate(self) -> int:
        """Index of the fastest p-state (the paper's 'highest')."""
        return self.n_pstates - 1

    # -- platform builders ---------------------------------------------------------

    def tab1_platform(self, n_nodes: int, pstate: int) -> Platform:
        """Tab-1: cluster only; *n_nodes* powered on, all at *pstate*."""
        sites = {
            LOCAL: make_cluster_site(
                n_nodes,
                pstate,
                power_model=self.power_model,
                carbon_intensity=self.cluster_carbon_intensity,
            )
        }
        return Platform(sites=sites, link=Link())

    def tab2_platform(self) -> Platform:
        """Tab-2: 12 local nodes at the lowest p-state + 16 green VMs."""
        sites = {
            LOCAL: make_cluster_site(
                self.tab2_local_nodes,
                self.tab2_local_pstate,
                power_model=self.power_model,
                carbon_intensity=self.cluster_carbon_intensity,
            ),
            CLOUD: make_cloud_site(
                self.cloud_vms,
                vm_speed=self.vm_speed,
                vm_busy_watts=self.vm_busy_watts,
                vm_idle_watts=self.vm_idle_watts,
                carbon_intensity=self.cloud_carbon_intensity,
            ),
        }
        return Platform(
            sites=sites,
            link=Link(bandwidth=self.link_bandwidth, latency=self.link_latency),
        )

    # -- one-shot simulations -----------------------------------------------------------

    def simulate_tab1(self, n_nodes: int, pstate: int) -> SimulationResult:
        """Simulate the Tab-1 cluster-only execution."""
        return simulate(self.workflow, self.tab1_platform(n_nodes, pstate))

    def simulate_tab2(self, placement: dict[str, str]) -> SimulationResult:
        """Simulate a Tab-2 cluster+cloud execution under *placement*."""
        return simulate(self.workflow, self.tab2_platform(), placement)


#: the scenario every benchmark and example uses
DEFAULT_SCENARIO = AssignmentScenario()
