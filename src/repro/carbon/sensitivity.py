"""Sensitivity analysis of the calibrated scenario.

The reproduction's carbon numbers come from a calibrated simulator, so an
obvious question is how robust the paper-shaped *verdicts* are to the
calibration.  This module sweeps one scenario parameter at a time and
re-evaluates the two headline verdicts:

* **Tab 1** — "the combined heuristic beats both single levers";
* **Tab 2** — "the cloud is greener but slower; mixing beats both".

:func:`sweep_parameter` returns one row per parameter value with the
verdicts evaluated, so benches and notebooks can show exactly where (if
anywhere) a verdict flips — e.g. raising idle power eventually kills the
downclocking lever, and a fat WAN link erodes all-cloud's time penalty.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.carbon.tab1 import question3_comparison
from repro.carbon.tab2 import question1_baselines, treasure_hunt
from repro.common.errors import ConfigurationError

__all__ = ["SensitivityRow", "sweep_parameter", "verdicts"]


@dataclass(frozen=True)
class SensitivityRow:
    """Verdicts of one scenario variant."""

    parameter: str
    value: float
    heuristic_wins: bool            # Tab-1 Q3
    cloud_greener: bool             # Tab-2 Q1, CO2 side
    cloud_slower: bool              # Tab-2 Q1, time side
    mixed_beats_pure: bool          # Tab-2 treasure hunt
    heuristic_co2: float
    all_local_co2: float
    all_cloud_co2: float
    best_mixed_co2: float

    @property
    def paper_shape_holds(self) -> bool:
        """All four headline verdicts simultaneously true."""
        return (
            self.heuristic_wins
            and self.cloud_greener
            and self.cloud_slower
            and self.mixed_beats_pure
        )


def verdicts(scenario: AssignmentScenario, *, hunt_fractions=(0.0, 0.5, 1.0)) -> dict:
    """Evaluate the headline verdicts for one scenario."""
    tab1 = question3_comparison(scenario)
    h = tab1["heuristic"]
    heuristic_wins = (
        h.co2_grams <= tab1["power-off"].co2_grams + 1e-9
        and h.co2_grams <= tab1["downclock"].co2_grams + 1e-9
    )
    baselines = question1_baselines(scenario)
    local, cloud = baselines["all-local"], baselines["all-cloud"]
    from repro.carbon.tab2 import WIDE_LEVELS

    grid = {lv: list(hunt_fractions) for lv in WIDE_LEVELS}
    best_mixed = treasure_hunt(grid, scenario)[0]
    return {
        "heuristic_wins": heuristic_wins,
        "cloud_greener": cloud.co2_grams < local.co2_grams,
        "cloud_slower": cloud.makespan > local.makespan,
        "mixed_beats_pure": best_mixed.co2_grams
        < min(local.co2_grams, cloud.co2_grams),
        "heuristic_co2": h.co2_grams,
        "all_local_co2": local.co2_grams,
        "all_cloud_co2": cloud.co2_grams,
        "best_mixed_co2": best_mixed.co2_grams,
    }


def sweep_parameter(
    parameter: str,
    values,
    *,
    base: AssignmentScenario = DEFAULT_SCENARIO,
    hunt_fractions=(0.0, 0.5, 1.0),
) -> list[SensitivityRow]:
    """Re-evaluate the verdicts with *parameter* set to each of *values*.

    *parameter* must be a field of :class:`AssignmentScenario`
    (``link_bandwidth``, ``idle_watts``, ``cloud_carbon_intensity``, ...).
    """
    field_names = {f.name for f in dataclasses.fields(AssignmentScenario)}
    if parameter not in field_names:
        raise ConfigurationError(
            f"unknown scenario parameter {parameter!r}; choose from {sorted(field_names)}"
        )
    rows = []
    for value in values:
        scenario = dataclasses.replace(base, **{parameter: value})
        v = verdicts(scenario, hunt_fractions=hunt_fractions)
        rows.append(SensitivityRow(parameter=parameter, value=float(value), **v))
    return rows
