"""Tab 1 — cluster-only power management (three questions).

Q1 establishes the performance baseline "when powering on all nodes in
their highest p-state": execution time, parallel speedup, parallel
efficiency.

Q2 imposes the 3-minute bound and evaluates two mutually exclusive
options via binary search: the minimum number of powered-on nodes (at the
highest p-state), and the minimum p-state (with all 64 nodes).

Q3 evaluates the hypothetical boss's heuristic combining both levers —
power off nodes *and* downclock the survivors — and shows it emits less
CO2 than either single-lever option.  An exhaustive search over
(nodes, p-state) is also provided to locate the true optimum (the paper's
future-work promise).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.carbon.search import binary_search_min, grid_search
from repro.common.errors import SchedulingError

__all__ = [
    "ClusterConfigResult",
    "BaselineResult",
    "question1_baseline",
    "question2_min_nodes",
    "question2_min_pstate",
    "boss_heuristic",
    "question3_comparison",
    "exhaustive_optimum",
]


@dataclass(frozen=True)
class ClusterConfigResult:
    """One simulated cluster configuration."""

    n_nodes: int
    pstate: int
    makespan: float
    energy_joules: float
    co2_grams: float

    @property
    def within_bound(self) -> bool:  # bound is scenario-specific; set by caller
        """Placeholder flag; the caller applies the scenario's bound."""
        return True


def _run(scenario: AssignmentScenario, n_nodes: int, pstate: int) -> ClusterConfigResult:
    res = scenario.simulate_tab1(n_nodes, pstate)
    return ClusterConfigResult(
        n_nodes=n_nodes,
        pstate=pstate,
        makespan=res.makespan,
        energy_joules=res.total_energy,
        co2_grams=res.total_co2,
    )


@lru_cache(maxsize=4096)
def _run_cached(scenario: AssignmentScenario, n_nodes: int, pstate: int) -> ClusterConfigResult:
    return _run(scenario, n_nodes, pstate)


@dataclass(frozen=True)
class BaselineResult:
    """Q1's three numbers."""

    config: ClusterConfigResult
    single_node_makespan: float

    @property
    def speedup(self) -> float:
        """Single-node time divided by this configuration's time."""
        return self.single_node_makespan / self.config.makespan

    @property
    def efficiency(self) -> float:
        """Speedup divided by the number of nodes."""
        return self.speedup / self.config.n_nodes


def question1_baseline(scenario: AssignmentScenario = DEFAULT_SCENARIO) -> BaselineResult:
    """Q1: all nodes at the highest p-state, plus the 1-node reference."""
    full = _run_cached(scenario, scenario.max_nodes, scenario.highest_pstate)
    single = _run_cached(scenario, 1, scenario.highest_pstate)
    return BaselineResult(config=full, single_node_makespan=single.makespan)


def question2_min_nodes(scenario: AssignmentScenario = DEFAULT_SCENARIO) -> ClusterConfigResult:
    """Q2a: minimum powered-on nodes (highest p-state) meeting the bound."""
    p = scenario.highest_pstate

    def feasible(n: int) -> bool:
        return _run_cached(scenario, n, p).makespan <= scenario.time_bound

    n = binary_search_min(1, scenario.max_nodes, feasible)
    if n is None:
        raise SchedulingError("even the full cluster misses the time bound")
    return _run_cached(scenario, n, p)


def question2_min_pstate(scenario: AssignmentScenario = DEFAULT_SCENARIO) -> ClusterConfigResult:
    """Q2b: minimum p-state (all nodes powered on) meeting the bound."""

    def feasible(p: int) -> bool:
        return _run_cached(scenario, scenario.max_nodes, p).makespan <= scenario.time_bound

    p = binary_search_min(0, scenario.highest_pstate, feasible)
    if p is None:
        raise SchedulingError("even the highest p-state misses the time bound")
    return _run_cached(scenario, scenario.max_nodes, p)


def boss_heuristic(scenario: AssignmentScenario = DEFAULT_SCENARIO) -> ClusterConfigResult:
    """Q3: the boss's combined heuristic.

    Strategy (as a plausible realisation of "combines both power
    management techniques"): for every p-state, binary-search the minimum
    node count meeting the bound, then keep the (p-state, nodes) pair with
    the lowest CO2.  It is a heuristic — it never considers *surplus*
    nodes at a lower p-state — yet beats both single-lever options.
    """
    best: ClusterConfigResult | None = None
    for p in range(scenario.n_pstates):

        def feasible(n: int, _p=p) -> bool:
            return _run_cached(scenario, n, _p).makespan <= scenario.time_bound

        n = binary_search_min(1, scenario.max_nodes, feasible)
        if n is None:
            continue
        cand = _run_cached(scenario, n, p)
        if best is None or cand.co2_grams < best.co2_grams:
            best = cand
    if best is None:
        raise SchedulingError("no configuration meets the time bound")
    return best


def question3_comparison(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
) -> dict[str, ClusterConfigResult]:
    """All three Q2/Q3 options side by side (keys: power-off, downclock, heuristic)."""
    return {
        "power-off": question2_min_nodes(scenario),
        "downclock": question2_min_pstate(scenario),
        "heuristic": boss_heuristic(scenario),
    }


def exhaustive_optimum(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
    *,
    node_step: int = 2,
) -> tuple[ClusterConfigResult, list[ClusterConfigResult]]:
    """True CO2 optimum over (nodes, p-state) under the bound.

    ``node_step`` thins the node axis to keep the sweep fast; step 1 is
    the fully exhaustive version.  Returns (best, all evaluated configs).
    """
    nodes = list(range(1, scenario.max_nodes + 1, node_step))
    if nodes[-1] != scenario.max_nodes:
        nodes.append(scenario.max_nodes)
    pstates = range(scenario.n_pstates)

    def objective(n: int, p: int) -> float:
        return _run_cached(scenario, n, p).co2_grams

    def constraint(n: int, p: int) -> bool:
        return _run_cached(scenario, n, p).makespan <= scenario.time_bound

    best_point, _, evals = grid_search([nodes, pstates], objective, constraint=constraint)
    if best_point is None:
        raise SchedulingError("no configuration meets the time bound")
    all_configs = [_run_cached(scenario, n, p) for (n, p), _, _ in evals]
    return _run_cached(scenario, *best_point), all_configs
