"""The complete assignment answer sheet, generated.

The paper's future-work note says the authors will compute reference
optima "so that students know how far their solution is from the
optimal".  :func:`answer_sheet` goes further: it runs every question of
both tabs against a scenario and renders the full instructor answer key —
baseline numbers, binary-search thresholds, the heuristic verdict,
cloud-placement comparisons, the treasure-hunt optimum, and the two
exhaustive reference optima.
"""

from __future__ import annotations

from repro.carbon.report import baseline_summary, tab1_table, tab2_table
from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.carbon.tab1 import (
    question1_baseline,
    question3_comparison,
)
from repro.carbon.tab1 import exhaustive_optimum as tab1_exhaustive
from repro.carbon.tab2 import (
    question1_baselines,
    question2_first_two_levels,
)
from repro.carbon.tab2 import exhaustive_optimum as tab2_exhaustive
from repro.common.units import format_co2, format_duration

__all__ = ["answer_sheet"]


def answer_sheet(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
    *,
    tab1_node_step: int = 1,
    tab2_resolution: int = 5,
) -> str:
    """Render the instructor answer key for every question of both tabs."""
    lines: list[str] = []
    out = lines.append

    out("=" * 72)
    out("ANSWER KEY — Performance and Carbon Footprint of Distributed")
    out("Workflow Executions (EduWRENCH workflow_co2)")
    out("=" * 72)
    wf = scenario.workflow
    out(f"workflow: {len(wf)} tasks, {wf.total_bytes() / 1e9:.1f} GB, "
        f"{wf.depth} levels; cluster: {scenario.max_nodes} nodes, "
        f"{scenario.n_pstates} p-states, {scenario.cluster_carbon_intensity:.0f} gCO2e/kWh")
    out("")

    # -- Tab 1 -------------------------------------------------------------------
    out("TAB 1 — cluster power management")
    out("-" * 72)
    baseline = question1_baseline(scenario)
    out(f"Q1 (baseline): {baseline_summary(baseline)}")
    out("")
    options = question3_comparison(scenario)
    out(f"Q2 (bound {format_duration(scenario.time_bound)}):")
    out(tab1_table(options, bound=scenario.time_bound))
    po, dc, h = options["power-off"], options["downclock"], options["heuristic"]
    better = "power-off" if po.co2_grams < dc.co2_grams else "downclock"
    out(f"Q2 verdict: the better single lever is {better}.")
    out(f"Q3 verdict: the combined heuristic ({h.n_nodes} nodes @ p{h.pstate}) emits "
        f"{format_co2(h.co2_grams)} — less than either lever alone; combining "
        "power-management techniques is useful.")
    best1, configs = tab1_exhaustive(scenario, node_step=tab1_node_step)
    gap = h.co2_grams - best1.co2_grams
    out(f"Reference optimum (exhaustive over {len(configs)} configurations): "
        f"{best1.n_nodes} nodes @ p{best1.pstate}, {format_co2(best1.co2_grams)} "
        f"(heuristic gap: {format_co2(gap)}).")
    out("")

    # -- Tab 2 -------------------------------------------------------------------
    out("TAB 2 — local cluster + green cloud")
    out("-" * 72)
    baselines = question1_baselines(scenario)
    out("Q1 (pure placements):")
    out(tab2_table(list(baselines.values())))
    local, cloud = baselines["all-local"], baselines["all-cloud"]
    out(f"Q1 verdict: all-cloud is greener ({format_co2(cloud.co2_grams)} vs "
        f"{format_co2(local.co2_grams)}) but slower "
        f"({format_duration(cloud.makespan)} vs {format_duration(local.makespan)}).")
    out("")
    out("Q2 (first two levels):")
    out(tab2_table(list(question2_first_two_levels(scenario).values())))
    out("")
    best2, results = tab2_exhaustive(scenario, resolution=tab2_resolution)
    out(f"Q3-5 reference optimum over {len(results)} per-level schedules: "
        f"{best2.label} -> {format_co2(best2.co2_grams)} at "
        f"{format_duration(best2.makespan)} ({best2.description}).")
    margin = min(local.co2_grams, cloud.co2_grams) - best2.co2_grams
    out(f"It undercuts the best pure option by {format_co2(margin)} — the value "
        "students' treasure hunts should converge towards.")
    return "\n".join(lines)
