"""Rendering of the carbon assignment's results as text reports."""

from __future__ import annotations

from repro.carbon.tab1 import BaselineResult, ClusterConfigResult
from repro.carbon.tab2 import PlacementResult
from repro.common.tables import Table
from repro.common.units import format_co2, format_duration

__all__ = ["tab1_table", "tab2_table", "baseline_summary"]


def baseline_summary(baseline: BaselineResult) -> str:
    """Q1's three numbers as one line."""
    c = baseline.config
    return (
        f"{c.n_nodes} nodes @ p{c.pstate}: time {format_duration(c.makespan)}, "
        f"speedup {baseline.speedup:.1f}x, efficiency {baseline.efficiency:.2f}, "
        f"{format_co2(c.co2_grams)}"
    )


def tab1_table(rows: dict[str, ClusterConfigResult], *, bound: float | None = None) -> str:
    """Render named cluster configurations (Q2/Q3 options) as a table."""
    t = Table(
        ["option", "nodes", "p-state", "time", "CO2", "meets bound"],
        title="Tab 1: power management under the time bound",
    )
    for name, c in rows.items():
        meets = "-" if bound is None else ("yes" if c.makespan <= bound else "NO")
        t.add_row(
            [name, c.n_nodes, f"p{c.pstate}", format_duration(c.makespan),
             format_co2(c.co2_grams), meets]
        )
    return t.render()


def tab2_table(results: list[PlacementResult], *, top: int | None = None) -> str:
    """Render placement results (sorted however the caller likes)."""
    t = Table(
        ["placement", "time", "CO2", "link GB", "cloud tasks"],
        title="Tab 2: cluster vs. green cloud placements",
    )
    shown = results if top is None else results[:top]
    for r in shown:
        t.add_row(
            [r.label, format_duration(r.makespan), format_co2(r.co2_grams),
             f"{r.link_gb:.2f}", r.cloud_tasks]
        )
    return t.render()
