"""Tab 2 — cluster + green cloud placement (five questions).

Q1 establishes the pure baselines: everything on the (12-node, lowest
p-state) local cluster vs. everything on the 16 green VMs.

Q2 compares three options for the first two workflow levels (both local,
both cloud, and the split exploiting that level-1 consumes level-0's
outputs — data locality).

Q3-5 are the "treasure hunt": per-level cloud fractions explored towards
the CO2 minimum, culminating in the exhaustive search the paper lists as
future work ("run our simulator to exhaustively evaluate all possible
options so as to compute the actual optimal CO2 emission for this
(NP-complete) problem").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.scenario import DEFAULT_SCENARIO, AssignmentScenario
from repro.carbon.search import grid_search
from repro.wrench.platform import CLOUD, LOCAL
from repro.wrench.scheduler import describe_placement, place_all, place_level_fractions, place_levels

__all__ = [
    "PlacementResult",
    "question1_baselines",
    "question2_first_two_levels",
    "treasure_hunt",
    "exhaustive_optimum",
    "WIDE_LEVELS",
]

#: the wide (parallel) Montage levels worth offloading: mProject,
#: mDiffFit, mBackground
WIDE_LEVELS = (0, 1, 4)


@dataclass(frozen=True)
class PlacementResult:
    """One simulated placement."""

    label: str
    description: str
    makespan: float
    energy_joules: float
    co2_grams: float
    link_gb: float
    cloud_tasks: int
    local_tasks: int


def _run(scenario: AssignmentScenario, label: str, placement: dict[str, str]) -> PlacementResult:
    res = scenario.simulate_tab2(placement)
    counts = res.site_task_counts()
    return PlacementResult(
        label=label,
        description=describe_placement(scenario.workflow, placement),
        makespan=res.makespan,
        energy_joules=res.total_energy,
        co2_grams=res.total_co2,
        link_gb=res.link_bytes / 1e9,
        cloud_tasks=counts.get(CLOUD, 0),
        local_tasks=counts.get(LOCAL, 0),
    )


def question1_baselines(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
) -> dict[str, PlacementResult]:
    """Q1: the two pure placements."""
    wf = scenario.workflow
    return {
        "all-local": _run(scenario, "all-local", place_all(wf, LOCAL)),
        "all-cloud": _run(scenario, "all-cloud", place_all(wf, CLOUD)),
    }


def question2_first_two_levels(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
) -> dict[str, PlacementResult]:
    """Q2: three options for levels 0 (mProject) and 1 (mDiffFit).

    * ``both-local`` — levels 0 and 1 on the cluster;
    * ``both-cloud`` — both on the cloud (level 1 then enjoys data
      locality with level 0's outputs already in cloud storage);
    * ``split`` — level 0 on the cloud, level 1 back on the cluster (the
      projected images must cross the link twice — the option students
      should reason is worst).
    """
    wf = scenario.workflow
    return {
        "both-local": _run(scenario, "both-local", place_levels(wf, set())),
        "both-cloud": _run(scenario, "both-cloud", place_levels(wf, {0, 1})),
        "split": _run(scenario, "split", place_levels(wf, {0})),
    }


def treasure_hunt(
    fraction_grid: dict[int, list[float]] | None = None,
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
) -> list[PlacementResult]:
    """Q3-4: sweep per-level cloud fractions; returns results sorted by CO2.

    The default grid sends 0/25/50/75/100% of each wide level to the
    cloud — the kind of space students explore by hand in the browser.
    """
    if fraction_grid is None:
        fraction_grid = {lv: [0.0, 0.25, 0.5, 0.75, 1.0] for lv in WIDE_LEVELS}
    wf = scenario.workflow
    levels = sorted(fraction_grid)
    results: list[PlacementResult] = []

    def evaluate(*fracs: float) -> float:
        placement = place_level_fractions(wf, dict(zip(levels, fracs)))
        label = ",".join(f"L{lv}={f:.0%}" for lv, f in zip(levels, fracs))
        result = _run(scenario, label, placement)
        results.append(result)
        return result.co2_grams

    grid_search([fraction_grid[lv] for lv in levels], evaluate)
    results.sort(key=lambda r: r.co2_grams)
    return results


def exhaustive_optimum(
    scenario: AssignmentScenario = DEFAULT_SCENARIO,
    *,
    resolution: int = 5,
) -> tuple[PlacementResult, list[PlacementResult]]:
    """Q5/future work: the best per-level-fraction schedule on a fine grid.

    ``resolution`` is the number of fraction steps per wide level
    (5 -> {0, 25, 50, 75, 100}%).  Returns (optimum, all evaluations
    sorted by CO2).  The space of arbitrary task placements is
    exponential (NP-complete, as the paper notes); per-level fractions
    are the natural restriction the assignment's UI exposes.
    """
    fracs = [i / (resolution - 1) for i in range(resolution)]
    results = treasure_hunt({lv: fracs for lv in WIDE_LEVELS}, scenario)
    return results[0], results
