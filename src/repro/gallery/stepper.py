"""Generic double-buffered tiled stepper for gallery kernels.

The sandpile steppers in :mod:`repro.sandpile.omp` are specialised (lazy
flags, sink accounting, wave partitions); gallery kernels only need the
core shape — tile the interior, run one batch of pure gather tasks per
iteration through a backend, flip the planes.  The specs use the kernel
*registry* (``TileTask`` + :func:`~repro.easypap.executor.get_tile_kernel`)
rather than direct calls, so a stepper exercises exactly the code path the
symbolic certifier reasons about.
"""

from __future__ import annotations

import numpy as np

from repro.easypap.executor import SequentialBackend, TaskBatch, TileTask, get_tile_kernel
from repro.easypap.grid import Grid2D
from repro.easypap.tiling import TileGrid

__all__ = ["TiledKernelStepper"]


class TiledKernelStepper:
    """Run a registered double-buffered tile kernel over every tile.

    The kernel must be a pure gather: read source plane, write only its own
    tile on the destination plane (the certifier enforces this — see
    ``repro-check symbolic``).  Tasks and batches are built once; iterations
    rebind ``_cur_src``/``_cur_dst`` and swap buffers, following the
    zero-rebuild idiom of :class:`~repro.sandpile.omp.TiledSyncStepper`.
    """

    def __init__(
        self,
        grid: Grid2D,
        kernel: str,
        tile_size: int = 32,
        *,
        backend=None,
    ) -> None:
        self.grid = grid
        self.kernel = kernel
        self.tiles = TileGrid(grid.height, grid.width, tile_size)
        self.backend = backend if backend is not None else SequentialBackend()
        self._fn = get_tile_kernel(kernel)
        self._scratch = grid.data.copy()
        self._cur_src = grid.data
        self._cur_dst = self._scratch
        self.iterations = 0
        self.tiles_computed = 0
        all_tiles = list(self.tiles)
        specs = [TileTask(kernel, 0, 1, t) for t in all_tiles]

        def make_task(spec: TileTask):
            def task() -> float:
                self._fn([self._cur_src, self._cur_dst], spec)
                return float(spec.tile.area)

            return task

        self._batch = TaskBatch([make_task(s) for s in specs], tiles=all_tiles, spec=specs)

    def __call__(self) -> bool:
        self._cur_src = self.grid.data
        self._cur_dst = self._scratch
        self.backend.run(self._batch, iteration=self.iterations)
        self.tiles_computed += len(self.tiles)
        changed = not np.array_equal(
            self._cur_dst[1:-1, 1:-1], self._cur_src[1:-1, 1:-1]
        )
        self._scratch = self.grid.swap_buffer(self._scratch)
        self.iterations += 1
        return changed

    def close(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()
