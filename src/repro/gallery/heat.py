"""Heat diffusion (5-point Jacobi), the gallery's first assignment.

``u' = u + alpha * (west + east + north + south - 4u)`` with ``alpha =
0.25`` — the classic iterative stencil, double-buffered like the
synchronous sandpile.  Works on float planes: build the grid with
``Grid2D(h, w, dtype=np.float64)``.

No footprint is declared here: the ``heat_tile`` kernel is certified by
symbolic inference (reads tile + cross halo from src, writes its own tile
on dst → race-free under any schedule, halo radius 1).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.easypap.executor import register_tile_kernel
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import register_variant
from repro.gallery.stepper import TiledKernelStepper

__all__ = ["ALPHA", "heat_tile", "heat_step"]

#: diffusion coefficient; 0.25 is the Jacobi stability limit in 2D
ALPHA = 0.25


def heat_tile(src: np.ndarray, dst: np.ndarray, tile) -> None:
    """Diffuse one tile: gather the 4-point halo from src, write own tile."""
    ys = slice(tile.y0 + 1, tile.y1 + 1)
    xs = slice(tile.x0 + 1, tile.x1 + 1)
    centre = src[ys, xs]
    west = src[ys, tile.x0 : tile.x1]
    east = src[ys, tile.x0 + 2 : tile.x1 + 2]
    north = src[tile.y0 : tile.y1, xs]
    south = src[tile.y0 + 2 : tile.y1 + 2, xs]
    dst[ys, xs] = centre + ALPHA * (west + east + north + south - 4.0 * centre)


def heat_step(src: np.ndarray, dst: np.ndarray) -> None:
    """Whole-interior diffusion step (the ``vec`` variant's kernel)."""
    centre = src[1:-1, 1:-1]
    dst[1:-1, 1:-1] = centre + ALPHA * (
        src[1:-1, :-2] + src[1:-1, 2:] + src[:-2, 1:-1] + src[2:, 1:-1] - 4.0 * centre
    )


def _heat_tile_kernel(planes, task) -> None:
    return heat_tile(planes[task.src], planes[task.dst], task.tile)


register_tile_kernel("heat_tile", _heat_tile_kernel)


def _require_float(grid: Grid2D) -> None:
    if not np.issubdtype(grid.data.dtype, np.floating):
        raise ConfigurationError(
            f"heat diffusion needs a float grid (got {grid.data.dtype}); "
            f"build it with Grid2D(h, w, dtype=np.float64)"
        )


class _HeatVecStepper:
    """Whole-grid double-buffered Jacobi sweep."""

    def __init__(self, grid: Grid2D) -> None:
        self.grid = grid
        self._scratch = grid.data.copy()

    def __call__(self) -> bool:
        src = self.grid.data
        dst = self._scratch
        heat_step(src, dst)
        changed = not np.array_equal(dst[1:-1, 1:-1], src[1:-1, 1:-1])
        self._scratch = self.grid.swap_buffer(self._scratch)
        return changed


@register_variant("heat", "vec", description="whole-grid Jacobi diffusion step")
def _heat_vec(grid: Grid2D, **_opts):
    _require_float(grid)
    return _HeatVecStepper(grid)


@register_variant("heat", "tiled", description="tiled Jacobi diffusion (registry kernel)")
def _heat_tiled(grid: Grid2D, *, tile_size: int = 32, backend=None, **_opts):
    _require_float(grid)
    return TiledKernelStepper(grid, "heat_tile", tile_size, backend=backend)
