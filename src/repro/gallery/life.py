"""Conway's Game of Life, the gallery's second assignment.

The Moore (8-neighbour) stencil distinguishes Life from the sandpile's
von Neumann cross: the inferred footprint includes the four diagonal
corner cells, which the hand-written ``_cross_halo`` model deliberately
excludes — a shape only per-kernel inference gets right automatically.

No footprint is declared: ``life_tile`` is certified by symbolic
inference (reads the full 3x3-grown tile rectangle from src, writes its
own tile on dst → race-free, halo radius 1).  States are 0/1 on the
default integer grid; the frame stays dead (absorbing boundary).
"""

from __future__ import annotations

import numpy as np

from repro.easypap.executor import register_tile_kernel
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import register_variant
from repro.gallery.stepper import TiledKernelStepper

__all__ = ["life_tile", "life_step"]


def life_tile(src: np.ndarray, dst: np.ndarray, tile) -> None:
    """Step one tile: count Moore neighbours, apply birth/survival rules."""
    y0 = tile.y0
    y1 = tile.y1
    x0 = tile.x0
    x1 = tile.x1
    ys = slice(y0 + 1, y1 + 1)
    xs = slice(x0 + 1, x1 + 1)
    centre = src[ys, xs]
    n = (
        src[y0:y1, x0:x1] + src[y0:y1, xs] + src[y0:y1, x0 + 2 : x1 + 2]
        + src[ys, x0:x1] + src[ys, x0 + 2 : x1 + 2]
        + src[y0 + 2 : y1 + 2, x0:x1] + src[y0 + 2 : y1 + 2, xs]
        + src[y0 + 2 : y1 + 2, x0 + 2 : x1 + 2]
    )
    dst[ys, xs] = (n == 3) | ((centre == 1) & (n == 2))


def life_step(src: np.ndarray, dst: np.ndarray) -> None:
    """Whole-interior Life step (the ``vec`` variant's kernel)."""
    centre = src[1:-1, 1:-1]
    n = (
        src[:-2, :-2] + src[:-2, 1:-1] + src[:-2, 2:]
        + src[1:-1, :-2] + src[1:-1, 2:]
        + src[2:, :-2] + src[2:, 1:-1] + src[2:, 2:]
    )
    dst[1:-1, 1:-1] = (n == 3) | ((centre == 1) & (n == 2))


def _life_tile_kernel(planes, task) -> None:
    return life_tile(planes[task.src], planes[task.dst], task.tile)


register_tile_kernel("life_tile", _life_tile_kernel)


class _LifeVecStepper:
    """Whole-grid double-buffered Life sweep."""

    def __init__(self, grid: Grid2D) -> None:
        self.grid = grid
        self._scratch = grid.data.copy()

    def __call__(self) -> bool:
        src = self.grid.data
        dst = self._scratch
        life_step(src, dst)
        changed = not np.array_equal(dst[1:-1, 1:-1], src[1:-1, 1:-1])
        self._scratch = self.grid.swap_buffer(self._scratch)
        return changed


@register_variant("life", "vec", description="whole-grid Life step")
def _life_vec(grid: Grid2D, **_opts):
    return _LifeVecStepper(grid)


@register_variant("life", "tiled", description="tiled Life (registry kernel)")
def _life_tiled(grid: Grid2D, *, tile_size: int = 32, backend=None, **_opts):
    return TiledKernelStepper(grid, "life_tile", tile_size, backend=backend)
