"""Kernel gallery: stencil assignments beyond the sandpile.

Each gallery module registers a tile kernel with
:func:`~repro.easypap.executor.register_tile_kernel` and variants with
:func:`~repro.easypap.kernel.register_variant` — and deliberately does
*not* hand-declare a footprint: gallery kernels are certified purely by
the symbolic interpreter (:mod:`repro.analysis.symbolic`), which is the
point of the gallery — a new assignment kernel is sound to race-check the
moment it is registered, with zero analysis boilerplate.

Importing this package registers everything:

* ``heat``: 5-point Jacobi heat diffusion (``vec``, ``tiled`` variants)
* ``life``: Conway's Game of Life, Moore neighbourhood (``vec``, ``tiled``)
"""

from repro.gallery import heat, life  # noqa: F401  (registration imports)
from repro.gallery.stepper import TiledKernelStepper

__all__ = ["TiledKernelStepper", "heat", "life"]
