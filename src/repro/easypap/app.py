"""The EASYPAP-style application loop.

EASYPAP's main program wires a kernel variant to an interactive SDL window
with monitoring; students run ``./run -k sandpile -v omp -ts 32``.  This
module is the headless counterpart: :class:`EasyPapApp` resolves a
variant from the registry, drives it to the fixpoint (or an iteration
budget), and on the way collects everything the interactive tools would
show — periodic RGB frames (writable as a PPM sequence), per-iteration
timing, and the execution trace.

>>> app = EasyPapApp("sandpile", "lazy", grid, tile_size=16)
>>> result = app.run(max_iterations=500, frame_every=50)
>>> result.frames[0].shape
(128, 128, 3)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.colors import sandpile_to_rgb, write_ppm
from repro.common.errors import ConfigurationError
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import get_variant
from repro.easypap.monitor import Trace

__all__ = ["AppResult", "EasyPapApp"]


@dataclass
class AppResult:
    """Everything a run produced."""

    kernel: str
    variant: str
    iterations: int
    converged: bool
    wall_seconds: float
    iteration_seconds: list[float] = field(default_factory=list)
    frames: list[np.ndarray] = field(default_factory=list)
    frame_iterations: list[int] = field(default_factory=list)
    trace: Trace | None = None

    @property
    def mean_iteration_seconds(self) -> float:
        """Average wall time per executed iteration."""
        if not self.iteration_seconds:
            return 0.0
        return sum(self.iteration_seconds) / len(self.iteration_seconds)

    def save_frames(self, directory, *, prefix: str = "frame") -> list[Path]:
        """Write all collected frames as ``<prefix>_<iteration>.ppm`` files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for it, frame in zip(self.frame_iterations, self.frames):
            path = directory / f"{prefix}_{it:06d}.ppm"
            write_ppm(path, frame)
            paths.append(path)
        return paths


class EasyPapApp:
    """Drive one kernel variant with monitoring, frames, and hooks."""

    def __init__(
        self,
        kernel: str,
        variant: str,
        grid: Grid2D,
        *,
        trace: bool = False,
        **options,
    ) -> None:
        self.kernel = kernel
        self.variant = variant
        self.grid = grid
        self.trace = Trace() if trace else None
        info = get_variant(kernel, variant)
        self._stepper = info.fn(grid, trace=self.trace, **options)

    def close(self) -> None:
        """Release stepper resources (process pools, shared memory); idempotent.

        Only steppers on a process backend hold OS resources, but calling
        this is always safe.  The app is also usable as a context manager.
        """
        close = getattr(self._stepper, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "EasyPapApp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(
        self,
        *,
        max_iterations: int = 10**7,
        frame_every: int | None = None,
        on_iteration=None,
    ) -> AppResult:
        """Run to the fixpoint or *max_iterations*, whichever comes first.

        Parameters
        ----------
        frame_every:
            Collect an RGB frame every N iterations (plus the final state).
        on_iteration:
            Optional callback ``fn(iteration, grid) -> bool | None``; a
            truthy return stops the run early (the interactive window's
            "pause" in API form).
        """
        if max_iterations < 0:
            raise ConfigurationError("max_iterations cannot be negative")
        frames: list[np.ndarray] = []
        frame_iterations: list[int] = []
        iteration_seconds: list[float] = []
        converged = False
        t0 = time.perf_counter()
        iteration = 0
        while iteration < max_iterations:
            it_start = time.perf_counter()
            changed = self._stepper()
            iteration_seconds.append(time.perf_counter() - it_start)
            if not changed:
                converged = True
                break
            iteration += 1
            if frame_every and iteration % frame_every == 0:
                frames.append(sandpile_to_rgb(self.grid.interior))
                frame_iterations.append(iteration)
            if on_iteration is not None and on_iteration(iteration, self.grid):
                break
        wall = time.perf_counter() - t0
        # always include the final state as the last frame when collecting
        if frame_every:
            frames.append(sandpile_to_rgb(self.grid.interior))
            frame_iterations.append(iteration)
        return AppResult(
            kernel=self.kernel,
            variant=self.variant,
            iterations=iteration,
            converged=converged,
            wall_seconds=wall,
            iteration_seconds=iteration_seconds,
            frames=frames,
            frame_iterations=frame_iterations,
            trace=self.trace,
        )
