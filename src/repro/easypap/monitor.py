"""Execution tracing and monitoring.

EASYPAP "features performance graph plot tools, real-time monitoring
facilities, and off-line trace exploration utilities"; Fig. 3 of the paper
shows two such traces (which tasks ran, on which core, during iteration
500) and Fig. 4 a per-tile owner map of a hybrid CPU+GPU run.  This module
is the Python counterpart: a :class:`Trace` accumulates
:class:`TaskRecord` entries and can summarise an iteration, render an
ASCII Gantt chart, and produce tile-owner maps for image rendering.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TaskRecord", "IterationSummary", "Trace", "TraceComparison", "compare_traces"]

#: version stamped on every saved row; bump when the row shape changes
TRACE_SCHEMA_VERSION = 1

#: TaskRecord field names, for schema-tolerant loading
_RECORD_FIELDS = frozenset(
    ("iteration", "task", "worker", "start", "end", "kind", "tile_ty", "tile_tx")
)


@dataclass(frozen=True)
class TaskRecord:
    """One executed task (usually: one tile of one iteration)."""

    iteration: int
    task: int
    worker: int
    start: float
    end: float
    kind: str = "compute"  # "compute", "comm", "gpu", ...
    tile_ty: int = -1
    tile_tx: int = -1

    @property
    def duration(self) -> float:
        """Seconds from start to end."""
        return self.end - self.start


@dataclass
class IterationSummary:
    """Aggregate statistics for one iteration of a traced run."""

    iteration: int
    task_count: int
    makespan: float
    total_work: float
    worker_busy: dict[int, float] = field(default_factory=dict)

    @property
    def nworkers(self) -> int:
        """Number of workers active in this iteration."""
        return len(self.worker_busy)

    @property
    def imbalance(self) -> float:
        """``max(busy)/mean(busy) - 1`` over workers active this iteration."""
        if not self.worker_busy:
            return 0.0
        busy = list(self.worker_busy.values())
        mean = sum(busy) / len(busy)
        return max(busy) / mean - 1.0 if mean > 0 else 0.0


class Trace:
    """Append-only store of :class:`TaskRecord` with analysis helpers."""

    def __init__(self) -> None:
        self._records: list[TaskRecord] = []
        self._by_iteration: dict[int, list[TaskRecord]] = defaultdict(list)

    # -- recording -------------------------------------------------------------

    def add(self, record: TaskRecord) -> None:
        """Append one record."""
        self._records.append(record)
        self._by_iteration[record.iteration].append(record)

    def extend(self, records) -> None:
        """Append many records."""
        for r in records:
            self.add(r)

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[TaskRecord]:
        """All records, in insertion order (a copy)."""
        return list(self._records)

    def iterations(self) -> list[int]:
        """Sorted iteration numbers present in the trace."""
        return sorted(self._by_iteration)

    def iteration_records(self, iteration: int) -> list[TaskRecord]:
        """Records of one iteration, sorted by start time."""
        return sorted(self._by_iteration.get(iteration, []), key=lambda r: (r.start, r.task))

    # -- analysis ------------------------------------------------------------------

    def summarize(self, iteration: int) -> IterationSummary:
        """Aggregate one iteration into an IterationSummary."""
        recs = self._by_iteration.get(iteration, [])
        busy: dict[int, float] = defaultdict(float)
        t0 = min((r.start for r in recs), default=0.0)
        t1 = max((r.end for r in recs), default=0.0)
        for r in recs:
            busy[r.worker] += r.duration
        return IterationSummary(
            iteration=iteration,
            task_count=len(recs),
            makespan=t1 - t0,
            total_work=sum(r.duration for r in recs),
            worker_busy=dict(busy),
        )

    def tile_owner_map(self, tiles_y: int, tiles_x: int, iteration: int) -> np.ndarray:
        """Per-tile worker index for one iteration (-1 = tile not computed).

        This is exactly the data behind Fig. 4: tiles that were skipped
        (stable, under lazy evaluation) stay at -1 and render black; others
        are coloured by the worker that computed them.
        """
        owners = np.full((tiles_y, tiles_x), -1, dtype=np.int32)
        for r in self._by_iteration.get(iteration, []):
            if 0 <= r.tile_ty < tiles_y and 0 <= r.tile_tx < tiles_x:
                owners[r.tile_ty, r.tile_tx] = r.worker
        return owners

    def gantt_ascii(self, iteration: int, *, width: int = 72) -> str:
        """Render one iteration as an ASCII Gantt chart, one line per worker.

        Characters mark busy slots; ``.`` marks idle virtual time.  This is
        the terminal stand-in for EASYPAP's trace-explorer window.
        """
        recs = self._by_iteration.get(iteration, [])
        if not recs:
            return f"iteration {iteration}: <no tasks>"
        t0 = min(r.start for r in recs)
        t1 = max(r.end for r in recs)
        span = max(t1 - t0, 1e-12)
        workers = sorted({r.worker for r in recs})
        kinds = sorted({r.kind for r in recs})

        def mark_for(kind: str) -> str:
            return "G" if kind == "gpu" else ("c" if kind == "comm" else "#")

        legend = "legend: " + "  ".join(f"{mark_for(k)}={k}" for k in kinds) + "  .=idle"
        lines = [
            f"iteration {iteration}: {len(recs)} tasks, makespan {span:.4g}",
            legend,
        ]
        for w in workers:
            row = ["."] * width
            busy = 0.0
            for r in recs:
                if r.worker != w:
                    continue
                a = int((r.start - t0) / span * (width - 1))
                b = int((r.end - t0) / span * (width - 1))
                mark = mark_for(r.kind)
                for i in range(a, max(b, a) + 1):
                    row[i] = mark
                busy += r.duration
            lines.append(f"w{w:<3d} |{''.join(row)}| {100 * busy / span:5.1f}% busy")
        return "\n".join(lines)

    def to_rows(self) -> list[dict]:
        """Dump all records as plain dicts (JSON-lines friendly)."""
        return [
            {
                "iteration": r.iteration,
                "task": r.task,
                "worker": r.worker,
                "start": r.start,
                "end": r.end,
                "kind": r.kind,
                "tile_ty": r.tile_ty,
                "tile_tx": r.tile_tx,
            }
            for r in self._records
        ]

    # -- persistence (EASYPAP's "off-line trace exploration") -------------------

    def save_jsonl(self, path: str | os.PathLike) -> None:
        """Write the trace as JSON lines for off-line exploration.

        Each row carries a ``schema`` version so future readers can adapt;
        :meth:`load_jsonl` ignores keys it does not know, so traces written
        by newer code (or annotated by other tools) stay loadable.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.to_rows():
                row["schema"] = TRACE_SCHEMA_VERSION
                fh.write(json.dumps(row) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | os.PathLike) -> "Trace":
        """Load a trace previously written by :meth:`save_jsonl`.

        Unknown keys (the ``schema`` stamp, annotations from other tools,
        fields from future versions) are ignored rather than crashing the
        load, so old and new trace files both work.
        """
        trace = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                trace.add(TaskRecord(**{k: v for k, v in row.items() if k in _RECORD_FIELDS}))
        return trace


@dataclass(frozen=True)
class TraceComparison:
    """Side-by-side comparison of one iteration across two traces (Fig. 3)."""

    iteration: int
    left: IterationSummary
    right: IterationSummary

    @property
    def task_ratio(self) -> float:
        """left tasks / right tasks (inf when the right side is empty)."""
        if self.right.task_count == 0:
            return float("inf") if self.left.task_count else 1.0
        return self.left.task_count / self.right.task_count

    @property
    def makespan_ratio(self) -> float:
        """Left makespan over right makespan."""
        if self.right.makespan == 0:
            return float("inf") if self.left.makespan else 1.0
        return self.left.makespan / self.right.makespan

    def render(self, left_name: str = "left", right_name: str = "right") -> str:
        """Render as human-readable text."""
        lines = [
            f"iteration {self.iteration}: {left_name} vs {right_name}",
            f"  tasks     : {self.left.task_count} vs {self.right.task_count} "
            f"(ratio {self.task_ratio:.2f})",
            f"  makespan  : {self.left.makespan:.4g} vs {self.right.makespan:.4g} "
            f"(ratio {self.makespan_ratio:.2f})",
            f"  imbalance : {self.left.imbalance:.3f} vs {self.right.imbalance:.3f}",
        ]
        return "\n".join(lines)


def compare_traces(left: Trace, right: Trace, iteration: int) -> TraceComparison:
    """Compare the same iteration of two traces — the Fig. 3 operation."""
    return TraceComparison(
        iteration=iteration,
        left=left.summarize(iteration),
        right=right.summarize(iteration),
    )
