"""OpenMP-style loop scheduling policies, simulated in virtual time.

The first sandpile assignment asks students to "experimentally determine the
most suitable OpenMP loop scheduling policy"; the second to fight the load
imbalance of sparse configurations "with various scheduling policies and
various tile sizes".  Real OpenMP is out of reach in pure Python, so this
module reproduces the *semantics* of the four classic policies over a list
of task costs and replays them through a virtual-time multi-worker
simulation:

* ``static``      — iteration space split into one contiguous block per worker;
* ``cyclic``      — chunks of ``chunk`` tasks dealt round-robin (OpenMP
  ``schedule(static, chunk)``);
* ``dynamic``     — free workers pull the next chunk from a shared queue;
* ``guided``      — like dynamic but with geometrically shrinking chunks
  (``max(remaining/nworkers, chunk)``).

The output (:class:`ScheduleResult`) carries per-task spans, from which the
monitor builds the execution traces of Fig. 3 and benchmarks compute
speedup, efficiency, and imbalance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence

from repro.common.errors import SchedulingError

__all__ = [
    "POLICIES",
    "TaskSpan",
    "ScheduleResult",
    "simulate_schedule",
    "chunk_plan",
    "chunk_plan_cached",
    "dynamic_chunk_plan",
    "index_spans",
    "expand_spans",
]

POLICIES = ("static", "cyclic", "dynamic", "guided")


@dataclass(frozen=True)
class TaskSpan:
    """Placement of one task in the simulated execution."""

    task: int
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds from start to end."""
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of :func:`simulate_schedule` (or of a real backend run).

    ``returns`` is filled by backends that execute out-of-process (the
    parent cannot observe closure side effects there): per-task return
    values, indexed like the batch.  In-process backends leave it None.
    """

    policy: str
    nworkers: int
    chunk: int
    spans: list[TaskSpan]
    returns: list | None = None

    @property
    def makespan(self) -> float:
        """Virtual finish time of the last task (0 for an empty task set)."""
        return max((s.end for s in self.spans), default=0.0)

    def worker_busy(self) -> list[float]:
        """Total busy time per worker."""
        busy = [0.0] * self.nworkers
        for s in self.spans:
            busy[s.worker] += s.duration
        return busy

    @property
    def total_work(self) -> float:
        """Sum of all task durations (serial-equivalent work)."""
        return sum(s.duration for s in self.spans)

    @property
    def imbalance(self) -> float:
        """Load imbalance ratio ``max(busy)/mean(busy) - 1`` (0 = perfect).

        This is the standard imbalance metric: how much longer the busiest
        worker runs compared to the average.
        """
        busy = self.worker_busy()
        mean = sum(busy) / len(busy) if busy else 0.0
        if mean == 0.0:
            return 0.0
        return max(busy) / mean - 1.0

    def speedup(self) -> float:
        """Speedup over running all tasks on one worker."""
        ms = self.makespan
        return self.total_work / ms if ms > 0 else 1.0

    def efficiency(self) -> float:
        """Parallel efficiency ``speedup / nworkers``."""
        return self.speedup() / self.nworkers

    def assignment(self) -> dict[int, int]:
        """Mapping task index -> worker index."""
        return {s.task: s.worker for s in self.spans}


def chunk_plan(ntasks: int, nworkers: int, policy: str, chunk: int) -> list[list[int]]:
    """Return the ordered list of chunks (task-index lists) a policy produces.

    For ``static``/``cyclic`` the worker of each chunk is fixed a priori; for
    ``dynamic``/``guided`` chunks are consumed in this order by whichever
    worker frees up first.

    Returns fresh mutable lists; hot paths that only *read* the plan should
    use :func:`chunk_plan_cached` instead, which memoises the (purely
    parameter-determined) plan across iterations.
    """
    return [list(c) for c in chunk_plan_cached(ntasks, nworkers, policy, chunk)]


def dynamic_chunk_plan(
    ntasks: int, nworkers: int, policy: str, chunk: int
) -> tuple[tuple[int, ...], ...]:
    """Uncached chunk plan for task counts that change every iteration.

    A frontier-windowed batch presents a *new* ``ntasks`` almost every
    step (the dirty bbox moves), so routing it through
    :func:`chunk_plan_cached` would fill the LRU with plans that are never
    reused and eventually evict the hot static (full-grid) plans.  Dynamic
    schedules call this fast path instead; only parameter-stable plans
    belong in the cache.
    """
    if ntasks < 0:
        raise SchedulingError("negative task count")
    if chunk < 1:
        raise SchedulingError(f"chunk must be >= 1, got {chunk}")
    tasks = tuple(range(ntasks))
    if policy == "static":
        block = -(-ntasks // nworkers) if ntasks else 0
        return tuple(tasks[i : i + block] for i in range(0, ntasks, block)) if block else ()
    if policy in ("cyclic", "dynamic"):
        return tuple(tasks[i : i + chunk] for i in range(0, ntasks, chunk))
    if policy == "guided":
        chunks: list[tuple[int, ...]] = []
        pos = 0
        while pos < ntasks:
            remaining = ntasks - pos
            size = max(remaining // nworkers, chunk)
            size = min(size, remaining)
            chunks.append(tasks[pos : pos + size])
            pos += size
        return tuple(chunks)
    raise SchedulingError(f"unknown policy {policy!r}; choose from {POLICIES}")


def index_spans(indices) -> tuple[tuple[int, int], ...]:
    """Compress a set/list of task indices into sorted half-open runs.

    The persistent-worker dispatch protocol ships plan selections as
    ``((lo, hi), ...)`` spans rather than explicit index lists: a frontier
    chunk is almost always contiguous, so a command tuple stays a few tens
    of bytes no matter how many tiles it covers.  Inverse of
    :func:`expand_spans`.
    """
    idxs = sorted(indices)
    spans: list[tuple[int, int]] = []
    for i in idxs:
        if spans and spans[-1][1] == i:
            spans[-1] = (spans[-1][0], i + 1)
        else:
            spans.append((i, i + 1))
    return tuple(spans)


def expand_spans(spans) -> list[int]:
    """Expand ``((lo, hi), ...)`` half-open runs back into an index list."""
    return [i for lo, hi in spans for i in range(lo, hi)]


@lru_cache(maxsize=4096)
def chunk_plan_cached(
    ntasks: int, nworkers: int, policy: str, chunk: int
) -> tuple[tuple[int, ...], ...]:
    """Memoised, immutable form of :func:`chunk_plan` for *static* plans.

    A plan depends only on ``(ntasks, nworkers, policy, chunk)``, yet the
    steppers ask for it every iteration — caching removes that rebuild from
    the per-step hot path (backends reuse the identical tuple each step).
    Only use this for parameter-stable plans (full tile grids, fixed
    batches); schedules whose task count varies per iteration must use
    :func:`dynamic_chunk_plan`, or they thrash the cache.  Invalid
    parameters raise :class:`SchedulingError` and are not cached.
    """
    return dynamic_chunk_plan(ntasks, nworkers, policy, chunk)


def simulate_schedule(
    costs: Sequence[float],
    nworkers: int,
    policy: str = "static",
    *,
    chunk: int = 1,
    start_time: float = 0.0,
    plan: tuple[tuple[int, ...], ...] | None = None,
) -> ScheduleResult:
    """Simulate executing tasks with the given *costs* under a policy.

    Parameters
    ----------
    costs:
        Per-task execution cost in virtual seconds (any non-negative unit).
    nworkers:
        Number of simulated workers ("cores").
    policy:
        One of :data:`POLICIES`.
    chunk:
        Chunk size for cyclic/dynamic and minimum chunk for guided
        (ignored by ``static``).
    start_time:
        Virtual time at which all workers become available.
    plan:
        Optional prebuilt chunk plan (as returned by
        :func:`chunk_plan_cached` or :func:`dynamic_chunk_plan`) covering
        exactly ``len(costs)`` tasks; when omitted the cached plan for the
        parameters is used.
    """
    if nworkers < 1:
        raise SchedulingError(f"need at least one worker, got {nworkers}")
    costs = [float(c) for c in costs]
    for i, c in enumerate(costs):
        if c < 0:
            raise SchedulingError(f"task {i} has negative cost {c}")
    chunks = plan if plan is not None else chunk_plan_cached(len(costs), nworkers, policy, chunk)
    spans: list[TaskSpan] = []

    if policy in ("static", "cyclic"):
        # chunk k belongs to worker k % nworkers; each worker runs its chunks in order
        avail = [start_time] * nworkers
        for k, ch in enumerate(chunks):
            w = k % nworkers
            t = avail[w]
            for task in ch:
                spans.append(TaskSpan(task, w, t, t + costs[task]))
                t += costs[task]
            avail[w] = t
    else:  # dynamic, guided: earliest-available worker pulls the next chunk
        heap = [(start_time, w) for w in range(nworkers)]
        heapq.heapify(heap)
        for ch in chunks:
            t, w = heapq.heappop(heap)
            for task in ch:
                spans.append(TaskSpan(task, w, t, t + costs[task]))
                t += costs[task]
            heapq.heappush(heap, (t, w))

    spans.sort(key=lambda s: s.task)
    return ScheduleResult(policy=policy, nworkers=nworkers, chunk=chunk, spans=spans)
