"""2D computation grids with a sink border.

EASYPAP kernels operate on an ``N x M`` cellular automaton whose border
cells are connected to a special *sink* cell: grains that topple off the
edge vanish.  :class:`Grid2D` realises this as an ``(N+2) x (M+2)`` numpy
array whose 1-cell frame is the sink.  Kernels may freely write into the
frame (the asynchronous sandpile kernel pushes grains there); the sink is
drained with :meth:`drain_sink`, which also reports how many grains it
absorbed so conservation can be checked exactly.

The interior is exposed as a *view* (``grid.interior``) so vectorised
kernels can update it in place without copies, per the numpy optimisation
guidance ("use views, not copies").
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["Grid2D"]


class Grid2D:
    """An ``height x width`` integer grid framed by a one-cell sink border.

    Parameters
    ----------
    height, width:
        Interior dimensions (both >= 1).
    dtype:
        Cell dtype; defaults to ``int64`` which comfortably holds the
        25 000-grain initial pile of Fig. 1a.
    """

    __slots__ = ("_data", "height", "width", "sink_absorbed")

    def __init__(self, height: int, width: int, dtype=np.int64) -> None:
        if height < 1 or width < 1:
            raise ConfigurationError(f"grid dimensions must be >= 1, got {height}x{width}")
        self.height = int(height)
        self.width = int(width)
        self._data = np.zeros((self.height + 2, self.width + 2), dtype=dtype)
        #: grains removed from the border so far (see :meth:`drain_sink`)
        self.sink_absorbed = 0

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_interior(cls, interior: np.ndarray) -> "Grid2D":
        """Build a grid whose interior is a copy of *interior*."""
        arr = np.asarray(interior)
        if arr.ndim != 2:
            raise ConfigurationError(f"interior must be 2D, got shape {arr.shape}")
        g = cls(arr.shape[0], arr.shape[1], dtype=arr.dtype)
        g.interior[...] = arr
        return g

    def copy(self) -> "Grid2D":
        """Deep copy (interior, border contents, and sink counter)."""
        g = Grid2D(self.height, self.width, dtype=self._data.dtype)
        g._data[...] = self._data
        g.sink_absorbed = self.sink_absorbed
        return g

    # -- views ----------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The full ``(H+2, W+2)`` array including the sink frame."""
        return self._data

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (no sink frame)."""
        return self._data[1:-1, 1:-1]

    @property
    def shape(self) -> tuple[int, int]:
        """Interior shape ``(height, width)``."""
        return (self.height, self.width)

    def swap_buffer(self, buffer: np.ndarray) -> np.ndarray:
        """Install *buffer* as the grid's storage, returning the old array.

        Used by double-buffered (synchronous) steppers to flip planes
        without copying.  *buffer* must match the full framed shape.
        """
        if buffer.shape != self._data.shape or buffer.dtype != self._data.dtype:
            raise ConfigurationError(
                f"buffer {buffer.shape}/{buffer.dtype} incompatible with "
                f"grid {self._data.shape}/{self._data.dtype}"
            )
        old = self._data
        self._data = buffer
        return old

    # -- sink management --------------------------------------------------------

    def border_sum(self) -> int:
        """Total grains currently sitting in the sink frame."""
        d = self._data
        # corners are counted once: top row + bottom row + side columns
        return int(d[0, :].sum() + d[-1, :].sum() + d[1:-1, 0].sum() + d[1:-1, -1].sum())

    def drain_sink(self) -> int:
        """Zero the sink frame, return the number of grains absorbed now.

        The absorbed count is accumulated in :attr:`sink_absorbed` so that
        ``interior.sum() + sink_absorbed`` is invariant across a simulation.
        """
        absorbed = self.border_sum()
        d = self._data
        d[0, :] = 0
        d[-1, :] = 0
        d[:, 0] = 0
        d[:, -1] = 0
        self.sink_absorbed += absorbed
        return absorbed

    # -- queries ----------------------------------------------------------------

    def total_grains(self) -> int:
        """Grains in the interior (the sink frame is not counted)."""
        return int(self.interior.sum())

    def is_stable(self) -> bool:
        """True when every interior cell holds at most 3 grains."""
        return bool((self.interior < 4).all())

    def unstable_count(self) -> int:
        """Number of interior cells with >= 4 grains."""
        return int((self.interior >= 4).sum())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Grid2D):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self.interior, other.interior)
        )

    def __hash__(self):  # grids are mutable
        raise TypeError("Grid2D is unhashable (mutable)")

    def __repr__(self) -> str:
        return (
            f"Grid2D({self.height}x{self.width}, grains={self.total_grains()}, "
            f"stable={self.is_stable()})"
        )
