"""The easypap substrate as a :class:`~repro.common.job.Job`.

:class:`SandpileJob` drives any registered kernel variant — including
``pfrontier`` on the process backend — one stepper iteration per protocol
step, until the grid reaches its fixpoint.

Checkpointing is **restore-by-rebuild**: a snapshot carries the full grid
plane (interior + sink frame), the sink counter, and the iteration count;
``restore`` copies them back and rebuilds the stepper from the restored
grid.  That is exact for every variant because the frontier window is a
pure function of the grid — the bbox rescan invariant guarantees a
full-grid ``unstable_bbox`` scan on the restored plane equals the window
an uninterrupted run would carry (cells outside the old window cannot be
unstable), and the pfrontier scratch plane never holds live state between
iterations (copy-back takes only the window).  Resumed runs are therefore
bit-identical, which the chaos kill-and-resume scenario asserts.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import CheckpointError, ConfigurationError
from repro.common.job import Job, JobProgress
from repro.easypap.grid import Grid2D

__all__ = ["SandpileJob"]


class SandpileJob(Job):
    """Run ``kernel/variant`` on a grid to its fixpoint, one step at a time.

    Parameters mirror :func:`repro.sandpile.simulate.run_to_fixpoint`;
    extra *options* flow to the variant factory (``tile_size``,
    ``nworkers``, ``backend``, ``fault_injector``...).  The stepper is
    built lazily on the first step so that a restored grid rebuilds its
    stepper from the snapshot, not from the initial state.

    The synchronous family is double-buffered (writes land off-plane
    until commit), so a raised step leaves the live plane intact and
    ``retryable_steps`` is True; pass ``retryable=False`` for in-place
    asynchronous variants.
    """

    substrate = "easypap"

    def __init__(
        self,
        grid: Grid2D,
        kernel: str = "sandpile",
        variant: str = "frontier",
        *,
        max_iterations: int = 10**7,
        retryable: bool = True,
        **options,
    ) -> None:
        self.grid = grid
        self.kernel = kernel
        self.variant = variant
        self.max_iterations = max_iterations
        self.options = options
        self.name = f"{kernel}/{variant}"
        self.retryable_steps = retryable
        self.supports_checkpoint = True
        self.iterations = 0
        self._done = False
        self._stepper = None
        #: spec params when built via from_spec; None for direct-grid jobs
        self._spec_params: dict | None = None
        # construction-time grid digest: the describe() fallback for jobs
        # handed an arbitrary grid (hash now, before stepping mutates it)
        self._grid_sha256 = hashlib.sha256(grid.data.tobytes()).hexdigest()

    # -- spec / describe ---------------------------------------------------------

    #: spec param defaults understood by from_spec (also its validation table)
    SPEC_DEFAULTS = {
        "config": "center",
        "size": 32,
        "grains": 1200,
        "n_piles": 4,
        "pile_grains": 512,
        "seed": 0,
        "kernel": "sandpile",
        "variant": "frontier",
        "tile_size": 8,
        "nworkers": 2,
        "k": 1,
    }

    @classmethod
    def from_spec(cls, params: dict) -> "SandpileJob":
        """Build the job from canonical spec params (the serve constructor).

        The grid is rebuilt deterministically from ``config``/``size``/
        ``grains``/``seed``, so equal params always yield bit-identical
        initial state — the property the content-addressed cache needs.
        """
        from repro.sandpile import center_pile, sparse_random, uniform

        unknown = set(params) - set(cls.SPEC_DEFAULTS)
        if unknown:
            raise ConfigurationError(f"unknown sandpile spec params: {sorted(unknown)}")
        p = {**cls.SPEC_DEFAULTS, **params}
        size = int(p["size"])
        if p["config"] == "center":
            grid = center_pile(size, size, int(p["grains"]))
        elif p["config"] == "uniform":
            grid = uniform(size, size, int(p["grains"]))
        elif p["config"] == "sparse":
            grid = sparse_random(
                size, size,
                n_piles=int(p["n_piles"]),
                pile_grains=int(p["pile_grains"]),
                seed=int(p["seed"]),
            )
        else:
            raise ConfigurationError(f"unknown sandpile config {p['config']!r}")
        options = {}
        if p["variant"] in ("tiled", "lazy", "omp", "split", "pfrontier"):
            options["tile_size"] = int(p["tile_size"])
        if p["variant"] == "pfrontier":
            options["nworkers"] = int(p["nworkers"])
            options["k"] = int(p["k"])
        job = cls(grid, p["kernel"], p["variant"], **options)
        job._spec_params = {k: p[k] for k in sorted(cls.SPEC_DEFAULTS)}
        return job

    def describe(self) -> dict:
        """Canonical cache-key fields (spec params, or a grid digest)."""
        out = {
            "substrate": self.substrate,
            "workload": "sandpile",
            "kernel": self.kernel,
            "variant": self.variant,
        }
        if self._spec_params is not None:
            out["params"] = dict(self._spec_params)
        else:
            out["grid_sha256"] = self._grid_sha256
            out["options"] = {k: self.options[k] for k in sorted(self.options)
                              if isinstance(self.options[k], (int, float, str, bool))}
        return out

    def _ensure_stepper(self):
        if self._stepper is None:
            # imported here: simulate imports executor/steppers, keep the
            # adapter importable without pulling the whole stack eagerly
            from repro.sandpile.simulate import make_stepper

            self._stepper = make_stepper(self.grid, self.kernel, self.variant, **self.options)
        return self._stepper

    # -- protocol ----------------------------------------------------------------

    def step(self) -> bool:
        if self._done:
            return False
        if self.iterations >= self.max_iterations:
            raise CheckpointError(
                f"{self.name}: no fixpoint within {self.max_iterations} iterations"
            )
        changed = self._ensure_stepper()()
        if changed:
            self.iterations += 1
            return True
        self._done = True
        return False

    def result(self) -> dict:
        """Fixpoint fingerprint: iterations, final interior, sink counter."""
        return {
            "iterations": self.iterations,
            "grid": self.grid.interior.copy(),
            "sink_absorbed": self.grid.sink_absorbed,
        }

    def progress(self) -> JobProgress:
        return JobProgress(
            steps_done=self.iterations,
            done=self._done,
            steps_total=None,
            detail={"kernel": self.kernel, "variant": self.variant},
        )

    def close(self) -> None:
        stepper, self._stepper = self._stepper, None
        if stepper is not None:
            close = getattr(stepper, "close", None)
            if close is not None:
                close()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> dict:
        """Full plane + sink counter + iteration count (see module docs)."""
        return {
            "kind": "sandpile",
            "kernel": self.kernel,
            "variant": self.variant,
            "shape": tuple(self.grid.shape),
            "plane": self.grid.data.copy(),
            "sink_absorbed": self.grid.sink_absorbed,
            "iterations": self.iterations,
            "done": self._done,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sandpile":
            raise CheckpointError(f"snapshot kind {state.get('kind')!r} is not a sandpile job")
        if (state.get("kernel"), state.get("variant")) != (self.kernel, self.variant):
            raise CheckpointError(
                f"snapshot is for {state.get('kernel')}/{state.get('variant')}, "
                f"this job runs {self.name}"
            )
        if tuple(state.get("shape", ())) != tuple(self.grid.shape):
            raise CheckpointError(
                f"snapshot grid {state.get('shape')} does not match {tuple(self.grid.shape)}"
            )
        # drop any live stepper: it caches plane views of the pre-restore grid
        self.close()
        np.copyto(self.grid.data, state["plane"])
        self.grid.sink_absorbed = int(state["sink_absorbed"])
        self.iterations = int(state["iterations"])
        self._done = bool(state.get("done", False))
