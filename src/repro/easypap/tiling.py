"""Tile decomposition of a 2D grid.

The second sandpile assignment has students tile the stencil to maximise
cache reuse and to enable lazy evaluation; the traces of Fig. 3 compare
32x32 against 64x64 tiles.  :class:`TileGrid` cuts an ``H x W`` interior
into rectangular tiles (edge tiles may be smaller when the dimensions do
not divide evenly) and exposes the adjacency needed by the lazy algorithm
("a tile must be recomputed when it, or a neighbour, changed").
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.common.errors import ConfigurationError

__all__ = ["Tile", "TileGrid", "band_tiles"]


@dataclass(frozen=True)
class Tile:
    """One rectangular tile of the interior.

    ``y0``/``x0`` are interior coordinates (0-based, sink frame excluded);
    the tile covers rows ``y0 : y0+h`` and columns ``x0 : x0+w``.
    ``index`` is the tile's row-major rank in its :class:`TileGrid`.
    """

    index: int
    ty: int
    tx: int
    y0: int
    x0: int
    h: int
    w: int

    @property
    def y1(self) -> int:
        """One past the last row."""
        return self.y0 + self.h

    @property
    def x1(self) -> int:
        """One past the last column."""
        return self.x0 + self.w

    @property
    def area(self) -> int:
        """Cell count of the tile."""
        return self.h * self.w

    def slices(self) -> tuple[slice, slice]:
        """Interior-coordinate slices selecting this tile."""
        return slice(self.y0, self.y1), slice(self.x0, self.x1)


def band_tiles(window: tuple[int, int, int, int], nbands: int) -> list[Tile]:
    """Cut the interior rectangle *window* into ``nbands`` full-width row bands.

    Band decomposition is the persistent-worker dispatch shape: a command
    tuple carries only ``(window, nbands)`` and both sides rebuild the same
    tile list deterministically, so nothing per-tile ever crosses the pipe.
    Full-window-wide bands also keep every row contiguous in memory, which
    is what lets the fused stencil kernels vectorise across the whole
    window width.

    ``nbands`` is clamped to the window height (never returns an empty
    band); rows are dealt as evenly as possible, earlier bands taking the
    remainder.  Degenerate windows return no tiles.
    """
    y0, y1, x0, x1 = window
    height, width = y1 - y0, x1 - x0
    if height <= 0 or width <= 0:
        return []
    if nbands < 1:
        raise ConfigurationError(f"nbands must be >= 1, got {nbands}")
    n = min(nbands, height)
    base, rem = divmod(height, n)
    tiles: list[Tile] = []
    row = y0
    for i in range(n):
        h = base + (1 if i < rem else 0)
        tiles.append(Tile(index=i, ty=i, tx=0, y0=row, x0=x0, h=h, w=width))
        row += h
    return tiles


class TileGrid:
    """Decomposition of an ``H x W`` interior into ``tile_h x tile_w`` tiles."""

    def __init__(self, height: int, width: int, tile_h: int, tile_w: int | None = None) -> None:
        if tile_w is None:
            tile_w = tile_h
        if height < 1 or width < 1:
            raise ConfigurationError("grid dimensions must be >= 1")
        if tile_h < 1 or tile_w < 1:
            raise ConfigurationError("tile dimensions must be >= 1")
        self.height = height
        self.width = width
        self.tile_h = tile_h
        self.tile_w = tile_w
        self.tiles_y = -(-height // tile_h)  # ceil division
        self.tiles_x = -(-width // tile_w)
        self._tiles: list[Tile] = []
        idx = 0
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                y0 = ty * tile_h
                x0 = tx * tile_w
                h = min(tile_h, height - y0)
                w = min(tile_w, width - x0)
                self._tiles.append(Tile(idx, ty, tx, y0, x0, h, w))
                idx += 1

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tiles)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self._tiles)

    def __getitem__(self, index: int) -> Tile:
        return self._tiles[index]

    def at(self, ty: int, tx: int) -> Tile:
        """Tile at tile-coordinates ``(ty, tx)``."""
        if not (0 <= ty < self.tiles_y and 0 <= tx < self.tiles_x):
            raise IndexError(f"tile ({ty}, {tx}) outside {self.tiles_y}x{self.tiles_x}")
        return self._tiles[ty * self.tiles_x + tx]

    # -- structure ---------------------------------------------------------------

    def neighbors(self, tile: Tile, *, diagonal: bool = False) -> list[Tile]:
        """Tiles sharing an edge (optionally a corner) with *tile*.

        The 4-connected stencil only propagates through edges, so the lazy
        sandpile uses ``diagonal=False``.
        """
        out: list[Tile] = []
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        for dy, dx in offsets:
            ny, nx = tile.ty + dy, tile.tx + dx
            if 0 <= ny < self.tiles_y and 0 <= nx < self.tiles_x:
                out.append(self.at(ny, nx))
        return out

    def tiles_in_window(self, window: tuple[int, int, int, int]) -> list[Tile]:
        """Tiles intersecting the half-open interior rectangle *window*.

        ``window`` is ``(y0, y1, x0, x1)`` in interior coordinates (the
        frontier steppers' dirty bounding box).  The result is computed
        from tile-coordinate arithmetic — O(tiles in the window), never a
        scan over the whole decomposition — and returned in row-major
        order, so selecting prebuilt per-tile tasks stays cheap even when
        the window is a tiny corner of a huge grid.  Degenerate (empty or
        inverted) windows select nothing.
        """
        y0, y1, x0, x1 = window
        y0, x0 = max(y0, 0), max(x0, 0)
        y1, x1 = min(y1, self.height), min(x1, self.width)
        if y0 >= y1 or x0 >= x1:
            return []
        ty0, ty1 = y0 // self.tile_h, -(-y1 // self.tile_h)
        tx0, tx1 = x0 // self.tile_w, -(-x1 // self.tile_w)
        return [
            self._tiles[ty * self.tiles_x + tx]
            for ty in range(ty0, ty1)
            for tx in range(tx0, tx1)
        ]

    def is_border_tile(self, tile: Tile) -> bool:
        """True when the tile touches the grid edge (and hence the sink).

        Border ("outer") tiles need the careful code path in the
        vectorisation assignment; inner tiles can use the fast path.
        """
        return (
            tile.ty == 0
            or tile.tx == 0
            or tile.ty == self.tiles_y - 1
            or tile.tx == self.tiles_x - 1
        )

    def inner_tiles(self) -> list[Tile]:
        """All tiles not touching the grid edge."""
        return [t for t in self._tiles if not self.is_border_tile(t)]

    def outer_tiles(self) -> list[Tile]:
        """All tiles touching the grid edge."""
        return [t for t in self._tiles if self.is_border_tile(t)]

    def __repr__(self) -> str:
        return (
            f"TileGrid({self.height}x{self.width} in {self.tile_h}x{self.tile_w} tiles: "
            f"{self.tiles_y}x{self.tiles_x} = {len(self)} tiles)"
        )
