"""An EASYPAP-like kernel-execution framework in pure Python.

EASYPAP [Lasserre, Namyst, Wacrenier 2021] is the C framework the Abelian
sandpile assignment (Sec. II of the paper) is built on.  This package
reproduces its moving parts:

* :mod:`~repro.easypap.grid` — 2D grids with a sink border;
* :mod:`~repro.easypap.tiling` — tile decomposition;
* :mod:`~repro.easypap.kernel` — kernel/variant registry ("add a few lines
  of code ... and it is ready for command line testing");
* :mod:`~repro.easypap.schedule` — OpenMP-style loop scheduling policies
  simulated in virtual time;
* :mod:`~repro.easypap.executor` — sequential / simulated-parallel /
  real-thread backends;
* :mod:`~repro.easypap.monitor` — execution traces (Fig. 3) and per-tile
  owner maps (Fig. 4);
* :mod:`~repro.easypap.display` — RGB rendering of grids and owner maps.
"""

from repro.easypap.app import AppResult, EasyPapApp
from repro.easypap.executor import (
    ProcessBackend,
    SequentialBackend,
    SimulatedBackend,
    TaskBatch,
    ThreadBackend,
    make_backend,
)
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import REGISTRY, KernelRegistry, VariantInfo, get_variant, register_variant
from repro.easypap.monitor import IterationSummary, TaskRecord, Trace, TraceComparison, compare_traces
from repro.easypap.perf import PerfCampaign, PerfPoint, speedup_series
from repro.easypap.schedule import POLICIES, ScheduleResult, TaskSpan, simulate_schedule
from repro.easypap.tiling import Tile, TileGrid

__all__ = [
    "AppResult",
    "EasyPapApp",
    "Grid2D",
    "Tile",
    "TileGrid",
    "KernelRegistry",
    "VariantInfo",
    "REGISTRY",
    "register_variant",
    "get_variant",
    "POLICIES",
    "ScheduleResult",
    "TaskSpan",
    "simulate_schedule",
    "TaskBatch",
    "SequentialBackend",
    "SimulatedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "Trace",
    "TaskRecord",
    "IterationSummary",
    "TraceComparison",
    "compare_traces",
    "PerfCampaign",
    "PerfPoint",
    "speedup_series",
]
