"""Task-execution backends.

A tiled iteration produces a list of independent tile tasks; how they are
*executed* is orthogonal to what they compute.  Four backends cover the
assignment's needs:

* :class:`SequentialBackend` — runs tasks one by one; the reference.
* :class:`SimulatedBackend` — runs tasks (still sequentially, in-process)
  but *places* them on ``nworkers`` virtual workers under an OpenMP-style
  policy using per-task costs, yielding the virtual-time spans from which
  speedup/efficiency and the Fig. 3 traces are computed.  Costs may be
  supplied (cost model) or measured.
* :class:`ThreadBackend` — a real :class:`concurrent.futures.ThreadPoolExecutor`
  pool, demonstrating that the tasks genuinely are thread-safe (numpy
  releases the GIL for large array ops); wall-clock spans are recorded.
* :class:`ProcessBackend` — a **persistent-worker runtime** over
  :mod:`multiprocessing.shared_memory`-backed grid planes: the first
  backend whose speedup is measured on actual hardware rather than
  simulated.  Each worker is a long-lived forked process holding one end
  of a command/result pipe pair; planes are attached once at spawn, and
  recurring batches are *registered resident* once per batch identity so
  an iteration ships only a tiny command tuple (batch id, plan selection
  spans, epoch) instead of re-pickling chunk items.  Chunks still follow
  the same ``static``/``cyclic``/``dynamic``/``guided`` plans as
  :func:`~repro.easypap.schedule.simulate_schedule` (static/cyclic as one
  command per worker, dynamic/guided parent-fed with bounded prefetch).
  When ``fork`` or shared memory is unavailable it degrades gracefully to
  a :class:`ThreadBackend`.

All backends return the executed :class:`~repro.easypap.schedule.TaskSpan`
list and optionally feed a :class:`~repro.easypap.monitor.Trace`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, KernelError, SchedulingError
from repro.common.resilience import Deadline, DegradationLog, FaultInjector, RetryPolicy
from repro.easypap.monitor import TaskRecord, Trace
from repro.easypap.schedule import (
    POLICIES,
    ScheduleResult,
    TaskSpan,
    chunk_plan_cached,
    dynamic_chunk_plan,
    expand_spans,
    index_spans,
    simulate_schedule,
)
from repro.easypap.tiling import Tile, band_tiles

__all__ = [
    "TaskBatch",
    "TileTask",
    "BandRule",
    "register_tile_kernel",
    "get_tile_kernel",
    "registered_tile_kernels",
    "tile_kernel_tags",
    "registry_version",
    "SequentialBackend",
    "SimulatedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]


@dataclass(frozen=True)
class TileTask:
    """Picklable description of one tile-kernel application.

    ``kernel`` names a function registered with :func:`register_tile_kernel`;
    ``src``/``dst`` index into the plane list bound to the executing
    :class:`ProcessBackend` (equal for in-place kernels).  ``arg`` carries
    an optional kernel parameter (the fused step count ``k`` for temporal
    blocking kernels); plain kernels ignore it.
    """

    kernel: str
    src: int
    dst: int
    tile: Tile
    arg: object = None


@dataclass(frozen=True)
class BandRule:
    """Recipe for a band-decomposed batch the dispatch protocol can replay.

    A batch carrying a :class:`BandRule` promises that its tasks are
    exactly ``band_tiles(window, nbands)`` applied through *kernel* with
    fused step count *k* — so a worker that has the rule registered as a
    resident can rebuild any task from the command tuple alone and the
    parent ships only ``(window, nbands, selection-spans)`` per iteration.
    """

    kernel: str
    src: int
    dst: int
    k: int
    window: tuple[int, int, int, int]
    nbands: int

    def tasks(self) -> list[TileTask]:
        """Materialise the tile tasks this rule denotes (worker side)."""
        return [
            TileTask(self.kernel, self.src, self.dst, t, arg=self.k)
            for t in band_tiles(self.window, self.nbands)
        ]


#: name -> fn(planes, task) for kernels executable from a TileTask spec.
#: Worker processes are forked after registration, so they inherit this.
_TILE_KERNELS: dict[str, Callable] = {}

#: name -> behavioural tags declared at registration (e.g. "racy-by-design")
_TILE_KERNEL_TAGS: dict[str, tuple[str, ...]] = {}

#: bumped on every (re-)registration; lets analysis caches keyed on the
#: registry's contents invalidate without holding function references
_REGISTRY_VERSION = 0


def register_tile_kernel(
    name: str,
    fn: Callable,
    *,
    overwrite: bool = False,
    tags: tuple[str, ...] = (),
) -> None:
    """Register *fn(planes, task)* as the executor of ``TileTask(kernel=name)``.

    *planes* is the list of shared arrays the backend bound; *task* the
    :class:`TileTask`.  The return value is surfaced in
    :attr:`ScheduleResult.returns` (steppers use it for changed flags).

    *tags* declare behaviour the analysis layer must reconcile with its
    static verdict — ``"racy-by-design"`` marks kernels whose adjacent-tile
    schedules conflict on purpose (in-place relaxation); an untagged kernel
    certified racy fails ``repro-check symbolic``.

    Re-registering a *different* function under an existing name raises
    :class:`~repro.common.errors.KernelError` unless ``overwrite=True`` —
    silently replacing a kernel would change what already-built batches
    execute.  Re-registering the *same* function is a no-op (module
    re-import safety).
    """
    global _REGISTRY_VERSION
    existing = _TILE_KERNELS.get(name)
    if existing is not None and existing is not fn and not overwrite:
        raise KernelError(
            f"tile kernel {name!r} already registered; pass overwrite=True to replace"
        )
    _TILE_KERNELS[name] = fn
    _TILE_KERNEL_TAGS[name] = tuple(tags)
    _REGISTRY_VERSION += 1


def registered_tile_kernels() -> dict[str, Callable]:
    """Snapshot of the tile-kernel registry (name -> executor function)."""
    return dict(_TILE_KERNELS)


def tile_kernel_tags(name: str) -> tuple[str, ...]:
    """Behavioural tags kernel *name* was registered with (may be empty)."""
    return _TILE_KERNEL_TAGS.get(name, ())


def registry_version() -> int:
    """Monotonic counter bumped on every registration (cache invalidation)."""
    return _REGISTRY_VERSION


def get_tile_kernel(name: str) -> Callable:
    """Look up a registered tile kernel; raises KernelError listing what exists."""
    try:
        return _TILE_KERNELS[name]
    except KeyError:
        avail = ", ".join(sorted(_TILE_KERNELS)) or "<none>"
        raise KernelError(
            f"unknown tile kernel {name!r}; registered: {avail}"
        ) from None


class TaskBatch:
    """A batch of independent tasks for one iteration.

    Parameters
    ----------
    tasks:
        Callables taking no arguments (typically closures over a tile).
    tiles:
        Optional parallel list of :class:`Tile` for trace annotation.
    costs:
        Optional virtual cost per task; backends that need costs but do not
        receive them fall back to measuring wall time or to tile area.
    spec:
        Optional parallel list of :class:`TileTask` — a picklable
        description of each task that :class:`ProcessBackend` can ship to
        worker processes (closures cannot cross a process boundary).
        Backends without process workers ignore it and run the closures.
    dynamic:
        Mark batches whose task count varies per iteration (frontier
        selections).  Plan-consuming backends then build the chunk plan
        through the uncached :func:`~repro.easypap.schedule.dynamic_chunk_plan`
        fast path instead of :func:`~repro.easypap.schedule.chunk_plan_cached`,
        so a moving frontier cannot thrash the static-plan cache.
    bands:
        Optional :class:`BandRule` asserting the batch's tasks are a band
        decomposition replayable from ``(window, nbands)`` alone.  The
        process backend then dispatches the batch through a resident band
        rule — per-iteration commands carry no per-tile data at all.
    """

    def __init__(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        tiles: Sequence[Tile] | None = None,
        costs: Sequence[float] | None = None,
        spec: Sequence[TileTask] | None = None,
        dynamic: bool = False,
        bands: BandRule | None = None,
    ) -> None:
        self.tasks = list(tasks)
        if tiles is not None and len(tiles) != len(self.tasks):
            raise ConfigurationError("tiles and tasks must have equal length")
        if costs is not None and len(costs) != len(self.tasks):
            raise ConfigurationError("costs and tasks must have equal length")
        if spec is not None and len(spec) != len(self.tasks):
            raise ConfigurationError("spec and tasks must have equal length")
        if bands is not None and bands.nbands != len(self.tasks):
            raise ConfigurationError("bands.nbands and tasks must have equal length")
        self.tiles = list(tiles) if tiles is not None else None
        self.costs = [float(c) for c in costs] if costs is not None else None
        self.spec = list(spec) if spec is not None else None
        self.dynamic = bool(dynamic)
        self.bands = bands

    def __len__(self) -> int:
        return len(self.tasks)

    def tile_coords(self, i: int) -> tuple[int, int]:
        """The (ty, tx) of task *i*'s tile, or (-1, -1) when untracked."""
        if self.tiles is None:
            return (-1, -1)
        t = self.tiles[i]
        return (t.ty, t.tx)


def _plan_for(batch: TaskBatch, nworkers: int, policy: str, chunk: int):
    """The chunk plan for *batch*: cached for static batches, uncached for
    dynamic (per-iteration frontier) ones."""
    build = dynamic_chunk_plan if batch.dynamic else chunk_plan_cached
    return build(len(batch), nworkers, policy, chunk)


def _record_spans(
    spans: Sequence[TaskSpan],
    batch: TaskBatch,
    trace: Trace | None,
    iteration: int,
    kind: str,
) -> None:
    if trace is None:
        return
    for s in spans:
        ty, tx = batch.tile_coords(s.task)
        trace.add(
            TaskRecord(
                iteration=iteration,
                task=s.task,
                worker=s.worker,
                start=s.start,
                end=s.end,
                kind=kind,
                tile_ty=ty,
                tile_tx=tx,
            )
        )


class SequentialBackend:
    """Execute tasks in index order on a single (virtual) worker."""

    nworkers = 1

    def __init__(self, *, trace: Trace | None = None) -> None:
        self.trace = trace

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        """Execute the batch; returns the resulting schedule placement."""
        spans: list[TaskSpan] = []
        t = 0.0
        for i, task in enumerate(batch.tasks):
            t0 = time.perf_counter()
            ret = task()
            dt = time.perf_counter() - t0
            if batch.costs is not None:
                cost = batch.costs[i]
            elif isinstance(ret, (int, float)) and not isinstance(ret, bool):
                cost = float(ret)
            else:
                cost = dt
            spans.append(TaskSpan(i, 0, t, t + cost))
            t += cost
        result = ScheduleResult(policy="sequential", nworkers=1, chunk=1, spans=spans)
        _record_spans(spans, batch, self.trace, iteration, kind)
        return result


class SimulatedBackend:
    """Execute tasks for real, place them on virtual workers for timing.

    The placement uses :func:`~repro.easypap.schedule.simulate_schedule`;
    tasks are *executed* in the order the scheduling policy consumes them,
    so dynamic-policy runs really do interleave chunks the way a work
    queue would (this matters for the in-place asynchronous sandpile, whose
    intermediate states depend on execution order even though the fixpoint
    does not).
    """

    def __init__(
        self,
        nworkers: int,
        policy: str = "dynamic",
        *,
        chunk: int = 1,
        trace: Trace | None = None,
        measure: bool = False,
    ) -> None:
        if nworkers < 1:
            raise ConfigurationError("nworkers must be >= 1")
        self.nworkers = nworkers
        self.policy = policy
        self.chunk = chunk
        self.trace = trace
        #: when True and the batch has no costs, wall-time is measured per task
        self.measure = measure

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        # Execute in policy chunk order first (and measure if requested)...
        """Execute the batch; returns the resulting schedule placement."""
        plan = _plan_for(batch, self.nworkers, self.policy, self.chunk)
        order = [i for ch in plan for i in ch]
        measured: list[float] = [0.0] * len(batch)
        returned: list[object] = [None] * len(batch)
        for i in order:
            t0 = time.perf_counter()
            returned[i] = batch.tasks[i]()
            measured[i] = time.perf_counter() - t0
        # ...then place on virtual workers using, in order of preference:
        # supplied costs, measured wall times, numeric task return values
        # (deterministic work units), or a uniform unit cost.
        if batch.costs is not None:
            costs = batch.costs
        elif self.measure:
            costs = measured
        else:
            costs = [
                float(r) if isinstance(r, (int, float)) and not isinstance(r, bool) else 1.0
                for r in returned
            ]
        result = simulate_schedule(costs, self.nworkers, self.policy, chunk=self.chunk, plan=plan)
        _record_spans(result.spans, batch, self.trace, iteration, kind)
        return result


class ThreadBackend:
    """Run tasks on a real thread pool; spans are wall-clock measurements.

    Only valid for batches whose tasks are mutually independent (the
    synchronous sandpile variant, or one colour wave of the multi-wave
    asynchronous variant).
    """

    def __init__(self, nworkers: int, *, trace: Trace | None = None) -> None:
        if nworkers < 1:
            raise ConfigurationError("nworkers must be >= 1")
        self.nworkers = nworkers
        self.trace = trace

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        """Execute the batch; returns the resulting schedule placement."""
        spans: list[TaskSpan | None] = [None] * len(batch)
        epoch = time.perf_counter()
        worker_ids: dict[int, int] = {}
        # worker-ID assignment must be atomic: with a bare
        # ``setdefault(tid, len(worker_ids))`` the ``len()`` is evaluated
        # *before* the insert, so two threads could claim the same index
        # and corrupt worker_busy()/trace lanes
        id_lock = threading.Lock()

        def call(i: int) -> None:
            tid = threading.get_ident()
            w = worker_ids.get(tid)
            if w is None:
                with id_lock:
                    w = worker_ids.setdefault(tid, len(worker_ids))
            t0 = time.perf_counter() - epoch
            batch.tasks[i]()
            t1 = time.perf_counter() - epoch
            spans[i] = TaskSpan(i, w, t0, t1)

        with ThreadPoolExecutor(max_workers=self.nworkers) as pool:
            list(pool.map(call, range(len(batch))))

        done = [s for s in spans if s is not None]
        if len(done) != len(batch):
            unfinished = [i for i, s in enumerate(spans) if s is None]
            raise SchedulingError(
                f"{len(unfinished)} of {len(batch)} thread tasks did not complete: "
                f"tasks {unfinished[:20]}"
            )
        result = ScheduleResult(policy="threads", nworkers=self.nworkers, chunk=1, spans=done)
        _record_spans(done, batch, self.trace, iteration, kind)
        return result


# -- ProcessBackend worker-side machinery (module level: picklable by name) ----

_PROC_PLANES: dict = {}


def _proc_attach(
    plane_specs: list[tuple[str, tuple, str]],
    fault_injector: FaultInjector | None = None,
) -> None:
    """Worker initializer: map every shared plane into this worker process."""
    from multiprocessing import shared_memory

    segments = [shared_memory.SharedMemory(name=name) for name, _, _ in plane_specs]
    _PROC_PLANES["shm"] = segments
    _PROC_PLANES["arrays"] = [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        for seg, (_, shape, dtype) in zip(segments, plane_specs)
    ]
    _PROC_PLANES["injector"] = fault_injector


def _resident_items(resident: dict, bid: int | None, payload):
    """Yield ``(index, TileTask)`` for one run command.

    Three payload shapes, by dispatch mode:

    * oneshot (``bid is None``): an explicit ``[(index, TileTask), ...]``
      list, pickled whole — the fallback for batches with no stable
      identity;
    * spec resident: selection spans into the registered spec list;
    * band resident: ``(window, nbands, selection-spans)`` — the tasks are
      rebuilt from :func:`~repro.easypap.tiling.band_tiles`, so the command
      carries no per-tile data.
    """
    if bid is None:
        yield from payload
        return
    kind, body = resident[bid]
    if kind == "specs":
        for i in expand_spans(payload):
            yield i, body[i]
    else:  # "bands": body is (kernel, src, dst, k)
        kernel, src, dst, k = body
        window, nbands, sel = payload
        tiles = band_tiles(window, nbands)
        for i in expand_spans(sel):
            t = tiles[i]
            yield i, TileTask(kernel, src, dst, t, arg=k)


def _worker_main(
    conn,
    wid: int,
    plane_specs: list[tuple[str, tuple, str]],
    fault_injector: FaultInjector | None,
) -> None:
    """Persistent worker loop: attach planes once, then serve commands.

    Commands arrive pre-pickled over *conn* (one duplex pipe per worker):

    * ``("stop",)`` — exit the loop;
    * ``("register", bid, (kind, body))`` — install a resident batch;
    * ``("run", seq, epoch, bid, payload)`` — execute a selection and
      reply ``(seq, wid, rows, err)`` where rows are
      ``(index, start, end, return_value)`` with times offset from
      *epoch* (CLOCK_MONOTONIC is system-wide where fork exists, so
      offsets are comparable across workers).

    ``seq`` is the parent's epoch tag: replies from a previous attempt
    are discarded by the barrier, so a slow worker can never corrupt a
    retried batch's bookkeeping.  A failed task aborts the remaining
    selection and travels back in ``err``; completed rows are still
    reported so the parent re-submits only what is genuinely missing.
    """
    _proc_attach(plane_specs, fault_injector)
    arrays = _PROC_PLANES["arrays"]
    injector: FaultInjector | None = _PROC_PLANES.get("injector")
    resident: dict[int, tuple] = {}
    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):  # parent went away: nothing left to serve
            return
        op = msg[0]
        if op == "stop":
            return
        if op == "register":
            resident[msg[1]] = msg[2]
            continue
        _, seq, epoch, bid, payload = msg
        rows: list[tuple[int, float, float, object]] = []
        err: Exception | None = None
        try:
            for idx, task in _resident_items(resident, bid, payload):
                fn = _TILE_KERNELS.get(task.kernel)
                if fn is None:
                    raise SchedulingError(
                        f"tile kernel {task.kernel!r} is not registered in this worker"
                    )
                if injector is not None:
                    injector.check(idx)
                t0 = time.perf_counter() - epoch
                ret = fn(arrays, task)
                t1 = time.perf_counter() - epoch
                rows.append((idx, t0, t1, ret))
        except Exception as exc:
            err = exc
        try:
            buf = pickle.dumps((seq, wid, rows, err))
        except Exception:  # unpicklable exception: ship its repr instead
            buf = pickle.dumps((seq, wid, rows, SchedulingError(repr(err))))
        try:
            conn.send_bytes(buf)
        except Exception:  # parent pipe gone mid-reply
            return


#: outstanding commands per worker under dynamic/guided parent-fed dispatch
_PREFETCH = 2


class _Worker:
    """Parent-side handle for one persistent worker slot."""

    __slots__ = ("proc", "conn", "wid", "alive", "inflight")

    def __init__(self, proc, conn, wid: int) -> None:
        self.proc = proc
        self.conn = conn
        self.wid = wid
        self.alive = True
        #: FIFO of (send offset from epoch, task indices) per sent command;
        #: replies arrive in command order, so popleft pairs them back up
        self.inflight: deque = deque()


class ProcessBackend:
    """Run tile batches on persistent worker processes over shared planes.

    Usage contract (what the tiled steppers implement):

    1. construct the backend and check :attr:`uses_processes`;
    2. :meth:`bind_planes` the grid buffers — the arrays are copied into
       :mod:`multiprocessing.shared_memory` segments and the returned
       shm-backed replacements must be installed in their place (e.g. via
       :meth:`Grid2D.swap_buffer <repro.easypap.grid.Grid2D.swap_buffer>`);
    3. per iteration, pass a :class:`TaskBatch` whose ``spec`` lists one
       :class:`TileTask` per task; per-task return values come back in
       :attr:`ScheduleResult.returns`;
    4. :meth:`close` when done (also a context manager).

    **Dispatch protocol.**  Each of the ``nworkers`` slots is one forked
    :class:`multiprocessing.Process` running :func:`_worker_main` behind a
    duplex pipe; planes attach once at spawn.  Batches with a stable
    identity become *residents*: a non-dynamic spec batch is registered
    once (its :class:`TileTask` list pickled a single time, keyed by batch
    object identity), and a batch carrying a :class:`BandRule` registers
    the rule's ``(kernel, src, dst, k)`` — after which an iteration ships
    only ``("run", seq, epoch, batch_id, selection)`` where the selection
    is a handful of index spans (plus ``(window, nbands)`` for bands).
    ``seq`` is an epoch tag acting as the barrier generation: the collect
    loop discards replies from earlier attempts, so rebuilt pools can
    never double-account a task.  Batches without a stable identity
    (dynamic spec batches, e.g. frontier tile selections) fall back to
    oneshot commands carrying ``(index, TileTask)`` items.

    Chunks follow :func:`~repro.easypap.schedule.chunk_plan` exactly:
    ``static``/``cyclic`` chunks are pre-assigned to worker slots (chunk
    *k* belongs to worker ``k % nworkers``) and shipped as one command per
    worker; ``dynamic``/``guided`` chunks are parent-fed — each worker
    holds at most :data:`_PREFETCH` outstanding commands and receives the
    next chunk as its replies arrive, which reproduces the shared-queue
    semantics without a contended queue.

    When ``fork`` or shared memory is unavailable the backend degrades to
    a :class:`ThreadBackend` (``uses_processes`` is False and closures run
    in-process); batches without a ``spec`` take the same thread path.

    **Fault tolerance** (the real-hardware mirror of the simulated
    cluster's re-execution story): a worker death mid-batch — surfaced as
    ``BrokenProcessPool`` — does not lose the batch.  Replies already in
    the dead worker's pipe are drained, live workers keep completing their
    commands, then the pool is rebuilt: fresh workers re-attach the
    still-live shared planes by name and **re-register every resident
    batch** before the missing spans are re-submitted; tile kernels are
    idempotent, so re-running one is safe.  Retries follow ``retry``
    (a :class:`~repro.common.resilience.RetryPolicy`); each attempt may be
    bounded by ``task_timeout`` seconds, after which hung workers are
    terminated and the attempt counts as failed.  When retries are
    exhausted, the still-missing tasks run on a thread pool in-process
    (``allow_fallback=True``, the default) or a :class:`SchedulingError`
    naming the unfinished tasks is raised (``allow_fallback=False``).
    Every recovery step is recorded in ``degradation``
    (a :class:`~repro.common.resilience.DegradationLog`) when one is
    supplied.

    **Dispatch metrics.**  Pass ``metrics`` (a
    :class:`repro.obs.metrics.MetricsRegistry`) to count commands and
    serialized bytes per dispatch mode (``easypap_dispatch_commands_total``,
    ``easypap_dispatch_bytes_total``, labelled ``mode=oneshot|resident|
    register``), batches (``easypap_dispatch_batches_total``), and observe
    the command-send-to-first-task delay
    (``easypap_dispatch_queue_wait_seconds``).
    """

    def __init__(
        self,
        nworkers: int,
        policy: str = "static",
        *,
        chunk: int = 1,
        trace: Trace | None = None,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        allow_fallback: bool = True,
        degradation: DegradationLog | None = None,
        fault_injector: FaultInjector | None = None,
        metrics=None,
    ) -> None:
        if nworkers < 1:
            raise ConfigurationError("nworkers must be >= 1")
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError(f"task_timeout must be > 0, got {task_timeout}")
        self.nworkers = nworkers
        self.policy = policy
        self.chunk = chunk
        self.trace = trace
        self.retry = retry if retry is not None else RetryPolicy()
        self.task_timeout = task_timeout
        self.allow_fallback = allow_fallback
        self.degradation = degradation
        self.fault_injector = fault_injector
        self.metrics = metrics
        self._m_commands = self._m_bytes = self._m_batches = self._m_wait = None
        if metrics is not None:
            self._m_commands = metrics.counter(
                "easypap_dispatch_commands_total",
                "commands sent to persistent workers, by dispatch mode",
            )
            self._m_bytes = metrics.counter(
                "easypap_dispatch_bytes_total",
                "serialized command bytes shipped to workers, by dispatch mode",
            )
            self._m_batches = metrics.counter(
                "easypap_dispatch_batches_total",
                "batches dispatched on worker processes (one per iteration)",
            )
            self._m_wait = metrics.histogram(
                "easypap_dispatch_queue_wait_seconds",
                "delay between command send and its first task starting",
                buckets=(1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 1.0),
            )
        self._workers: list[_Worker] | None = None
        self._shm: list = []
        self._planes: list[np.ndarray] = []
        self._plane_specs: list[tuple[str, tuple, str]] = []
        self._seq = 0
        self._next_bid = 0
        #: bid -> registration payload, re-sent to every freshly spawned worker
        self._residents: dict[int, tuple] = {}
        self._spec_bids: "weakref.WeakKeyDictionary[TaskBatch, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._band_bids: dict[tuple, int] = {}
        self._threads: ThreadBackend | None = None
        self._closed = False
        self._reported_thread_degradation = False
        self._degraded = False
        #: True when real worker processes will execute tile specs; False
        #: means every batch degrades to the thread path.
        self.uses_processes = self.available()

    @staticmethod
    def available() -> bool:
        """True when fork + shared memory exist on this host."""
        try:
            from multiprocessing import shared_memory  # noqa: F401
        except ImportError:  # pragma: no cover - always present on CPython/Linux
            return False
        return "fork" in multiprocessing.get_all_start_methods()

    # -- plane management -------------------------------------------------------

    def bind_planes(self, *arrays: np.ndarray) -> list[np.ndarray]:
        """Copy *arrays* into shared memory and (re)start the worker pool.

        Returns shm-backed arrays of identical shape/dtype/contents; the
        caller must use these in place of the originals so parent-side
        writes are visible to the workers.  In fallback mode this is a
        no-op returning the arrays unchanged.
        """
        if self._closed:
            raise ConfigurationError("backend is closed")
        if not self.uses_processes:
            return list(arrays)
        from multiprocessing import shared_memory

        self._release_pool_and_planes()
        specs: list[tuple[str, tuple, str]] = []
        for arr in arrays:
            seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            plane = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            plane[...] = arr
            self._shm.append(seg)
            self._planes.append(plane)
            specs.append((seg.name, arr.shape, arr.dtype.str))
        self._plane_specs = specs
        self._start_pool()
        return list(self._planes)

    def _post(self, wk: _Worker, buf: bytes, *, mode: str) -> None:
        """Ship one pre-pickled command; counts dispatch metrics."""
        wk.conn.send_bytes(buf)
        if self._m_commands is not None:
            self._m_commands.inc(mode=mode)
            self._m_bytes.inc(len(buf), mode=mode)

    def _start_pool(self) -> None:
        """(Re)spawn the persistent workers attached to the current planes.

        Every live resident registration is replayed to the fresh workers
        before any run command can reach them — the crash-recovery
        guarantee that lets resident batches survive pool rebuilds.
        """
        ctx = multiprocessing.get_context("fork")
        workers: list[_Worker] = []
        for wid in range(self.nworkers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, wid, self._plane_specs, self.fault_injector),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            workers.append(_Worker(proc, parent_conn, wid))
        self._workers = workers
        for bid, payload in self._residents.items():
            buf = pickle.dumps(("register", bid, payload))
            for wk in workers:
                self._post(wk, buf, mode="register")

    def _register_resident(self, payload: tuple) -> int:
        """Install a resident registration on every live worker; returns its id."""
        bid = self._next_bid
        self._next_bid += 1
        self._residents[bid] = payload
        buf = pickle.dumps(("register", bid, payload))
        for wk in self._workers or ():
            if wk.alive:
                try:
                    self._post(wk, buf, mode="register")
                except OSError:
                    wk.alive = False
        return bid

    def _resident_for(self, batch: TaskBatch) -> int | None:
        """The resident batch id to dispatch *batch* under (None = oneshot).

        Band-rule batches share one registration per ``(kernel, src, dst,
        k)``; non-dynamic spec batches register their spec list once per
        batch object (weakly keyed, so a dropped batch frees its slot).
        Dynamic spec batches have no stable identity and stay oneshot.
        """
        if batch.bands is not None:
            b = batch.bands
            key = (b.kernel, b.src, b.dst, b.k)
            bid = self._band_bids.get(key)
            if bid is None:
                bid = self._register_resident(("bands", key))
                self._band_bids[key] = bid
            return bid
        if batch.dynamic or not batch.spec:
            return None
        bid = self._spec_bids.get(batch)
        if bid is None:
            bid = self._register_resident(("specs", list(batch.spec)))
            self._spec_bids[batch] = bid
            weakref.finalize(batch, self._residents.pop, bid, None)
        return bid

    # -- lifecycle --------------------------------------------------------------

    def _teardown_pool(self, *, terminate: bool = False) -> None:
        """Shut the workers down without touching the shared planes.

        Never raises: teardown runs on error paths (dead workers, timed-out
        attempts, ``close()`` after a failed ``run``) where a secondary
        exception would mask the original failure.  With ``terminate``,
        worker processes are killed outright so a hung worker cannot stall
        the join.
        """
        workers, self._workers = self._workers, None
        if not workers:
            return
        stop = pickle.dumps(("stop",))
        for wk in workers:
            if terminate or not wk.alive:
                try:
                    wk.proc.terminate()
                except Exception:  # pragma: no cover - already-dead worker
                    pass
            else:
                try:
                    wk.conn.send_bytes(stop)
                except Exception:
                    pass
        for wk in workers:
            try:
                wk.proc.join(timeout=1.0)
                if wk.proc.is_alive():  # ignored the stop command: kill it
                    wk.proc.terminate()
                    wk.proc.join(timeout=1.0)
            except Exception:  # pragma: no cover - pathological process state
                pass
            try:
                wk.conn.close()
            except Exception:  # pragma: no cover - double close
                pass

    def _rebuild_pool(self) -> None:
        """Replace a broken/hung pool; workers re-attach the live planes."""
        self._teardown_pool(terminate=True)
        self._start_pool()

    def _release_pool_and_planes(self) -> None:
        self._teardown_pool(terminate=True)
        # drop our own views before closing, else close() raises BufferError
        self._planes = []
        self._plane_specs = []
        for seg in self._shm:
            try:
                seg.close()
            except BufferError:  # a caller still holds a view; unlink anyway
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
        self._shm = []

    def close(self) -> None:
        """Shut the pool down and release the shared planes.

        Idempotent and exception-safe: callable any number of times, after
        a failed ``run``, and with a broken or hung pool — the shared
        memory segments are always unlinked.  Callers still holding
        shm-backed arrays from :meth:`bind_planes` must replace them with
        private copies *before* closing.
        """
        if self._closed:
            return
        self._closed = True
        self._release_pool_and_planes()

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------------

    def _log_degradation(self, action: str, reason: str, *, attempt: int = 0, **detail) -> None:
        if self.degradation is not None:
            self.degradation.record("ProcessBackend", action, reason, attempt=attempt, **detail)

    def _run_threads(self, batch: TaskBatch, iteration: int, kind: str) -> ScheduleResult:
        if not self._reported_thread_degradation:
            self._reported_thread_degradation = True
            if self._degraded:
                reason = "backend degraded after retry exhaustion"
            elif not self.uses_processes:
                reason = "fork/shared memory unavailable on this host"
            else:
                reason = "batch carries no picklable TileTask spec"
            self._log_degradation("thread-execution", reason)
        if self._threads is None:
            self._threads = ThreadBackend(self.nworkers, trace=self.trace)
        return self._threads.run(batch, iteration=iteration, kind=kind)

    def _describe_missing(self, batch: TaskBatch, missing: set[int], chunks) -> str:
        """Name the unfinished tasks, their tiles, and where they were scheduled."""
        idxs = sorted(missing)
        chunk_of = {i: k for k, ch in enumerate(chunks) for i in ch}
        parts = []
        for i in idxs[:20]:
            ty, tx = batch.tile_coords(i)
            tile = f" tile(ty={ty},tx={tx})" if ty >= 0 else ""
            k = chunk_of.get(i, -1)
            if self.policy in ("static", "cyclic"):
                where = f"chunk {k} on worker {k % self.nworkers}"
            else:
                where = f"chunk {k} (shared queue)"
            parts.append(f"task {i}{tile} [{where}]")
        more = f" (+{len(idxs) - 20} more)" if len(idxs) > 20 else ""
        return (
            f"{len(idxs)} of {len(batch)} tasks did not complete under "
            f"policy={self.policy!r} nworkers={self.nworkers} chunk={self.chunk}: "
            + "; ".join(parts)
            + more
        )

    def _dispatch(
        self,
        batch: TaskBatch,
        chunks,
        missing: set[int],
        epoch: float,
        deadline: Deadline,
        spans,
        returns,
    ) -> Exception | None:
        """Run one attempt of the command/collect protocol for *missing*.

        Chunks keep their original worker assignment (static/cyclic) or
        queue order (dynamic/guided); already-completed tasks are filtered
        out, so a retry re-submits only the spans still missing.  Returns
        the first failure seen (or None).  A dead worker fails only its
        own outstanding commands — replies already in its pipe are
        drained, and live workers keep completing, which is what makes
        re-submitting *only* the missing spans possible.
        """
        bid = self._resident_for(batch)
        self._seq += 1
        seq = self._seq
        mode = "oneshot" if bid is None else "resident"
        failure: Exception | None = None
        outstanding = 0
        pending: deque[list[int]] = deque()
        for wk in self._workers:
            wk.inflight.clear()

        def send(wk: _Worker, idxs: list[int]) -> bool:
            nonlocal outstanding
            if bid is None:
                payload = [(i, batch.spec[i]) for i in idxs]
            elif batch.bands is not None:
                payload = (batch.bands.window, batch.bands.nbands, index_spans(idxs))
            else:
                payload = index_spans(idxs)
            buf = pickle.dumps(("run", seq, epoch, bid, payload))
            try:
                self._post(wk, buf, mode=mode)
            except OSError:
                wk.alive = False
                return False
            wk.inflight.append((time.perf_counter() - epoch, idxs))
            outstanding += 1
            return True

        def recv_one(wk: _Worker) -> bool:
            """Consume one reply from *wk*; False when the pipe is dead."""
            nonlocal failure, outstanding
            try:
                rseq, _rwid, rows, err = pickle.loads(wk.conn.recv_bytes())
            except (EOFError, OSError):
                return False
            if rseq != seq:  # stale reply from a pre-rebuild attempt
                return True
            send_off, _idxs = wk.inflight.popleft()
            outstanding -= 1
            for idx, t0, t1, ret in rows:
                spans[idx] = TaskSpan(idx, wk.wid, t0, t1)
                returns[idx] = ret
                missing.discard(idx)
            if rows and self._m_wait is not None:
                self._m_wait.observe(max(rows[0][1] - send_off, 0.0))
            if err is not None:
                failure = failure or err
            elif pending and failure is None and wk.alive:
                idxs = pending.popleft()
                if not send(wk, idxs):
                    pending.appendleft(idxs)
            return True

        def mark_dead(wk: _Worker) -> None:
            nonlocal failure, outstanding
            # dead first (so the drain cannot feed it more work), then
            # harvest whatever replies the worker managed to send
            wk.alive = False
            try:
                while wk.inflight and wk.conn.poll(0) and recv_one(wk):
                    pass
            except OSError:
                pass
            if wk.inflight:
                outstanding -= len(wk.inflight)
                wk.inflight.clear()
            failure = failure or BrokenProcessPool(
                f"worker {wk.wid} (pid {wk.proc.pid}) died mid-batch"
            )

        # -- ship the attempt's commands ----------------------------------------
        if self.policy in ("static", "cyclic"):
            # fixed assignment: each worker slot gets its chunk list whole
            per_worker: list[list[int]] = [[] for _ in range(self.nworkers)]
            for k, ch in enumerate(chunks):
                per_worker[k % self.nworkers].extend(i for i in ch if i in missing)
            for w, idxs in enumerate(per_worker):
                if not idxs:
                    continue
                wk = self._workers[w]
                if not wk.alive or not send(wk, idxs):
                    failure = failure or BrokenProcessPool(
                        f"worker {w} is gone; its chunks cannot run this attempt"
                    )
        else:
            # dynamic/guided: parent-fed shared queue with bounded prefetch
            for ch in chunks:
                idxs = [i for i in ch if i in missing]
                if idxs:
                    pending.append(idxs)
            for _ in range(_PREFETCH):
                for wk in self._workers:
                    if not pending:
                        break
                    if wk.alive and len(wk.inflight) < _PREFETCH:
                        idxs = pending.popleft()
                        if not send(wk, idxs):
                            pending.appendleft(idxs)

        # -- collect under the epoch-tagged barrier ------------------------------
        while outstanding > 0:
            conns = {wk.conn: wk for wk in self._workers if wk.alive and wk.inflight}
            sentinels = {
                wk.proc.sentinel: wk for wk in self._workers if wk.alive and wk.inflight
            }
            if not conns:  # pragma: no cover - deaths above already drained
                break
            ready = multiprocessing.connection.wait(
                list(conns) + list(sentinels), timeout=deadline.remaining()
            )
            if not ready:
                failure = failure or SchedulingError(
                    f"attempt exceeded task_timeout={self.task_timeout}s"
                )
                break
            for obj in ready:
                wk = conns.get(obj)
                if wk is not None:
                    if wk.alive and wk.inflight and not recv_one(wk):
                        mark_dead(wk)
                else:
                    wk = sentinels[obj]
                    if wk.alive and wk.inflight:  # conn may have handled it already
                        mark_dead(wk)
        if pending:
            # chunks nobody could take (workers died faster than they fed)
            failure = failure or BrokenProcessPool("no live workers left to feed")
        return failure

    def _fallback_to_threads(self, batch: TaskBatch, missing: set[int], spans, returns, epoch):
        """Run the still-missing tasks in-process on a thread pool.

        The parent-side closures operate on the same shm-backed planes the
        workers were mutating, so completing them here preserves the
        batch's results; per-task return values are captured so changed
        flags survive the degradation.
        """
        idxs = sorted(missing)
        captured: dict[int, object] = {}

        def mk(i: int):
            def task() -> None:
                captured[i] = batch.tasks[i]()

            return task

        base = time.perf_counter() - epoch
        result = ThreadBackend(self.nworkers).run(TaskBatch([mk(i) for i in idxs]))
        for s in result.spans:
            orig = idxs[s.task]
            spans[orig] = TaskSpan(orig, s.worker, base + s.start, base + s.end)
            returns[orig] = captured.get(orig)
            missing.discard(orig)

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        """Execute the batch; returns the schedule with per-task returns.

        Survives worker crashes and hangs: missing spans are retried on a
        rebuilt pool per :attr:`retry`, then degrade to the thread path
        (or raise, per :attr:`allow_fallback`).  See the class docstring.
        """
        if self._closed:
            raise ConfigurationError("backend is closed")
        if not self.uses_processes or batch.spec is None:
            return self._run_threads(batch, iteration, kind)
        if self._workers is None:
            raise SchedulingError("bind_planes() must be called before running tile batches")
        n = len(batch)
        chunks = _plan_for(batch, self.nworkers, self.policy, self.chunk)
        epoch = time.perf_counter()
        spans: list[TaskSpan | None] = [None] * n
        returns: list[object] = [None] * n
        missing: set[int] = set(range(n))
        if self._m_batches is not None and n:
            self._m_batches.inc()
        attempt = 1
        while missing:
            deadline = Deadline(self.task_timeout)
            failure = self._dispatch(batch, chunks, missing, epoch, deadline, spans, returns)
            if not missing:
                break
            if failure is None:
                # every future completed yet spans are missing: a worker
                # returned fewer rows than it was handed — a kernel bug,
                # not a crash, so retrying would loop forever
                raise SchedulingError(self._describe_missing(batch, missing, chunks))
            if attempt >= self.retry.max_attempts:
                # leave no half-dead worker writing into the shared planes
                self._teardown_pool(terminate=True)
                if not self.allow_fallback:
                    self._log_degradation(
                        "give-up",
                        f"retries exhausted: {failure}",
                        attempt=attempt,
                        tasks=sorted(missing),
                    )
                    raise SchedulingError(
                        f"retries exhausted ({self.retry.max_attempts} attempts) and "
                        f"fallback disabled: {self._describe_missing(batch, missing, chunks)}"
                    ) from failure
                self._log_degradation(
                    "thread-fallback",
                    f"retries exhausted: {failure}",
                    attempt=attempt,
                    tasks=sorted(missing),
                )
                self._fallback_to_threads(batch, missing, spans, returns, epoch)
                # stay degraded: later batches take the thread path outright
                self.uses_processes = False
                self._degraded = True
                break
            self._log_degradation(
                "pool-rebuild",
                f"{type(failure).__name__}: {failure}",
                attempt=attempt,
                tasks=sorted(missing),
            )
            self.retry.sleep(attempt)
            self._rebuild_pool()
            attempt += 1
        done = [s for s in spans if s is not None]
        if len(done) != n:  # pragma: no cover - all exits above fill or raise
            raise SchedulingError(
                self._describe_missing(batch, {i for i, s in enumerate(spans) if s is None}, chunks)
            )
        result = ScheduleResult(
            policy=self.policy,
            nworkers=self.nworkers,
            chunk=self.chunk,
            spans=done,
            returns=returns,
        )
        _record_spans(done, batch, self.trace, iteration, kind)
        return result


def make_backend(
    name: str,
    nworkers: int = 1,
    *,
    policy: str = "dynamic",
    chunk: int = 1,
    trace: Trace | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    allow_fallback: bool = True,
    degradation: DegradationLog | None = None,
    fault_injector: FaultInjector | None = None,
    metrics=None,
):
    """Factory: ``sequential``, ``simulated``, ``threads``, or ``process``.

    The resilience knobs (``retry``, ``task_timeout``, ``allow_fallback``,
    ``degradation``, ``fault_injector``) and the dispatch ``metrics``
    registry apply to the ``process`` backend — the only one with workers
    that can crash, hang, or receive commands — and are ignored by the
    others.
    """
    if name == "sequential":
        return SequentialBackend(trace=trace)
    if name == "simulated":
        return SimulatedBackend(nworkers, policy, chunk=chunk, trace=trace)
    if name == "threads":
        return ThreadBackend(nworkers, trace=trace)
    if name in ("process", "processes"):
        return ProcessBackend(
            nworkers,
            policy,
            chunk=chunk,
            trace=trace,
            retry=retry,
            task_timeout=task_timeout,
            allow_fallback=allow_fallback,
            degradation=degradation,
            fault_injector=fault_injector,
            metrics=metrics,
        )
    raise ConfigurationError(f"unknown backend {name!r}")
