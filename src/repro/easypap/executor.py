"""Task-execution backends.

A tiled iteration produces a list of independent tile tasks; how they are
*executed* is orthogonal to what they compute.  Three backends cover the
assignment's needs:

* :class:`SequentialBackend` — runs tasks one by one; the reference.
* :class:`SimulatedBackend` — runs tasks (still sequentially: this machine
  has one core and Python a GIL) but *places* them on ``nworkers`` virtual
  workers under an OpenMP-style policy using per-task costs, yielding the
  virtual-time spans from which speedup/efficiency and the Fig. 3 traces
  are computed.  Costs may be supplied (cost model) or measured.
* :class:`ThreadBackend` — a real :class:`concurrent.futures.ThreadPoolExecutor`
  pool, demonstrating that the tasks genuinely are thread-safe (numpy
  releases the GIL for large array ops); wall-clock spans are recorded.

All backends return the executed :class:`~repro.easypap.schedule.TaskSpan`
list and optionally feed a :class:`~repro.easypap.monitor.Trace`.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Sequence

from repro.common.errors import ConfigurationError, SchedulingError
from repro.easypap.monitor import TaskRecord, Trace
from repro.easypap.schedule import ScheduleResult, TaskSpan, chunk_plan, simulate_schedule
from repro.easypap.tiling import Tile

__all__ = ["TaskBatch", "SequentialBackend", "SimulatedBackend", "ThreadBackend", "make_backend"]


class TaskBatch:
    """A batch of independent tasks for one iteration.

    Parameters
    ----------
    tasks:
        Callables taking no arguments (typically closures over a tile).
    tiles:
        Optional parallel list of :class:`Tile` for trace annotation.
    costs:
        Optional virtual cost per task; backends that need costs but do not
        receive them fall back to measuring wall time or to tile area.
    """

    def __init__(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        tiles: Sequence[Tile] | None = None,
        costs: Sequence[float] | None = None,
    ) -> None:
        self.tasks = list(tasks)
        if tiles is not None and len(tiles) != len(self.tasks):
            raise ConfigurationError("tiles and tasks must have equal length")
        if costs is not None and len(costs) != len(self.tasks):
            raise ConfigurationError("costs and tasks must have equal length")
        self.tiles = list(tiles) if tiles is not None else None
        self.costs = [float(c) for c in costs] if costs is not None else None

    def __len__(self) -> int:
        return len(self.tasks)

    def tile_coords(self, i: int) -> tuple[int, int]:
        """The (ty, tx) of task *i*'s tile, or (-1, -1) when untracked."""
        if self.tiles is None:
            return (-1, -1)
        t = self.tiles[i]
        return (t.ty, t.tx)


def _record_spans(
    spans: Sequence[TaskSpan],
    batch: TaskBatch,
    trace: Trace | None,
    iteration: int,
    kind: str,
) -> None:
    if trace is None:
        return
    for s in spans:
        ty, tx = batch.tile_coords(s.task)
        trace.add(
            TaskRecord(
                iteration=iteration,
                task=s.task,
                worker=s.worker,
                start=s.start,
                end=s.end,
                kind=kind,
                tile_ty=ty,
                tile_tx=tx,
            )
        )


class SequentialBackend:
    """Execute tasks in index order on a single (virtual) worker."""

    nworkers = 1

    def __init__(self, *, trace: Trace | None = None) -> None:
        self.trace = trace

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        """Execute the batch; returns the resulting schedule placement."""
        spans: list[TaskSpan] = []
        t = 0.0
        for i, task in enumerate(batch.tasks):
            t0 = time.perf_counter()
            ret = task()
            dt = time.perf_counter() - t0
            if batch.costs is not None:
                cost = batch.costs[i]
            elif isinstance(ret, (int, float)) and not isinstance(ret, bool):
                cost = float(ret)
            else:
                cost = dt
            spans.append(TaskSpan(i, 0, t, t + cost))
            t += cost
        result = ScheduleResult(policy="sequential", nworkers=1, chunk=1, spans=spans)
        _record_spans(spans, batch, self.trace, iteration, kind)
        return result


class SimulatedBackend:
    """Execute tasks for real, place them on virtual workers for timing.

    The placement uses :func:`~repro.easypap.schedule.simulate_schedule`;
    tasks are *executed* in the order the scheduling policy consumes them,
    so dynamic-policy runs really do interleave chunks the way a work
    queue would (this matters for the in-place asynchronous sandpile, whose
    intermediate states depend on execution order even though the fixpoint
    does not).
    """

    def __init__(
        self,
        nworkers: int,
        policy: str = "dynamic",
        *,
        chunk: int = 1,
        trace: Trace | None = None,
        measure: bool = False,
    ) -> None:
        if nworkers < 1:
            raise ConfigurationError("nworkers must be >= 1")
        self.nworkers = nworkers
        self.policy = policy
        self.chunk = chunk
        self.trace = trace
        #: when True and the batch has no costs, wall-time is measured per task
        self.measure = measure

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        # Execute in policy chunk order first (and measure if requested)...
        """Execute the batch; returns the resulting schedule placement."""
        order = [i for ch in chunk_plan(len(batch), self.nworkers, self.policy, self.chunk) for i in ch]
        measured: list[float] = [0.0] * len(batch)
        returned: list[object] = [None] * len(batch)
        for i in order:
            t0 = time.perf_counter()
            returned[i] = batch.tasks[i]()
            measured[i] = time.perf_counter() - t0
        # ...then place on virtual workers using, in order of preference:
        # supplied costs, measured wall times, numeric task return values
        # (deterministic work units), or a uniform unit cost.
        if batch.costs is not None:
            costs = batch.costs
        elif self.measure:
            costs = measured
        else:
            costs = [
                float(r) if isinstance(r, (int, float)) and not isinstance(r, bool) else 1.0
                for r in returned
            ]
        result = simulate_schedule(costs, self.nworkers, self.policy, chunk=self.chunk)
        _record_spans(result.spans, batch, self.trace, iteration, kind)
        return result


class ThreadBackend:
    """Run tasks on a real thread pool; spans are wall-clock measurements.

    Only valid for batches whose tasks are mutually independent (the
    synchronous sandpile variant, or one colour wave of the multi-wave
    asynchronous variant).
    """

    def __init__(self, nworkers: int, *, trace: Trace | None = None) -> None:
        if nworkers < 1:
            raise ConfigurationError("nworkers must be >= 1")
        self.nworkers = nworkers
        self.trace = trace

    def run(self, batch: TaskBatch, *, iteration: int = 0, kind: str = "compute") -> ScheduleResult:
        """Execute the batch; returns the resulting schedule placement."""
        spans: list[TaskSpan | None] = [None] * len(batch)
        epoch = time.perf_counter()
        worker_ids: dict[int, int] = {}

        def call(i: int) -> None:
            import threading

            tid = threading.get_ident()
            w = worker_ids.setdefault(tid, len(worker_ids))
            t0 = time.perf_counter() - epoch
            batch.tasks[i]()
            t1 = time.perf_counter() - epoch
            spans[i] = TaskSpan(i, w, t0, t1)

        with ThreadPoolExecutor(max_workers=self.nworkers) as pool:
            list(pool.map(call, range(len(batch))))

        done = [s for s in spans if s is not None]
        if len(done) != len(batch):
            raise SchedulingError("some tasks did not complete")
        result = ScheduleResult(policy="threads", nworkers=self.nworkers, chunk=1, spans=done)
        _record_spans(done, batch, self.trace, iteration, kind)
        return result


def make_backend(
    name: str,
    nworkers: int = 1,
    *,
    policy: str = "dynamic",
    chunk: int = 1,
    trace: Trace | None = None,
):
    """Factory: ``sequential``, ``simulated``, or ``threads``."""
    if name == "sequential":
        return SequentialBackend(trace=trace)
    if name == "simulated":
        return SimulatedBackend(nworkers, policy, chunk=chunk, trace=trace)
    if name == "threads":
        return ThreadBackend(nworkers, trace=trace)
    raise ConfigurationError(f"unknown backend {name!r}")
