"""Rendering helpers connecting simulation state to images.

EASYPAP's interactive SDL window is replaced by functions producing RGB
numpy arrays (writable as PPM via :func:`repro.common.colors.write_ppm`):

* :func:`render_grid` — the sandpile state with the Fig. 1 palette;
* :func:`render_tile_owners` — the Fig. 4 view: tiles coloured by the
  worker that computed them, black for skipped (stable) tiles, with GPU
  workers in a distinct hue band;
* :func:`upscale` — nearest-neighbour zoom so small grids remain visible.
"""

from __future__ import annotations

import numpy as np

from repro.common.colors import sandpile_to_rgb

__all__ = ["render_grid", "render_tile_owners", "upscale", "WORKER_PALETTE"]

#: Distinct, readable worker colours (cycled when there are more workers).
WORKER_PALETTE: tuple[tuple[int, int, int], ...] = (
    (230, 60, 60),
    (60, 160, 230),
    (90, 200, 90),
    (240, 180, 40),
    (180, 100, 240),
    (60, 220, 200),
    (240, 120, 190),
    (160, 160, 80),
)

#: Hue used for GPU workers in hybrid runs (bright orange family).
GPU_COLOR = (255, 140, 0)


def render_grid(grid) -> np.ndarray:
    """Render a :class:`~repro.easypap.grid.Grid2D` (or raw 2D array) to RGB."""
    interior = grid.interior if hasattr(grid, "interior") else np.asarray(grid)
    return sandpile_to_rgb(interior)


def render_tile_owners(
    owners: np.ndarray,
    *,
    tile_pixels: int = 8,
    gpu_workers: frozenset[int] | set[int] = frozenset(),
) -> np.ndarray:
    """Render a tile-owner map (from :meth:`Trace.tile_owner_map`) to RGB.

    ``owners[ty, tx] == -1`` means the tile was not computed (stable under
    lazy evaluation) and is drawn black, exactly as in Fig. 4.  Workers in
    *gpu_workers* are drawn in the GPU hue to visualise the CPU/GPU split.
    """
    o = np.asarray(owners)
    if o.ndim != 2:
        raise ValueError("owners must be a 2D array")
    h, w = o.shape
    img = np.zeros((h * tile_pixels, w * tile_pixels, 3), dtype=np.uint8)
    for ty in range(h):
        for tx in range(w):
            worker = int(o[ty, tx])
            if worker < 0:
                colour = (0, 0, 0)
            elif worker in gpu_workers:
                # shade GPU hue slightly per device index for multi-GPU runs
                shade = 200 + (worker % 3) * 18
                colour = (min(shade + 55, 255), 140, 0)
            else:
                colour = WORKER_PALETTE[worker % len(WORKER_PALETTE)]
            ys = slice(ty * tile_pixels, (ty + 1) * tile_pixels)
            xs = slice(tx * tile_pixels, (tx + 1) * tile_pixels)
            img[ys, xs] = colour
    return img


def upscale(image: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upscaling of an RGB image by an integer factor."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return np.repeat(np.repeat(image, factor, axis=0), factor, axis=1)
