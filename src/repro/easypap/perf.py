"""Performance-measurement campaigns (EASYPAP's "performance graph plot tools").

EASYPAP ships tooling to sweep a kernel over thread counts / tile sizes /
policies and plot the resulting curves; students build their reports from
those plots.  This module is the data side of that tooling: a
:class:`PerfCampaign` runs a stepper factory over a parameter grid,
collects per-run metrics (wall time, iterations, virtual makespan when a
simulated backend is used), and produces speedup/efficiency series plus a
rendered table — everything a report needs short of the actual pixels.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.tables import Table

__all__ = ["PerfPoint", "PerfCampaign", "speedup_series"]


@dataclass(frozen=True)
class PerfPoint:
    """One measured run of one parameter combination."""

    params: tuple[tuple[str, object], ...]
    wall_seconds: float
    iterations: int
    extras: tuple[tuple[str, float], ...] = ()

    def param(self, name: str):
        """Value of one swept parameter for this point."""
        for k, v in self.params:
            if k == name:
                return v
        raise KeyError(name)

    def extra(self, name: str) -> float:
        """Value of one collected metric for this point."""
        for k, v in self.extras:
            if k == name:
                return v
        raise KeyError(name)


@dataclass
class PerfCampaign:
    """Run a ``setup -> stepper`` factory over a parameter grid.

    Parameters
    ----------
    factory:
        ``factory(**params) -> stepper`` where the stepper is a nullary
        callable returning False at the fixpoint (the convention used by
        every stepper in :mod:`repro.sandpile`).  The factory must build a
        *fresh* problem instance each call, so runs are independent.
    grid:
        ``{param_name: [values...]}``; the campaign runs the full product.
    metrics:
        Optional ``{name: fn(stepper) -> float}`` evaluated after each run
        (e.g. lazy skip fraction, virtual time).
    """

    factory: Callable[..., Callable[[], bool]]
    grid: dict[str, list] = field(default_factory=dict)
    metrics: dict[str, Callable] = field(default_factory=dict)
    max_iterations: int = 10**7
    points: list[PerfPoint] = field(default_factory=list)

    def run(self) -> list[PerfPoint]:
        """Execute the campaign; returns (and stores) all points."""
        names = sorted(self.grid)
        if not names:
            raise ConfigurationError("empty parameter grid")
        for values in itertools.product(*(self.grid[n] for n in names)):
            params = dict(zip(names, values))
            stepper = self.factory(**params)
            t0 = time.perf_counter()
            iterations = 0
            for _ in range(self.max_iterations):
                if not stepper():
                    break
                iterations += 1
            else:
                raise ConfigurationError(f"no fixpoint for params {params}")
            wall = time.perf_counter() - t0
            extras = tuple((k, float(fn(stepper))) for k, fn in sorted(self.metrics.items()))
            self.points.append(
                PerfPoint(
                    params=tuple(sorted(params.items())),
                    wall_seconds=wall,
                    iterations=iterations,
                    extras=extras,
                )
            )
        return self.points

    # -- views -------------------------------------------------------------------

    def series(self, x_param: str, y: str = "wall_seconds", **fixed) -> list[tuple[object, float]]:
        """Extract an ``(x, y)`` series with the other params fixed.

        *y* is ``wall_seconds``, ``iterations``, or the name of a metric.
        """
        out = []
        for p in self.points:
            if any(p.param(k) != v for k, v in fixed.items()):
                continue
            if y == "wall_seconds":
                val = p.wall_seconds
            elif y == "iterations":
                val = float(p.iterations)
            else:
                val = p.extra(y)
            out.append((p.param(x_param), val))
        out.sort(key=lambda t: t[0])
        return out

    def table(self, title: str = "performance campaign") -> str:
        """All points as an aligned table."""
        if not self.points:
            return "<no points>"
        param_names = [k for k, _ in self.points[0].params]
        extra_names = [k for k, _ in self.points[0].extras]
        t = Table([*param_names, "wall s", "iterations", *extra_names], title=title)
        for p in self.points:
            row = [v for _, v in p.params] + [p.wall_seconds, p.iterations]
            row += [v for _, v in p.extras]
            t.add_row(row)
        return t.render()


def speedup_series(points: list[tuple[object, float]]) -> list[tuple[object, float]]:
    """Convert a (worker-count, time) series into (worker-count, speedup).

    The baseline is the first point's time (usually 1 worker).
    """
    if not points:
        return []
    base = points[0][1]
    if base <= 0:
        raise ConfigurationError("non-positive baseline time")
    return [(x, base / t if t > 0 else float("inf")) for x, t in points]
