"""Kernel/variant registry.

EASYPAP's central idea is that a *kernel* (e.g. ``sandpile``) comes in many
*variants* (``seq``, ``omp``, ``lazy``, ``vec``, ``ocl``...) selectable from
the command line, so students "just add a few lines of code, compile, and it
is ready for command line testing".  This module reproduces that workflow:
variants register themselves with :func:`register_variant` and callers
retrieve them by ``(kernel, variant)`` name through :func:`get_variant`.

A variant is any callable ``fn(grid, **options) -> StepResult``-producing
iteration function; the registry does not constrain the signature beyond
callability, it only provides discovery and error messages listing what is
available (matching EASYPAP's helpful CLI behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import KernelError

__all__ = ["VariantInfo", "KernelRegistry", "REGISTRY", "register_variant", "get_variant"]


@dataclass(frozen=True)
class VariantInfo:
    """Metadata attached to a registered kernel variant."""

    kernel: str
    name: str
    fn: Callable
    description: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    @property
    def qualified_name(self) -> str:
        """The 'kernel/variant' display name."""
        return f"{self.kernel}/{self.name}"


class KernelRegistry:
    """Maps ``(kernel, variant)`` names to callables."""

    def __init__(self) -> None:
        self._variants: dict[tuple[str, str], VariantInfo] = {}

    def register(
        self,
        kernel: str,
        name: str,
        fn: Callable,
        *,
        description: str = "",
        tags: tuple[str, ...] = (),
        overwrite: bool = False,
    ) -> VariantInfo:
        """Register a variant callable under (kernel, name)."""
        key = (kernel, name)
        if key in self._variants and not overwrite:
            raise KernelError(f"variant {kernel}/{name} already registered")
        info = VariantInfo(kernel, name, fn, description, tuple(tags))
        self._variants[key] = info
        return info

    def get(self, kernel: str, name: str) -> VariantInfo:
        """Look up a variant; raises KernelError with the available list."""
        try:
            return self._variants[(kernel, name)]
        except KeyError:
            avail = ", ".join(sorted(self.variants(kernel))) or "<none>"
            raise KernelError(
                f"unknown variant {name!r} for kernel {kernel!r}; available: {avail}"
            ) from None

    def kernels(self) -> list[str]:
        """Sorted list of kernel names with at least one variant."""
        return sorted({k for k, _ in self._variants})

    def variants(self, kernel: str) -> list[str]:
        """Sorted variant names registered for *kernel*."""
        return sorted(name for k, name in self._variants if k == kernel)

    def all_variants(self) -> list[VariantInfo]:
        """Every registered variant, sorted by (kernel, name)."""
        return [self._variants[k] for k in sorted(self._variants)]

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._variants

    def __len__(self) -> int:
        return len(self._variants)


#: Process-wide default registry, filled by ``repro.sandpile`` on import.
REGISTRY = KernelRegistry()


def register_variant(
    kernel: str,
    name: str,
    *,
    description: str = "",
    tags: tuple[str, ...] = (),
    registry: KernelRegistry | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator form of :meth:`KernelRegistry.register`.

    >>> @register_variant("sandpile", "seq", description="reference loop")
    ... def step(grid): ...
    """

    def deco(fn: Callable) -> Callable:
        # `is not None`, not truthiness: an empty registry is falsy (len 0)
        target = registry if registry is not None else REGISTRY
        target.register(kernel, name, fn, description=description, tags=tags)
        return fn

    return deco


def get_variant(kernel: str, name: str, *, registry: KernelRegistry | None = None) -> VariantInfo:
    """Look up a variant in the given (default: global) registry."""
    target = registry if registry is not None else REGISTRY
    return target.get(kernel, name)
