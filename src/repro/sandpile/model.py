"""Initial sandpile configurations.

The Bak-Tang-Wiesenfeld Abelian sandpile [Bak, Tang, Wiesenfeld 1988] is an
``N x M`` 4-connected cellular automaton whose border cells feed a sink.
Cells holding >= 4 grains are *unstable* and topple, giving ``grains // 4``
to each of their four neighbours and keeping ``grains % 4``.

This module builds the initial configurations used throughout the paper:

* :func:`center_pile` — Fig. 1a: all grains in one centre cell (25 000
  grains on 128x128 in the paper);
* :func:`uniform` — Fig. 1b: the same count everywhere (4 grains per cell);
* :func:`sparse_random` — the "sparse configurations" whose load imbalance
  the tiling/scheduling experiments of Fig. 3 investigate: a few heavy
  random piles on an otherwise empty grid;
* :func:`random_uniform` — i.i.d. random grains, handy for property tests.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.easypap.grid import Grid2D

__all__ = ["center_pile", "uniform", "sparse_random", "random_uniform", "max_stable"]


def center_pile(height: int, width: int, grains: int = 25_000) -> Grid2D:
    """All *grains* stacked in the single centre cell (Fig. 1a)."""
    if grains < 0:
        raise ConfigurationError("grain count cannot be negative")
    g = Grid2D(height, width)
    g.interior[height // 2, width // 2] = grains
    return g


def uniform(height: int, width: int, grains: int = 4) -> Grid2D:
    """Every interior cell starts with *grains* grains (Fig. 1b uses 4)."""
    if grains < 0:
        raise ConfigurationError("grain count cannot be negative")
    g = Grid2D(height, width)
    g.interior[...] = grains
    return g


def max_stable(height: int, width: int) -> Grid2D:
    """The maximal stable configuration: 3 grains everywhere.

    Used by :mod:`repro.sandpile.theory` to compute the identity element of
    the sandpile group.
    """
    return uniform(height, width, 3)


def sparse_random(
    height: int,
    width: int,
    *,
    n_piles: int = 32,
    pile_grains: int = 4_096,
    seed: int | np.random.Generator | None = 0,
) -> Grid2D:
    """A few tall piles at random positions on an empty grid.

    This is the irregular workload of the scheduling experiments: most
    tiles stay stable forever while activity swirls around the piles,
    producing exactly the load imbalance Fig. 3 visualises.
    """
    if n_piles < 0 or pile_grains < 0:
        raise ConfigurationError("pile count and size cannot be negative")
    rng = make_rng(seed)
    g = Grid2D(height, width)
    if n_piles == 0:
        return g
    ys = rng.integers(0, height, size=n_piles)
    xs = rng.integers(0, width, size=n_piles)
    # += via np.add.at so coincident piles stack instead of overwriting
    np.add.at(g.interior, (ys, xs), pile_grains)
    return g


def random_uniform(
    height: int,
    width: int,
    *,
    max_grains: int = 8,
    seed: int | np.random.Generator | None = 0,
) -> Grid2D:
    """I.i.d. uniform random grains in ``[0, max_grains]`` per cell."""
    if max_grains < 0:
        raise ConfigurationError("max_grains cannot be negative")
    rng = make_rng(seed)
    g = Grid2D(height, width)
    g.interior[...] = rng.integers(0, max_grains + 1, size=(height, width))
    return g
