"""Simulated GPU execution of the sandpile (assignment 3's OpenCL part).

No GPU exists in this environment, so the device is *modelled*: a
:class:`DeviceModel` charges a fixed per-launch overhead plus per-cell
throughput much higher than the CPU's.  The compute itself runs as numpy
whole-region updates — semantically exactly what the OpenCL kernel does —
so all correctness properties hold while the virtual clock exhibits the
GPU trade-off students must discover: great throughput, painful latency,
hence small/sparse workloads belong on the CPU.

The ``lazy`` device stepper reproduces the student extension called out in
the paper's feedback section ("some had designed a lazy GPU
implementation"): it shrinks each launch to the bounding box of the active
region (dilated by one cell, since grains move one cell per iteration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.easypap.grid import Grid2D

__all__ = ["DeviceModel", "sync_step_region", "GpuStepper", "LazyGpuStepper"]


@dataclass(frozen=True)
class DeviceModel:
    """Virtual-time cost model of an accelerator.

    Defaults give the device ~20x the CPU's per-cell throughput with a
    50 us launch overhead — the classic regime where a 2048^2 dense grid
    flies and a 64^2 grid is launch-bound.
    """

    launch_overhead: float = 50e-6
    cell_rate: float = 2e10  # cells per virtual second
    transfer_rate: float = 1e10  # bytes per virtual second (host <-> device)

    def launch_cost(self, cells: int) -> float:
        """Virtual seconds for one kernel launch over *cells* cells."""
        if cells < 0:
            raise ValueError("cell count cannot be negative")
        return self.launch_overhead + cells / self.cell_rate

    def transfer_cost(self, nbytes: int) -> float:
        """Virtual seconds to move *nbytes* across the PCIe link."""
        return nbytes / self.transfer_rate


def sync_step_region(grid: Grid2D, y0: int, y1: int, x0: int, x1: int) -> bool:
    """Synchronous update restricted to interior region ``[y0,y1) x [x0,x1)``.

    Cells outside the region are guaranteed unchanged *provided* every cell
    that could topple lies strictly inside the region (callers dilate their
    active bounding box by one cell to ensure this).  Returns True when any
    region cell changed.
    """
    if not (0 <= y0 <= y1 <= grid.height and 0 <= x0 <= x1 <= grid.width):
        raise ValueError(f"region [{y0}:{y1}) x [{x0}:{x1}) outside grid {grid.shape}")
    if y0 == y1 or x0 == x1:
        return False
    d = grid.data
    ys = slice(y0 + 1, y1 + 1)
    xs = slice(x0 + 1, x1 + 1)
    centre = d[ys, xs]
    new = (
        (centre & 3)
        + (d[ys, x0:x1] >> 2)
        + (d[ys, x0 + 2 : x1 + 2] >> 2)
        + (d[y0:y1, xs] >> 2)
        + (d[y0 + 2 : y1 + 2, xs] >> 2)
    )
    changed = bool((new != centre).any())
    if changed:
        lost = int(centre.sum()) - int(new.sum())
        d[ys, xs] = new
        grid.sink_absorbed += lost
    grid.drain_sink()
    return changed


class GpuStepper:
    """Whole-grid device stepper: one kernel launch per iteration."""

    def __init__(self, grid: Grid2D, device: DeviceModel | None = None) -> None:
        self.grid = grid
        self.device = device or DeviceModel()
        self.iterations = 0
        #: accumulated virtual device time
        self.virtual_time = 0.0
        self.launches = 0
        self.cells_computed = 0

    def __call__(self) -> bool:
        h, w = self.grid.shape
        changed = sync_step_region(self.grid, 0, h, 0, w)
        cells = h * w
        self.virtual_time += self.device.launch_cost(cells)
        self.launches += 1
        self.cells_computed += cells
        self.iterations += 1
        return changed


class LazyGpuStepper:
    """Device stepper launching only over the active bounding box.

    The active region is the set of unstable cells dilated by one cell;
    everything outside is provably a fixpoint of the synchronous rule, so
    restricting the launch is exact.
    """

    def __init__(self, grid: Grid2D, device: DeviceModel | None = None) -> None:
        self.grid = grid
        self.device = device or DeviceModel()
        self.iterations = 0
        self.virtual_time = 0.0
        self.launches = 0
        self.cells_computed = 0

    def _active_bbox(self) -> tuple[int, int, int, int] | None:
        unstable = self.grid.interior >= 4
        if not unstable.any():
            return None
        rows = np.flatnonzero(unstable.any(axis=1))
        cols = np.flatnonzero(unstable.any(axis=0))
        h, w = self.grid.shape
        return (
            max(int(rows[0]) - 1, 0),
            min(int(rows[-1]) + 2, h),
            max(int(cols[0]) - 1, 0),
            min(int(cols[-1]) + 2, w),
        )

    def __call__(self) -> bool:
        bbox = self._active_bbox()
        if bbox is None:
            return False
        y0, y1, x0, x1 = bbox
        changed = sync_step_region(self.grid, y0, y1, x0, x1)
        cells = (y1 - y0) * (x1 - x0)
        # the device still scans the whole grid for the reduction that finds
        # the bbox, but at register speed; charge a tenth of a full pass
        scan_cells = self.grid.height * self.grid.width // 10
        self.virtual_time += self.device.launch_cost(cells + scan_cells)
        self.launches += 1
        self.cells_computed += cells
        self.iterations += 1
        return changed
