"""Simulation driver: run any sandpile variant to its stable fixpoint.

This module plays EASYPAP's command-line role: every kernel variant of the
four assignments is registered under the ``sandpile`` kernel (synchronous
family) or ``asandpile`` (asynchronous family, the paper's ``asandPile``),
and :func:`run_to_fixpoint` selects one by name, drives it until the grid
is stable, and reports statistics.

Registered variants
-------------------
``sandpile``  : ``seq`` (scalar reference), ``vec`` (whole-grid numpy),
``frontier`` (bounding-box stepping over the active region), ``tiled``,
``lazy``, ``omp`` (tiled + scheduling policy; pick the executor with
``backend="simulated"|"threads"|"process"|"sequential"``), ``pfrontier``
(frontier-aware dynamic chunk plans on real process workers), ``split``
(inner/outer SIMD split).

``asandpile`` : ``seq``, ``vec`` (sweep), ``frontier``, ``tiled``,
``lazy``, ``omp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.resilience import DegradationLog, FaultInjector, RetryPolicy
from repro.easypap.executor import SequentialBackend, make_backend
from repro.easypap.grid import Grid2D
from repro.easypap.kernel import get_variant, register_variant
from repro.easypap.monitor import Trace
from repro.sandpile.omp import TiledAsyncStepper, TiledSyncStepper
from repro.sandpile.pfrontier import ParallelFrontierStepper
from repro.sandpile.reference import async_step_reference, sync_step_reference
from repro.sandpile.vectorized import (
    AsyncVecStepper,
    FrontierAsyncStepper,
    FrontierSyncStepper,
    SplitSyncStepper,
    SyncVecStepper,
)

__all__ = ["RunResult", "run_to_fixpoint", "make_stepper"]


@dataclass
class RunResult:
    """Outcome of driving a variant to the stable fixpoint."""

    kernel: str
    variant: str
    iterations: int
    final_grid: Grid2D
    tiles_computed: int = 0
    tiles_skipped: int = 0
    trace: Trace | None = None
    extras: dict = field(default_factory=dict)

    @property
    def skip_fraction(self) -> float:
        """Fraction of tile visits avoided by lazy evaluation."""
        total = self.tiles_computed + self.tiles_skipped
        return self.tiles_skipped / total if total else 0.0


def _make_backend(
    name: str,
    nworkers: int,
    policy: str,
    chunk: int,
    trace: Trace | None,
    *,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    allow_fallback: bool = True,
    degradation: DegradationLog | None = None,
    fault_injector: FaultInjector | None = None,
    metrics=None,
):
    # thin alias over the executor factory: "sequential", "simulated",
    # "threads", or "process" (real worker processes over shared memory);
    # the resilience knobs only matter for the process backend
    return make_backend(
        name,
        nworkers,
        policy=policy,
        chunk=chunk,
        trace=trace,
        retry=retry,
        task_timeout=task_timeout,
        allow_fallback=allow_fallback,
        degradation=degradation,
        fault_injector=fault_injector,
        metrics=metrics,
    )


# -- variant factories --------------------------------------------------------
#
# Each factory takes (grid, **options) and returns a nullary stepper callable
# that performs one iteration and returns whether anything changed.


@register_variant("sandpile", "seq", description="scalar reference loops (Fig. 2 sync)")
def _sandpile_seq(grid: Grid2D, **_opts):
    return lambda: sync_step_reference(grid)


@register_variant("sandpile", "vec", description="whole-grid numpy synchronous step")
def _sandpile_vec(grid: Grid2D, **_opts):
    return SyncVecStepper(grid)


@register_variant(
    "sandpile", "frontier", description="bounding-box sync stepping over the active frontier"
)
def _sandpile_frontier(grid: Grid2D, **_opts):
    return FrontierSyncStepper(grid)


@register_variant("sandpile", "split", description="inner/outer tile split (SIMD lesson)")
def _sandpile_split(grid: Grid2D, *, tile_size: int = 32, **_opts):
    return SplitSyncStepper(grid, tile_size)


@register_variant("sandpile", "tiled", description="tiled synchronous, sequential tiles")
def _sandpile_tiled(grid: Grid2D, *, tile_size: int = 32, trace: Trace | None = None, **_opts):
    return TiledSyncStepper(grid, tile_size, backend=SequentialBackend(trace=trace))


@register_variant("sandpile", "lazy", description="tiled synchronous + lazy tile skipping")
def _sandpile_lazy(grid: Grid2D, *, tile_size: int = 32, trace: Trace | None = None, **_opts):
    return TiledSyncStepper(grid, tile_size, backend=SequentialBackend(trace=trace), lazy=True)


@register_variant("sandpile", "omp", description="tiled synchronous on virtual workers")
def _sandpile_omp(
    grid: Grid2D,
    *,
    tile_size: int = 32,
    nworkers: int = 4,
    policy: str = "dynamic",
    chunk: int = 1,
    backend: str = "simulated",
    lazy: bool = False,
    trace: Trace | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    allow_fallback: bool = True,
    degradation: DegradationLog | None = None,
    fault_injector: FaultInjector | None = None,
    **_opts,
):
    be = _make_backend(
        backend, nworkers, policy, chunk, trace,
        retry=retry, task_timeout=task_timeout,
        allow_fallback=allow_fallback, degradation=degradation,
        fault_injector=fault_injector,
    )
    return TiledSyncStepper(grid, tile_size, backend=be, lazy=lazy)


@register_variant(
    "sandpile",
    "pfrontier",
    description="frontier-aware dynamic chunk plans on real workers",
)
def _sandpile_pfrontier(
    grid: Grid2D,
    *,
    tile_size: int = 32,
    nworkers: int = 4,
    policy: str = "dynamic",
    chunk: int = 1,
    backend: str = "process",
    use_compiled: bool = False,
    k: int = 1,
    nbands: int | None = None,
    trace: Trace | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    allow_fallback: bool = True,
    degradation: DegradationLog | None = None,
    fault_injector: FaultInjector | None = None,
    metrics=None,
    **_opts,
):
    be = _make_backend(
        backend, nworkers, policy, chunk, trace,
        retry=retry, task_timeout=task_timeout,
        allow_fallback=allow_fallback, degradation=degradation,
        fault_injector=fault_injector, metrics=metrics,
    )
    return ParallelFrontierStepper(
        grid, tile_size, backend=be, use_compiled=use_compiled, k=k, nbands=nbands
    )


# The three cell-granular async sweeps are tagged racy-by-design: adjacent
# cells read-modify-write each other on one plane, so a parallel schedule
# of their units has true conflicts.  They are still correct *sequentially*
# (and tolerably so in parallel) only because the sandpile is Abelian.  The
# analysis certifier (repro.analysis.variants) requires the static verdict
# to MATCH this tag — the whitelist is checked, not just ignored.
@register_variant(
    "asandpile",
    "seq",
    description="scalar reference in-place sweep (Fig. 2 async)",
    tags=("racy-by-design",),
)
def _asandpile_seq(grid: Grid2D, *, order: str = "raster", **_opts):
    return lambda: async_step_reference(grid, order=order)


@register_variant(
    "asandpile",
    "vec",
    description="vectorised topple-all sweep",
    tags=("racy-by-design",),
)
def _asandpile_vec(grid: Grid2D, **_opts):
    return AsyncVecStepper(grid)


@register_variant(
    "asandpile",
    "frontier",
    description="bounding-box topple sweeps over the active frontier",
    tags=("racy-by-design",),
)
def _asandpile_frontier(grid: Grid2D, **_opts):
    return FrontierAsyncStepper(grid)


@register_variant("asandpile", "tiled", description="tile-local relaxation, sequential tiles")
def _asandpile_tiled(grid: Grid2D, *, tile_size: int = 32, trace: Trace | None = None, **_opts):
    return TiledAsyncStepper(grid, tile_size, backend=SequentialBackend(trace=trace))


@register_variant("asandpile", "lazy", description="tile-local relaxation + lazy skipping")
def _asandpile_lazy(grid: Grid2D, *, tile_size: int = 32, trace: Trace | None = None, **_opts):
    return TiledAsyncStepper(grid, tile_size, backend=SequentialBackend(trace=trace), lazy=True)


@register_variant("asandpile", "omp", description="multi-wave tiles on virtual workers")
def _asandpile_omp(
    grid: Grid2D,
    *,
    tile_size: int = 32,
    nworkers: int = 4,
    policy: str = "dynamic",
    chunk: int = 1,
    backend: str = "simulated",
    lazy: bool = True,
    trace: Trace | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    allow_fallback: bool = True,
    degradation: DegradationLog | None = None,
    fault_injector: FaultInjector | None = None,
    **_opts,
):
    be = _make_backend(
        backend, nworkers, policy, chunk, trace,
        retry=retry, task_timeout=task_timeout,
        allow_fallback=allow_fallback, degradation=degradation,
        fault_injector=fault_injector,
    )
    return TiledAsyncStepper(grid, tile_size, backend=be, lazy=lazy)


# -- driver ---------------------------------------------------------------------


def make_stepper(grid: Grid2D, kernel: str = "sandpile", variant: str = "vec", **options):
    """Instantiate the stepper for ``kernel/variant`` on *grid*."""
    info = get_variant(kernel, variant)
    return info.fn(grid, **options)


def run_to_fixpoint(
    grid: Grid2D,
    kernel: str = "sandpile",
    variant: str = "vec",
    *,
    max_iterations: int = 10**7,
    trace: Trace | None = None,
    obs=None,
    **options,
) -> RunResult:
    """Drive ``kernel/variant`` on *grid* until stable; return statistics.

    The grid is modified in place; it is also carried in the result as
    ``final_grid`` for convenience.  Additional *options* are passed to the
    variant factory (``tile_size``, ``nworkers``, ``policy``, ``chunk``,
    ``backend``, ``lazy``...).

    *obs* (a :class:`repro.obs.Tracer`) records one wall-clock span per
    iteration under the ``easypap`` track group.  A falsy tracer (None or
    :class:`repro.obs.NullTracer`) keeps the untraced fast loop — the
    hot-path guard the overhead benchmark holds to <=5%.
    """
    stepper = make_stepper(grid, kernel, variant, trace=trace, **options)
    iterations = 0
    try:
        if obs:
            for _ in range(max_iterations):
                with obs.span(
                    f"iteration {iterations}",
                    cat="iteration",
                    pid="easypap",
                    tid="driver",
                ) as span_args:
                    span_args["iteration"] = iterations
                    span_args["kernel"] = kernel
                    span_args["variant"] = variant
                    changed = stepper()
                if not changed:
                    break
                iterations += 1
            else:
                raise RuntimeError(
                    f"{kernel}/{variant}: no fixpoint within {max_iterations} iterations"
                )
        else:
            for _ in range(max_iterations):
                if not stepper():
                    break
                iterations += 1
            else:
                raise RuntimeError(
                    f"{kernel}/{variant}: no fixpoint within {max_iterations} iterations"
                )
    finally:
        # steppers on a process backend own OS resources (pool + shm)
        close = getattr(stepper, "close", None)
        if close is not None:
            close()
    return RunResult(
        kernel=kernel,
        variant=variant,
        # a temporally-blocked stepper advances k grid iterations per call;
        # report executed grid iterations, not dispatches
        iterations=iterations * getattr(stepper, "k", 1),
        final_grid=grid,
        tiles_computed=getattr(stepper, "tiles_computed", 0),
        tiles_skipped=getattr(stepper, "tiles_skipped", 0),
        trace=trace,
        extras={
            "inner_tile_updates": getattr(stepper, "inner_tile_updates", None),
            "outer_tile_updates": getattr(stepper, "outer_tile_updates", None),
        },
    )
